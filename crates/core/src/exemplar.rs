//! Exemplar (support-set) selection — Algorithm 1, lines 1–7.
//!
//! The herding selector iteratively picks the sample whose inclusion keeps
//! the running mean of selected embeddings closest to the true class
//! prototype μ — the same construction as iCaRL's exemplar management,
//! which the paper adapts. Random selection is the ablation used in
//! Fig. 6's "random exemplars" curves.

use pilote_tensor::{Rng64, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// How to choose the `m` exemplars that represent a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Herding: greedily track the class prototype (Algorithm 1, line 6).
    #[default]
    Herding,
    /// Uniform random subset.
    Random,
    /// Farthest-from-prototype samples — a deliberately adversarial
    /// selection used to probe sensitivity (not in the paper).
    Boundary,
}

impl SelectionStrategy {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SelectionStrategy::Herding => "herding",
            SelectionStrategy::Random => "random",
            SelectionStrategy::Boundary => "boundary",
        }
    }
}

/// Selects `m` exemplar indices from a class's `[n, d]` embedding matrix.
///
/// Returns at most `min(m, n)` distinct indices into the rows of
/// `embeddings`, in selection order (herding order matters: a prefix of a
/// herding selection is itself a valid smaller herding selection, which is
/// how the edge cache shrinks per-class budgets when new classes arrive).
pub fn select_exemplars(
    embeddings: &Tensor,
    m: usize,
    strategy: SelectionStrategy,
    rng: &mut Rng64,
) -> Result<Vec<usize>, TensorError> {
    if embeddings.rank() != 2 {
        return Err(TensorError::RankMismatch { got: embeddings.rank(), expected: 2, op: "select_exemplars" });
    }
    let n = embeddings.rows();
    let m = m.min(n);
    if m == 0 {
        return Ok(Vec::new());
    }
    match strategy {
        SelectionStrategy::Random => Ok(rng.sample_indices(n, m)),
        SelectionStrategy::Herding => herding(embeddings, m),
        SelectionStrategy::Boundary => {
            let mu = class_prototype(embeddings)?;
            let mut order: Vec<usize> = (0..n).collect();
            let dists: Vec<f32> = (0..n)
                .map(|i| Tensor::vector(embeddings.row(i)).sq_dist(&mu).expect("same dim"))
                .collect();
            order.sort_by(|&a, &b| dists[b].partial_cmp(&dists[a]).expect("finite distances"));
            order.truncate(m);
            Ok(order)
        }
    }
}

/// The class prototype μ = mean of the class's embeddings (Eq. 1).
pub fn class_prototype(embeddings: &Tensor) -> Result<Tensor, TensorError> {
    if embeddings.rank() != 2 || embeddings.rows() == 0 {
        return Err(TensorError::Empty { op: "class_prototype" });
    }
    embeddings.mean_axis(pilote_tensor::reduce::Axis::Rows)
}

/// Herding selection (Algorithm 1, line 6):
///
/// ```text
/// p_k = argmin_x ‖ μ − (φ(x) + Σ_{j<k} φ(p_j)) / k ‖
/// ```
fn herding(embeddings: &Tensor, m: usize) -> Result<Vec<usize>, TensorError> {
    let n = embeddings.rows();
    let d = embeddings.cols();
    let mu = class_prototype(embeddings)?;
    let mut selected = Vec::with_capacity(m);
    let mut taken = vec![false; n];
    // Running sum of selected embeddings.
    let mut acc = vec![0.0f32; d];

    for k in 1..=m {
        let inv_k = 1.0 / k as f32;
        let mut best: Option<(usize, f32)> = None;
        #[allow(clippy::needless_range_loop)] // `i` indexes both `taken` and the rows
        for i in 0..n {
            if taken[i] {
                continue;
            }
            let row = embeddings.row(i);
            let mut dist = 0.0f32;
            for j in 0..d {
                let mean_j = (acc[j] + row[j]) * inv_k;
                let diff = mu.as_slice()[j] - mean_j;
                dist += diff * diff;
            }
            match best {
                Some((_, bd)) if dist >= bd => {}
                _ => best = Some((i, dist)),
            }
        }
        let (idx, _) = best.expect("m ≤ n guarantees a candidate");
        taken[idx] = true;
        for (a, &v) in acc.iter_mut().zip(embeddings.row(idx)) {
            *a += v;
        }
        selected.push(idx);
    }
    Ok(selected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(rng: &mut Rng64, n: usize, center: f32) -> Tensor {
        Tensor::randn([n, 4], center, 0.5, rng)
    }

    #[test]
    fn herding_mean_tracks_prototype() {
        let mut rng = Rng64::new(1);
        let emb = cluster(&mut rng, 100, 3.0);
        let mu = class_prototype(&emb).unwrap();
        let sel = select_exemplars(&emb, 10, SelectionStrategy::Herding, &mut rng).unwrap();
        let herd_mean = class_prototype(&emb.select_rows(&sel).unwrap()).unwrap();

        // Compare against the average random selection of the same size.
        let mut rand_dist = 0.0f32;
        for _ in 0..20 {
            let rsel = select_exemplars(&emb, 10, SelectionStrategy::Random, &mut rng).unwrap();
            let rmean = class_prototype(&emb.select_rows(&rsel).unwrap()).unwrap();
            rand_dist += rmean.sq_dist(&mu).unwrap();
        }
        rand_dist /= 20.0;
        let herd_dist = herd_mean.sq_dist(&mu).unwrap();
        assert!(
            herd_dist < rand_dist / 2.0,
            "herding {herd_dist} should beat random {rand_dist}"
        );
    }

    #[test]
    fn selection_is_distinct_and_in_range() {
        let mut rng = Rng64::new(2);
        let emb = cluster(&mut rng, 30, 0.0);
        for strategy in
            [SelectionStrategy::Herding, SelectionStrategy::Random, SelectionStrategy::Boundary]
        {
            let sel = select_exemplars(&emb, 12, strategy, &mut rng).unwrap();
            assert_eq!(sel.len(), 12, "{strategy:?}");
            let mut s = sel.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 12, "{strategy:?} produced duplicates");
            assert!(sel.iter().all(|&i| i < 30));
        }
    }

    #[test]
    fn m_larger_than_n_is_clamped() {
        let mut rng = Rng64::new(3);
        let emb = cluster(&mut rng, 5, 0.0);
        let sel = select_exemplars(&emb, 50, SelectionStrategy::Herding, &mut rng).unwrap();
        assert_eq!(sel.len(), 5);
    }

    #[test]
    fn m_zero_returns_empty() {
        let mut rng = Rng64::new(4);
        let emb = cluster(&mut rng, 5, 0.0);
        for strategy in
            [SelectionStrategy::Herding, SelectionStrategy::Random, SelectionStrategy::Boundary]
        {
            assert!(select_exemplars(&emb, 0, strategy, &mut rng).unwrap().is_empty());
        }
    }

    #[test]
    fn herding_prefix_property() {
        // The first k elements of an m-herding equal the k-herding.
        let mut rng = Rng64::new(5);
        let emb = cluster(&mut rng, 40, 1.0);
        let big = select_exemplars(&emb, 15, SelectionStrategy::Herding, &mut rng).unwrap();
        let small = select_exemplars(&emb, 5, SelectionStrategy::Herding, &mut rng).unwrap();
        assert_eq!(&big[..5], &small[..]);
    }

    #[test]
    fn herding_first_pick_is_nearest_to_prototype() {
        let mut rng = Rng64::new(6);
        let emb = cluster(&mut rng, 50, 2.0);
        let mu = class_prototype(&emb).unwrap();
        let sel = select_exemplars(&emb, 1, SelectionStrategy::Herding, &mut rng).unwrap();
        let picked = Tensor::vector(emb.row(sel[0])).sq_dist(&mu).unwrap();
        for i in 0..50 {
            let di = Tensor::vector(emb.row(i)).sq_dist(&mu).unwrap();
            assert!(picked <= di + 1e-5);
        }
    }

    #[test]
    fn boundary_picks_farthest() {
        let mut rng = Rng64::new(7);
        let emb = cluster(&mut rng, 50, 0.0);
        let mu = class_prototype(&emb).unwrap();
        let sel = select_exemplars(&emb, 5, SelectionStrategy::Boundary, &mut rng).unwrap();
        let min_sel = sel
            .iter()
            .map(|&i| Tensor::vector(emb.row(i)).sq_dist(&mu).unwrap())
            .fold(f32::INFINITY, f32::min);
        let unselected_max = (0..50)
            .filter(|i| !sel.contains(i))
            .map(|i| Tensor::vector(emb.row(i)).sq_dist(&mu).unwrap())
            .fold(0.0f32, f32::max);
        assert!(min_sel >= unselected_max - 1e-5);
    }

    #[test]
    fn prototype_of_empty_errors() {
        assert!(class_prototype(&Tensor::zeros([0, 3])).is_err());
    }
}
