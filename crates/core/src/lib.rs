//! # pilote-core
//!
//! The PILOTE algorithm (EDBT 2023): **P**ushing **I**ncremental
//! **L**earning **O**n human activities at the ex**T**reme **E**dge.
//!
//! PILOTE learns a metric embedding of human-activity feature vectors with
//! a Siamese network and classifies with nearest-class-mean (NCM) over
//! small exemplar support sets. When a new activity class appears on the
//! edge device, the model is updated with a joint loss
//!
//! ```text
//! L = α·L_distill + (1 − α)·L_contrastive          (Algorithm 1, line 10)
//! ```
//!
//! where the distillation term pins old-class exemplar embeddings to the
//! pre-trained ("teacher") embedding space, preventing catastrophic
//! forgetting, while the contrastive term carves out space for the new
//! class.
//!
//! Crate layout:
//!
//! * [`config`] — hyper-parameters (paper defaults: `α = 0.5`,
//!   FC `80 → 1024 → 512 → 128 → 64 → 128` with BatchNorm + ReLU, Adam,
//!   halving LR from 0.01, early stop at `Δval < 1e-4` ×5).
//! * [`embedding`] — the Siamese embedding network.
//! * [`exemplar`] — support-set selection (herding of Algorithm 1 lines
//!   1–7, plus random/boundary ablations).
//! * [`ncm`] — class prototypes and the NCM classifier (Eq. 1).
//! * [`pairs`] — contrastive pair construction, including the reduced
//!   scheme of §5.2.
//! * [`pilote`] — the incremental learner (pre-train on the cloud, learn
//!   new classes on the edge).
//! * [`baselines`] — the paper's two comparison points (*pre-trained*,
//!   *re-trained*).
//! * [`strategies`] — additional continual-learning strategies for the
//!   ablation benches (naive fine-tune, replay, GDumb, EWC, LwF).
//! * [`metrics`] — accuracy, confusion matrices, forgetting measures.
//! * [`projection`] — PCA projection of embedding spaces (Fig. 5) and
//!   cluster separation scores.
//! * [`quality`] — run-time quality monitoring: forgetting scores,
//!   prototype drift and NCM margin histograms with deterministic alert
//!   rules.
//! * [`session_metrics`] — the session × task accuracy matrix and the
//!   continual-learning metrics derived from it (average accuracy,
//!   forgetting curves, backward/forward transfer).

pub mod baselines;
pub mod config;
pub mod embedding;
pub mod exemplar;
pub mod knn;
pub mod metrics;
pub mod ncm;
pub mod pairs;
pub mod pilote;
pub mod projection;
pub mod quality;
pub mod session_metrics;
pub mod strategies;

pub use config::{NetConfig, PiloteConfig};
pub use embedding::EmbeddingNet;
pub use exemplar::{select_exemplars, SelectionStrategy};
pub use metrics::{accuracy, ConfusionMatrix};
pub use knn::KnnClassifier;
pub use ncm::NcmClassifier;
pub use pilote::{Pilote, SupportSet, TrainReport, UpdateOutcome, UpdateStage};
pub use quality::{
    AdaptiveThresholds, AlertRule, ClassQuality, QualityAlert, QualityMonitor, QualityReport,
    QualityThresholds,
};
pub use session_metrics::{AccuracyMatrix, SessionRecord, SessionSummary, TaskGroup};
