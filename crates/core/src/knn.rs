//! k-nearest-neighbour classification in embedding space — the natural
//! alternative to the NCM rule. The paper's related work (Zuo et al. 2019,
//! ref. \[33\]) pairs interpretable features with a kNN classifier; here kNN
//! runs over the same exemplar support set as NCM, trading prototype
//! compression for instance-level boundaries.
//!
//! Memory: NCM stores one prototype per class; kNN keeps every exemplar
//! embedding (`m × d` per class). On the edge that is exactly the support
//! set that is already cached, so kNN costs no extra storage — only extra
//! distance computations at inference time (`O(Σm)` vs `O(classes)`).

use pilote_tensor::{Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// kNN classifier over labelled exemplar embeddings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnClassifier {
    k: usize,
    /// `[n, d]` exemplar embeddings.
    embeddings: Tensor,
    /// Label of each exemplar row.
    labels: Vec<usize>,
}

impl KnnClassifier {
    /// Empty classifier with embedding width `d` and neighbourhood size
    /// `k` (≥ 1).
    pub fn new(k: usize, d: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        KnnClassifier { k, embeddings: Tensor::zeros([0, d]), labels: Vec::new() }
    }

    /// Neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Stored exemplar count.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no exemplars are stored.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Distinct labels present.
    pub fn classes(&self) -> Vec<usize> {
        let mut c = self.labels.clone();
        c.sort_unstable();
        c.dedup();
        c
    }

    /// Adds a class's exemplar embeddings (`[m, d]`).
    pub fn add_class(&mut self, label: usize, embeddings: &Tensor) -> Result<(), TensorError> {
        if embeddings.rank() != 2 || embeddings.cols() != self.embeddings.cols() {
            return Err(TensorError::ShapeMismatch {
                left: embeddings.shape().dims().to_vec(),
                right: vec![self.embeddings.cols()],
                op: "KnnClassifier::add_class",
            });
        }
        self.embeddings = Tensor::vstack(&[&self.embeddings, embeddings])?;
        self.labels.extend(std::iter::repeat_n(label, embeddings.rows()));
        Ok(())
    }

    /// Classifies each query row by majority vote among its `k` nearest
    /// exemplars (ties broken by the closer total distance).
    pub fn classify(&self, queries: &Tensor) -> Result<Vec<usize>, TensorError> {
        if self.is_empty() {
            return Err(TensorError::Empty { op: "KnnClassifier::classify" });
        }
        let dists = queries.pairwise_sq_dists(&self.embeddings)?;
        let k = self.k.min(self.len());
        let n = self.len();
        // Each query's selection + vote is independent, so the loop is
        // band-parallel over queries (bitwise-deterministic: per-query work
        // does not depend on the banding; see docs/THREADING.md).
        let threads = pilote_tensor::parallel::effective_threads(queries.rows() * n);
        let mut out = vec![0usize; queries.rows()];
        pilote_tensor::parallel::for_each_band(&mut out, 1, threads, |q0, band| {
            for (off, o) in band.iter_mut().enumerate() {
                let row = dists.row(q0 + off);
                // Partial selection of the k smallest distances.
                let mut idx: Vec<usize> = (0..row.len()).collect();
                idx.sort_by(|&a, &b| row[a].partial_cmp(&row[b]).expect("finite distances"));
                idx.truncate(k);
                // Vote: count per label, accumulate distance for tie-breaks.
                let mut votes: std::collections::BTreeMap<usize, (usize, f32)> =
                    std::collections::BTreeMap::new();
                for &i in &idx {
                    let e = votes.entry(self.labels[i]).or_insert((0, 0.0));
                    e.0 += 1;
                    e.1 += row[i];
                }
                *o = votes
                    .into_iter()
                    .max_by(|(_, (ca, da)), (_, (cb, db))| {
                        ca.cmp(cb).then(db.partial_cmp(da).expect("finite"))
                    })
                    .map(|(label, _)| label)
                    .expect("non-empty votes");
            }
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_tensor::Rng64;

    fn two_blob_clf(k: usize) -> KnnClassifier {
        let mut rng = Rng64::new(1);
        let mut clf = KnnClassifier::new(k, 3);
        clf.add_class(7, &Tensor::randn([20, 3], 0.0, 0.5, &mut rng)).unwrap();
        clf.add_class(9, &Tensor::randn([20, 3], 5.0, 0.5, &mut rng)).unwrap();
        clf
    }

    #[test]
    fn classifies_obvious_queries() {
        let clf = two_blob_clf(5);
        let q = Tensor::from_rows(&[vec![0.1, 0.0, -0.1], vec![5.2, 4.9, 5.0]]).unwrap();
        assert_eq!(clf.classify(&q).unwrap(), vec![7, 9]);
    }

    #[test]
    fn k_one_is_nearest_neighbour() {
        let mut clf = KnnClassifier::new(1, 1);
        clf.add_class(0, &Tensor::from_rows(&[vec![0.0]]).unwrap()).unwrap();
        clf.add_class(1, &Tensor::from_rows(&[vec![10.0]]).unwrap()).unwrap();
        let q = Tensor::from_rows(&[vec![4.0], vec![6.0]]).unwrap();
        assert_eq!(clf.classify(&q).unwrap(), vec![0, 1]);
    }

    #[test]
    fn majority_vote_beats_single_closer_outlier() {
        let mut clf = KnnClassifier::new(3, 1);
        // One class-1 exemplar sits closest, but two class-0 exemplars are
        // in the neighbourhood → majority wins.
        clf.add_class(1, &Tensor::from_rows(&[vec![1.0]]).unwrap()).unwrap();
        clf.add_class(0, &Tensor::from_rows(&[vec![1.5], vec![1.6]]).unwrap()).unwrap();
        let q = Tensor::from_rows(&[vec![0.9]]).unwrap();
        assert_eq!(clf.classify(&q).unwrap(), vec![0]);
    }

    #[test]
    fn k_larger_than_population_is_clamped() {
        let clf = two_blob_clf(1000);
        let q = Tensor::from_rows(&[vec![0.0, 0.0, 0.0]]).unwrap();
        // With all 40 exemplars voting, the tie (20 vs 20) breaks by total
        // distance: the near blob wins.
        assert_eq!(clf.classify(&q).unwrap(), vec![7]);
    }

    #[test]
    fn empty_classifier_errors() {
        let clf = KnnClassifier::new(3, 4);
        assert!(clf.classify(&Tensor::zeros([1, 4])).is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut clf = KnnClassifier::new(1, 4);
        assert!(clf.add_class(0, &Tensor::zeros([2, 3])).is_err());
    }

    #[test]
    fn classes_and_len() {
        let clf = two_blob_clf(3);
        assert_eq!(clf.classes(), vec![7, 9]);
        assert_eq!(clf.len(), 40);
        assert_eq!(clf.k(), 3);
    }

    #[test]
    fn agrees_with_ncm_on_well_separated_blobs() {
        let mut rng = Rng64::new(2);
        let a = Tensor::randn([30, 4], 0.0, 0.6, &mut rng);
        let b = Tensor::randn([30, 4], 6.0, 0.6, &mut rng);
        let mut knn = KnnClassifier::new(5, 4);
        knn.add_class(0, &a).unwrap();
        knn.add_class(1, &b).unwrap();
        let ncm = crate::ncm::NcmClassifier::from_exemplars(&[(0, &a), (1, &b)]).unwrap();
        let queries = Tensor::vstack(&[
            &Tensor::randn([15, 4], 0.0, 0.6, &mut rng),
            &Tensor::randn([15, 4], 6.0, 0.6, &mut rng),
        ])
        .unwrap();
        assert_eq!(knn.classify(&queries).unwrap(), ncm.classify(&queries).unwrap());
    }
}
