//! Session-level continual-learning metrics: the accuracy matrix and the
//! curves derived from it.
//!
//! The paper's claim is about *forgetting across a sequence of incremental
//! sessions*, not a single snapshot. The standard instrument for that (and
//! the one Adaimi & Thomaz use for lifelong HAR, PAPERS.md) is the
//! **accuracy matrix** `R`: row `i` is one training session (here, one
//! [`Pilote`](crate::pilote::Pilote) generation bump observed by the
//! quality monitor), column `j` is one **task** — a named group of class
//! labels ([`TaskGroup`]) — and `R[i][j]` is the held-out probe accuracy on
//! task `j` right after session `i`. Every classic continual-learning
//! metric is a fold over this matrix:
//!
//! * **Average accuracy curve** — `mean_j R[i][j]` over the tasks measured
//!   and known at session `i`; the last point is the usual "ACC" headline.
//! * **Forgetting curve** — at session `i`, the mean over already-learned
//!   tasks of `max_{k < i} R[k][j] − R[i][j]` (how far each task has
//!   fallen from its own best). Zero while nothing has been learned twice.
//! * **Backward transfer (BWT)** — `mean_j R[T][j] − R[learned(j)][j]`
//!   where `T` is the final session and `learned(j)` the session that
//!   first knew task `j`. Negative BWT *is* catastrophic forgetting.
//! * **Forward transfer (FWT)** — `mean_j R[learned(j)−1][j]`: accuracy on
//!   a task *before* the model learned it, against a zero-knowledge
//!   baseline. For an NCM classifier the prior is exactly zero (an unknown
//!   label is never predicted), so FWT reports the raw pre-learning
//!   accuracy rather than a delta against random chance.
//!
//! Cells the probe cannot measure (no rows of that task) carry the `-1.0`
//! sentinel — the same convention as
//! [`ClassQuality::accuracy`](crate::quality::ClassQuality) — and every
//! derived metric skips them. Each row also records which tasks the
//! classifier *knew* at that session ([`SessionRecord::known`]), which is
//! what separates "accuracy before learning" (FWT) from "accuracy since
//! learning" (forgetting, BWT).
//!
//! Everything here is pure arithmetic over recorded values — no clock, no
//! randomness, fixed iteration order — so a matrix recorded at one seed
//! serialises byte-identically at any `PILOTE_THREADS`. The formulas and
//! the determinism contract are documented in `docs/METRICS.md`.

use pilote_har_data::Dataset;
use serde::{Deserialize, Serialize};

/// Sentinel accuracy for a cell the probe set cannot measure.
const UNMEASURED: f32 = -1.0;

/// A named group of class labels evaluated as one column of the matrix.
///
/// In the paper's class-incremental schedule each task is a single new
/// activity (plus one task for the pre-trained base classes), but a group
/// may hold any label set — e.g. all classes of one sensor placement in a
/// domain-incremental scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskGroup {
    /// Human-readable task name (used in JSON and rollups).
    pub name: String,
    /// The class labels this task covers, sorted and deduplicated.
    pub labels: Vec<usize>,
}

impl TaskGroup {
    /// Builds a task group; labels are sorted and deduplicated so two
    /// groups over the same set compare equal.
    pub fn new(name: impl Into<String>, labels: &[usize]) -> Self {
        let mut labels = labels.to_vec();
        labels.sort_unstable();
        labels.dedup();
        TaskGroup { name: name.into(), labels }
    }
}

/// One row of the matrix: the per-task probe accuracies measured right
/// after one training session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Model generation this row was measured at.
    pub generation: u64,
    /// Probe accuracy per task (same order as the matrix's tasks);
    /// `-1.0` when the probe has no rows of that task.
    pub accuracies: Vec<f32>,
    /// Whether the classifier knew **all** of the task's labels at this
    /// session. A task counts as learned at the first row where this is
    /// true.
    pub known: Vec<bool>,
}

/// Errors constructing a matrix from untrusted parts (the wire decoder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixShapeError {
    /// A row's `accuracies`/`known` length disagrees with the task count.
    RowWidth {
        /// Index of the offending row.
        row: usize,
        /// Expected width (the task count).
        expected: usize,
        /// Actual `accuracies` length.
        accuracies: usize,
        /// Actual `known` length.
        known: usize,
    },
}

impl std::fmt::Display for MatrixShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixShapeError::RowWidth { row, expected, accuracies, known } => write!(
                f,
                "session matrix row {row}: expected {expected} tasks, got \
                 {accuracies} accuracies and {known} known flags"
            ),
        }
    }
}

impl std::error::Error for MatrixShapeError {}

/// The accuracy matrix recorder (see the module docs for the semantics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyMatrix {
    tasks: Vec<TaskGroup>,
    rows: Vec<SessionRecord>,
}

impl AccuracyMatrix {
    /// An empty matrix over a fixed task list (columns never change after
    /// construction).
    pub fn new(tasks: Vec<TaskGroup>) -> Self {
        AccuracyMatrix { tasks, rows: Vec::new() }
    }

    /// Rebuilds a matrix from raw parts (the wire decoder), validating
    /// that every row is exactly as wide as the task list.
    pub fn from_parts(
        tasks: Vec<TaskGroup>,
        rows: Vec<SessionRecord>,
    ) -> Result<Self, MatrixShapeError> {
        for (i, row) in rows.iter().enumerate() {
            if row.accuracies.len() != tasks.len() || row.known.len() != tasks.len() {
                return Err(MatrixShapeError::RowWidth {
                    row: i,
                    expected: tasks.len(),
                    accuracies: row.accuracies.len(),
                    known: row.known.len(),
                });
            }
        }
        Ok(AccuracyMatrix { tasks, rows })
    }

    /// The task (column) definitions.
    pub fn tasks(&self) -> &[TaskGroup] {
        &self.tasks
    }

    /// The recorded rows, oldest first.
    pub fn rows(&self) -> &[SessionRecord] {
        &self.rows
    }

    /// Number of recorded sessions (rows).
    pub fn sessions(&self) -> usize {
        self.rows.len()
    }

    /// `R[session][task]`, or the `-1.0` sentinel for unmeasured cells.
    pub fn at(&self, session: usize, task: usize) -> f32 {
        self.rows[session].accuracies[task]
    }

    /// Appends a pre-computed row. Panics if the widths disagree with the
    /// task list — recorder misuse, not data corruption (the wire path
    /// goes through [`AccuracyMatrix::from_parts`]).
    pub fn record(&mut self, generation: u64, accuracies: Vec<f32>, known: Vec<bool>) {
        assert_eq!(accuracies.len(), self.tasks.len(), "accuracy row width");
        assert_eq!(known.len(), self.tasks.len(), "known row width");
        self.rows.push(SessionRecord { generation, accuracies, known });
    }

    /// Stamps one session row from a probe classification: `predicted[r]`
    /// is the predicted label for probe row `r`, `known_labels` the labels
    /// the classifier currently knows. Per-task accuracy is computed over
    /// the union of the task's labels' probe rows; a task is `known` when
    /// the classifier knows **all** of its labels.
    pub fn record_predictions(
        &mut self,
        generation: u64,
        probe: &Dataset,
        predicted: &[usize],
        known_labels: &[usize],
    ) {
        let mut accuracies = Vec::with_capacity(self.tasks.len());
        let mut known = Vec::with_capacity(self.tasks.len());
        for task in &self.tasks {
            let mut correct = 0usize;
            let mut total = 0usize;
            for &label in &task.labels {
                for row in probe.class_indices(label) {
                    total += 1;
                    if predicted[row] == label {
                        correct += 1;
                    }
                }
            }
            accuracies.push(if total == 0 {
                UNMEASURED
            } else {
                correct as f32 / total as f32
            });
            known.push(task.labels.iter().all(|l| known_labels.contains(l)));
        }
        self.rows.push(SessionRecord { generation, accuracies, known });
    }

    /// The first session (row index) at which the classifier knew all of
    /// task `j`'s labels, or `None` if it never has.
    pub fn learned_session(&self, task: usize) -> Option<usize> {
        self.rows.iter().position(|row| row.known[task])
    }

    /// The matrix "diagonal" for task `j`: its accuracy at the session
    /// that first learned it. `None` if never learned or unmeasured.
    pub fn own_task_accuracy(&self, task: usize) -> Option<f32> {
        let learned = self.learned_session(task)?;
        let acc = self.at(learned, task);
        (acc >= 0.0).then_some(acc)
    }

    /// Mean accuracy per session over the tasks known *and* measured at
    /// that session; `-1.0` for a session with none.
    pub fn average_accuracy_curve(&self) -> Vec<f64> {
        self.rows
            .iter()
            .map(|row| {
                let mut sum = 0.0f64;
                let mut count = 0usize;
                for (j, &acc) in row.accuracies.iter().enumerate() {
                    if row.known[j] && acc >= 0.0 {
                        sum += f64::from(acc);
                        count += 1;
                    }
                }
                if count == 0 { f64::from(UNMEASURED) } else { sum / count as f64 }
            })
            .collect()
    }

    /// Per-session forgetting: at session `i`, the mean over tasks learned
    /// *before* `i` of `max_{learned(j) ≤ k < i} R[k][j] − R[i][j]`.
    /// Positive = the task has fallen from its own best. Sessions with no
    /// previously-learned measurable task report 0.
    pub fn forgetting_curve(&self) -> Vec<f64> {
        (0..self.rows.len())
            .map(|i| {
                let mut sum = 0.0f64;
                let mut count = 0usize;
                for j in 0..self.tasks.len() {
                    let Some(learned) = self.learned_session(j) else { continue };
                    if learned >= i {
                        continue;
                    }
                    let now = self.at(i, j);
                    if now < 0.0 {
                        continue;
                    }
                    let mut best = f32::NEG_INFINITY;
                    for k in learned..i {
                        let past = self.at(k, j);
                        if past >= 0.0 {
                            best = best.max(past);
                        }
                    }
                    if best.is_finite() {
                        sum += f64::from(best) - f64::from(now);
                        count += 1;
                    }
                }
                if count == 0 { 0.0 } else { sum / count as f64 }
            })
            .collect()
    }

    /// The last point of the forgetting curve (0 for an empty matrix).
    pub fn final_forgetting(&self) -> f64 {
        self.forgetting_curve().last().copied().unwrap_or(0.0)
    }

    /// BWT: mean over tasks learned before the final session of
    /// `R[T][j] − R[learned(j)][j]`. `None` when no task qualifies.
    pub fn backward_transfer(&self) -> Option<f64> {
        let last = self.rows.len().checked_sub(1)?;
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for j in 0..self.tasks.len() {
            let Some(learned) = self.learned_session(j) else { continue };
            if learned >= last {
                continue;
            }
            let (then, now) = (self.at(learned, j), self.at(last, j));
            if then >= 0.0 && now >= 0.0 {
                sum += f64::from(now) - f64::from(then);
                count += 1;
            }
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// FWT: mean over tasks learned after session 0 of
    /// `R[learned(j)−1][j]` — probe accuracy on a task the model had not
    /// yet learned, against the NCM zero-knowledge baseline (an unknown
    /// label is never predicted, so chance is exactly 0). `None` when no
    /// task qualifies.
    pub fn forward_transfer(&self) -> Option<f64> {
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for j in 0..self.tasks.len() {
            let Some(learned) = self.learned_session(j) else { continue };
            if learned == 0 {
                continue;
            }
            let before = self.at(learned - 1, j);
            if before >= 0.0 {
                sum += f64::from(before);
                count += 1;
            }
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// All derived metrics in one serialisable bundle.
    pub fn summary(&self) -> SessionSummary {
        let curve = self.average_accuracy_curve();
        SessionSummary {
            sessions: self.sessions(),
            tasks: self.tasks.len(),
            average_accuracy: curve.last().copied().unwrap_or(f64::from(UNMEASURED)),
            average_accuracy_curve: curve,
            forgetting_curve: self.forgetting_curve(),
            final_forgetting: self.final_forgetting(),
            backward_transfer: self.backward_transfer(),
            forward_transfer: self.forward_transfer(),
        }
    }
}

/// The derived continual-learning metrics of one device's matrix
/// (formulas in the module docs and `docs/METRICS.md`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSummary {
    /// Number of recorded sessions (matrix rows).
    pub sessions: usize,
    /// Number of tasks (matrix columns).
    pub tasks: usize,
    /// Final-session mean accuracy over known, measured tasks ("ACC").
    pub average_accuracy: f64,
    /// [`AccuracyMatrix::average_accuracy_curve`], one point per session.
    pub average_accuracy_curve: Vec<f64>,
    /// [`AccuracyMatrix::forgetting_curve`], one point per session.
    pub forgetting_curve: Vec<f64>,
    /// The forgetting curve's last point.
    pub final_forgetting: f64,
    /// Backward transfer; `None` when no task was learned before the
    /// final session.
    pub backward_transfer: Option<f64>,
    /// Forward transfer; `None` when every task was known from session 0.
    pub forward_transfer: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks() -> Vec<TaskGroup> {
        vec![TaskGroup::new("base", &[0, 1]), TaskGroup::new("run", &[2])]
    }

    /// Base known throughout; run learned at session 1; base decays.
    fn sample() -> AccuracyMatrix {
        let mut m = AccuracyMatrix::new(tasks());
        m.record(1, vec![0.9, 0.1], vec![true, false]);
        m.record(2, vec![0.8, 0.7], vec![true, true]);
        m.record(3, vec![0.6, 0.75], vec![true, true]);
        m
    }

    #[test]
    fn task_group_normalises_labels() {
        let t = TaskGroup::new("x", &[3, 1, 3, 2]);
        assert_eq!(t.labels, vec![1, 2, 3]);
    }

    #[test]
    fn learned_session_and_diagonal() {
        let m = sample();
        assert_eq!(m.learned_session(0), Some(0));
        assert_eq!(m.learned_session(1), Some(1));
        assert_eq!(m.own_task_accuracy(0), Some(0.9));
        assert_eq!(m.own_task_accuracy(1), Some(0.7));
    }

    #[test]
    fn average_accuracy_skips_unknown_and_unmeasured() {
        let m = sample();
        let curve = m.average_accuracy_curve();
        // Session 0: run not yet known → base only.
        assert!((curve[0] - 0.9).abs() < 1e-6);
        assert!((curve[1] - 0.75).abs() < 1e-6);
        assert!((curve[2] - 0.675).abs() < 1e-6);
    }

    #[test]
    fn forgetting_curve_tracks_drop_from_best() {
        let m = sample();
        let curve = m.forgetting_curve();
        assert_eq!(curve[0], 0.0, "nothing learned before session 0");
        // Session 1: only base qualifies; best-so-far 0.9, now 0.8.
        assert!((curve[1] - (0.9 - 0.8)).abs() < 1e-6);
        // Session 2: base 0.9 → 0.6, run 0.7 → 0.75 (negative forgetting).
        let expected = (f64::from(0.9f32 - 0.6f32) + f64::from(0.7f32 - 0.75f32)) / 2.0;
        assert!((curve[2] - expected).abs() < 1e-6, "{} vs {expected}", curve[2]);
        assert!((m.final_forgetting() - expected).abs() < 1e-6);
    }

    #[test]
    fn transfer_metrics() {
        let m = sample();
        // BWT: base (0.6 − 0.9) and run (0.75 − 0.7), averaged.
        let bwt = m.backward_transfer().expect("both tasks qualify");
        let expected = (f64::from(0.6f32 - 0.9f32) + f64::from(0.75f32 - 0.7f32)) / 2.0;
        assert!((bwt - expected).abs() < 1e-6);
        // FWT: run only — its accuracy at session 0, before learning.
        let fwt = m.forward_transfer().expect("run was learned late");
        assert!((fwt - f64::from(0.1f32)).abs() < 1e-6);
    }

    #[test]
    fn transfer_none_on_degenerate_shapes() {
        let mut m = AccuracyMatrix::new(tasks());
        assert_eq!(m.backward_transfer(), None, "empty matrix");
        assert_eq!(m.forward_transfer(), None);
        m.record(1, vec![0.9, -1.0], vec![true, true]);
        assert_eq!(m.backward_transfer(), None, "nothing learned before the last row");
        assert_eq!(m.forward_transfer(), None, "everything known from session 0");
    }

    #[test]
    fn unmeasured_cells_are_skipped_everywhere() {
        let mut m = AccuracyMatrix::new(tasks());
        m.record(1, vec![0.9, -1.0], vec![true, false]);
        m.record(2, vec![-1.0, 0.8], vec![true, true]);
        let curve = m.average_accuracy_curve();
        assert!((curve[0] - 0.9).abs() < 1e-6);
        assert!((curve[1] - 0.8).abs() < 1e-6, "unmeasured base must not drag the mean");
        // Forgetting at session 1: base has no measurable best *and* no
        // current value → no qualifying task.
        assert_eq!(m.forgetting_curve()[1], 0.0);
    }

    #[test]
    fn from_parts_validates_row_width() {
        let rows =
            vec![SessionRecord { generation: 1, accuracies: vec![0.5], known: vec![true] }];
        let err = AccuracyMatrix::from_parts(tasks(), rows).unwrap_err();
        assert!(matches!(err, MatrixShapeError::RowWidth { row: 0, expected: 2, .. }));
    }

    #[test]
    fn record_predictions_groups_labels() {
        // Probe: labels 0,0,1,2 with a predictor that nails 0 and 2 but
        // misses 1 → base task (labels 0,1) = 2/3, run task = 1/1.
        let probe =
            Dataset::new(pilote_tensor::Tensor::zeros(vec![4, 3]), vec![0, 0, 1, 2]).unwrap();
        let mut m = AccuracyMatrix::new(tasks());
        m.record_predictions(7, &probe, &[0, 0, 0, 2], &[0, 1]);
        assert_eq!(m.sessions(), 1);
        assert_eq!(m.rows()[0].generation, 7);
        assert!((m.at(0, 0) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(m.at(0, 1), 1.0);
        assert_eq!(m.rows()[0].known, vec![true, false], "label 2 is not known");
    }

    #[test]
    fn summary_matches_parts_and_serde_round_trips() {
        let m = sample();
        let s = m.summary();
        assert_eq!(s.sessions, 3);
        assert_eq!(s.tasks, 2);
        assert_eq!(s.average_accuracy_curve, m.average_accuracy_curve());
        assert_eq!(s.forgetting_curve, m.forgetting_curve());
        assert_eq!(s.average_accuracy, *s.average_accuracy_curve.last().unwrap());
        assert_eq!(s.final_forgetting, *s.forgetting_curve.last().unwrap());
        assert_eq!(s.backward_transfer, m.backward_transfer());
        assert_eq!(s.forward_transfer, m.forward_transfer());

        let json = serde_json::to_string(&m).expect("serialise matrix");
        let back: AccuracyMatrix = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, m);
        let json = serde_json::to_string(&s).expect("serialise summary");
        let back: SessionSummary = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, s);
    }
}
