//! The nearest-class-mean classifier (Eq. 1).
//!
//! ```text
//! y* = argmin_y dist(φ_Θ(x), μ_y),   μ_y = (1/n_y)·Σ φ_Θ(p_i)
//! ```
//!
//! Prototypes are computed from exemplar support sets, never from full
//! class data — that is what keeps the edge memory footprint constant.

use pilote_tensor::{Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// NCM classifier over class prototypes in embedding space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NcmClassifier {
    /// Class labels, in prototype-row order.
    labels: Vec<usize>,
    /// `[classes, d]` prototype matrix.
    prototypes: Tensor,
}

impl NcmClassifier {
    /// Builds an empty classifier with embedding width `d`.
    pub fn new(d: usize) -> Self {
        NcmClassifier { labels: Vec::new(), prototypes: Tensor::zeros([0, d]) }
    }

    /// Builds a classifier from `(label, exemplar_embeddings)` pairs; each
    /// prototype is the mean of its exemplar embeddings.
    pub fn from_exemplars(classes: &[(usize, &Tensor)]) -> Result<Self, TensorError> {
        let d = classes
            .first()
            .map(|(_, e)| e.cols())
            .ok_or(TensorError::Empty { op: "NcmClassifier::from_exemplars" })?;
        let mut clf = NcmClassifier::new(d);
        for &(label, embeddings) in classes {
            clf.set_prototype_from(label, embeddings)?;
        }
        Ok(clf)
    }

    /// Builds a classifier directly from a prototype matrix: one row of
    /// `prototypes` (`[classes, d]`) per entry of `labels`, installed
    /// as-is without re-averaging. This is the wire-decode path: a device
    /// receiving quantised prototypes serves from *exactly* the shipped
    /// values, so the accuracy cost of quantisation is measured, not
    /// hidden behind a local recompute.
    ///
    /// # Errors
    /// [`TensorError::ShapeMismatch`] when `labels` and prototype rows
    /// disagree in count, or `prototypes` is not rank 2;
    /// [`TensorError::Empty`] on duplicate labels (two rows would alias
    /// one class).
    pub fn from_prototypes(labels: Vec<usize>, prototypes: Tensor) -> Result<Self, TensorError> {
        if prototypes.rank() != 2 || prototypes.rows() != labels.len() {
            return Err(TensorError::ShapeMismatch {
                left: prototypes.shape().dims().to_vec(),
                right: vec![labels.len()],
                op: "NcmClassifier::from_prototypes",
            });
        }
        for (i, l) in labels.iter().enumerate() {
            if labels[..i].contains(l) {
                return Err(TensorError::Empty { op: "NcmClassifier::from_prototypes (duplicate label)" });
            }
        }
        Ok(NcmClassifier { labels, prototypes })
    }

    /// The full `[classes, d]` prototype matrix (row order matches
    /// [`NcmClassifier::labels`]) — the wire-encode counterpart of
    /// [`NcmClassifier::from_prototypes`].
    pub fn prototype_matrix(&self) -> &Tensor {
        &self.prototypes
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.prototypes.cols()
    }

    /// Number of known classes.
    pub fn n_classes(&self) -> usize {
        self.labels.len()
    }

    /// Known class labels (prototype order).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The prototype of `label`, if known.
    pub fn prototype(&self, label: usize) -> Option<Tensor> {
        let row = self.labels.iter().position(|&l| l == label)?;
        Some(Tensor::vector(self.prototypes.row(row)))
    }

    /// Inserts or replaces the prototype of `label` with the mean of
    /// `embeddings` (`[n, d]`, n ≥ 1).
    pub fn set_prototype_from(&mut self, label: usize, embeddings: &Tensor) -> Result<(), TensorError> {
        let mu = crate::exemplar::class_prototype(embeddings)?;
        self.set_prototype(label, &mu)
    }

    /// Inserts or replaces the prototype of `label` directly.
    pub fn set_prototype(&mut self, label: usize, prototype: &Tensor) -> Result<(), TensorError> {
        if prototype.rank() != 1 || prototype.len() != self.dim() {
            return Err(TensorError::ShapeMismatch {
                left: prototype.shape().dims().to_vec(),
                right: vec![self.dim()],
                op: "NcmClassifier::set_prototype",
            });
        }
        match self.labels.iter().position(|&l| l == label) {
            Some(row) => {
                self.prototypes.row_mut(row).copy_from_slice(prototype.as_slice());
            }
            None => {
                self.labels.push(label);
                self.prototypes =
                    Tensor::vstack(&[&self.prototypes, &prototype.reshape([1, self.dim()])?])?;
            }
        }
        Ok(())
    }

    /// Removes a class prototype; returns whether it existed.
    pub fn remove(&mut self, label: usize) -> bool {
        let Some(row) = self.labels.iter().position(|&l| l == label) else {
            return false;
        };
        self.labels.remove(row);
        let keep: Vec<usize> =
            (0..self.prototypes.rows()).filter(|&r| r != row).collect();
        self.prototypes = self.prototypes.select_rows(&keep).expect("rows in range");
        true
    }

    /// Squared distances `[n, classes]` from each embedding row to each
    /// prototype.
    ///
    /// Rides the fused `pairwise_sq_dists` kernel: the `‖x‖² − 2x·μ + ‖μ‖²`
    /// combine is an epilogue of the packed GEMM (`docs/KERNELS.md`), so
    /// the whole NCM hot path is one kernel dispatch with no second sweep
    /// over the `[n, classes]` output.
    pub fn distances(&self, embeddings: &Tensor) -> Result<Tensor, TensorError> {
        if self.n_classes() == 0 {
            return Err(TensorError::Empty { op: "NcmClassifier::distances" });
        }
        embeddings.pairwise_sq_dists(&self.prototypes)
    }

    /// Classifies each embedding row to the nearest prototype's label.
    pub fn classify(&self, embeddings: &Tensor) -> Result<Vec<usize>, TensorError> {
        let d = self.distances(embeddings)?;
        Ok(d.argmin_rows()?.into_iter().map(|r| self.labels[r]).collect())
    }

    /// Classifies each embedding row, returning `(label, squared distance
    /// to the winning prototype)` per row.
    ///
    /// One [`Tensor::pairwise_sq_dists`] call covers the whole batch, and
    /// every output row is a pure function of its input row, so the result
    /// is bitwise-identical to classifying each row in its own `[1, d]`
    /// call — the batched-serving contract of `docs/FLEET.md`.
    pub fn classify_with_distances(
        &self,
        embeddings: &Tensor,
    ) -> Result<Vec<(usize, f32)>, TensorError> {
        let d = self.distances(embeddings)?;
        let winners = d.argmin_rows()?;
        Ok(winners
            .into_iter()
            .enumerate()
            .map(|(row, col)| (self.labels[col], d.at(row, col)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_tensor::Rng64;

    fn two_class() -> NcmClassifier {
        let mut clf = NcmClassifier::new(2);
        clf.set_prototype(7, &Tensor::vector(&[0.0, 0.0])).unwrap();
        clf.set_prototype(9, &Tensor::vector(&[10.0, 0.0])).unwrap();
        clf
    }

    #[test]
    fn classify_nearest() {
        let clf = two_class();
        let x = Tensor::from_rows(&[vec![1.0, 1.0], vec![9.0, -1.0]]).unwrap();
        assert_eq!(clf.classify(&x).unwrap(), vec![7, 9]);
    }

    #[test]
    fn from_prototypes_installs_rows_verbatim() {
        let clf = two_class();
        let direct = NcmClassifier::from_prototypes(
            clf.labels().to_vec(),
            clf.prototype_matrix().clone(),
        )
        .unwrap();
        assert_eq!(direct, clf);
        let x = Tensor::from_rows(&[vec![1.0, 1.0], vec![9.0, -1.0]]).unwrap();
        assert_eq!(direct.classify(&x).unwrap(), vec![7, 9]);
    }

    #[test]
    fn from_prototypes_rejects_bad_shapes_and_duplicates() {
        let m = Tensor::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        assert!(matches!(
            NcmClassifier::from_prototypes(vec![1], m.clone()),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            NcmClassifier::from_prototypes(vec![3, 3], m),
            Err(TensorError::Empty { .. })
        ));
    }

    #[test]
    fn labels_are_arbitrary_not_dense() {
        let clf = two_class();
        assert_eq!(clf.labels(), &[7, 9]);
        assert!(clf.prototype(8).is_none());
        assert_eq!(clf.prototype(9).unwrap().as_slice(), &[10.0, 0.0]);
    }

    #[test]
    fn prototype_replacement() {
        let mut clf = two_class();
        clf.set_prototype(7, &Tensor::vector(&[100.0, 0.0])).unwrap();
        assert_eq!(clf.n_classes(), 2);
        let x = Tensor::from_rows(&[vec![1.0, 0.0]]).unwrap();
        assert_eq!(clf.classify(&x).unwrap(), vec![9]);
    }

    #[test]
    fn from_exemplars_uses_means() {
        let e0 = Tensor::from_rows(&[vec![0.0, 0.0], vec![2.0, 0.0]]).unwrap();
        let e1 = Tensor::from_rows(&[vec![10.0, 10.0]]).unwrap();
        let clf = NcmClassifier::from_exemplars(&[(0, &e0), (1, &e1)]).unwrap();
        assert_eq!(clf.prototype(0).unwrap().as_slice(), &[1.0, 0.0]);
        assert_eq!(clf.prototype(1).unwrap().as_slice(), &[10.0, 10.0]);
    }

    #[test]
    fn remove_class() {
        let mut clf = two_class();
        assert!(clf.remove(7));
        assert!(!clf.remove(7));
        assert_eq!(clf.n_classes(), 1);
        let x = Tensor::from_rows(&[vec![0.0, 0.0]]).unwrap();
        assert_eq!(clf.classify(&x).unwrap(), vec![9]);
    }

    #[test]
    fn empty_classifier_errors() {
        let clf = NcmClassifier::new(3);
        assert!(clf.classify(&Tensor::zeros([1, 3])).is_err());
    }

    #[test]
    fn classification_invariant_to_insertion_order() {
        let mut rng = Rng64::new(1);
        let protos: Vec<Tensor> =
            (0..4).map(|_| Tensor::randn([3], 0.0, 1.0, &mut rng)).collect();
        let mut a = NcmClassifier::new(3);
        let mut b = NcmClassifier::new(3);
        for (i, p) in protos.iter().enumerate() {
            a.set_prototype(i, p).unwrap();
        }
        for (i, p) in protos.iter().enumerate().rev() {
            b.set_prototype(i, p).unwrap();
        }
        let x = Tensor::randn([20, 3], 0.0, 2.0, &mut rng);
        assert_eq!(a.classify(&x).unwrap(), b.classify(&x).unwrap());
    }

    #[test]
    fn classify_with_distances_matches_per_row_calls() {
        let mut rng = Rng64::new(9);
        let mut clf = NcmClassifier::new(4);
        for label in [3, 11, 4] {
            clf.set_prototype(label, &Tensor::randn([4], 0.0, 1.0, &mut rng)).unwrap();
        }
        let x = Tensor::randn([13, 4], 0.0, 2.0, &mut rng);
        let batched = clf.classify_with_distances(&x).unwrap();
        assert_eq!(batched.len(), 13);
        for (i, &(label, dist)) in batched.iter().enumerate() {
            let row = Tensor::vector(x.row(i)).reshape([1, 4]).unwrap();
            let single = clf.classify_with_distances(&row).unwrap();
            assert_eq!(single.len(), 1);
            assert_eq!(single[0].0, label);
            // Bitwise, not approximate: the batched kernel computes each
            // output row independently.
            assert_eq!(single[0].1.to_bits(), dist.to_bits());
        }
    }

    #[test]
    fn distances_shape() {
        let clf = two_class();
        let x = Tensor::zeros([5, 2]);
        let d = clf.distances(&x).unwrap();
        assert_eq!(d.shape().dims(), &[5, 2]);
        assert_eq!(d.at(0, 0), 0.0);
        assert_eq!(d.at(0, 1), 100.0);
    }

    #[test]
    fn serde_round_trip() {
        let clf = two_class();
        let json = serde_json::to_string(&clf).unwrap();
        let back: NcmClassifier = serde_json::from_str(&json).unwrap();
        assert_eq!(back, clf);
    }
}
