//! The paper's two comparison strategies (§6.1.3).
//!
//! Both start from the *same* pre-trained model as PILOTE (the paper: "the
//! re-trained model and PILOTE in each scenario are based on the same
//! pre-trained model"):
//!
//! 1. **Pre-trained**: the embedding is frozen; the new class only gets a
//!    prototype computed from (randomly selected) new-class samples.
//! 2. **Re-trained**: the embedding is fine-tuned on the enriched support
//!    set (`D₀ ∪ Dₙ`) with the contrastive loss alone — no distillation —
//!    which is exactly PILOTE with `α = 0` and full pair sampling.

use crate::exemplar::SelectionStrategy;
use crate::pairs::PairScheme;
use crate::pilote::{train_embedding, Pilote, TrainOptions, TrainReport};
use pilote_har_data::Dataset;
use pilote_tensor::TensorError;

/// Pre-trained baseline: adds new-class prototypes to a frozen embedding.
///
/// `new_exemplar_budget` caps how many (randomly chosen) new-class samples
/// enter the support set; the embedding network is untouched.
pub fn pretrained_update(
    model: &mut Pilote,
    new_data: &Dataset,
    new_exemplar_budget: usize,
) -> Result<(), TensorError> {
    let mut rng = model.fork_rng();
    for label in new_data.classes() {
        let class = new_data.filter_classes(&[label])?;
        let chosen = crate::exemplar::select_exemplars(
            &model.embed(&class.features),
            new_exemplar_budget,
            SelectionStrategy::Random,
            &mut rng,
        )?;
        let features = class.features.select_rows(&chosen)?;
        model.support_mut().put_class(label, features);
    }
    model.refresh_prototypes()
}

/// Re-trained baseline: fine-tunes the embedding on `D₀ ∪ Dₙ` with the
/// contrastive loss only (no distillation), then stores new-class
/// exemplars and refreshes prototypes.
pub fn retrained_update(
    model: &mut Pilote,
    new_data: &Dataset,
    new_exemplar_budget: usize,
) -> Result<TrainReport, TensorError> {
    let d0 = model.support().to_dataset()?;
    let combined = d0.concat(new_data)?;
    let mut is_new = vec![false; d0.len()];
    is_new.extend(std::iter::repeat_n(true, new_data.len()));

    let cfg = model.config().clone();
    let mut rng = model.fork_rng();
    let opts = TrainOptions {
        alpha: 0.0,
        teacher: None,
        distill_rows: Vec::new(),
        scheme: PairScheme::Full,
        freeze_bn: true,
    };
    let report = train_embedding(model.net_mut(), &combined, &is_new, &cfg, opts, &mut rng)?;

    for label in new_data.classes() {
        let class = new_data.filter_classes(&[label])?;
        let chosen = crate::exemplar::select_exemplars(
            &model.embed(&class.features),
            new_exemplar_budget,
            SelectionStrategy::Random,
            &mut rng,
        )?;
        let features = class.features.select_rows(&chosen)?;
        model.support_mut().put_class(label, features);
    }
    model.refresh_prototypes()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PiloteConfig;
    use pilote_har_data::dataset::generate_features;
    use pilote_har_data::{Activity, Simulator};
    use pilote_tensor::Rng64;

    fn scenario() -> (Pilote, Dataset, Dataset) {
        let mut sim = Simulator::with_seed(21);
        let (all, _) = generate_features(
            &mut sim,
            &[
                (Activity::Still, 50),
                (Activity::Walk, 50),
                (Activity::Run, 50),
            ],
        )
        .unwrap();
        let mut rng = Rng64::new(2);
        let (train, test) = all.stratified_split(0.3, &mut rng).unwrap();
        let old = train
            .filter_classes(&[Activity::Still.label(), Activity::Walk.label()])
            .unwrap();
        let new = train.filter_classes(&[Activity::Run.label()]).unwrap();
        let cfg = PiloteConfig::fast_test(3);
        let (model, _) =
            Pilote::pretrain(cfg, &old, 15, SelectionStrategy::Herding).unwrap();
        (model, new, test)
    }

    #[test]
    fn pretrained_update_freezes_embedding() {
        let (model, new, _) = scenario();
        let mut m = model.clone_model();
        let probe = new.features.slice_rows(0, 3).unwrap();
        let before = m.embed(&probe);
        pretrained_update(&mut m, &new, 10).unwrap();
        let after = m.embed(&probe);
        assert!(before.max_abs_diff(&after).unwrap() < 1e-6, "embedding moved");
        assert_eq!(m.classifier().n_classes(), 3);
    }

    #[test]
    fn retrained_update_moves_embedding_and_learns() {
        let (model, new, test) = scenario();
        let mut m = model.clone_model();
        let probe = new.features.slice_rows(0, 3).unwrap();
        let before = m.embed(&probe);
        let report = retrained_update(&mut m, &new, 10).unwrap();
        assert!(!report.epochs.is_empty());
        let after = m.embed(&probe);
        assert!(before.max_abs_diff(&after).unwrap() > 1e-4, "embedding did not move");
        let run_test = test.filter_classes(&[Activity::Run.label()]).unwrap();
        assert!(m.accuracy(&run_test).unwrap() > 0.5);
    }

    #[test]
    fn budget_caps_new_exemplars() {
        let (model, new, _) = scenario();
        let mut m = model.clone_model();
        pretrained_update(&mut m, &new, 7).unwrap();
        assert_eq!(m.support().class(Activity::Run.label()).unwrap().rows(), 7);
    }
}
