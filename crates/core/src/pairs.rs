//! Contrastive pair construction.
//!
//! §5.2 of the paper reduces the pair budget during an edge update: with
//! `n_t` new samples, the contrastive term needs only the `C(n_t, 2)`
//! new×new pairs plus new×old pairs — old×old boundaries are already held
//! in place by the distillation loss. [`PairScheme::Reduced`] implements
//! that scheme; [`PairScheme::Full`] is the classic all-pairs sampling used
//! for cloud pre-training and by the re-trained baseline.
//!
//! Threading: [`PairSet::gather`] — the per-step hot path that materialises
//! the two feature batches — is band-parallel through
//! `Tensor::select_rows`. [`sample_pairs`], [`build_epoch_pairs`] and
//! [`PairSet::shuffle`] are *deliberately serial*: their output is defined
//! by the order of draws from a single [`Rng64`] stream, and any parallel
//! partition would change the stream and hence the experiment results (see
//! `docs/THREADING.md`).

use pilote_tensor::{Rng64, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Which pair population to sample from during an incremental update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PairScheme {
    /// All pairs over `D₀ ∪ Dₙ` (quadratic in the support set).
    Full,
    /// New×new and new×old pairs only (the §5.2 reduction).
    #[default]
    Reduced,
}

impl PairScheme {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PairScheme::Full => "full",
            PairScheme::Reduced => "reduced",
        }
    }
}

/// A batch of index pairs with similarity flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairSet {
    /// Left-hand row indices.
    pub a: Vec<usize>,
    /// Right-hand row indices.
    pub b: Vec<usize>,
    /// `similar[i]` ⇔ `labels[a[i]] == labels[b[i]]`.
    pub similar: Vec<bool>,
}

impl PairSet {
    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// Whether there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// Appends another pair set.
    pub fn extend(&mut self, other: PairSet) {
        self.a.extend(other.a);
        self.b.extend(other.b);
        self.similar.extend(other.similar);
    }

    /// Shuffles pairs in unison.
    pub fn shuffle(&mut self, rng: &mut Rng64) {
        for i in (1..self.len()).rev() {
            let j = rng.below(i + 1);
            self.a.swap(i, j);
            self.b.swap(i, j);
            self.similar.swap(i, j);
        }
    }

    /// The pair slice `[start, end)` as a new set.
    pub fn slice(&self, start: usize, end: usize) -> PairSet {
        PairSet {
            a: self.a[start..end].to_vec(),
            b: self.b[start..end].to_vec(),
            similar: self.similar[start..end].to_vec(),
        }
    }

    /// Gathers the two feature batches `(A, B)` for this pair set from a
    /// `[n, d]` feature matrix.
    pub fn gather(&self, features: &Tensor) -> Result<(Tensor, Tensor), TensorError> {
        Ok((features.select_rows(&self.a)?, features.select_rows(&self.b)?))
    }
}

/// Samples `pairs_per_anchor` partners for each anchor, aiming for a
/// 50/50 similar/dissimilar balance where the partner pool allows it.
///
/// * `labels` — label of every row in the dataset;
/// * `anchors` — row indices to anchor pairs on;
/// * `partners` — row indices eligible as the other pair member.
///
/// Self-pairs are excluded. If the pool lacks one polarity entirely (e.g.
/// all partners share the anchor's class), all pairs take the available
/// polarity.
pub fn sample_pairs(
    labels: &[usize],
    anchors: &[usize],
    partners: &[usize],
    pairs_per_anchor: usize,
    rng: &mut Rng64,
) -> PairSet {
    // Partition the partner pool by class once.
    let mut by_class: std::collections::BTreeMap<usize, Vec<usize>> = std::collections::BTreeMap::new();
    for &p in partners {
        by_class.entry(labels[p]).or_default().push(p);
    }
    let total_partners = partners.len();
    let mut out = PairSet::default();

    for &anchor in anchors {
        let ya = labels[anchor];
        let same = by_class.get(&ya).map_or(&[][..], |v| &v[..]);
        // Exclude the anchor itself from its own similar pool.
        let same_count = same.iter().filter(|&&p| p != anchor).count();
        let diff_count = total_partners - same.len();
        for k in 0..pairs_per_anchor {
            let want_similar = k % 2 == 0;
            let use_similar = match (same_count > 0, diff_count > 0) {
                (true, true) => want_similar,
                (true, false) => true,
                (false, true) => false,
                (false, false) => continue,
            };
            let partner = if use_similar {
                loop {
                    let cand = same[rng.below(same.len())];
                    if cand != anchor {
                        break cand;
                    }
                }
            } else {
                // Rejection-sample a different-class partner.
                loop {
                    let cand = partners[rng.below(total_partners)];
                    if labels[cand] != ya {
                        break cand;
                    }
                }
            };
            out.a.push(anchor);
            out.b.push(partner);
            out.similar.push(use_similar);
        }
    }
    out
}

/// Builds the epoch's pair population for an incremental update.
///
/// * `labels` — per-row labels of the combined `D₀ ∪ Dₙ` matrix;
/// * `is_new[i]` — whether row `i` belongs to the incoming new-class data;
/// * `pairs_per_anchor` — sampling density.
///
/// `Full` anchors every row against every row; `Reduced` anchors only the
/// new rows (new×new plus new×old), implementing §5.2.
pub fn build_epoch_pairs(
    labels: &[usize],
    is_new: &[bool],
    scheme: PairScheme,
    pairs_per_anchor: usize,
    rng: &mut Rng64,
) -> PairSet {
    assert_eq!(labels.len(), is_new.len(), "labels/is_new length mismatch");
    let all: Vec<usize> = (0..labels.len()).collect();
    let mut pairs = match scheme {
        PairScheme::Full => sample_pairs(labels, &all, &all, pairs_per_anchor, rng),
        PairScheme::Reduced => {
            let new_rows: Vec<usize> =
                all.iter().copied().filter(|&i| is_new[i]).collect();
            sample_pairs(labels, &new_rows, &all, pairs_per_anchor, rng)
        }
    };
    pairs.shuffle(rng);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_have_correct_similarity_flags() {
        let labels = vec![0, 0, 1, 1, 2];
        let all: Vec<usize> = (0..5).collect();
        let mut rng = Rng64::new(1);
        let ps = sample_pairs(&labels, &all, &all, 6, &mut rng);
        for i in 0..ps.len() {
            assert_eq!(ps.similar[i], labels[ps.a[i]] == labels[ps.b[i]]);
            assert_ne!(ps.a[i], ps.b[i], "self-pair produced");
        }
    }

    #[test]
    fn balance_is_roughly_half() {
        let labels: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let all: Vec<usize> = (0..100).collect();
        let mut rng = Rng64::new(2);
        let ps = sample_pairs(&labels, &all, &all, 10, &mut rng);
        let sim = ps.similar.iter().filter(|&&s| s).count();
        assert_eq!(sim * 2, ps.len());
    }

    #[test]
    fn singleton_class_anchor_gets_only_dissimilar() {
        let labels = vec![0, 1, 1, 1];
        let mut rng = Rng64::new(3);
        let ps = sample_pairs(&labels, &[0], &[0, 1, 2, 3], 4, &mut rng);
        assert_eq!(ps.len(), 4);
        assert!(ps.similar.iter().all(|&s| !s));
    }

    #[test]
    fn all_same_class_gets_only_similar() {
        let labels = vec![5, 5, 5];
        let mut rng = Rng64::new(4);
        let ps = sample_pairs(&labels, &[0, 1], &[0, 1, 2], 4, &mut rng);
        assert!(ps.similar.iter().all(|&s| s));
    }

    #[test]
    fn lone_sample_produces_no_pairs() {
        let labels = vec![0];
        let mut rng = Rng64::new(5);
        let ps = sample_pairs(&labels, &[0], &[0], 4, &mut rng);
        assert!(ps.is_empty());
    }

    #[test]
    fn reduced_scheme_anchors_only_new_rows() {
        let labels = vec![0, 0, 1, 1, 2, 2];
        let is_new = vec![false, false, false, false, true, true];
        let mut rng = Rng64::new(6);
        let ps = build_epoch_pairs(&labels, &is_new, PairScheme::Reduced, 6, &mut rng);
        assert!(!ps.is_empty());
        for i in 0..ps.len() {
            assert!(is_new[ps.a[i]], "reduced scheme anchored an old row");
        }
    }

    #[test]
    fn full_scheme_anchors_everything() {
        let labels = vec![0, 0, 1, 1];
        let is_new = vec![false, false, true, true];
        let mut rng = Rng64::new(7);
        let ps = build_epoch_pairs(&labels, &is_new, PairScheme::Full, 4, &mut rng);
        let anchored: std::collections::BTreeSet<usize> = ps.a.iter().copied().collect();
        assert_eq!(anchored.len(), 4);
    }

    #[test]
    fn reduced_is_smaller_than_full() {
        let labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let mut is_new = vec![false; 60];
        for m in is_new.iter_mut().take(60).skip(50) {
            *m = true;
        }
        let mut rng = Rng64::new(8);
        let full = build_epoch_pairs(&labels, &is_new, PairScheme::Full, 4, &mut rng);
        let reduced = build_epoch_pairs(&labels, &is_new, PairScheme::Reduced, 4, &mut rng);
        assert!(reduced.len() < full.len() / 3);
    }

    #[test]
    fn gather_and_slice_round_trip() {
        let features =
            Tensor::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let ps = PairSet { a: vec![0, 2], b: vec![3, 1], similar: vec![false, true] };
        let (a, b) = ps.gather(&features).unwrap();
        assert_eq!(a.as_slice(), &[0.0, 2.0]);
        assert_eq!(b.as_slice(), &[3.0, 1.0]);
        let s = ps.slice(1, 2);
        assert_eq!(s.a, vec![2]);
        assert_eq!(s.similar, vec![true]);
    }

    #[test]
    fn shuffle_preserves_pairings() {
        let labels = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let all: Vec<usize> = (0..8).collect();
        let mut rng = Rng64::new(9);
        let mut ps = sample_pairs(&labels, &all, &all, 4, &mut rng);
        let before: std::collections::BTreeSet<(usize, usize, bool)> = (0..ps.len())
            .map(|i| (ps.a[i], ps.b[i], ps.similar[i]))
            .collect();
        ps.shuffle(&mut rng);
        let after: std::collections::BTreeSet<(usize, usize, bool)> =
            (0..ps.len()).map(|i| (ps.a[i], ps.b[i], ps.similar[i])).collect();
        assert_eq!(before, after);
        for i in 0..ps.len() {
            assert_eq!(ps.similar[i], labels[ps.a[i]] == labels[ps.b[i]]);
        }
    }
}
