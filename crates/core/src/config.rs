//! Hyper-parameter configuration.

use pilote_har_data::FEATURE_DIM;
use pilote_nn::loss::ContrastiveForm;
use serde::{Deserialize, Serialize};

/// Architecture of the embedding network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Input dimensionality (the feature-extractor width).
    pub input_dim: usize,
    /// Hidden layer widths (each followed by BatchNorm + ReLU).
    pub hidden: Vec<usize>,
    /// Embedding dimensionality (the final projection, no activation).
    pub embedding_dim: usize,
}

impl NetConfig {
    /// The paper's backbone (§6.1.2): FC `[1024 × 512 × 128 × 64 × 128]`
    /// over the 80 statistical features, BatchNorm + ReLU on the first
    /// four layers, 128-d embedding output.
    pub fn paper() -> Self {
        NetConfig { input_dim: FEATURE_DIM, hidden: vec![1024, 512, 128, 64], embedding_dim: 128 }
    }

    /// A compact backbone for unit tests and debug builds (same topology,
    /// ~50× fewer parameters).
    pub fn small() -> Self {
        NetConfig { input_dim: FEATURE_DIM, hidden: vec![64, 32], embedding_dim: 16 }
    }
}

/// Full PILOTE hyper-parameter set, defaulting to the paper's §6.1.2
/// settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiloteConfig {
    /// Network architecture.
    pub net: NetConfig,
    /// Balancing weight α between distillation and contrastive terms
    /// (paper: 0.5).
    pub alpha: f32,
    /// Contrastive margin `m` of Eq. 2.
    pub margin: f32,
    /// Which dissimilar-pair penalty to use.
    pub contrastive_form: ContrastiveForm,
    /// Initial learning rate (paper: 0.01, halved every epoch).
    pub initial_lr: f32,
    /// Epochs between LR halvings (paper: 1 — the edge schedule; cloud
    /// pre-training uses a slower decay to reach convergence).
    pub lr_halve_every: usize,
    /// Per-batch cap on distillation rows (stochastic distillation keeps
    /// the edge update cheap when `D₀` is large).
    pub distill_batch: usize,
    /// Hard cap on training epochs.
    pub max_epochs: usize,
    /// Contrastive pairs per mini-batch.
    pub pair_batch: usize,
    /// Number of pairs sampled per epoch per anchor sample (controls
    /// epoch size; the reduced scheme of §5.2 bounds the total).
    pub pairs_per_sample: usize,
    /// Validation fraction (paper: 0.2).
    pub val_fraction: f32,
    /// Early-stop threshold on |Δ val-loss| (paper: 1e-4).
    pub early_stop_threshold: f32,
    /// Early-stop patience in epochs (paper: 5).
    pub early_stop_patience: usize,
    /// RNG seed for initialisation, shuffling and pair sampling.
    pub seed: u64,
}

impl Default for PiloteConfig {
    fn default() -> Self {
        PiloteConfig {
            net: NetConfig::paper(),
            alpha: 0.5,
            margin: 4.0,
            contrastive_form: ContrastiveForm::SquaredMargin,
            initial_lr: 0.01,
            lr_halve_every: 1,
            distill_batch: 256,
            max_epochs: 20,
            pair_batch: 256,
            pairs_per_sample: 8,
            val_fraction: 0.2,
            early_stop_threshold: 1e-4,
            early_stop_patience: 5,
            seed: 0,
        }
    }
}

impl PiloteConfig {
    /// The paper's configuration with a given seed.
    pub fn paper(seed: u64) -> Self {
        PiloteConfig { seed, ..PiloteConfig::default() }
    }

    /// A fast configuration for unit tests: small network, few epochs.
    pub fn fast_test(seed: u64) -> Self {
        PiloteConfig {
            net: NetConfig::small(),
            max_epochs: 6,
            pair_batch: 64,
            pairs_per_sample: 4,
            seed,
            ..PiloteConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_net_matches_section_6_1_2() {
        let net = NetConfig::paper();
        assert_eq!(net.input_dim, 80);
        assert_eq!(net.hidden, vec![1024, 512, 128, 64]);
        assert_eq!(net.embedding_dim, 128);
    }

    #[test]
    fn default_config_matches_paper_text() {
        let cfg = PiloteConfig::default();
        assert_eq!(cfg.alpha, 0.5);
        assert_eq!(cfg.initial_lr, 0.01);
        assert_eq!(cfg.val_fraction, 0.2);
        assert_eq!(cfg.early_stop_threshold, 1e-4);
        assert_eq!(cfg.early_stop_patience, 5);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = PiloteConfig::paper(7);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: PiloteConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
