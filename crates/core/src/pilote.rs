//! The PILOTE incremental learner (Algorithm 1).
//!
//! Lifecycle:
//!
//! 1. **Cloud pre-training** ([`Pilote::pretrain`]): train the embedding
//!    network on the old classes with the supervised contrastive loss,
//!    then select per-class exemplar support sets by herding (lines 1–7).
//! 2. **Edge update** ([`Pilote::learn_new_class`]): freeze a teacher copy,
//!    combine the support set `D₀` with the new-class samples `Dₙ`, and
//!    optimise `L = α·L_disti + (1 − α)·L_contra` (lines 8–12) with the
//!    reduced pair scheme of §5.2. Finally store new-class exemplars and
//!    refresh all prototypes under the updated embedding.
//! 3. **Inference** ([`Pilote::predict`]): NCM over the support-set
//!    prototypes (Eq. 1).

use crate::config::PiloteConfig;
use crate::embedding::EmbeddingNet;
use crate::exemplar::{select_exemplars, SelectionStrategy};
use crate::ncm::NcmClassifier;
use crate::pairs::{build_epoch_pairs, PairScheme, PairSet};
use pilote_har_data::Dataset;
use pilote_nn::loss::{contrastive_pair_loss, distillation_loss};
use pilote_nn::sched::{LrSchedule, StepLr};
use pilote_nn::train::train_val_split;
use pilote_nn::{Adam, EarlyStopper, EpochStats, Optimizer};
use pilote_tensor::{Rng64, Tensor, TensorError};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Per-class exemplar storage, rows kept in *selection order* so that a
/// budget shrink (new class arriving under a fixed cache size `K`) keeps
/// the best prefix — valid for herding, whose prefixes are themselves
/// herding selections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupportSet {
    classes: Vec<(usize, Tensor)>,
}

impl SupportSet {
    /// Empty support set.
    pub fn new() -> Self {
        SupportSet { classes: Vec::new() }
    }

    /// Selects `m` exemplars per class from `data` under the current
    /// embedding, using the given strategy.
    pub fn select_from(
        data: &Dataset,
        net: &mut EmbeddingNet,
        m: usize,
        strategy: SelectionStrategy,
        rng: &mut Rng64,
    ) -> Result<SupportSet, TensorError> {
        // The span's flops field is the deterministic cost of exemplar
        // selection (embedding forward + herding distance sweeps).
        let span = pilote_obs::span("core.support.select");
        span.annotate("classes", data.classes().len() as f64);
        span.annotate("per_class", m as f64);
        let mut out = SupportSet::new();
        for label in data.classes() {
            let class = data.filter_classes(&[label])?;
            let embeddings = net.embed(&class.features);
            let chosen = select_exemplars(&embeddings, m, strategy, rng)?;
            out.put_class(label, class.features.select_rows(&chosen)?);
        }
        Ok(out)
    }

    /// Inserts or replaces the exemplars of a class (rows must already be
    /// in selection order).
    pub fn put_class(&mut self, label: usize, features: Tensor) {
        match self.classes.iter_mut().find(|(l, _)| *l == label) {
            Some((_, f)) => *f = features,
            None => self.classes.push((label, features)),
        }
    }

    /// Exemplar features of a class.
    pub fn class(&self, label: usize) -> Option<&Tensor> {
        self.classes.iter().find(|(l, _)| *l == label).map(|(_, f)| f)
    }

    /// Labels with stored exemplars, in insertion order.
    pub fn labels(&self) -> Vec<usize> {
        self.classes.iter().map(|(l, _)| *l).collect()
    }

    /// Total number of stored exemplars.
    pub fn len(&self) -> usize {
        self.classes.iter().map(|(_, f)| f.rows()).sum()
    }

    /// Whether no exemplars are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keeps only the first `m` exemplars of every class (the prefix
    /// property of herding makes this the correct shrink under a fixed
    /// cache size `K`: `m = K / (s − 1)`, Algorithm 1 line 1).
    pub fn shrink_per_class(&mut self, m: usize) {
        for (_, f) in &mut self.classes {
            let keep = m.min(f.rows());
            *f = f.slice_rows(0, keep).expect("keep ≤ rows");
        }
    }

    /// Flattens the support set into a labelled dataset (`D₀`).
    pub fn to_dataset(&self) -> Result<Dataset, TensorError> {
        if self.classes.is_empty() {
            return Ok(Dataset::empty());
        }
        let tensors: Vec<&Tensor> = self.classes.iter().map(|(_, f)| f).collect();
        let features = Tensor::vstack(&tensors)?;
        let mut labels = Vec::with_capacity(self.len());
        for (label, f) in &self.classes {
            labels.extend(std::iter::repeat_n(*label, f.rows()));
        }
        Dataset::new(features, labels)
    }
}

impl Default for SupportSet {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of one training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Whether the early stopper fired before `max_epochs`.
    pub stopped_early: bool,
    /// Optimizer steps skipped by the non-finite guard (NaN/Inf loss or
    /// gradient — see `docs/RESILIENCE.md`, tier 2).
    pub skipped_steps: u64,
}

impl TrainReport {
    /// Total wall-clock seconds across epochs.
    pub fn total_seconds(&self) -> f64 {
        self.epochs.iter().map(|e| e.seconds).sum()
    }

    /// Final training loss (NaN if no epochs ran).
    pub fn final_train_loss(&self) -> f32 {
        self.epochs.last().map_or(f32::NAN, |e| e.train_loss)
    }
}

/// Options for the shared embedding-training routine.
pub struct TrainOptions<'a> {
    /// Balancing weight α (0 disables distillation entirely).
    pub alpha: f32,
    /// Frozen teacher network; required when `alpha > 0`.
    pub teacher: Option<&'a mut EmbeddingNet>,
    /// Rows of the combined dataset to distil on (the old-class exemplars
    /// `D₀`); ignored when `alpha == 0`.
    pub distill_rows: Vec<usize>,
    /// Pair population scheme.
    pub scheme: PairScheme,
    /// Freeze batch-norm statistics: forward passes normalise with the
    /// (pre-trained) running statistics instead of batch statistics, and
    /// the running estimates are not updated. Essential for edge updates —
    /// pair batches are dominated by the new class, and letting them drag
    /// the BN statistics silently shifts every old-class embedding out
    /// from under the distillation anchor.
    pub freeze_bn: bool,
}

/// Trains `net` on `data` with the joint PILOTE objective.
///
/// `is_new[i]` marks rows of `data` belonging to the incoming new-class
/// batch (`Dₙ`); for plain pre-training pass all-`false` with
/// [`PairScheme::Full`].
pub fn train_embedding(
    net: &mut EmbeddingNet,
    data: &Dataset,
    is_new: &[bool],
    cfg: &PiloteConfig,
    opts: TrainOptions<'_>,
    rng: &mut Rng64,
) -> Result<TrainReport, TensorError> {
    assert_eq!(data.len(), is_new.len(), "is_new must cover every row");
    assert!(
        opts.alpha == 0.0 || opts.teacher.is_some(),
        "distillation (alpha > 0) requires a teacher network"
    );
    let mut report = TrainReport::default();
    if data.len() < 2 {
        return Ok(report);
    }

    // ---- validation split over rows -----------------------------------
    let (train_rows, val_rows) = train_val_split(data.len(), cfg.val_fraction, rng);
    let train_labels: Vec<usize> = train_rows.iter().map(|&i| data.labels[i]).collect();
    let train_is_new: Vec<bool> = train_rows.iter().map(|&i| is_new[i]).collect();

    // Fixed validation pair set (stable loss across epochs).
    let val_labels: Vec<usize> = val_rows.iter().map(|&i| data.labels[i]).collect();
    let val_is_new: Vec<bool> = val_rows.iter().map(|&i| is_new[i]).collect();
    let val_pairs_local =
        build_epoch_pairs(&val_labels, &val_is_new, opts.scheme, cfg.pairs_per_sample, rng);
    let val_pairs = PairSet {
        a: val_pairs_local.a.iter().map(|&i| val_rows[i]).collect(),
        b: val_pairs_local.b.iter().map(|&i| val_rows[i]).collect(),
        similar: val_pairs_local.similar,
    };

    // ---- teacher embeddings for the distillation anchor ----------------
    let distill_features = if opts.alpha > 0.0 && !opts.distill_rows.is_empty() {
        Some(data.features.select_rows(&opts.distill_rows)?)
    } else {
        None
    };
    let teacher_embeddings = match (&distill_features, opts.teacher) {
        (Some(df), Some(teacher)) => Some(teacher.embed(df)),
        _ => None,
    };

    let mut optimizer = Adam::new();
    let schedule = StepLr {
        initial: cfg.initial_lr,
        step_size: cfg.lr_halve_every.max(1),
        gamma: 0.5,
    };
    let mut stopper = EarlyStopper::new(cfg.early_stop_threshold, cfg.early_stop_patience);
    // Eval-style BN (frozen statistics) still backpropagates through γ/β.
    let forward_mode = if opts.freeze_bn { pilote_nn::Mode::Eval } else { pilote_nn::Mode::Train };

    for epoch in 0..cfg.max_epochs {
        let started = Instant::now();
        let lr = schedule.lr_at(epoch);

        // Fresh pair population each epoch (indices local to train_rows).
        let pairs_local =
            build_epoch_pairs(&train_labels, &train_is_new, opts.scheme, cfg.pairs_per_sample, rng);
        if pairs_local.is_empty() {
            break;
        }
        let mut loss_sum = 0.0f64;
        // Weighted components of the joint objective, tracked separately
        // so telemetry can report the distill-vs-contrastive split
        // (`(1−α)·L_contra` and `α·L_disti` sum to the train loss).
        let mut contra_sum = 0.0f64;
        let mut distill_sum = 0.0f64;
        let mut batches = 0usize;
        let mut start = 0usize;
        while start < pairs_local.len() {
            let end = (start + cfg.pair_batch).min(pairs_local.len());
            let batch = pairs_local.slice(start, end);
            start = end;

            // Map local indices to dataset rows and gather features.
            let rows_a: Vec<usize> = batch.a.iter().map(|&i| train_rows[i]).collect();
            let rows_b: Vec<usize> = batch.b.iter().map(|&i| train_rows[i]).collect();
            let fa = data.features.select_rows(&rows_a)?;
            let fb = data.features.select_rows(&rows_b)?;

            net.zero_grad();

            // Siamese forward: both branches share weights, so stack into
            // one batch (also gives BatchNorm a well-mixed batch).
            let stacked = Tensor::vstack(&[&fa, &fb])?;
            let emb = net.forward_mode(&stacked, forward_mode);
            let n_pairs = batch.len();
            let ea = emb.slice_rows(0, n_pairs)?;
            let eb = emb.slice_rows(n_pairs, 2 * n_pairs)?;
            let (c_loss, ga, gb) =
                contrastive_pair_loss(&ea, &eb, &batch.similar, cfg.margin, cfg.contrastive_form)?;
            let contrastive_weight = 1.0 - opts.alpha;
            let grad = Tensor::vstack(&[&ga.scale(contrastive_weight), &gb.scale(contrastive_weight)])?;
            net.backward(&grad);
            let mut batch_loss = contrastive_weight * c_loss;
            let batch_contra = contrastive_weight * c_loss;
            let mut batch_distill = 0.0f32;

            // Distillation branch: separate forward/backward accumulates
            // into the same parameter gradients before the optimizer step.
            // When D₀ is larger than `distill_batch`, a random subset is
            // distilled each step (stochastic distillation) — same
            // expected gradient, much cheaper forward.
            if let (Some(df), Some(te)) = (&distill_features, &teacher_embeddings) {
                let n0 = df.rows();
                let (df_b, te_b);
                let (dfr, ter) = if n0 > cfg.distill_batch {
                    let subset = rng.sample_indices(n0, cfg.distill_batch);
                    df_b = df.select_rows(&subset)?;
                    te_b = te.select_rows(&subset)?;
                    (&df_b, &te_b)
                } else {
                    (df, te)
                };
                let student = net.forward_mode(dfr, forward_mode);
                let (d_loss, d_grad) = distillation_loss(&student, ter)?;
                net.backward(&d_grad.scale(opts.alpha));
                batch_loss += opts.alpha * d_loss;
                batch_distill = opts.alpha * d_loss;
            }

            // Non-finite guard: a NaN/Inf loss or gradient (corrupted
            // inputs, exploding step) must skip the step — applying it
            // once makes every later prediction NaN.
            if !batch_loss.is_finite() || !pilote_nn::grads_finite(net.layers_mut()) {
                report.skipped_steps += 1;
                pilote_obs::counter("core.train.skipped_steps").inc();
                continue;
            }
            optimizer.step(net.layers_mut(), lr);
            loss_sum += batch_loss as f64;
            contra_sum += batch_contra as f64;
            distill_sum += batch_distill as f64;
            batches += 1;
        }

        // ---- validation loss (eval mode, fixed pairs) -------------------
        let val_loss = if val_pairs.is_empty() {
            None
        } else {
            let (va, vb) = val_pairs.gather(&data.features)?;
            let ea = net.embed(&va);
            let eb = net.embed(&vb);
            let (c_loss, _, _) =
                contrastive_pair_loss(&ea, &eb, &val_pairs.similar, cfg.margin, cfg.contrastive_form)?;
            let mut v = (1.0 - opts.alpha) * c_loss;
            if let (Some(df), Some(te)) = (&distill_features, &teacher_embeddings) {
                let student = net.embed(df);
                let (d_loss, _) = distillation_loss(&student, te)?;
                v += opts.alpha * d_loss;
            }
            Some(v)
        };

        report.epochs.push(EpochStats {
            epoch,
            train_loss: (loss_sum / batches.max(1) as f64) as f32,
            val_loss,
            lr,
            seconds: started.elapsed().as_secs_f64(),
        });

        if pilote_obs::enabled() {
            let denom = batches.max(1) as f64;
            pilote_obs::gauge("core.train.loss_contrastive").set(contra_sum / denom);
            pilote_obs::gauge("core.train.loss_distill").set(distill_sum / denom);
            // Gradients still hold the epoch's final applied step.
            let gn = pilote_nn::grad_norm(net.layers_mut());
            let stats = report.epochs.last().expect("just pushed");
            pilote_nn::observe_epoch(stats, Some(gn));
        }

        if let Some(v) = val_loss {
            if stopper.observe(v) {
                report.stopped_early = true;
                break;
            }
        }
    }
    Ok(report)
}

/// Stages of the edge update, in execution order — the kill-points a
/// crash schedule (`pilote_edge_sim::faults::CrashPlan`) can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateStage {
    /// The embedding finished training; exemplars and prototypes are
    /// still the pre-update ones.
    Trained,
    /// New-class exemplars were stored; prototypes are still stale.
    ExemplarsStored,
}

impl UpdateStage {
    /// All kill-points, in execution order. `CrashPlan::next_kill` draws
    /// an index into this list.
    pub const ALL: [UpdateStage; 2] = [UpdateStage::Trained, UpdateStage::ExemplarsStored];
}

/// Result of an interruptible edge update.
#[derive(Debug, Clone)]
pub enum UpdateOutcome {
    /// The update ran to completion.
    Completed(TrainReport),
    /// A kill-point fired; the learner is in the inconsistent state left
    /// after the named stage.
    Interrupted(UpdateStage),
}

/// The PILOTE model: embedding network + exemplar support set + NCM
/// classifier.
pub struct Pilote {
    cfg: PiloteConfig,
    net: EmbeddingNet,
    support: SupportSet,
    classifier: NcmClassifier,
    rng: Rng64,
    /// Monotonic counter bumped every time the classifier is rebuilt
    /// ([`Pilote::refresh_prototypes`]) — every commit point of the model
    /// lifecycle (pre-train, incremental update, rollback, federated
    /// install) ends there, so external prototype caches can compare
    /// generations instead of tensors to detect staleness.
    generation: u64,
}

impl Pilote {
    /// Cloud phase: trains the embedding on `data` (the old classes) with
    /// the full-pair contrastive loss, then selects `exemplars_per_class`
    /// support exemplars per class with `strategy`.
    pub fn pretrain(
        cfg: PiloteConfig,
        data: &Dataset,
        exemplars_per_class: usize,
        strategy: SelectionStrategy,
    ) -> Result<(Pilote, TrainReport), TensorError> {
        let span = pilote_obs::span("core.pretrain");
        span.annotate("samples", data.len() as f64);
        let mut rng = Rng64::new(cfg.seed);
        let mut net = EmbeddingNet::new(cfg.net.clone(), &mut rng);
        let is_new = vec![false; data.len()];
        let opts = TrainOptions {
            alpha: 0.0,
            teacher: None,
            distill_rows: Vec::new(),
            scheme: PairScheme::Full,
            freeze_bn: false,
        };
        let report = {
            let _train = pilote_obs::span("core.pretrain.train");
            train_embedding(&mut net, data, &is_new, &cfg, opts, &mut rng)?
        };
        let support =
            SupportSet::select_from(data, &mut net, exemplars_per_class, strategy, &mut rng)?;
        let mut model = Pilote {
            cfg,
            net,
            support,
            classifier: NcmClassifier::new(0),
            rng,
            generation: 0,
        };
        model.refresh_prototypes()?;
        Ok((model, report))
    }

    /// Builds a model directly from parts (used by the baselines to share
    /// one pre-trained starting point across comparisons).
    pub fn from_parts(cfg: PiloteConfig, net: EmbeddingNet, support: SupportSet, rng: Rng64) -> Result<Pilote, TensorError> {
        let mut model =
            Pilote { cfg, net, support, classifier: NcmClassifier::new(0), rng, generation: 0 };
        model.refresh_prototypes()?;
        Ok(model)
    }

    /// Deep copy (shared pre-trained starting point for baselines).
    pub fn clone_model(&self) -> Pilote {
        Pilote {
            cfg: self.cfg.clone(),
            net: self.net.clone_frozen(),
            support: self.support.clone(),
            classifier: self.classifier.clone(),
            rng: self.rng.clone(),
            generation: self.generation,
        }
    }

    /// Edge phase (Algorithm 1, lines 8–13): learns the classes present in
    /// `new_data` with the joint distillation + contrastive objective,
    /// stores up to `new_exemplar_budget` exemplars for each new class
    /// (random selection, per §6.4), and refreshes all prototypes.
    pub fn learn_new_class(
        &mut self,
        new_data: &Dataset,
        new_exemplar_budget: usize,
    ) -> Result<TrainReport, TensorError> {
        match self.learn_new_class_interruptible(new_data, new_exemplar_budget, None)? {
            UpdateOutcome::Completed(report) => Ok(report),
            UpdateOutcome::Interrupted(_) => unreachable!("no kill-point was requested"),
        }
    }

    /// [`Pilote::learn_new_class`] with an optional kill-point: when
    /// `kill` is `Some(stage)`, the update stops *after* that stage
    /// completes but before the next one begins — simulating a process
    /// crash (power loss, OOM-kill) mid-update.
    ///
    /// An interrupted update leaves the learner **inconsistent on
    /// purpose** (mutated embedding, stale or missing prototypes); callers
    /// own recovery, normally by restoring a pre-update
    /// [`pilote_nn::Checkpoint`] + support-set snapshot (see
    /// `EdgeDevice::update_faulted` in `pilote-magneto`).
    pub fn learn_new_class_interruptible(
        &mut self,
        new_data: &Dataset,
        new_exemplar_budget: usize,
        kill: Option<UpdateStage>,
    ) -> Result<UpdateOutcome, TensorError> {
        let span = pilote_obs::span("core.update");
        span.annotate("new_samples", new_data.len() as f64);
        let d0 = self.support.to_dataset()?;
        let combined = d0.concat(new_data)?;
        let mut is_new = vec![false; d0.len()];
        is_new.extend(std::iter::repeat_n(true, new_data.len()));
        let distill_rows: Vec<usize> = (0..d0.len()).collect();

        let mut teacher = self.net.clone_frozen();
        let alpha = self.cfg.alpha;
        let mut cfg = self.cfg.clone();
        // §5.2: the reduced scheme anchors only the nₜ new samples, so the
        // pair population shrinks from t·Σ_y C(n_y,2) to C(nₜ,2) + nₜ·|D₀|.
        // Spend part of that saving on pair density — 4× per anchor still
        // keeps the total below the full scheme's.
        cfg.pairs_per_sample = cfg.pairs_per_sample.saturating_mul(4);
        let opts = TrainOptions {
            alpha,
            teacher: Some(&mut teacher),
            distill_rows,
            scheme: PairScheme::Reduced,
            freeze_bn: true,
        };
        let report = {
            let _train = pilote_obs::span("core.update.train");
            train_embedding(&mut self.net, &combined, &is_new, &cfg, opts, &mut self.rng)?
        };
        if kill == Some(UpdateStage::Trained) {
            return Ok(UpdateOutcome::Interrupted(UpdateStage::Trained));
        }

        // Store new-class exemplars (random subset of the incoming data,
        // as in §6.4) and refresh prototypes under the updated embedding.
        {
            let _exemplars = pilote_obs::span("core.update.exemplars");
            for label in new_data.classes() {
                let class = new_data.filter_classes(&[label])?;
                let embeddings = self.net.embed(&class.features);
                let chosen = select_exemplars(
                    &embeddings,
                    new_exemplar_budget,
                    SelectionStrategy::Random,
                    &mut self.rng,
                )?;
                self.support.put_class(label, class.features.select_rows(&chosen)?);
            }
        }
        if kill == Some(UpdateStage::ExemplarsStored) {
            return Ok(UpdateOutcome::Interrupted(UpdateStage::ExemplarsStored));
        }
        {
            let _prototypes = pilote_obs::span("core.update.prototypes");
            self.refresh_prototypes()?;
        }
        Ok(UpdateOutcome::Completed(report))
    }

    /// Recomputes every class prototype from the support set under the
    /// current embedding, and bumps the model [`Pilote::generation`] so
    /// prototype caches built against the previous classifier invalidate.
    pub fn refresh_prototypes(&mut self) -> Result<(), TensorError> {
        let mut clf = NcmClassifier::new(self.cfg.net.embedding_dim);
        for label in self.support.labels() {
            let features = self.support.class(label).expect("label from labels()");
            let embeddings = self.net.embed(features);
            clf.set_prototype_from(label, &embeddings)?;
        }
        self.classifier = clf;
        self.generation = self.generation.wrapping_add(1);
        Ok(())
    }

    /// The model generation: incremented on every
    /// [`Pilote::refresh_prototypes`]. Two equal generations on the same
    /// model guarantee the classifier (labels and prototype tensors) is
    /// unchanged, which is what serving-side prototype caches key on.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Installs an externally supplied classifier — labels plus a
    /// `[classes, d]` prototype matrix — replacing the current one and
    /// bumping the [`Pilote::generation`] so serving caches invalidate.
    ///
    /// This is the deploy-path counterpart of
    /// [`Pilote::refresh_prototypes`]: where refresh recomputes prototypes
    /// from local exemplars, install accepts the exact values a deployment
    /// shipped (possibly quantised), so the device serves from what came
    /// over the wire rather than a cleaner local reconstruction.
    pub fn install_prototypes(
        &mut self,
        labels: Vec<usize>,
        prototypes: Tensor,
    ) -> Result<(), TensorError> {
        self.classifier = NcmClassifier::from_prototypes(labels, prototypes)?;
        self.generation = self.generation.wrapping_add(1);
        Ok(())
    }

    /// Classifies a `[n, input_dim]` feature batch.
    pub fn predict(&mut self, features: &Tensor) -> Result<Vec<usize>, TensorError> {
        let embeddings = self.net.embed(features);
        self.classifier.classify(&embeddings)
    }

    /// Batched serving entry point: one embedding forward and one pairwise
    /// distance kernel for the whole `[n, input_dim]` batch, returning
    /// `(label, squared distance to the winning prototype)` per row.
    ///
    /// Bitwise-identical to classifying each row in its own `[1, d]` call
    /// (every kernel computes each output row independently of its batch
    /// neighbours — see `docs/FLEET.md`). The distance stage is the fused
    /// packed-GEMM + squared-distance epilogue of `docs/KERNELS.md`, so
    /// serving cost is one GEMM per batch, not a GEMM plus a full `[n,
    /// classes]` combine sweep.
    pub fn classify_batch(&mut self, features: &Tensor) -> Result<Vec<(usize, f32)>, TensorError> {
        let embeddings = self.net.embed(features);
        self.classifier.classify_with_distances(&embeddings)
    }

    /// Accuracy on a labelled dataset.
    pub fn accuracy(&mut self, data: &Dataset) -> Result<f32, TensorError> {
        let pred = self.predict(&data.features)?;
        Ok(crate::metrics::accuracy(&pred, &data.labels))
    }

    /// The configuration in force.
    pub fn config(&self) -> &PiloteConfig {
        &self.cfg
    }

    /// Mutable configuration access (e.g. for α ablations between phases).
    pub fn config_mut(&mut self) -> &mut PiloteConfig {
        &mut self.cfg
    }

    /// The exemplar support set.
    pub fn support(&self) -> &SupportSet {
        &self.support
    }

    /// Mutable support set (edge cache management); call
    /// [`Pilote::refresh_prototypes`] afterwards.
    pub fn support_mut(&mut self) -> &mut SupportSet {
        &mut self.support
    }

    /// The embedding network.
    pub fn net_mut(&mut self) -> &mut EmbeddingNet {
        &mut self.net
    }

    /// The NCM classifier.
    pub fn classifier(&self) -> &NcmClassifier {
        &self.classifier
    }

    /// Embeds features under the current model (inference mode).
    pub fn embed(&mut self, features: &Tensor) -> Tensor {
        self.net.embed(features)
    }

    /// Forked RNG for auxiliary sampling that must not perturb the model's
    /// own stream.
    pub fn fork_rng(&mut self) -> Rng64 {
        self.rng.fork()
    }

    /// Re-seeds the model's RNG stream. Used by the experiment harness so
    /// that repetition rounds cloned from one pre-trained model draw
    /// independent pair samples and exemplar subsets.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = Rng64::new(seed);
    }
}

impl std::fmt::Debug for Pilote {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pilote")
            .field("classes", &self.classifier.labels())
            .field("support_len", &self.support.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_har_data::dataset::generate_features;
    use pilote_har_data::{Activity, Simulator};

    fn tiny_scenario() -> (Dataset, Dataset, Dataset) {
        // Old classes: Still, Walk, Drive; new class: Run.
        let mut sim = Simulator::with_seed(11);
        let (all, _) = generate_features(
            &mut sim,
            &[
                (Activity::Still, 60),
                (Activity::Walk, 60),
                (Activity::Drive, 60),
                (Activity::Run, 60),
            ],
        )
        .unwrap();
        let mut rng = Rng64::new(1);
        let (train, test) = all.stratified_split(0.3, &mut rng).unwrap();
        let old = train
            .filter_classes(&[
                Activity::Still.label(),
                Activity::Walk.label(),
                Activity::Drive.label(),
            ])
            .unwrap();
        let new = train.filter_classes(&[Activity::Run.label()]).unwrap();
        (old, new, test)
    }

    #[test]
    fn support_set_round_trip() {
        let mut s = SupportSet::new();
        s.put_class(3, Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap());
        s.put_class(1, Tensor::from_rows(&[vec![5.0, 6.0]]).unwrap());
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels(), vec![3, 1]);
        let ds = s.to_dataset().unwrap();
        assert_eq!(ds.labels, vec![3, 3, 1]);
        // replacement
        s.put_class(1, Tensor::from_rows(&[vec![7.0, 8.0], vec![9.0, 0.0]]).unwrap());
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn support_set_shrink_keeps_prefix() {
        let mut s = SupportSet::new();
        s.put_class(0, Tensor::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap());
        s.shrink_per_class(2);
        assert_eq!(s.class(0).unwrap().as_slice(), &[0.0, 1.0]);
        s.shrink_per_class(10); // no-op when larger
        assert_eq!(s.class(0).unwrap().rows(), 2);
    }

    #[test]
    fn pretrain_learns_separable_classes() {
        let (old, _, test) = tiny_scenario();
        let cfg = PiloteConfig::fast_test(5);
        let (mut model, report) =
            Pilote::pretrain(cfg, &old, 20, SelectionStrategy::Herding).unwrap();
        assert!(!report.epochs.is_empty());
        let old_test = test
            .filter_classes(&[
                Activity::Still.label(),
                Activity::Walk.label(),
                Activity::Drive.label(),
            ])
            .unwrap();
        let acc = model.accuracy(&old_test).unwrap();
        assert!(acc > 0.7, "pre-trained accuracy {acc}");
        assert_eq!(model.classifier().n_classes(), 3);
    }

    #[test]
    fn install_prototypes_replaces_classifier_and_bumps_generation() {
        let (old, _, test) = tiny_scenario();
        let cfg = PiloteConfig::fast_test(5);
        let (mut model, _) = Pilote::pretrain(cfg, &old, 20, SelectionStrategy::Herding).unwrap();
        let before = model.generation();
        let labels = model.classifier().labels().to_vec();
        let protos = model.classifier().prototype_matrix().clone();
        // Re-installing the exact matrix keeps predictions and bumps the
        // generation (caches must invalidate even on an identical install).
        model.install_prototypes(labels.clone(), protos.clone()).unwrap();
        assert_eq!(model.generation(), before + 1);
        let old_test = test
            .filter_classes(&[
                Activity::Still.label(),
                Activity::Walk.label(),
                Activity::Drive.label(),
            ])
            .unwrap();
        let acc_exact = model.accuracy(&old_test).unwrap();
        // A slightly perturbed (e.g. dequantised) matrix installs verbatim:
        // the classifier must serve the shipped values, not recompute.
        let mut noisy = protos.clone();
        noisy.as_mut_slice()[0] += 1e-3;
        model.install_prototypes(labels, noisy.clone()).unwrap();
        assert_eq!(model.generation(), before + 2);
        assert_eq!(model.classifier().prototype_matrix(), &noisy);
        let acc_noisy = model.accuracy(&old_test).unwrap();
        assert!((acc_exact - acc_noisy).abs() < 0.05);
    }

    #[test]
    fn learn_new_class_adds_class_and_keeps_old() {
        let (old, new, test) = tiny_scenario();
        let cfg = PiloteConfig::fast_test(6);
        let (model, _) = Pilote::pretrain(cfg, &old, 20, SelectionStrategy::Herding).unwrap();
        let mut model = model;
        let old_test = test
            .filter_classes(&[
                Activity::Still.label(),
                Activity::Walk.label(),
                Activity::Drive.label(),
            ])
            .unwrap();
        let before = model.accuracy(&old_test).unwrap();
        model.learn_new_class(&new, 20).unwrap();
        assert_eq!(model.classifier().n_classes(), 4);
        let after_old = model.accuracy(&old_test).unwrap();
        let run_test = test.filter_classes(&[Activity::Run.label()]).unwrap();
        let run_acc = model.accuracy(&run_test).unwrap();
        assert!(run_acc > 0.5, "new-class accuracy {run_acc}");
        assert!(after_old > before - 0.25, "old accuracy collapsed {before} → {after_old}");
    }

    #[test]
    fn clone_model_is_independent() {
        let (old, new, _) = tiny_scenario();
        let cfg = PiloteConfig::fast_test(7);
        let (model, _) = Pilote::pretrain(cfg, &old, 10, SelectionStrategy::Herding).unwrap();
        let mut copy = model.clone_model();
        copy.learn_new_class(&new, 10).unwrap();
        assert_eq!(copy.classifier().n_classes(), 4);
        assert_eq!(model.classifier().n_classes(), 3);
    }

    #[test]
    fn train_embedding_requires_teacher_with_alpha() {
        let (old, _, _) = tiny_scenario();
        let cfg = PiloteConfig::fast_test(8);
        let mut rng = Rng64::new(1);
        let mut net = EmbeddingNet::new(cfg.net.clone(), &mut rng);
        let is_new = vec![false; old.len()];
        let opts = TrainOptions {
            alpha: 0.5,
            teacher: None,
            distill_rows: vec![],
            scheme: PairScheme::Full,
            freeze_bn: true,
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = train_embedding(&mut net, &old, &is_new, &cfg, opts, &mut rng);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn generation_bumps_at_every_commit_point() {
        let (old, new, _) = tiny_scenario();
        let cfg = PiloteConfig::fast_test(9);
        let (mut model, _) = Pilote::pretrain(cfg, &old, 10, SelectionStrategy::Herding).unwrap();
        let g0 = model.generation();
        assert!(g0 > 0, "pretrain ends in refresh_prototypes");
        model.learn_new_class(&new, 10).unwrap();
        assert!(model.generation() > g0, "update must bump the generation");
        let g1 = model.generation();
        model.refresh_prototypes().unwrap();
        assert_eq!(model.generation(), g1 + 1);
    }

    #[test]
    fn classify_batch_matches_predict_and_per_row() {
        let (old, _, test) = tiny_scenario();
        let cfg = PiloteConfig::fast_test(10);
        let (mut model, _) = Pilote::pretrain(cfg, &old, 10, SelectionStrategy::Herding).unwrap();
        let batch = test.features.slice_rows(0, 9).unwrap();
        let batched = model.classify_batch(&batch).unwrap();
        let labels: Vec<usize> = batched.iter().map(|&(l, _)| l).collect();
        assert_eq!(labels, model.predict(&batch).unwrap());
        for (i, &(label, dist)) in batched.iter().enumerate() {
            let row = Tensor::vector(batch.row(i)).reshape([1, batch.cols()]).unwrap();
            let single = model.classify_batch(&row).unwrap();
            assert_eq!(single[0].0, label);
            assert_eq!(single[0].1.to_bits(), dist.to_bits(), "row {i} not bitwise equal");
        }
    }

    #[test]
    fn train_report_totals() {
        let mut r = TrainReport::default();
        assert!(r.final_train_loss().is_nan());
        r.epochs.push(EpochStats { epoch: 0, train_loss: 1.0, val_loss: None, lr: 0.01, seconds: 0.5 });
        r.epochs.push(EpochStats { epoch: 1, train_loss: 0.5, val_loss: None, lr: 0.005, seconds: 0.25 });
        assert_eq!(r.final_train_loss(), 0.5);
        assert!((r.total_seconds() - 0.75).abs() < 1e-12);
    }
}
