//! Embedding-space projection and cluster quality — the machinery behind
//! Fig. 5.
//!
//! The paper visualises 128-d embeddings in 2-D. We project with PCA
//! (power iteration on the embedding covariance) and complement the
//! pictures with a quantitative **separation score**, so the claim "the
//! boundary between Run and Walk is blurrier for the re-trained model" is
//! checkable without eyeballing a scatter plot.

use pilote_tensor::linalg::symmetric_eigen_top_k;
use pilote_tensor::{Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// A fitted PCA projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    mean: Tensor,
    /// `[k, d]` — one principal axis per row.
    components: Tensor,
    /// Eigenvalues (explained variance) per component.
    explained: Vec<f32>,
}

impl Pca {
    /// Fits a `k`-component PCA on `[n, d]` data.
    pub fn fit(data: &Tensor, k: usize) -> Result<Pca, TensorError> {
        if data.rank() != 2 || data.rows() < 2 {
            return Err(TensorError::Empty { op: "Pca::fit (need ≥ 2 rows)" });
        }
        let (centered, mean) = data.center_columns()?;
        let cov = {
            let n = data.rows() as f32;
            centered.t_matmul(&centered)?.scale(1.0 / (n - 1.0))
        };
        let (explained, components) = symmetric_eigen_top_k(&cov, k, 300)?;
        Ok(Pca { mean, components, explained })
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.rows()
    }

    /// Explained variance per component (descending).
    pub fn explained_variance(&self) -> &[f32] {
        &self.explained
    }

    /// Projects `[n, d]` data to `[n, k]`.
    pub fn transform(&self, data: &Tensor) -> Result<Tensor, TensorError> {
        let centered = data.try_sub(&self.mean)?;
        centered.matmul_t(&self.components)
    }
}

/// 2-D scatter points of an embedding set, grouped by label — the data
/// series behind one panel of Fig. 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbeddingScatter {
    /// Class labels, one entry per series.
    pub labels: Vec<usize>,
    /// `(x, y)` points per series, aligned with `labels`.
    pub points: Vec<Vec<(f32, f32)>>,
}

/// Projects embeddings to 2-D and groups the points by label.
pub fn scatter_2d(embeddings: &Tensor, labels: &[usize]) -> Result<EmbeddingScatter, TensorError> {
    if embeddings.rows() != labels.len() {
        return Err(TensorError::LengthMismatch { len: labels.len(), expected: embeddings.rows() });
    }
    let pca = Pca::fit(embeddings, 2)?;
    let proj = pca.transform(embeddings)?;
    let mut classes: Vec<usize> = labels.to_vec();
    classes.sort_unstable();
    classes.dedup();
    let mut points = vec![Vec::new(); classes.len()];
    for (i, &label) in labels.iter().enumerate() {
        let series = classes.iter().position(|&c| c == label).expect("label in classes");
        points[series].push((proj.at(i, 0), proj.at(i, 1)));
    }
    Ok(EmbeddingScatter { labels: classes, points })
}

/// Cluster separation score: mean inter-class prototype distance divided
/// by mean intra-class spread (root-mean-square distance to the class
/// mean). Higher = cleaner clusters; computed in the full embedding space,
/// not the projection.
pub fn separation_score(embeddings: &Tensor, labels: &[usize]) -> Result<f32, TensorError> {
    if embeddings.rows() != labels.len() {
        return Err(TensorError::LengthMismatch { len: labels.len(), expected: embeddings.rows() });
    }
    let mut classes: Vec<usize> = labels.to_vec();
    classes.sort_unstable();
    classes.dedup();
    if classes.len() < 2 {
        return Err(TensorError::Empty { op: "separation_score (need ≥ 2 classes)" });
    }
    let d = embeddings.cols();
    let mut protos = Tensor::zeros([classes.len(), d]);
    let mut spread = 0.0f64;
    for (ci, &class) in classes.iter().enumerate() {
        let rows: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| (l == class).then_some(i))
            .collect();
        let sub = embeddings.select_rows(&rows)?;
        let mu = sub.mean_axis(pilote_tensor::reduce::Axis::Rows)?;
        let mut ss = 0.0f64;
        for r in 0..sub.rows() {
            ss += Tensor::vector(sub.row(r)).sq_dist(&mu)? as f64;
        }
        spread += (ss / sub.rows().max(1) as f64).sqrt();
        protos.row_mut(ci).copy_from_slice(mu.as_slice());
    }
    spread /= classes.len() as f64;

    let dists = protos.pairwise_sq_dists(&protos)?;
    let mut inter = 0.0f64;
    let mut count = 0usize;
    for i in 0..classes.len() {
        for j in i + 1..classes.len() {
            inter += (dists.at(i, j) as f64).sqrt();
            count += 1;
        }
    }
    inter /= count as f64;
    Ok((inter / spread.max(1e-12)) as f32)
}

/// Pairwise separation of exactly two classes (the Run/Walk diagnostic).
pub fn pairwise_separation(
    embeddings: &Tensor,
    labels: &[usize],
    class_a: usize,
    class_b: usize,
) -> Result<f32, TensorError> {
    let rows: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter_map(|(i, &l)| (l == class_a || l == class_b).then_some(i))
        .collect();
    let sub_labels: Vec<usize> = rows.iter().map(|&i| labels[i]).collect();
    separation_score(&embeddings.select_rows(&rows)?, &sub_labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_tensor::Rng64;

    fn two_blobs(rng: &mut Rng64, gap: f32) -> (Tensor, Vec<usize>) {
        let a = Tensor::randn([40, 6], 0.0, 1.0, rng);
        let b = Tensor::randn([40, 6], gap, 1.0, rng);
        let all = Tensor::vstack(&[&a, &b]).unwrap();
        let labels: Vec<usize> = (0..80).map(|i| usize::from(i >= 40)).collect();
        (all, labels)
    }

    #[test]
    fn pca_recovers_dominant_direction() {
        let mut rng = Rng64::new(1);
        // Data varies mostly along a fixed direction.
        let n = 200;
        let mut data = Tensor::zeros([n, 4]);
        for i in 0..n {
            let t = rng.normal_f32(0.0, 5.0);
            let noise: Vec<f32> = (0..4).map(|_| rng.normal_f32(0.0, 0.1)).collect();
            let dir = [0.5f32, 0.5, 0.5, 0.5];
            for j in 0..4 {
                data.row_mut(i)[j] = t * dir[j] + noise[j];
            }
        }
        let pca = Pca::fit(&data, 1).unwrap();
        let comp = pca.components.row(0);
        // Component aligns (up to sign) with the generating direction.
        let dot: f32 = comp.iter().map(|&c| c * 0.5).sum();
        assert!(dot.abs() > 0.95, "dot {dot}");
        assert!(pca.explained_variance()[0] > 10.0);
    }

    #[test]
    fn transform_projects_to_k_dims() {
        let mut rng = Rng64::new(2);
        let data = Tensor::randn([50, 8], 0.0, 1.0, &mut rng);
        let pca = Pca::fit(&data, 2).unwrap();
        let proj = pca.transform(&data).unwrap();
        assert_eq!(proj.shape().dims(), &[50, 2]);
    }

    #[test]
    fn scatter_groups_by_label() {
        let mut rng = Rng64::new(3);
        let (data, labels) = two_blobs(&mut rng, 8.0);
        let scatter = scatter_2d(&data, &labels).unwrap();
        assert_eq!(scatter.labels, vec![0, 1]);
        assert_eq!(scatter.points[0].len(), 40);
        assert_eq!(scatter.points[1].len(), 40);
    }

    #[test]
    fn separation_increases_with_gap() {
        let mut rng = Rng64::new(4);
        let (near, labels) = two_blobs(&mut rng, 2.0);
        let (far, _) = two_blobs(&mut rng, 12.0);
        let s_near = separation_score(&near, &labels).unwrap();
        let s_far = separation_score(&far, &labels).unwrap();
        assert!(s_far > 2.0 * s_near, "near {s_near} far {s_far}");
    }

    #[test]
    fn pairwise_separation_subsets() {
        let mut rng = Rng64::new(5);
        let a = Tensor::randn([20, 4], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([20, 4], 10.0, 1.0, &mut rng);
        let c = Tensor::randn([20, 4], 0.5, 1.0, &mut rng); // overlaps a
        let all = Tensor::vstack(&[&a, &b, &c]).unwrap();
        let labels: Vec<usize> =
            (0..60).map(|i| i / 20).collect();
        let ab = pairwise_separation(&all, &labels, 0, 1).unwrap();
        let ac = pairwise_separation(&all, &labels, 0, 2).unwrap();
        assert!(ab > 3.0 * ac, "ab {ab} ac {ac}");
    }

    #[test]
    fn separation_requires_two_classes() {
        let data = Tensor::zeros([5, 3]);
        assert!(separation_score(&data, &[1, 1, 1, 1, 1]).is_err());
    }
}
