//! Additional continual-learning strategies for the A4 ablation bench.
//!
//! The paper positions PILOTE against the broader continual-learning
//! literature (§2.1) without benchmarking it — the cited methods target
//! cloud-scale models. To make that positioning measurable we implement
//! edge-scale analogues of the canonical strategy families on the same
//! backbone:
//!
//! * [`Strategy::NaiveFinetune`] — fine-tune on new data only (the
//!   lower bound every CL paper reports);
//! * [`Strategy::Replay`] — rehearsal with a random exemplar memory
//!   (Rolnick et al. 2019);
//! * [`Strategy::GDumb`] — greedy balanced memory + retrain from scratch
//!   (Prabhu et al. 2020);
//! * [`Strategy::Ewc`] — elastic weight consolidation, diagonal-Fisher
//!   quadratic penalty (Kirkpatrick et al. 2017);
//! * [`Strategy::Lwf`] — learning without forgetting via softened-logit
//!   distillation on a classification head (Li & Hoiem 2017).

use crate::config::PiloteConfig;
use crate::embedding::EmbeddingNet;
use crate::exemplar::SelectionStrategy;
use crate::pairs::{build_epoch_pairs, PairScheme};
use crate::pilote::{train_embedding, Pilote, TrainOptions};
use pilote_har_data::Dataset;
use pilote_nn::loss::{contrastive_pair_loss, kd_soft_cross_entropy, softmax_cross_entropy};
use pilote_nn::sched::{HalvingLr, LrSchedule};
use pilote_nn::{Adam, Dense, Layer, Mode, Optimizer, Sequential};
use pilote_tensor::{Rng64, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// A continual-learning strategy to compare against PILOTE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Contrastive fine-tuning on the new-class data alone.
    NaiveFinetune,
    /// Rehearsal over a random exemplar memory of `budget` per class.
    Replay {
        /// Exemplars kept per class.
        budget: usize,
    },
    /// Greedy balanced memory of `budget` per class; network re-initialised
    /// and trained on the memory only.
    GDumb {
        /// Exemplars kept per class.
        budget: usize,
    },
    /// Diagonal-Fisher elastic weight consolidation with strength `lambda`.
    Ewc {
        /// Penalty strength λ.
        lambda: f32,
    },
    /// Learning-without-forgetting on a softmax head with KD temperature
    /// `temperature`.
    Lwf {
        /// Distillation temperature T.
        temperature: f32,
    },
}

impl Strategy {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::NaiveFinetune => "naive-finetune",
            Strategy::Replay { .. } => "replay",
            Strategy::GDumb { .. } => "gdumb",
            Strategy::Ewc { .. } => "ewc",
            Strategy::Lwf { .. } => "lwf",
        }
    }
}

/// Result of running one strategy on one incremental scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategyOutcome {
    /// Strategy name.
    pub strategy: String,
    /// Accuracy over all classes of the test set.
    pub accuracy: f32,
    /// Accuracy restricted to the old classes (forgetting indicator).
    pub old_accuracy: f32,
    /// Accuracy restricted to the new class.
    pub new_accuracy: f32,
}

/// Runs `strategy` from the pre-trained `base` model on an incremental
/// scenario: `new_data` arrives, `test` spans all classes, `new_label`
/// identifies the incoming class.
pub fn run_strategy(
    strategy: Strategy,
    base: &Pilote,
    new_data: &Dataset,
    test: &Dataset,
    new_label: usize,
) -> Result<StrategyOutcome, TensorError> {
    let old_labels: Vec<usize> =
        base.classifier().labels().iter().copied().filter(|&l| l != new_label).collect();
    let old_test = test.filter_classes(&old_labels)?;
    let new_test = test.filter_classes(&[new_label])?;

    let (accuracy, old_accuracy, new_accuracy) = match strategy {
        Strategy::NaiveFinetune => {
            let mut m = base.clone_model();
            naive_finetune(&mut m, new_data)?;
            (m.accuracy(test)?, m.accuracy(&old_test)?, m.accuracy(&new_test)?)
        }
        Strategy::Replay { budget } => {
            let mut m = base.clone_model();
            // Random memory instead of herding, then retrain contrastively.
            crate::baselines::retrained_update(&mut m, new_data, budget)?;
            (m.accuracy(test)?, m.accuracy(&old_test)?, m.accuracy(&new_test)?)
        }
        Strategy::GDumb { budget } => {
            let mut m = gdumb(base, new_data, budget)?;
            (m.accuracy(test)?, m.accuracy(&old_test)?, m.accuracy(&new_test)?)
        }
        Strategy::Ewc { lambda } => {
            let mut m = base.clone_model();
            ewc_update(&mut m, new_data, lambda)?;
            (m.accuracy(test)?, m.accuracy(&old_test)?, m.accuracy(&new_test)?)
        }
        Strategy::Lwf { temperature } => {
            let mut clf = LwfClassifier::from_pretrained(base)?;
            clf.learn_new_class(new_data, new_label, temperature)?;
            (
                clf.accuracy(test)?,
                clf.accuracy(&old_test)?,
                clf.accuracy(&new_test)?,
            )
        }
    };
    Ok(StrategyOutcome {
        strategy: strategy.name().to_string(),
        accuracy,
        old_accuracy,
        new_accuracy,
    })
}

/// Contrastive fine-tuning on the new data alone: with a single incoming
/// class every sampled pair is similar, so the objective degenerates to
/// pulling the new class together with nothing holding the old geometry —
/// the canonical catastrophic-forgetting demonstration.
fn naive_finetune(model: &mut Pilote, new_data: &Dataset) -> Result<(), TensorError> {
    let cfg = model.config().clone();
    let mut rng = model.fork_rng();
    let is_new = vec![true; new_data.len()];
    let opts = TrainOptions {
        alpha: 0.0,
        teacher: None,
        distill_rows: Vec::new(),
        scheme: PairScheme::Full,
        freeze_bn: true,
    };
    train_embedding(model.net_mut(), new_data, &is_new, &cfg, opts, &mut rng)?;
    for label in new_data.classes() {
        let class = new_data.filter_classes(&[label])?;
        model.support_mut().put_class(label, class.features);
    }
    model.refresh_prototypes()
}

/// GDumb: balanced greedy memory, then train a re-initialised network on
/// the memory only.
fn gdumb(base: &Pilote, new_data: &Dataset, budget: usize) -> Result<Pilote, TensorError> {
    let cfg = base.config().clone();
    let mut rng = Rng64::new(cfg.seed ^ 0x9d0b);

    // Balanced memory: `budget` random samples per class from the support
    // set plus the new data.
    let mut memory = base.support().to_dataset()?.concat(new_data)?;
    let mut kept_rows = Vec::new();
    for label in memory.classes() {
        let idx = memory.class_indices(label);
        let k = budget.min(idx.len());
        let chosen = rng.sample_indices(idx.len(), k);
        kept_rows.extend(chosen.into_iter().map(|i| idx[i]));
    }
    memory = memory.select(&kept_rows)?;

    // Retrain from scratch on the memory.
    let (model, _) = Pilote::pretrain(
        PiloteConfig { seed: cfg.seed ^ 0x6d, ..cfg },
        &memory,
        budget,
        SelectionStrategy::Random,
    )?;
    Ok(model)
}

/// EWC: fine-tune contrastively on the new data with a diagonal-Fisher
/// quadratic anchor `λ·Σ F_i (θ_i − θ*_i)²` estimated on old-class pairs.
fn ewc_update(model: &mut Pilote, new_data: &Dataset, lambda: f32) -> Result<(), TensorError> {
    let cfg = model.config().clone();
    let mut rng = model.fork_rng();
    let d0 = model.support().to_dataset()?;

    // ---- Fisher estimation on old-class contrastive pairs ---------------
    let net = model.net_mut();
    net.zero_grad();
    let is_new = vec![false; d0.len()];
    let pairs = build_epoch_pairs(&d0.labels, &is_new, PairScheme::Full, 4, &mut rng);
    let mut fisher: Vec<Tensor> = Vec::new();
    if !pairs.is_empty() {
        let take = pairs.len().min(512);
        let batch = pairs.slice(0, take);
        let (fa, fb) = batch.gather(&d0.features)?;
        let stacked = Tensor::vstack(&[&fa, &fb])?;
        let emb = net.forward_train(&stacked);
        let ea = emb.slice_rows(0, take)?;
        let eb = emb.slice_rows(take, 2 * take)?;
        let (_, ga, gb) =
            contrastive_pair_loss(&ea, &eb, &batch.similar, cfg.margin, cfg.contrastive_form)?;
        net.backward(&Tensor::vstack(&[&ga, &gb])?);
        fisher = net
            .layers_mut()
            .params_and_grads()
            .into_iter()
            .map(|(_, g)| g.map(|v| v * v))
            .collect();
    }
    let anchor = net.state_dict();
    net.zero_grad();

    // ---- fine-tune on new data with the EWC gradient penalty -----------
    let schedule = HalvingLr { initial: cfg.initial_lr, min_lr: 1e-6 };
    let mut optimizer = Adam::new();
    for epoch in 0..cfg.max_epochs {
        let lr = schedule.lr_at(epoch);
        let is_new = vec![true; new_data.len()];
        let pairs = build_epoch_pairs(&new_data.labels, &is_new, PairScheme::Full, cfg.pairs_per_sample, &mut rng);
        if pairs.is_empty() {
            break;
        }
        let mut start = 0usize;
        while start < pairs.len() {
            let end = (start + cfg.pair_batch).min(pairs.len());
            let batch = pairs.slice(start, end);
            start = end;
            let (fa, fb) = batch.gather(&new_data.features)?;
            net.zero_grad();
            let n = batch.len();
            let stacked = Tensor::vstack(&[&fa, &fb])?;
            let emb = net.forward_train(&stacked);
            let ea = emb.slice_rows(0, n)?;
            let eb = emb.slice_rows(n, 2 * n)?;
            let (_, ga, gb) =
                contrastive_pair_loss(&ea, &eb, &batch.similar, cfg.margin, cfg.contrastive_form)?;
            net.backward(&Tensor::vstack(&[&ga, &gb])?);
            // EWC penalty gradient: 2λ·F⊙(θ − θ*).
            if !fisher.is_empty() {
                for (pi, (param, grad)) in net.layers_mut().params_and_grads().into_iter().enumerate() {
                    let f = fisher[pi].as_slice();
                    let a = anchor[pi].as_slice();
                    for ((g, &p), (&fi, &ai)) in
                        grad.as_mut_slice().iter_mut().zip(param.as_slice()).zip(f.iter().zip(a))
                    {
                        *g += 2.0 * lambda * fi * (p - ai);
                    }
                }
            }
            optimizer.step(net.layers_mut(), lr);
        }
    }

    for label in new_data.classes() {
        let class = new_data.filter_classes(&[label])?;
        model.support_mut().put_class(label, class.features);
    }
    model.refresh_prototypes()
}

/// Learning-without-forgetting classifier: a softmax head on the embedding
/// backbone, updated with hard cross-entropy on the new class plus
/// temperature-softened distillation against the pre-update logits.
pub struct LwfClassifier {
    backbone: EmbeddingNet,
    head: Sequential,
    labels: Vec<usize>,
    cfg: PiloteConfig,
    rng: Rng64,
}

impl LwfClassifier {
    /// Builds the classifier from a pre-trained PILOTE model: the backbone
    /// is copied and a linear head is fitted on the support set with plain
    /// cross-entropy.
    pub fn from_pretrained(base: &Pilote) -> Result<LwfClassifier, TensorError> {
        let cfg = base.config().clone();
        let mut rng = Rng64::new(cfg.seed ^ 0x17f);
        let labels = base.classifier().labels().to_vec();
        let mut this = LwfClassifier {
            backbone: base.clone_model().into_net(),
            head: Sequential::new()
                .push(Dense::new(cfg.net.embedding_dim, labels.len(), &mut rng)),
            labels,
            cfg,
            rng,
        };
        let d0 = base.support().to_dataset()?;
        this.fit_head(&d0, None, 1.0)?;
        Ok(this)
    }

    fn label_index(&self, label: usize) -> Option<usize> {
        self.labels.iter().position(|&l| l == label)
    }

    /// Trains the head (and lightly the backbone) with CE on `data`,
    /// optionally adding KD against `teacher` logits at `temperature`.
    fn fit_head(
        &mut self,
        data: &Dataset,
        teacher: Option<(&mut EmbeddingNet, &mut Sequential, usize)>,
        _scale: f32,
    ) -> Result<(), TensorError> {
        let schedule = HalvingLr { initial: self.cfg.initial_lr, min_lr: 1e-6 };
        let mut optim_head = Adam::new();
        let mut optim_backbone = Adam::new();
        let mut teacher = teacher;
        for epoch in 0..self.cfg.max_epochs {
            let lr = schedule.lr_at(epoch);
            let batches =
                pilote_nn::train::shuffled_batches(data.len(), self.cfg.pair_batch, &mut self.rng);
            for batch in batches {
                let feats = data.features.select_rows(&batch)?;
                let targets: Vec<usize> = batch
                    .iter()
                    .map(|&i| self.label_index(data.labels[i]).expect("label known"))
                    .collect();
                self.backbone.zero_grad();
                self.head.zero_grad();
                let emb = self.backbone.forward_train(&feats);
                let logits = self.head.forward(&emb, Mode::Train);
                let (_, mut grad_logits) = softmax_cross_entropy(&logits, &targets)?;
                if let Some((t_backbone, t_head, old_k)) = teacher.as_mut() {
                    let t_emb = t_backbone.embed(&feats);
                    let t_logits = t_head.forward(&t_emb, Mode::Eval);
                    // KD on the old-class logit slice only.
                    let old_cols: Vec<usize> = (0..*old_k).collect();
                    let s_old = select_cols(&logits, &old_cols)?;
                    let (_, kd_grad) = kd_soft_cross_entropy(&s_old, &t_logits, 2.0)?;
                    scatter_cols_add(&mut grad_logits, &kd_grad, &old_cols)?;
                }
                let grad_emb = self.head.backward(&grad_logits);
                self.backbone.backward(&grad_emb);
                optim_head.step(&mut self.head, lr);
                optim_backbone.step(self.backbone.layers_mut(), lr * 0.1);
            }
        }
        Ok(())
    }

    /// LwF incremental step: extend the head with one output, then train
    /// on the new data with CE (new class) + KD (old logits).
    pub fn learn_new_class(
        &mut self,
        new_data: &Dataset,
        new_label: usize,
        temperature: f32,
    ) -> Result<(), TensorError> {
        assert!(temperature > 0.0, "temperature must be positive");
        let old_k = self.labels.len();
        let mut teacher_backbone = self.backbone.clone_frozen();
        let mut teacher_head = self.head.clone();

        // Extend the head: copy old weight columns into a wider layer.
        let emb_dim = self.cfg.net.embedding_dim;
        let mut new_head =
            Sequential::new().push(Dense::new(emb_dim, old_k + 1, &mut self.rng));
        {
            let old_params = self.head.state_dict();
            let pairs = new_head.params_and_grads();
            // params: [weight [emb, k+1], bias [k+1]]
            let (weight, _) = &pairs[0];
            let mut w = (*weight).clone();
            for i in 0..emb_dim {
                for j in 0..old_k {
                    let v = old_params[0].as_slice()[i * old_k + j];
                    w.as_mut_slice()[i * (old_k + 1) + j] = v;
                }
            }
            drop(pairs);
            let mut pairs = new_head.params_and_grads();
            pairs[0].0.as_mut_slice().copy_from_slice(w.as_slice());
            for j in 0..old_k {
                pairs[1].0.as_mut_slice()[j] = old_params[1].as_slice()[j];
            }
        }
        self.head = new_head;
        self.labels.push(new_label);

        // Train with CE + KD. `fit_head` handles the KD slice.
        self.fit_head(new_data, Some((&mut teacher_backbone, &mut teacher_head, old_k)), temperature)
    }

    /// Softmax-argmax prediction.
    pub fn predict(&mut self, features: &Tensor) -> Result<Vec<usize>, TensorError> {
        let emb = self.backbone.embed(features);
        let logits = self.head.forward(&emb, Mode::Eval);
        let mut out = Vec::with_capacity(logits.rows());
        for i in 0..logits.rows() {
            let row = Tensor::vector(logits.row(i));
            out.push(self.labels[row.argmax()?]);
        }
        Ok(out)
    }

    /// Accuracy on a labelled dataset.
    pub fn accuracy(&mut self, data: &Dataset) -> Result<f32, TensorError> {
        let pred = self.predict(&data.features)?;
        Ok(crate::metrics::accuracy(&pred, &data.labels))
    }
}

/// Extracts the given columns of a rank-2 tensor.
fn select_cols(t: &Tensor, cols: &[usize]) -> Result<Tensor, TensorError> {
    let mut out = Tensor::zeros([t.rows(), cols.len()]);
    for i in 0..t.rows() {
        for (jj, &j) in cols.iter().enumerate() {
            out.row_mut(i)[jj] = t.at(i, j);
        }
    }
    Ok(out)
}

/// Adds `src[:, jj]` into `dst[:, cols[jj]]`.
fn scatter_cols_add(dst: &mut Tensor, src: &Tensor, cols: &[usize]) -> Result<(), TensorError> {
    for i in 0..dst.rows() {
        for (jj, &j) in cols.iter().enumerate() {
            let add = src.at(i, jj);
            let cur = dst.at(i, j);
            dst.row_mut(i)[j] = cur + add;
        }
    }
    Ok(())
}

// Helper: extract the embedding net out of a cloned Pilote.
impl Pilote {
    /// Consumes a (cloned) model, keeping only its embedding network —
    /// used by strategies that replace the NCM classifier with their own
    /// head.
    pub fn into_net(mut self) -> EmbeddingNet {
        self.net_mut().clone_frozen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_har_data::dataset::generate_features;
    use pilote_har_data::{Activity, Simulator};

    fn scenario() -> (Pilote, Dataset, Dataset, usize) {
        let mut sim = Simulator::with_seed(31);
        let (all, _) = generate_features(
            &mut sim,
            &[
                (Activity::Still, 50),
                (Activity::Drive, 50),
                (Activity::Run, 50),
            ],
        )
        .unwrap();
        let mut rng = Rng64::new(4);
        let (train, test) = all.stratified_split(0.3, &mut rng).unwrap();
        let old = train
            .filter_classes(&[Activity::Still.label(), Activity::Drive.label()])
            .unwrap();
        let new = train.filter_classes(&[Activity::Run.label()]).unwrap();
        let cfg = PiloteConfig::fast_test(9);
        let (model, _) =
            Pilote::pretrain(cfg, &old, 15, SelectionStrategy::Herding).unwrap();
        (model, new, test, Activity::Run.label())
    }

    #[test]
    fn all_strategies_produce_outcomes() {
        let (base, new, test, new_label) = scenario();
        for strategy in [
            Strategy::NaiveFinetune,
            Strategy::Replay { budget: 15 },
            Strategy::GDumb { budget: 15 },
            Strategy::Ewc { lambda: 10.0 },
            Strategy::Lwf { temperature: 2.0 },
        ] {
            let out = run_strategy(strategy, &base, &new, &test, new_label).unwrap();
            assert!(
                (0.0..=1.0).contains(&out.accuracy),
                "{}: accuracy {}",
                out.strategy,
                out.accuracy
            );
            assert!((0.0..=1.0).contains(&out.old_accuracy));
            assert!((0.0..=1.0).contains(&out.new_accuracy));
        }
    }

    #[test]
    fn replay_retains_old_better_than_naive() {
        let (base, new, test, new_label) = scenario();
        let naive =
            run_strategy(Strategy::NaiveFinetune, &base, &new, &test, new_label).unwrap();
        let replay =
            run_strategy(Strategy::Replay { budget: 15 }, &base, &new, &test, new_label).unwrap();
        assert!(
            replay.old_accuracy >= naive.old_accuracy - 0.05,
            "replay {} vs naive {}",
            replay.old_accuracy,
            naive.old_accuracy
        );
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(Strategy::NaiveFinetune.name(), "naive-finetune");
        assert_eq!(Strategy::Replay { budget: 1 }.name(), "replay");
        assert_eq!(Strategy::GDumb { budget: 1 }.name(), "gdumb");
        assert_eq!(Strategy::Ewc { lambda: 1.0 }.name(), "ewc");
        assert_eq!(Strategy::Lwf { temperature: 1.0 }.name(), "lwf");
    }

    #[test]
    fn col_helpers_round_trip() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let sel = select_cols(&t, &[0, 2]).unwrap();
        assert_eq!(sel.as_slice(), &[1.0, 3.0, 4.0, 6.0]);
        let mut dst = Tensor::zeros([2, 3]);
        scatter_cols_add(&mut dst, &sel, &[0, 2]).unwrap();
        assert_eq!(dst.as_slice(), &[1.0, 0.0, 3.0, 4.0, 0.0, 6.0]);
    }
}
