//! Model-quality monitoring: forgetting, prototype drift and NCM margins.
//!
//! The paper's central claim is that distillation prevents catastrophic
//! forgetting — this module is how the repo *watches* for it at run time.
//! A [`QualityMonitor`] holds a fixed, held-out probe set (already in
//! model feature space) and, at every [`Pilote`] generation bump
//! (pre-train, incremental update, rollback, degradation, federated
//! install), records:
//!
//! * **per-class probe accuracy** for every probe class the classifier
//!   knows;
//! * a **forgetting score**: the drop in mean old-class accuracy versus
//!   the previous observation ([`crate::metrics::forgetting`]; positive =
//!   forgot);
//! * **prototype drift**: the L2 distance of each class mean from its
//!   previous-generation position, plus a scale-free ratio against the
//!   previous prototype's norm;
//! * an **NCM margin histogram**: per probe window, the squared distance
//!   to the second-nearest prototype minus the nearest (via the same
//!   distance kernel as `classify_with_distances`) — collapsing margins
//!   mean the classes are blurring together even while accuracy holds.
//!
//! Three deterministic threshold rules turn the measurements into
//! [`QualityAlert`]s (consumed by `pilote-magneto`, which raises them as
//! `EventKind::AlertRaised` device events):
//!
//! | rule | fires when |
//! |------|------------|
//! | [`AlertRule::Forgetting`] | forgetting score > `forgetting` (default 10 pts) |
//! | [`AlertRule::MarginCollapse`] | mean margin < `margin_collapse_ratio` × the baseline mean margin (default ¼) |
//! | [`AlertRule::DriftSpike`] | any class drift ratio > `drift_spike_ratio` (default ½ of the prototype norm) |
//!
//! With [`AdaptiveThresholds`] enabled the forgetting and drift
//! thresholds are re-derived per observation from the device's own probe
//! history instead of the shared constants (clamped to stay within 2× of
//! the base either way); the margin rule is already baseline-relative and
//! never adapts.
//!
//! The margin and drift rules only compare observations with the **same
//! class set**: adding a class redefines the margin (nearest vs
//! second-nearest over more prototypes) and legitimately moves old
//! prototypes to make room, so cross-class-set comparisons would alert on
//! healthy updates. Whenever the class set changes, the margin baseline is
//! re-anchored at the new measurement and drift alerts are suppressed for
//! that one observation (drift values are still reported). The forgetting
//! rule is exempt — old-class accuracy is well-defined no matter how many
//! classes the model has gained.
//!
//! Everything here is a deterministic function of the model, the probe
//! set and the thresholds — no randomness, no wall clock — so one seed
//! produces byte-identical reports at any `PILOTE_THREADS`. Monitoring
//! runs regardless of the `PILOTE_OBS` kill switch (alerts are device
//! *behaviour*, not telemetry); the margin histogram uses the standalone
//! [`HistogramSnapshot`] accumulator, which is not registry-gated.
//!
//! Probe classification rides the same fused packed-GEMM serving kernel
//! as live traffic (`docs/KERNELS.md`): the NCM distance matrix is one
//! GEMM dispatch with the squared-distance combine applied as a per-tile
//! epilogue, so quality sampling adds no second sweep over the probe's
//! `[n, classes]` distance output and its flop charge (and therefore the
//! virtual clock cost of every quality sample) is unchanged.

use crate::metrics;
use crate::pilote::Pilote;
use crate::session_metrics::{AccuracyMatrix, TaskGroup};
use pilote_har_data::Dataset;
use pilote_obs::HistogramSnapshot;
use pilote_tensor::TensorError;
use serde::{Deserialize, Serialize};

/// Margin histogram bucket bounds (squared-distance units). Fixed at
/// compile time so histograms from every device merge bucket-wise.
pub const MARGIN_BOUNDS: &[f64] =
    &[0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0];

/// Guards against division by a vanishing prototype norm in the drift
/// ratio.
const NORM_FLOOR: f32 = 1e-6;

/// Deterministic alert thresholds. All rules compare a measured value
/// against a constant (or a constant × the monitor's own baseline), so two
/// runs with the same seed raise the same alerts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityThresholds {
    /// Forgetting score (old-class accuracy drop, 0–1) above which
    /// [`AlertRule::Forgetting`] fires. Paper-motivated default: 0.10.
    pub forgetting: f32,
    /// Fraction of the baseline mean margin below which
    /// [`AlertRule::MarginCollapse`] fires. Default: 0.25.
    pub margin_collapse_ratio: f64,
    /// Per-class drift ratio (L2 drift / previous prototype norm) above
    /// which [`AlertRule::DriftSpike`] fires. Default: 0.5.
    pub drift_spike_ratio: f32,
}

impl Default for QualityThresholds {
    fn default() -> Self {
        QualityThresholds {
            forgetting: 0.10,
            margin_collapse_ratio: 0.25,
            drift_spike_ratio: 0.5,
        }
    }
}

/// Derives per-device thresholds from the device's own probe history
/// instead of fleet-wide constants. Adaimi & Thomaz's lifelong-learning
/// study (PAPERS.md) shows per-user baselines diverge enough that shared
/// alert constants misfire: a device whose forgetting score naturally
/// jitters by 5 pts needs more headroom than one that sits at 0.
///
/// The effective threshold for a rule is `headroom ×` the standard
/// deviation of that rule's measured value over the last `window`
/// observations, clamped to `[0.5, 2.0] ×` the configured base so a
/// pathological history can never disable the rule or make it
/// hair-trigger. Until `min_history` observations exist the base
/// threshold applies unchanged. Only the **forgetting** and **drift**
/// rules adapt — the margin rule is already relative to the device's own
/// baseline margin.
///
/// Everything is a deterministic fold over the report history, so
/// adaptation preserves the byte-identical-across-runs contract.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveThresholds {
    /// How many most-recent prior observations feed the derivation.
    pub window: usize,
    /// Minimum prior observations before adaptation kicks in; below this
    /// the base threshold applies.
    pub min_history: usize,
    /// Multiplier on the history's standard deviation (a 3-sigma band by
    /// default).
    pub headroom: f64,
}

impl Default for AdaptiveThresholds {
    fn default() -> Self {
        AdaptiveThresholds { window: 4, min_history: 3, headroom: 3.0 }
    }
}

impl AdaptiveThresholds {
    /// The effective threshold given a `base` constant and the rule's
    /// measured `history` (oldest first): `headroom × std(last window)`,
    /// clamped to `[0.5 × base, 2.0 × base]`. Returns `base` while the
    /// history is shorter than `min_history`.
    pub fn effective(&self, base: f64, history: &[f64]) -> f64 {
        if history.len() < self.min_history {
            return base;
        }
        let tail = &history[history.len().saturating_sub(self.window.max(1))..];
        let n = tail.len() as f64;
        let mean = tail.iter().sum::<f64>() / n;
        let var = tail.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        (self.headroom * var.sqrt()).clamp(0.5 * base, 2.0 * base)
    }
}

/// Which threshold rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertRule {
    /// Old-class accuracy dropped more than the threshold since the
    /// previous observation.
    Forgetting,
    /// The mean NCM margin fell below a fraction of its baseline.
    MarginCollapse,
    /// A class prototype jumped by a large fraction of its own norm.
    DriftSpike,
}

impl AlertRule {
    /// Stable machine-readable rule name (used in events and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            AlertRule::Forgetting => "forgetting",
            AlertRule::MarginCollapse => "margin_collapse",
            AlertRule::DriftSpike => "drift_spike",
        }
    }
}

/// One fired rule: the measured value and the threshold it crossed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityAlert {
    /// The rule that fired.
    pub rule: AlertRule,
    /// Model generation the measurement was taken at.
    pub generation: u64,
    /// The measured value (forgetting score, mean margin, or worst drift
    /// ratio, per rule).
    pub value: f64,
    /// The effective threshold the value crossed.
    pub threshold: f64,
}

/// Per-class measurements within one report, sorted by label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassQuality {
    /// Class label.
    pub label: usize,
    /// Probe accuracy for this class, or `-1.0` when the probe set has no
    /// rows of it (kept numeric so the report stays flat JSON).
    pub accuracy: f32,
    /// L2 distance of the prototype from its previous-generation position
    /// (0 for a class first seen in this observation).
    pub drift: f32,
    /// `drift` divided by the previous prototype's norm (scale-free; 0 for
    /// a first-seen class).
    pub drift_ratio: f32,
}

/// One observation of model quality at a specific generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// Model generation observed.
    pub generation: u64,
    /// Accuracy over the probe rows whose true class the model knows.
    pub probe_accuracy: f32,
    /// Mean per-class accuracy over the monitored old classes.
    pub old_class_accuracy: f32,
    /// Drop in old-class accuracy versus the previous observation
    /// (positive = forgot; 0 on the first observation).
    pub forgetting: f32,
    /// Mean NCM margin (squared-distance units) over the probe; `-1.0`
    /// when the classifier has fewer than two classes.
    pub mean_margin: f64,
    /// Margin histogram over the probe, with [`MARGIN_BOUNDS`] buckets.
    pub margins: HistogramSnapshot,
    /// Per-class accuracy and drift, sorted by label.
    pub per_class: Vec<ClassQuality>,
    /// Alerts raised by this observation.
    pub alerts: Vec<QualityAlert>,
}

/// Watches a [`Pilote`] model across generations (see the module docs).
#[derive(Debug, Clone)]
pub struct QualityMonitor {
    probe: Dataset,
    old_labels: Vec<usize>,
    thresholds: QualityThresholds,
    last_generation: Option<u64>,
    prev_prototypes: Vec<(usize, Vec<f32>)>,
    prev_old_accuracy: Option<f32>,
    baseline_mean_margin: Option<f64>,
    /// Sorted class labels of the previous observation — margin and drift
    /// rules only fire when the class set is unchanged (see module docs).
    prev_known: Vec<usize>,
    /// When set, forgetting/drift thresholds are derived per observation
    /// from this monitor's own report history (see [`AdaptiveThresholds`]).
    adaptive: Option<AdaptiveThresholds>,
    /// When set, every observation also stamps one row of the session ×
    /// task accuracy matrix (see [`crate::session_metrics`]).
    session_matrix: Option<AccuracyMatrix>,
    reports: Vec<QualityReport>,
}

impl QualityMonitor {
    /// Builds a monitor over `probe` (held-out windows **already in model
    /// feature space**). `old_labels` are the classes whose accuracy the
    /// forgetting score tracks — typically the pre-trained classes.
    pub fn new(probe: Dataset, old_labels: &[usize], thresholds: QualityThresholds) -> Self {
        let mut old_labels = old_labels.to_vec();
        old_labels.sort_unstable();
        old_labels.dedup();
        QualityMonitor {
            probe,
            old_labels,
            thresholds,
            last_generation: None,
            prev_prototypes: Vec::new(),
            prev_old_accuracy: None,
            baseline_mean_margin: None,
            prev_known: Vec::new(),
            adaptive: None,
            session_matrix: None,
            reports: Vec::new(),
        }
    }

    /// Enables per-device adaptive threshold derivation (builder form).
    pub fn with_adaptive(mut self, adaptive: AdaptiveThresholds) -> Self {
        self.adaptive = Some(adaptive);
        self
    }

    /// Enables session-matrix recording (builder form): every observation
    /// appends one [`AccuracyMatrix`] row measuring the probe against each
    /// task group. The same probe classification pass feeds both the
    /// quality report and the matrix row, so recording adds no extra model
    /// evaluation (and therefore no extra virtual-clock cost).
    pub fn with_session_tasks(mut self, tasks: Vec<TaskGroup>) -> Self {
        self.session_matrix = Some(AccuracyMatrix::new(tasks));
        self
    }

    /// The session × task accuracy matrix, if recording is enabled.
    pub fn session_matrix(&self) -> Option<&AccuracyMatrix> {
        self.session_matrix.as_ref()
    }

    /// Enables or disables adaptive threshold derivation in place.
    pub fn set_adaptive(&mut self, adaptive: Option<AdaptiveThresholds>) {
        self.adaptive = adaptive;
    }

    /// The adaptive derivation config, if enabled.
    pub fn adaptive(&self) -> Option<&AdaptiveThresholds> {
        self.adaptive.as_ref()
    }

    /// The monitored old-class labels, sorted.
    pub fn old_labels(&self) -> &[usize] {
        &self.old_labels
    }

    /// The configured thresholds.
    pub fn thresholds(&self) -> &QualityThresholds {
        &self.thresholds
    }

    /// All reports taken so far, in observation order — the forgetting
    /// curve of this model.
    pub fn reports(&self) -> &[QualityReport] {
        &self.reports
    }

    /// The most recent report, if any.
    pub fn last_report(&self) -> Option<&QualityReport> {
        self.reports.last()
    }

    /// Total alerts raised across all observations.
    pub fn alert_count(&self) -> usize {
        self.reports.iter().map(|r| r.alerts.len()).sum()
    }

    /// The thresholds in force for the *next* observation: the configured
    /// base values when adaptation is off or the history is still short,
    /// otherwise the per-device derived forgetting/drift thresholds (the
    /// margin ratio never adapts — it is already baseline-relative).
    pub fn effective_thresholds(&self) -> QualityThresholds {
        let mut t = self.thresholds;
        let Some(adaptive) = self.adaptive else { return t };
        let forgetting_history: Vec<f64> =
            self.reports.iter().map(|r| f64::from(r.forgetting)).collect();
        let drift_history: Vec<f64> = self
            .reports
            .iter()
            .map(|r| {
                r.per_class.iter().map(|c| f64::from(c.drift_ratio)).fold(0.0, f64::max)
            })
            .collect();
        t.forgetting =
            adaptive.effective(f64::from(t.forgetting), &forgetting_history) as f32;
        t.drift_spike_ratio =
            adaptive.effective(f64::from(t.drift_spike_ratio), &drift_history) as f32;
        t
    }

    /// Samples the model if its generation moved since the last
    /// observation; returns `None` when the generation is unchanged.
    /// The first call always samples (the baseline observation).
    pub fn observe(&mut self, model: &mut Pilote) -> Result<Option<QualityReport>, TensorError> {
        let generation = model.generation();
        if self.last_generation == Some(generation) {
            return Ok(None);
        }
        let report = self.measure(model, generation)?;
        self.reports.push(report.clone());
        Ok(Some(report))
    }

    /// Takes the measurement and rolls the monitor state forward.
    fn measure(
        &mut self,
        model: &mut Pilote,
        generation: u64,
    ) -> Result<QualityReport, TensorError> {
        let embeddings = model.embed(&self.probe.features);
        let clf = model.classifier();
        let known = clf.labels().to_vec();
        let mut known_sorted = known.clone();
        known_sorted.sort_unstable();
        // Margin/drift comparisons are only meaningful against an
        // observation of the same class set (see module docs).
        let same_class_set = !self.prev_known.is_empty() && self.prev_known == known_sorted;
        let distances = clf.distances(&embeddings)?;
        let n = distances.rows();
        let k = distances.cols();

        // Winners + margins in one pass over the distance matrix.
        let mut predicted = Vec::with_capacity(n);
        let mut margins = HistogramSnapshot::with_bounds(MARGIN_BOUNDS);
        let mut margin_sum = 0.0f64;
        for row in 0..n {
            let mut best = (0usize, f32::INFINITY);
            let mut second = f32::INFINITY;
            for col in 0..k {
                let d = distances.at(row, col);
                if d < best.1 {
                    second = best.1;
                    best = (col, d);
                } else if d < second {
                    second = d;
                }
            }
            predicted.push(known[best.0]);
            if k >= 2 {
                let margin = f64::from(second) - f64::from(best.1);
                margins.record(margin);
                margin_sum += margin;
            }
        }
        let mean_margin = if k >= 2 && n > 0 { margin_sum / n as f64 } else { -1.0 };

        // Session-matrix row: same predictions, bucketed by task group.
        if let Some(matrix) = &mut self.session_matrix {
            matrix.record_predictions(generation, &self.probe, &predicted, &known_sorted);
        }

        // Per-class probe accuracy (only classes the model knows), probe
        // accuracy over those rows, and the old-class mean.
        let mut per_class: Vec<ClassQuality> = Vec::new();
        let mut known_correct = 0usize;
        let mut known_total = 0usize;
        let mut old_sum = 0.0f32;
        let mut old_classes = 0usize;
        for &label in &known {
            let rows = self.probe.class_indices(label);
            let accuracy = if rows.is_empty() {
                -1.0
            } else {
                let correct = rows.iter().filter(|&&r| predicted[r] == label).count();
                known_correct += correct;
                known_total += rows.len();
                correct as f32 / rows.len() as f32
            };
            if self.old_labels.contains(&label) && !rows.is_empty() {
                old_sum += accuracy;
                old_classes += 1;
            }
            per_class.push(ClassQuality { label, accuracy, drift: 0.0, drift_ratio: 0.0 });
        }
        per_class.sort_unstable_by_key(|c| c.label);
        let probe_accuracy =
            if known_total == 0 { -1.0 } else { known_correct as f32 / known_total as f32 };
        let old_class_accuracy =
            if old_classes == 0 { -1.0 } else { old_sum / old_classes as f32 };

        // Prototype drift against the previous generation.
        let mut worst_drift_ratio = 0.0f32;
        let mut current_prototypes: Vec<(usize, Vec<f32>)> = Vec::new();
        for class in &mut per_class {
            let Some(proto) = clf.prototype(class.label) else { continue };
            let current = proto.as_slice().to_vec();
            if let Some((_, prev)) =
                self.prev_prototypes.iter().find(|(l, _)| *l == class.label)
            {
                if prev.len() == current.len() {
                    let sq: f32 =
                        prev.iter().zip(&current).map(|(a, b)| (a - b) * (a - b)).sum();
                    let prev_norm: f32 = prev.iter().map(|v| v * v).sum::<f32>().sqrt();
                    class.drift = sq.sqrt();
                    class.drift_ratio = class.drift / prev_norm.max(NORM_FLOOR);
                    worst_drift_ratio = worst_drift_ratio.max(class.drift_ratio);
                }
            }
            current_prototypes.push((class.label, current));
        }

        // Forgetting versus the previous observation.
        let forgetting = match (self.prev_old_accuracy, old_class_accuracy >= 0.0) {
            (Some(before), true) => metrics::forgetting(before, old_class_accuracy),
            _ => 0.0,
        };

        // Threshold rules. Forgetting/drift thresholds may be adapted from
        // this monitor's own history; `self.reports` still holds only the
        // *prior* observations here, so a measurement never feeds its own
        // threshold.
        let effective = self.effective_thresholds();
        let mut alerts = Vec::new();
        if forgetting > effective.forgetting {
            alerts.push(QualityAlert {
                rule: AlertRule::Forgetting,
                generation,
                value: f64::from(forgetting),
                threshold: f64::from(effective.forgetting),
            });
        }
        if let (true, Some(baseline)) = (same_class_set, self.baseline_mean_margin) {
            let floor = self.thresholds.margin_collapse_ratio * baseline;
            if mean_margin >= 0.0 && mean_margin < floor {
                alerts.push(QualityAlert {
                    rule: AlertRule::MarginCollapse,
                    generation,
                    value: mean_margin,
                    threshold: floor,
                });
            }
        }
        if same_class_set && worst_drift_ratio > effective.drift_spike_ratio {
            alerts.push(QualityAlert {
                rule: AlertRule::DriftSpike,
                generation,
                value: f64::from(worst_drift_ratio),
                threshold: f64::from(effective.drift_spike_ratio),
            });
        }

        // Roll state forward. A changed class set re-anchors the margin
        // baseline: margins across different class counts are not
        // comparable.
        self.last_generation = Some(generation);
        if old_class_accuracy >= 0.0 {
            self.prev_old_accuracy = Some(old_class_accuracy);
        }
        if !same_class_set && mean_margin >= 0.0 {
            self.baseline_mean_margin = Some(mean_margin);
        }
        self.prev_prototypes = current_prototypes;
        self.prev_known = known_sorted;

        Ok(QualityReport {
            generation,
            probe_accuracy,
            old_class_accuracy,
            forgetting,
            mean_margin,
            margins,
            per_class,
            alerts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines;
    use crate::config::PiloteConfig;
    use crate::exemplar::SelectionStrategy;
    use pilote_har_data::dataset::generate_features;
    use pilote_har_data::{Activity, Simulator};
    use pilote_tensor::Rng64;

    /// Pre-trained Still/Walk model, Run training pool, held-out probe.
    fn fixture(seed: u64) -> (Pilote, Dataset, Dataset) {
        let mut sim = Simulator::with_seed(21);
        let (all, _) = generate_features(
            &mut sim,
            &[(Activity::Still, 50), (Activity::Walk, 50), (Activity::Run, 50)],
        )
        .unwrap();
        let mut rng = Rng64::new(2);
        let (train, test) = all.stratified_split(0.3, &mut rng).unwrap();
        let old = train
            .filter_classes(&[Activity::Still.label(), Activity::Walk.label()])
            .unwrap();
        let new = train.filter_classes(&[Activity::Run.label()]).unwrap();
        let cfg = PiloteConfig::fast_test(seed);
        let (model, _) = Pilote::pretrain(cfg, &old, 15, SelectionStrategy::Herding).unwrap();
        (model, new, test)
    }

    fn old_labels() -> Vec<usize> {
        vec![Activity::Still.label(), Activity::Walk.label()]
    }

    #[test]
    fn observe_gates_on_generation() {
        let (mut model, _, probe) = fixture(3);
        let mut monitor = QualityMonitor::new(probe, &old_labels(), Default::default());
        let first = monitor.observe(&mut model).unwrap();
        assert!(first.is_some(), "first call must take the baseline");
        assert!(
            monitor.observe(&mut model).unwrap().is_none(),
            "unchanged generation must not re-sample"
        );
        model.refresh_prototypes().unwrap();
        assert!(monitor.observe(&mut model).unwrap().is_some());
        assert_eq!(monitor.reports().len(), 2);
    }

    #[test]
    fn session_matrix_rows_follow_observations() {
        use crate::session_metrics::TaskGroup;
        let (mut model, new, probe) = fixture(3);
        let tasks = vec![
            TaskGroup::new("base", &old_labels()),
            TaskGroup::new("run", &[Activity::Run.label()]),
        ];
        let mut monitor = QualityMonitor::new(probe, &old_labels(), Default::default())
            .with_session_tasks(tasks);
        monitor.observe(&mut model).unwrap().expect("baseline");
        let matrix = monitor.session_matrix().expect("recording enabled");
        assert_eq!(matrix.sessions(), 1);
        assert!(!matrix.rows()[0].known[1], "Run not learned yet");
        assert!(matrix.at(0, 1) >= 0.0, "probe has Run rows, so FWT is measurable");

        model.learn_new_class(&new, 15).unwrap();
        let report = monitor.observe(&mut model).unwrap().expect("post-update");
        let matrix = monitor.session_matrix().expect("recording enabled");
        assert_eq!(matrix.sessions(), 2);
        assert_eq!(matrix.rows()[1].generation, report.generation);
        assert!(matrix.rows()[1].known[1], "Run learned in session 1");
        assert_eq!(matrix.learned_session(1), Some(1));
        // An unchanged generation stamps nothing.
        assert!(monitor.observe(&mut model).unwrap().is_none());
        assert_eq!(monitor.session_matrix().unwrap().sessions(), 2);
    }

    #[test]
    fn baseline_report_measures_accuracy_and_margins() {
        let (mut model, _, probe) = fixture(3);
        let mut monitor = QualityMonitor::new(probe, &old_labels(), Default::default());
        let report = monitor.observe(&mut model).unwrap().expect("baseline");
        assert_eq!(report.generation, model.generation());
        assert!(report.old_class_accuracy > 0.7, "pretrain should separate Still/Walk");
        assert_eq!(report.forgetting, 0.0, "no previous observation to forget against");
        assert!(report.mean_margin > 0.0);
        assert_eq!(
            report.margins.total(),
            // Every probe row gets a margin once ≥ 2 classes exist.
            monitor.probe.len() as u64,
        );
        assert!(report.alerts.is_empty(), "a healthy baseline must not alert");
        // Per-class rows are sorted and the unknown class (Run) is absent.
        let labels: Vec<usize> = report.per_class.iter().map(|c| c.label).collect();
        assert_eq!(labels, old_labels());
    }

    #[test]
    fn retrained_update_alerts_pilote_does_not() {
        // Seed chosen so the tiny fixture separates the two strategies
        // cleanly: Re-trained forgets past the 10-pt threshold, PILOTE
        // stays well under it.
        let (model, new, probe) = fixture(6);

        let mut pilote = model.clone_model();
        let mut pilote_monitor =
            QualityMonitor::new(probe.clone(), &old_labels(), Default::default());
        pilote_monitor.observe(&mut pilote).unwrap().expect("baseline");
        pilote.learn_new_class(&new, 15).unwrap();
        let pilote_report =
            pilote_monitor.observe(&mut pilote).unwrap().expect("post-update sample");
        assert!(
            pilote_report.alerts.is_empty(),
            "PILOTE (distillation on) must not alert — margin/drift rules are \
             suppressed across a class-set change and forgetting stays under \
             threshold: {pilote_report:?}"
        );

        let mut retrained = model.clone_model();
        let mut retrained_monitor =
            QualityMonitor::new(probe, &old_labels(), Default::default());
        retrained_monitor.observe(&mut retrained).unwrap().expect("baseline");
        baselines::retrained_update(&mut retrained, &new, 15).unwrap();
        let retrained_report =
            retrained_monitor.observe(&mut retrained).unwrap().expect("post-update sample");
        assert!(
            retrained_report.forgetting > pilote_report.forgetting,
            "re-training (no distillation) must forget more than PILOTE: {} vs {}",
            retrained_report.forgetting,
            pilote_report.forgetting
        );
        assert!(
            !retrained_report.alerts.is_empty(),
            "re-trained update must raise at least one alert: {retrained_report:?}"
        );
    }

    #[test]
    fn drift_spike_fires_when_a_prototype_jumps() {
        let (mut model, _, probe) = fixture(4);
        let mut monitor = QualityMonitor::new(probe, &old_labels(), Default::default());
        monitor.observe(&mut model).unwrap().expect("baseline");
        // Teleport one class's support far away: its prototype moves by
        // much more than its own norm.
        let label = Activity::Still.label();
        let moved = model.support().class(label).unwrap().add_scalar(100.0);
        model.support_mut().put_class(label, moved);
        model.refresh_prototypes().unwrap();
        let report = monitor.observe(&mut model).unwrap().expect("post-jump sample");
        assert!(
            report.alerts.iter().any(|a| a.rule == AlertRule::DriftSpike),
            "teleported prototype must trip the drift rule: {report:?}"
        );
        let still = report.per_class.iter().find(|c| c.label == label).unwrap();
        assert!(still.drift_ratio > 0.5, "drift ratio {}", still.drift_ratio);
    }

    #[test]
    fn margin_and_drift_rules_skip_class_set_changes() {
        // Learning a brand-new class redefines margins and legitimately
        // moves prototypes; only the forgetting rule may judge that
        // observation, and the margin baseline re-anchors at the new
        // class count.
        let (mut model, new, probe) = fixture(6);
        let mut monitor = QualityMonitor::new(probe, &old_labels(), Default::default());
        monitor.observe(&mut model).unwrap().expect("baseline");
        let two_class_baseline = monitor.baseline_mean_margin.expect("baseline margin");
        model.learn_new_class(&new, 15).unwrap();
        let report = monitor.observe(&mut model).unwrap().expect("post-update sample");
        assert!(
            !report
                .alerts
                .iter()
                .any(|a| matches!(a.rule, AlertRule::MarginCollapse | AlertRule::DriftSpike)),
            "margin/drift rules must not fire across a class-set change: {report:?}"
        );
        assert_ne!(
            monitor.baseline_mean_margin,
            Some(two_class_baseline),
            "the margin baseline must re-anchor at the new class set"
        );
        assert_eq!(monitor.baseline_mean_margin, Some(report.mean_margin));
        // Drift values are still measured and reported, just not alerted.
        assert!(
            report.per_class.iter().any(|c| c.drift > 0.0),
            "drift must still be reported: {report:?}"
        );
    }

    #[test]
    fn adaptive_effective_threshold_derivation() {
        let a = AdaptiveThresholds::default(); // window 4, min_history 3, headroom 3.0
        let base = 0.10;
        // Short history: base applies unchanged.
        assert_eq!(a.effective(base, &[0.0, 0.01]), base);
        // Perfectly stable history: 3σ = 0, clamped up to 0.5 × base — a
        // quiet device gets a tighter trigger, never a disabled rule.
        assert_eq!(a.effective(base, &[0.02, 0.02, 0.02, 0.02]), 0.5 * base);
        // Noisy history: 3σ blows past the cap, clamped to 2 × base.
        assert_eq!(a.effective(base, &[0.0, 0.4, 0.0, 0.4]), 2.0 * base);
        // Mild jitter lands between the clamps: σ(±0.02 around mean) =
        // 0.02, so 3σ = 0.06 ∈ [0.05, 0.20].
        let mid = a.effective(base, &[0.00, 0.04, 0.00, 0.04]);
        assert!((mid - 0.06).abs() < 1e-12, "got {mid}");
        // Only the last `window` observations count: the wild early value
        // falls outside the window and must not raise the threshold.
        assert_eq!(a.effective(base, &[9.0, 0.02, 0.02, 0.02, 0.02]), 0.5 * base);
    }

    #[test]
    fn monitor_adapts_thresholds_from_its_own_history() {
        let (mut model, _, probe) = fixture(3);
        let base = QualityThresholds::default();
        let mut monitor = QualityMonitor::new(probe, &old_labels(), base)
            .with_adaptive(AdaptiveThresholds::default());
        assert_eq!(
            monitor.effective_thresholds(),
            base,
            "no history yet: base thresholds apply"
        );
        // Three stable observations of an untouched model (generation
        // bumped by prototype refreshes): forgetting history is all-zero,
        // so the derived threshold clamps down to 0.5 × base.
        monitor.observe(&mut model).unwrap().expect("baseline");
        for _ in 0..2 {
            model.refresh_prototypes().unwrap();
            monitor.observe(&mut model).unwrap().expect("sample");
        }
        let eff = monitor.effective_thresholds();
        assert_eq!(eff.forgetting, 0.5 * base.forgetting);
        assert_eq!(eff.drift_spike_ratio, 0.5 * base.drift_spike_ratio);
        assert_eq!(
            eff.margin_collapse_ratio, base.margin_collapse_ratio,
            "the margin rule never adapts"
        );
        // The alert's recorded threshold must carry the effective value:
        // teleport a prototype and check the drift alert's threshold.
        let label = Activity::Still.label();
        let moved = model.support().class(label).unwrap().add_scalar(100.0);
        model.support_mut().put_class(label, moved);
        model.refresh_prototypes().unwrap();
        let report = monitor.observe(&mut model).unwrap().expect("post-jump");
        let drift = report
            .alerts
            .iter()
            .find(|a| a.rule == AlertRule::DriftSpike)
            .expect("teleported prototype must still alert");
        assert_eq!(drift.threshold, f64::from(eff.drift_spike_ratio));
    }

    #[test]
    fn report_serde_round_trip() {
        let (mut model, _, probe) = fixture(5);
        let mut monitor = QualityMonitor::new(probe, &old_labels(), Default::default());
        let report = monitor.observe(&mut model).unwrap().expect("baseline");
        let json = serde_json::to_string(&report).expect("serialise");
        let back: QualityReport = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, report);
    }
}

