//! Evaluation metrics: accuracy, confusion matrices (Fig. 4), per-class
//! scores and the forgetting measure.

use serde::{Deserialize, Serialize};

/// Fraction of predictions equal to the true label (0 for empty input).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn accuracy(predicted: &[usize], truth: &[usize]) -> f32 {
    assert_eq!(predicted.len(), truth.len(), "prediction/label length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let correct = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f32 / truth.len() as f32
}

/// Mean and population standard deviation of a sample of scores — the
/// "± " columns of Table 2.
pub fn mean_std(values: &[f32]) -> (f32, f32) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var = values.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
    (mean as f32, var.sqrt() as f32)
}

/// A confusion matrix over an explicit label set.
///
/// Row = true class, column = predicted class (both indexed by position in
/// `labels`). Predictions outside the label set are counted in a separate
/// `rejected` bucket rather than silently dropped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    labels: Vec<usize>,
    names: Vec<String>,
    counts: Vec<Vec<u64>>,
    rejected: u64,
}

impl ConfusionMatrix {
    /// Empty matrix over `labels`, with display `names` (same order).
    ///
    /// # Panics
    /// Panics if `labels` and `names` differ in length or labels repeat.
    pub fn new(labels: &[usize], names: &[String]) -> Self {
        assert_eq!(labels.len(), names.len(), "labels/names length mismatch");
        let mut dedup = labels.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "duplicate labels");
        ConfusionMatrix {
            labels: labels.to_vec(),
            names: names.to_vec(),
            counts: vec![vec![0; labels.len()]; labels.len()],
            rejected: 0,
        }
    }

    /// Builds and fills a matrix in one step.
    pub fn from_predictions(
        labels: &[usize],
        names: &[String],
        predicted: &[usize],
        truth: &[usize],
    ) -> Self {
        let mut m = ConfusionMatrix::new(labels, names);
        m.record_all(predicted, truth);
        m
    }

    /// Records one `(predicted, true)` observation.
    pub fn record(&mut self, predicted: usize, truth: usize) {
        let Some(row) = self.labels.iter().position(|&l| l == truth) else {
            self.rejected += 1;
            return;
        };
        match self.labels.iter().position(|&l| l == predicted) {
            Some(col) => self.counts[row][col] += 1,
            None => self.rejected += 1,
        }
    }

    /// Records a batch of observations.
    pub fn record_all(&mut self, predicted: &[usize], truth: &[usize]) {
        assert_eq!(predicted.len(), truth.len(), "prediction/label length mismatch");
        for (&p, &t) in predicted.iter().zip(truth) {
            self.record(p, t);
        }
    }

    /// The label set (row/column order).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Count at `(true_label, predicted_label)`.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        let row = self.labels.iter().position(|&l| l == truth).expect("unknown true label");
        let col = self.labels.iter().position(|&l| l == predicted).expect("unknown predicted label");
        self.counts[row][col]
    }

    /// Observations whose true or predicted label was outside the label set.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Total recorded observations (excluding rejected).
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.labels.len()).map(|i| self.counts[i][i]).sum();
        diag as f32 / total as f32
    }

    /// Recall of one class (diagonal / row sum).
    pub fn recall(&self, label: usize) -> f32 {
        let row = self.labels.iter().position(|&l| l == label).expect("unknown label");
        let sum: u64 = self.counts[row].iter().sum();
        if sum == 0 {
            return 0.0;
        }
        self.counts[row][row] as f32 / sum as f32
    }

    /// Precision of one class (diagonal / column sum).
    pub fn precision(&self, label: usize) -> f32 {
        let col = self.labels.iter().position(|&l| l == label).expect("unknown label");
        let sum: u64 = (0..self.labels.len()).map(|r| self.counts[r][col]).sum();
        if sum == 0 {
            return 0.0;
        }
        self.counts[col][col] as f32 / sum as f32
    }

    /// Macro-averaged F1 score.
    pub fn macro_f1(&self) -> f32 {
        let k = self.labels.len();
        if k == 0 {
            return 0.0;
        }
        let mut sum = 0.0f32;
        for &label in &self.labels {
            let p = self.precision(label);
            let r = self.recall(label);
            sum += if p + r > 0.0 { 2.0 * p * r / (p + r) } else { 0.0 };
        }
        sum / k as f32
    }

    /// Row-normalised rates (each row sums to 1 where it has data).
    pub fn normalized(&self) -> Vec<Vec<f32>> {
        self.counts
            .iter()
            .map(|row| {
                let sum: u64 = row.iter().sum();
                row.iter()
                    .map(|&c| if sum == 0 { 0.0 } else { c as f32 / sum as f32 })
                    .collect()
            })
            .collect()
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let width = self.names.iter().map(|n| n.len()).max().unwrap_or(4).max(6);
        write!(f, "{:>width$} |", "t\\p")?;
        for name in &self.names {
            write!(f, " {name:>width$}")?;
        }
        writeln!(f)?;
        for (i, name) in self.names.iter().enumerate() {
            write!(f, "{name:>width$} |")?;
            for j in 0..self.names.len() {
                write!(f, " {:>width$}", self.counts[i][j])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The forgetting measure used in our analysis: the drop in old-class
/// accuracy after an incremental update (positive = forgot).
pub fn forgetting(old_acc_before: f32, old_acc_after: f32) -> f32 {
    old_acc_before - old_acc_after
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: &[&str]) -> Vec<String> {
        n.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 4]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn mean_std_known() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-6);
        assert!((s - (2.0f32 / 3.0).sqrt()).abs() < 1e-6);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn confusion_counts_and_accuracy() {
        let mut m = ConfusionMatrix::new(&[2, 4], &names(&["Run", "Walk"]));
        m.record_all(&[2, 2, 4, 2], &[2, 4, 4, 2]);
        assert_eq!(m.count(2, 2), 2);
        assert_eq!(m.count(4, 2), 1);
        assert_eq!(m.count(4, 4), 1);
        assert_eq!(m.total(), 4);
        assert_eq!(m.accuracy(), 0.75);
    }

    #[test]
    fn rejected_bucket_for_unknown_labels() {
        let mut m = ConfusionMatrix::new(&[0], &names(&["a"]));
        m.record(1, 0); // unknown prediction
        m.record(0, 1); // unknown truth
        assert_eq!(m.rejected(), 2);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn precision_recall_f1() {
        let mut m = ConfusionMatrix::new(&[0, 1], &names(&["a", "b"]));
        // truth 0: 8 correct, 2 → 1 ; truth 1: 1 → 0, 9 correct
        for _ in 0..8 {
            m.record(0, 0);
        }
        for _ in 0..2 {
            m.record(1, 0);
        }
        m.record(0, 1);
        for _ in 0..9 {
            m.record(1, 1);
        }
        assert!((m.recall(0) - 0.8).abs() < 1e-6);
        assert!((m.precision(0) - 8.0 / 9.0).abs() < 1e-6);
        assert!((m.recall(1) - 0.9).abs() < 1e-6);
        let f1 = m.macro_f1();
        assert!(f1 > 0.8 && f1 < 0.9, "f1 {f1}");
    }

    #[test]
    fn normalized_rows_sum_to_one() {
        let mut m = ConfusionMatrix::new(&[0, 1], &names(&["a", "b"]));
        m.record_all(&[0, 1, 1], &[0, 0, 1]);
        let n = m.normalized();
        for row in &n {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn display_contains_names_and_counts() {
        let mut m = ConfusionMatrix::new(&[0, 1], &names(&["Run", "Walk"]));
        m.record(0, 0);
        let s = m.to_string();
        assert!(s.contains("Run"));
        assert!(s.contains("Walk"));
    }

    #[test]
    fn empty_matrix_metrics_are_zero() {
        let m = ConfusionMatrix::new(&[0, 1], &names(&["a", "b"]));
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.recall(0), 0.0);
        assert_eq!(m.precision(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "duplicate labels")]
    fn duplicate_labels_rejected() {
        let _ = ConfusionMatrix::new(&[1, 1], &names(&["a", "b"]));
    }

    #[test]
    fn forgetting_sign_convention() {
        assert!(forgetting(0.9, 0.7) > 0.0);
        assert!(forgetting(0.7, 0.9) < 0.0);
    }
}
