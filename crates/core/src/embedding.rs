//! The Siamese embedding network φ_Θ.

use crate::config::NetConfig;
use pilote_nn::{BatchNorm1d, Dense, Layer, Mode, ReLU, Sequential};
use pilote_tensor::{Rng64, Tensor};

/// The embedding network: a fully connected stack with BatchNorm + ReLU on
/// every hidden layer and a linear final projection into the embedding
/// space.
///
/// "Siamese" refers to usage, not architecture: both members of a
/// contrastive pair pass through the *same* network, so the two branches
/// are realised by stacking both pair members into one batch.
pub struct EmbeddingNet {
    net: Sequential,
    config: NetConfig,
}

impl EmbeddingNet {
    /// Builds a freshly initialised network.
    pub fn new(config: NetConfig, rng: &mut Rng64) -> Self {
        let mut net = Sequential::new();
        let mut prev = config.input_dim;
        for &width in &config.hidden {
            net.push_boxed(Box::new(Dense::new(prev, width, rng)));
            net.push_boxed(Box::new(BatchNorm1d::new(width)));
            net.push_boxed(Box::new(ReLU::new()));
            prev = width;
        }
        net.push_boxed(Box::new(Dense::new(prev, config.embedding_dim, rng)));
        EmbeddingNet { net, config }
    }

    /// The architecture this network was built from.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Embeds a `[n, input_dim]` batch in inference mode (running batch
    /// statistics, no dropout).
    pub fn embed(&mut self, features: &Tensor) -> Tensor {
        self.net.forward(features, Mode::Eval)
    }

    /// Training-mode forward (batch statistics); caches activations for
    /// [`EmbeddingNet::backward`].
    pub fn forward_train(&mut self, features: &Tensor) -> Tensor {
        self.net.forward(features, Mode::Train)
    }

    /// Forward in an explicit mode, caching activations for
    /// [`EmbeddingNet::backward`]. `Mode::Eval` freezes the batch-norm
    /// statistics while still supporting backprop — the fine-tuning mode
    /// used by edge updates.
    pub fn forward_mode(&mut self, features: &Tensor, mode: Mode) -> Tensor {
        self.net.forward(features, mode)
    }

    /// Backpropagates an embedding-space gradient, accumulating parameter
    /// gradients.
    pub fn backward(&mut self, grad_embedding: &Tensor) -> Tensor {
        self.net.backward(grad_embedding)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.net.zero_grad();
    }

    /// Mutable access to the underlying layer stack (for optimizers).
    pub fn layers_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// Total trainable parameters.
    pub fn param_count(&mut self) -> usize {
        self.net.param_count()
    }

    /// Deep copy — the frozen teacher for distillation.
    pub fn clone_frozen(&self) -> EmbeddingNet {
        EmbeddingNet { net: self.net.clone(), config: self.config.clone() }
    }

    /// Parameter snapshot (see [`Sequential::state_dict`]).
    pub fn state_dict(&mut self) -> Vec<Tensor> {
        self.net.state_dict()
    }

    /// Restores a parameter snapshot.
    pub fn load_state_dict(&mut self, state: &[Tensor]) {
        self.net.load_state_dict(state);
    }
}

impl std::fmt::Debug for EmbeddingNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingNet").field("config", &self.config).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_architecture_parameter_count() {
        let mut rng = Rng64::new(1);
        let mut net = EmbeddingNet::new(NetConfig::paper(), &mut rng);
        // Dense layers: 80·1024+1024 + 1024·512+512 + 512·128+128 + 128·64+64 + 64·128+128
        // BN layers: 2·(1024+512+128+64)
        let dense = 80 * 1024 + 1024 + 1024 * 512 + 512 + 512 * 128 + 128 + 128 * 64 + 64 + 64 * 128 + 128;
        let bn = 2 * (1024 + 512 + 128 + 64);
        assert_eq!(net.param_count(), dense + bn);
    }

    #[test]
    fn embed_produces_embedding_dim() {
        let mut rng = Rng64::new(2);
        let cfg = NetConfig::small();
        let mut net = EmbeddingNet::new(cfg.clone(), &mut rng);
        let x = Tensor::randn([7, cfg.input_dim], 0.0, 1.0, &mut rng);
        let e = net.embed(&x);
        assert_eq!(e.shape().dims(), &[7, cfg.embedding_dim]);
        assert!(e.all_finite());
    }

    #[test]
    fn frozen_clone_does_not_track_student() {
        let mut rng = Rng64::new(3);
        let mut net = EmbeddingNet::new(NetConfig::small(), &mut rng);
        let mut teacher = net.clone_frozen();
        let x = Tensor::randn([4, 80], 0.0, 1.0, &mut rng);
        let before = teacher.embed(&x);
        // "Train" the student a bit.
        let out = net.forward_train(&x);
        net.backward(&Tensor::ones(out.shape().clone()));
        for (p, g) in net.layers_mut().params_and_grads() {
            p.axpy(-0.1, g).unwrap();
        }
        let after = teacher.embed(&x);
        assert!(before.max_abs_diff(&after).unwrap() < 1e-6);
        assert!(net.embed(&x).max_abs_diff(&before).unwrap() > 1e-3);
    }

    #[test]
    fn state_dict_round_trip_preserves_embeddings() {
        let mut rng = Rng64::new(4);
        let mut net = EmbeddingNet::new(NetConfig::small(), &mut rng);
        let x = Tensor::randn([3, 80], 0.0, 1.0, &mut rng);
        let before = net.embed(&x);
        let saved = net.state_dict();
        for (p, _) in net.layers_mut().params_and_grads() {
            p.map_inplace(|v| v + 0.5);
        }
        net.load_state_dict(&saved);
        assert!(net.embed(&x).max_abs_diff(&before).unwrap() < 1e-6);
    }
}
