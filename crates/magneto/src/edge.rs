//! The edge side of MAGNETO: install a deployment once, then stream,
//! classify and incrementally learn — all on-device.
//!
//! Resilience (see `docs/RESILIENCE.md`): installs retry flaky transfers
//! with exponential backoff, incremental updates snapshot a last-good
//! [`Checkpoint`] and roll back on any failure, and persistent failures
//! degrade the device to its frozen pre-trained deployment — it keeps
//! classifying the old classes rather than going dark.

use crate::cloud::{Deployment, PackageError, RollupError};
use crate::events::{EventKind, EventLog};
use crate::federated::FederatedError;
use pilote_core::{
    AccuracyMatrix, AdaptiveThresholds, EmbeddingNet, NcmClassifier, Pilote, QualityMonitor,
    QualityReport, QualityThresholds, SupportSet, TaskGroup, UpdateOutcome,
};
use pilote_edge_sim::faults::{FlakyLink, LinkFault, RetryPolicy};
use pilote_edge_sim::{DeviceProfile, LinkModel};
use pilote_har_data::dataset::Dataset;
use pilote_har_data::preprocess::PreprocessError;
use pilote_har_data::stream::{DriftMonitor, WindowAssembler};
use pilote_har_data::sensors::WINDOW_LEN;
use pilote_har_data::FEATURE_DIM;
use pilote_nn::persist::{Checkpoint, CheckpointError};
use pilote_obs::work;
use pilote_tensor::{Rng64, Tensor, TensorError};

/// Typed errors for edge-device operations.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// Preprocessing rejected the input stream.
    Preprocess(PreprocessError),
    /// The deployment checkpoint could not be loaded.
    Checkpoint(CheckpointError),
    /// The cloud→edge transfer exhausted its retry budget.
    Link {
        /// Attempts made before giving up.
        attempts: usize,
        /// The last fault observed.
        last: LinkFault,
    },
    /// The deployment payload could not be serialised for the wire.
    Package(PackageError),
    /// A federated aggregation step failed.
    Federated(FederatedError),
    /// The fleet telemetry rollup could not merge per-device snapshots.
    Rollup(RollupError),
}

impl std::fmt::Display for EdgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeError::Tensor(e) => write!(f, "tensor error: {e}"),
            EdgeError::Preprocess(e) => write!(f, "preprocess error: {e}"),
            EdgeError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            EdgeError::Link { attempts, last } => {
                write!(f, "transfer failed after {attempts} attempts: {last}")
            }
            EdgeError::Package(e) => write!(f, "package error: {e}"),
            EdgeError::Federated(e) => write!(f, "federated error: {e}"),
            EdgeError::Rollup(e) => write!(f, "rollup error: {e}"),
        }
    }
}

impl std::error::Error for EdgeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeError::Tensor(e) => Some(e),
            EdgeError::Preprocess(e) => Some(e),
            EdgeError::Checkpoint(e) => Some(e),
            EdgeError::Link { .. } => None,
            EdgeError::Package(e) => Some(e),
            EdgeError::Federated(e) => Some(e),
            EdgeError::Rollup(e) => Some(e),
        }
    }
}

impl From<TensorError> for EdgeError {
    fn from(e: TensorError) -> Self {
        EdgeError::Tensor(e)
    }
}

impl From<PreprocessError> for EdgeError {
    fn from(e: PreprocessError) -> Self {
        EdgeError::Preprocess(e)
    }
}

impl From<CheckpointError> for EdgeError {
    fn from(e: CheckpointError) -> Self {
        EdgeError::Checkpoint(e)
    }
}

impl From<PackageError> for EdgeError {
    fn from(e: PackageError) -> Self {
        EdgeError::Package(e)
    }
}

impl From<FederatedError> for EdgeError {
    fn from(e: FederatedError) -> Self {
        EdgeError::Federated(e)
    }
}

impl From<RollupError> for EdgeError {
    fn from(e: RollupError) -> Self {
        EdgeError::Rollup(e)
    }
}

/// Result of classifying one streamed window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceOutcome {
    /// Predicted activity label.
    pub predicted: usize,
    /// Squared embedding-space distance to the winning prototype — a
    /// confidence proxy (smaller = more confident).
    pub distance: f32,
}

/// Status of a fault-aware incremental update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateStatus {
    /// The update completed and passed post-update validation.
    Completed,
    /// The update failed; the last-good checkpoint + exemplar set were
    /// restored and the pending samples kept for a retry.
    RolledBack,
    /// Consecutive failures exhausted the retry budget; the device fell
    /// back to its frozen pre-trained deployment.
    Degraded,
}

/// Consecutive update failures after which a device degrades to its
/// pre-trained deployment.
pub const MAX_UPDATE_FAILURES: u32 = 3;

/// An edge device running the MAGNETO recognition loop.
pub struct EdgeDevice {
    profile: DeviceProfile,
    model: Pilote,
    assembler: WindowAssembler,
    drift: Option<DriftMonitor>,
    log: EventLog,
    /// Buffered labelled samples awaiting the next incremental update.
    pending: Vec<(usize, Tensor)>,
    /// The as-installed deployment (parameters + exemplars) — the frozen
    /// pre-trained state the device degrades to under persistent faults.
    baseline: (Checkpoint, SupportSet),
    /// The most recent model state whose quality sample raised no alerts
    /// (parameters + exemplars; starts at the installed baseline). The
    /// fleet policy's strike-1 repair restores this snapshot.
    last_good: (Checkpoint, SupportSet),
    /// Consecutive failed incremental updates.
    update_failures: u32,
    degraded: bool,
    /// Serving-side prototype cache: a snapshot of the NCM classifier
    /// keyed by the model generation it was built from. Batched serving
    /// classifies against this snapshot; any committed model change
    /// (incremental update, rollback, degradation, federated install)
    /// bumps the generation and invalidates it lazily on the next serve.
    serve_cache: Option<ServeCache>,
    /// Cache rebuilds performed by [`EdgeDevice::serve_batch`] so far.
    cache_rebuilds: u64,
    /// Model-quality monitor (forgetting / drift / margins), armed via
    /// [`EdgeDevice::arm_quality_monitor`]. Sampled at every generation
    /// bump; fired rules surface as [`EventKind::AlertRaised`].
    quality: Option<QualityMonitor>,
    /// Telemetry state as of the last delta upload
    /// ([`EdgeDevice::telemetry_delta`]); the next delta ships only what
    /// accumulated since.
    telemetry_baseline: pilote_obs::Snapshot,
}

/// Pre-install device state captured by [`EdgeDevice::policy_snapshot`]
/// so a halted staged rollout can restore the device exactly.
pub(crate) struct PolicySnapshot {
    checkpoint: Checkpoint,
    support: SupportSet,
    baseline: (Checkpoint, SupportSet),
    last_good: (Checkpoint, SupportSet),
    update_failures: u32,
    degraded: bool,
}

/// The cached classifier snapshot behind [`EdgeDevice::serve_batch`].
struct ServeCache {
    /// [`pilote_core::Pilote::generation`] the snapshot was taken at.
    generation: u64,
    /// Clone of the model's classifier at that generation.
    classifier: NcmClassifier,
}

impl EdgeDevice {
    /// Installs a cloud deployment onto a device, recording the download
    /// on the given link (Fig. 2 right, step i).
    pub fn install(
        profile: DeviceProfile,
        deployment: &Deployment,
        link: &LinkModel,
    ) -> Result<EdgeDevice, EdgeError> {
        Self::install_presized(profile, deployment, link, deployment.wire_bytes()?)
    }

    /// [`EdgeDevice::install`] with the deployment's wire size computed
    /// once by the caller. `payload_bytes` must equal
    /// [`Deployment::wire_bytes`] for this deployment — the value feeds
    /// the link transfer charge and the `Deployed` event, so a wrong size
    /// corrupts the device's virtual clock. Fleet installs amortize one
    /// serialization across the whole roster this way: the package is
    /// identical for every device, and re-serializing it per install
    /// dominates large-roster deploy time.
    pub fn install_presized(
        profile: DeviceProfile,
        deployment: &Deployment,
        link: &LinkModel,
        payload_bytes: u64,
    ) -> Result<EdgeDevice, EdgeError> {
        let mut log = EventLog::new();
        log.advance(link.transfer_seconds(payload_bytes));
        Self::build(profile, deployment, log, payload_bytes)
    }

    /// Installs over a flaky link, retrying failed transfer attempts with
    /// the policy's exponential backoff until success, the attempt budget,
    /// or the deadline. Every retry is recorded in the device's
    /// [`EventLog`]; an exhausted budget returns [`EdgeError::Link`].
    pub fn install_resilient(
        profile: DeviceProfile,
        deployment: &Deployment,
        flaky: &mut FlakyLink,
        policy: &RetryPolicy,
    ) -> Result<EdgeDevice, EdgeError> {
        let payload = deployment.wire_bytes()?;
        let mut log = EventLog::new();
        let mut last = None;
        let mut attempts = 0usize;
        for attempt in 1..=policy.max_attempts {
            let backoff = policy.backoff_before(attempt);
            if log.now() + backoff > policy.deadline_s {
                break;
            }
            log.advance(backoff);
            attempts = attempt;
            let (cost, result) = flaky.attempt(payload);
            log.advance(cost);
            match result {
                Ok(()) => return Self::build(profile, deployment, log, payload),
                Err(fault) => {
                    last = Some(fault);
                    log.record(EventKind::TransferRetried {
                        attempt,
                        backoff_seconds: policy.backoff_before(attempt + 1),
                    });
                }
            }
            if log.now() >= policy.deadline_s {
                break;
            }
        }
        Err(EdgeError::Link {
            attempts,
            last: last.unwrap_or(LinkFault::Dropped),
        })
    }

    /// Shared install tail: load the checkpoint, snapshot the baseline,
    /// stamp the `Deployed` event on the provided (already-advanced) log.
    fn build(
        profile: DeviceProfile,
        deployment: &Deployment,
        mut log: EventLog,
        payload_bytes: u64,
    ) -> Result<EdgeDevice, EdgeError> {
        let mut rng = Rng64::new(deployment.config.seed ^ 0xed6e);
        let mut net = EmbeddingNet::new(deployment.config.net.clone(), &mut rng);
        deployment.checkpoint.restore(net.layers_mut())?;
        let mut model = Pilote::from_parts(
            deployment.config.clone(),
            net,
            deployment.support.clone(),
            rng,
        )?;
        // Serve from the shipped prototypes when the package carries them
        // — at quantised wire precisions these are the dequantised values,
        // so quantisation error reaches the serve path instead of being
        // silently repaired by a local recompute.
        if let Some(p) = &deployment.prototypes {
            model.install_prototypes(p.labels.clone(), p.matrix.clone())?;
        }
        let assembler = WindowAssembler::new(WINDOW_LEN, WINDOW_LEN, 1)
            .with_normalizer(deployment.normalizer.clone());
        log.record(EventKind::Deployed { payload_bytes });
        let baseline = (deployment.checkpoint.clone(), deployment.support.clone());
        Ok(EdgeDevice {
            profile,
            model,
            assembler,
            drift: None,
            log,
            pending: Vec::new(),
            last_good: baseline.clone(),
            baseline,
            update_failures: 0,
            degraded: false,
            serve_cache: None,
            cache_rebuilds: 0,
            quality: None,
            telemetry_baseline: pilote_obs::Snapshot::default(),
        })
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Known activity labels.
    pub fn known_classes(&self) -> Vec<usize> {
        self.model.classifier().labels().to_vec()
    }

    /// Whether the device has degraded to its pre-trained deployment.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Consecutive failed incremental updates.
    pub fn update_failures(&self) -> u32 {
        self.update_failures
    }

    /// Windows dropped by the assembler's quarantine so far.
    pub fn quarantined_windows(&self) -> u64 {
        self.assembler.quarantined()
    }

    /// Arms the drift monitor with a reference feature matrix.
    pub fn arm_drift_monitor(&mut self, reference: &Tensor, threshold: f32) -> Result<(), EdgeError> {
        self.drift = Some(DriftMonitor::from_reference(reference, threshold)?);
        Ok(())
    }

    /// Arms the model-quality monitor with a held-out probe set (already
    /// in model feature space) and immediately takes the baseline
    /// observation at the current generation. `old_labels` are the classes
    /// whose accuracy the forgetting score tracks. Subsequent generation
    /// bumps (updates, rollbacks, degradation, federated installs) are
    /// sampled automatically; fired rules raise
    /// [`EventKind::AlertRaised`] in the device log.
    pub fn arm_quality_monitor(
        &mut self,
        probe: Dataset,
        old_labels: &[usize],
        thresholds: QualityThresholds,
    ) -> Result<(), EdgeError> {
        self.quality = Some(QualityMonitor::new(probe, old_labels, thresholds));
        self.sample_quality()?;
        Ok(())
    }

    /// [`EdgeDevice::arm_quality_monitor`] plus session-matrix recording:
    /// every observation also stamps one row of a session × task
    /// [`AccuracyMatrix`] (see `pilote_core::session_metrics` and
    /// `docs/METRICS.md`) and records [`EventKind::SessionRecorded`]. The
    /// baseline observation taken here is row 0, so pre-learning accuracy
    /// on not-yet-known tasks (forward transfer) is measured from the
    /// start.
    pub fn arm_quality_monitor_with_sessions(
        &mut self,
        probe: Dataset,
        old_labels: &[usize],
        thresholds: QualityThresholds,
        tasks: Vec<TaskGroup>,
    ) -> Result<(), EdgeError> {
        self.quality =
            Some(QualityMonitor::new(probe, old_labels, thresholds).with_session_tasks(tasks));
        self.sample_quality()?;
        Ok(())
    }

    /// The armed monitor's session × task accuracy matrix, when recording
    /// was enabled via [`EdgeDevice::arm_quality_monitor_with_sessions`].
    pub fn session_matrix(&self) -> Option<&AccuracyMatrix> {
        self.quality.as_ref().and_then(|m| m.session_matrix())
    }

    /// Samples the quality monitor if it is armed and the model generation
    /// moved since the last observation. The probe evaluation is charged
    /// to the virtual clock as modeled device work, and every alert in the
    /// report is raised as an [`EventKind::AlertRaised`] event.
    pub fn sample_quality(&mut self) -> Result<Option<QualityReport>, EdgeError> {
        let Some(monitor) = &mut self.quality else {
            return Ok(None);
        };
        let span = pilote_obs::span("edge.quality_sample");
        let flops_before = work::thread_flops();
        let report = monitor.observe(&mut self.model)?;
        // When the monitor records a session matrix, a fresh report means
        // a fresh row — summarise it for the event log while the monitor
        // borrow is live.
        let session_row = match (&report, monitor.session_matrix()) {
            (Some(_), Some(matrix)) => {
                let session = matrix.sessions().saturating_sub(1);
                let summary = matrix.summary();
                Some((session as u64, summary.average_accuracy, summary.final_forgetting))
            }
            _ => None,
        };
        let flops = work::thread_flops().wrapping_sub(flops_before);
        let device_seconds = self.profile.seconds_for_flops(flops);
        span.annotate("device_seconds", device_seconds);
        drop(span);
        self.log.advance(device_seconds);
        if let Some(report) = &report {
            if let Some((session, average_accuracy, forgetting)) = session_row {
                self.log.record(EventKind::SessionRecorded {
                    session,
                    generation: report.generation,
                    average_accuracy,
                    forgetting,
                });
            }
            for alert in &report.alerts {
                self.log.record(EventKind::AlertRaised {
                    rule: alert.rule.name().to_string(),
                    generation: alert.generation,
                    value: alert.value,
                    threshold: alert.threshold,
                });
            }
            if report.alerts.is_empty() {
                // An alert-free sample certifies the current state: make
                // it the rollback target for the policy's strike-1 repair.
                self.last_good = (
                    Checkpoint::capture(self.model.net_mut().layers_mut()),
                    self.model.support().clone(),
                );
            }
        }
        Ok(report)
    }

    /// The armed quality monitor's reports so far (the device's forgetting
    /// curve), or an empty slice when no monitor is armed.
    pub fn quality_reports(&self) -> &[QualityReport] {
        self.quality.as_ref().map(|m| m.reports()).unwrap_or(&[])
    }

    /// Enables (or disables, with `None`) per-device adaptive threshold
    /// derivation on the armed quality monitor — the forgetting/drift
    /// thresholds then track this device's own probe history instead of
    /// the shared constants (see [`pilote_core::AdaptiveThresholds`]).
    /// No-op when no monitor is armed.
    pub fn set_adaptive_thresholds(&mut self, adaptive: Option<AdaptiveThresholds>) {
        if let Some(monitor) = &mut self.quality {
            monitor.set_adaptive(adaptive);
        }
    }

    /// Restores the device's last alert-free state (the policy's strike-1
    /// repair), charging the prototype refresh to the virtual clock and
    /// recording [`EventKind::RepairRollback`].
    pub fn repair_rollback(&mut self, strike: u32) -> Result<(), EdgeError> {
        let (ckpt, support) = self.last_good.clone();
        let flops_before = work::thread_flops();
        ckpt.restore(self.model.net_mut().layers_mut())?;
        *self.model.support_mut() = support;
        self.model.refresh_prototypes()?;
        let flops = work::thread_flops().wrapping_sub(flops_before);
        self.log.advance(self.profile.seconds_for_flops(flops));
        self.log.record(EventKind::RepairRollback { strike });
        Ok(())
    }

    /// Installs a cloud package **in place** (the policy's strike-2
    /// re-anchor, or a staged deployment rollout): restores the package's
    /// parameters + exemplars, refreshes prototypes, resets the
    /// degradation ladder, and re-bases both the degradation baseline and
    /// the last-good snapshot on the package. The caller charges the
    /// download on the device's link.
    pub fn adopt_deployment(&mut self, deployment: &Deployment) -> Result<(), EdgeError> {
        let flops_before = work::thread_flops();
        deployment.checkpoint.restore(self.model.net_mut().layers_mut())?;
        *self.model.support_mut() = deployment.support.clone();
        self.model.refresh_prototypes()?;
        if let Some(p) = &deployment.prototypes {
            self.model.install_prototypes(p.labels.clone(), p.matrix.clone())?;
        }
        let flops = work::thread_flops().wrapping_sub(flops_before);
        self.log.advance(self.profile.seconds_for_flops(flops));
        self.baseline = (deployment.checkpoint.clone(), deployment.support.clone());
        self.last_good = self.baseline.clone();
        self.update_failures = 0;
        self.degraded = false;
        Ok(())
    }

    /// Freezes the device on its pre-trained baseline (the policy's
    /// strike-3 repair — same terminal state as [`MAX_UPDATE_FAILURES`]
    /// crash failures, but driven by model quality).
    pub fn policy_degrade(&mut self, strike: u32) -> Result<(), EdgeError> {
        let flops_before = work::thread_flops();
        self.baseline.0.restore(self.model.net_mut().layers_mut())?;
        *self.model.support_mut() = self.baseline.1.clone();
        self.model.refresh_prototypes()?;
        let flops = work::thread_flops().wrapping_sub(flops_before);
        self.log.advance(self.profile.seconds_for_flops(flops));
        self.pending.clear();
        self.degraded = true;
        self.log.record(EventKind::DegradedToPretrained { failures: strike });
        Ok(())
    }

    /// Captures the full policy-relevant state before a staged install so
    /// a halted rollout can restore it exactly.
    pub(crate) fn policy_snapshot(&mut self) -> PolicySnapshot {
        PolicySnapshot {
            checkpoint: Checkpoint::capture(self.model.net_mut().layers_mut()),
            support: self.model.support().clone(),
            baseline: self.baseline.clone(),
            last_good: self.last_good.clone(),
            update_failures: self.update_failures,
            degraded: self.degraded,
        }
    }

    /// Restores a [`EdgeDevice::policy_snapshot`] exactly (parameters,
    /// exemplars, ladder state), charging the prototype refresh to the
    /// virtual clock.
    pub(crate) fn policy_restore(&mut self, snap: PolicySnapshot) -> Result<(), EdgeError> {
        let flops_before = work::thread_flops();
        snap.checkpoint.restore(self.model.net_mut().layers_mut())?;
        *self.model.support_mut() = snap.support;
        self.model.refresh_prototypes()?;
        let flops = work::thread_flops().wrapping_sub(flops_before);
        self.log.advance(self.profile.seconds_for_flops(flops));
        self.baseline = snap.baseline;
        self.last_good = snap.last_good;
        self.update_failures = snap.update_failures;
        self.degraded = snap.degraded;
        Ok(())
    }

    /// Feeds a block of raw sensor samples (`[n, 22]`), classifying every
    /// completed window. Virtual time advances by the block's duration.
    ///
    /// Windows containing non-finite samples are quarantined by the
    /// assembler (never classified, never shown to the drift monitor) and
    /// surface as a [`EventKind::WindowsQuarantined`] log entry.
    pub fn stream(&mut self, samples: &Tensor) -> Result<Vec<InferenceOutcome>, EdgeError> {
        let quarantined_before = self.assembler.quarantined();
        let features = self.assembler.push_block(samples)?;
        let mut out = Vec::with_capacity(features.len());
        for f in features {
            let row = f.reshape([1, FEATURE_DIM])?;
            // Charge the virtual clock by *modeled* work, never by a host
            // wall-clock measurement: the flop delta below is a pure
            // function of the operand shapes, so the trace is identical on
            // a loaded laptop and an idle server (see docs/OBSERVABILITY.md).
            let flops_before = work::thread_flops();
            let emb = self.model.embed(&row);
            let dists = self.model.classifier().distances(&emb)?;
            let predicted = self.model.classifier().labels()[dists.argmin_rows()?[0]];
            let flops = work::thread_flops().wrapping_sub(flops_before);
            self.log.advance(self.profile.seconds_for_flops(flops));
            self.log.record(EventKind::Inference { predicted });
            if let Some(monitor) = &mut self.drift {
                monitor.observe(&f);
                if monitor.drifted() {
                    self.log.record(EventKind::DriftDetected { max_shift: monitor.max_shift() });
                    monitor.reset();
                }
            }
            out.push(InferenceOutcome { predicted, distance: dists.min()? });
        }
        // Real-time stream: n samples at 120 Hz.
        self.log.advance(samples.rows() as f64 / 120.0);
        let quarantined = self.assembler.quarantined() - quarantined_before;
        if quarantined > 0 {
            self.log.record(EventKind::WindowsQuarantined { windows: quarantined });
        }
        Ok(out)
    }

    /// Buffers one user-labelled feature vector (e.g. the user tagged a
    /// session with a new activity name).
    pub fn label_sample(&mut self, label: usize, features: Tensor) {
        assert_eq!(features.len(), FEATURE_DIM, "feature width mismatch");
        self.pending.push((label, features));
    }

    /// Labelled samples waiting for the next update.
    pub fn pending_samples(&self) -> usize {
        self.pending.len()
    }

    /// Runs the PILOTE incremental update on the buffered samples
    /// (Fig. 2 right, step iii — entirely on-device). A failed update
    /// rolls back to the last-good checkpoint; see
    /// [`EdgeDevice::update_faulted`] for the full status.
    pub fn update(&mut self, exemplar_budget: usize) -> Result<(), EdgeError> {
        self.update_faulted(exemplar_budget, None).map(|_| ())
    }

    /// Crash-safe incremental update with an optional simulated
    /// kill-point (`pilote_edge_sim::faults::CrashPlan` supplies one by
    /// drawing an index into [`pilote_core::UpdateStage::ALL`]).
    ///
    /// The device snapshots its model parameters and exemplar set before
    /// the update. If the update is interrupted, errors, or produces
    /// non-finite parameters or prototypes, the snapshot is restored
    /// **exactly** — edge updates freeze batch-norm statistics, so
    /// restoring parameters + exemplars restores behaviour bit-for-bit —
    /// and the pending samples are kept for a retry. After
    /// [`MAX_UPDATE_FAILURES`] consecutive failures the device falls back
    /// to its frozen pre-trained deployment (the paper's Pre-trained
    /// baseline) and drops the pending batch.
    pub fn update_faulted(
        &mut self,
        exemplar_budget: usize,
        kill: Option<pilote_core::UpdateStage>,
    ) -> Result<UpdateStatus, EdgeError> {
        if self.pending.is_empty() {
            return Ok(UpdateStatus::Completed);
        }
        let labels: Vec<usize> = self.pending.iter().map(|(l, _)| *l).collect();
        let rows: Vec<Tensor> = self
            .pending
            .iter()
            .map(|(_, f)| f.reshape([1, FEATURE_DIM]))
            .collect::<Result<_, _>>()?;
        let refs: Vec<&Tensor> = rows.iter().collect();
        let features = Tensor::vstack(&refs)?;
        let new_data = Dataset::new(features, labels.clone())?;
        let new_label = labels[0];

        // Last-good snapshot: parameters + exemplars. BN running stats
        // are frozen during edge updates, so this pair restores exact
        // pre-update behaviour.
        let snapshot = Checkpoint::capture(self.model.net_mut().layers_mut());
        let snapshot_support = self.model.support().clone();

        self.log.record(EventKind::UpdateStarted { new_label, samples: new_data.len() });
        let span = pilote_obs::span("edge.update");
        span.annotate("new_label", new_label as f64);
        // Modeled device time (shape-derived flops), not host wall time:
        // the update's virtual duration must not depend on host load.
        let flops_before = work::thread_flops();
        let outcome = self
            .model
            .learn_new_class_interruptible(&new_data, exemplar_budget, kill);
        let flops = work::thread_flops().wrapping_sub(flops_before);
        let device_seconds = self.profile.seconds_for_flops(flops);
        span.annotate("device_seconds", device_seconds);
        drop(span);
        self.log.advance(device_seconds);

        // Commit only a completed update whose weights AND prototypes are
        // finite; anything else rolls back.
        let committed = match outcome {
            Ok(UpdateOutcome::Completed(report))
                if pilote_nn::params_finite(self.model.net_mut().layers_mut())
                    && prototypes_finite(self.model.classifier()) =>
            {
                Some(report)
            }
            _ => None,
        };
        let status = match committed {
            Some(report) => {
                self.log.record(EventKind::UpdateFinished {
                    new_label,
                    epochs: report.epochs.len(),
                    seconds: device_seconds,
                });
                self.pending.clear();
                self.update_failures = 0;
                UpdateStatus::Completed
            }
            None => self.roll_back(new_label, &snapshot, snapshot_support)?,
        };
        // Every path above commits through `refresh_prototypes` (commit,
        // rollback, degradation), so the generation moved — sample the
        // quality monitor at the new model state.
        self.sample_quality()?;
        Ok(status)
    }

    /// Restores the last-good snapshot after a failed update and, under
    /// persistent failures, degrades to the pre-trained baseline.
    fn roll_back(
        &mut self,
        new_label: usize,
        snapshot: &Checkpoint,
        snapshot_support: SupportSet,
    ) -> Result<UpdateStatus, EdgeError> {
        snapshot.restore(self.model.net_mut().layers_mut())?;
        *self.model.support_mut() = snapshot_support;
        self.model.refresh_prototypes()?;
        self.update_failures += 1;
        self.log.record(EventKind::UpdateRolledBack {
            new_label,
            failures: self.update_failures,
        });
        if self.update_failures < MAX_UPDATE_FAILURES {
            return Ok(UpdateStatus::RolledBack);
        }
        // Persistent faults: give up on personalisation, keep recognising
        // the pre-trained classes (graceful degradation, tier 4).
        self.baseline.0.restore(self.model.net_mut().layers_mut())?;
        *self.model.support_mut() = self.baseline.1.clone();
        self.model.refresh_prototypes()?;
        self.pending.clear();
        self.degraded = true;
        self.log.record(EventKind::DegradedToPretrained { failures: self.update_failures });
        Ok(UpdateStatus::Degraded)
    }

    /// Classifies a pre-extracted feature batch (test harness path).
    pub fn classify_features(&mut self, features: &Tensor) -> Result<Vec<usize>, EdgeError> {
        Ok(self.model.predict(features)?)
    }

    /// Serves a pre-extracted feature batch (`[n, 28]`) through the
    /// prototype cache: one embedding forward and one distance kernel for
    /// the whole batch, classified against a cached snapshot of the NCM
    /// classifier.
    ///
    /// Every kernel is band-parallel over output **rows**, with each row a
    /// pure serial function of its input row, so the outcomes here are
    /// bitwise identical to classifying each window on its own (the
    /// [`EdgeDevice::stream`] path) — see `docs/FLEET.md` for the contract.
    ///
    /// The cache is keyed by [`Pilote::generation`], which bumps at every
    /// model commit point (incremental update, rollback, degradation,
    /// federated install), so a stale snapshot is rebuilt lazily on the
    /// next serve and can never be consulted.
    pub fn serve_batch(&mut self, features: &Tensor) -> Result<Vec<InferenceOutcome>, EdgeError> {
        if features.rows() == 0 {
            return Ok(Vec::new());
        }
        let generation = self.model.generation();
        let cache_rebuilt = !matches!(
            &self.serve_cache,
            Some(cache) if cache.generation == generation
        );
        if cache_rebuilt {
            self.serve_cache = Some(ServeCache {
                generation,
                classifier: self.model.classifier().clone(),
            });
            self.cache_rebuilds += 1;
        }
        let span = pilote_obs::span("edge.serve_batch");
        span.annotate("windows", features.rows() as f64);
        // Modeled device time from shape-derived kernel work, as in
        // `stream` — never host wall time.
        let flops_before = work::thread_flops();
        let embeddings = self.model.embed(features);
        let labelled = match &self.serve_cache {
            Some(cache) => cache.classifier.classify_with_distances(&embeddings)?,
            // The cache was installed above; classifying against the live
            // model is the same snapshot at this generation.
            None => self.model.classifier().classify_with_distances(&embeddings)?,
        };
        let flops = work::thread_flops().wrapping_sub(flops_before);
        let device_seconds = self.profile.seconds_for_flops(flops);
        span.annotate("device_seconds", device_seconds);
        drop(span);
        self.log.advance(device_seconds);
        self.log.record(EventKind::BatchServed {
            windows: features.rows() as u64,
            cache_rebuilt,
        });
        Ok(labelled
            .into_iter()
            .map(|(predicted, distance)| InferenceOutcome { predicted, distance })
            .collect())
    }

    /// Prototype-cache rebuilds performed by [`EdgeDevice::serve_batch`].
    pub fn cache_rebuilds(&self) -> u64 {
        self.cache_rebuilds
    }

    /// Model generation the serving cache was built at, if one exists.
    pub fn serve_cache_generation(&self) -> Option<u64> {
        self.serve_cache.as_ref().map(|c| c.generation)
    }

    /// Accuracy on a labelled feature dataset.
    pub fn accuracy(&mut self, data: &Dataset) -> Result<f32, EdgeError> {
        Ok(self.model.accuracy(data)?)
    }

    /// Direct access to the model (federated rounds exchange parameters).
    pub fn model_mut(&mut self) -> &mut Pilote {
        &mut self.model
    }

    /// Records a federated round in the log.
    pub fn note_federated_round(&mut self, participants: usize) {
        self.log.record(EventKind::FederatedRound { participants });
    }

    /// Appends an event to this device's log at the current virtual time
    /// (used by the federated coordinator and fleet orchestration).
    pub fn record_event(&mut self, kind: EventKind) {
        self.log.record(kind);
    }

    /// Advances this device's virtual clock (e.g. a fleet charging link
    /// transfer time for a federated round's parameter exchange).
    pub fn advance_clock(&mut self, seconds: f64) {
        self.log.advance(seconds);
    }

    /// Re-bounds this device's event-log ring buffer (`0` = unbounded; see
    /// [`crate::events::EventLog::set_capacity`]). Running totals — and
    /// therefore telemetry snapshots — are unaffected by the bound.
    pub fn set_event_capacity(&mut self, capacity: usize) {
        self.log.set_capacity(capacity);
    }

    /// A per-device telemetry snapshot assembled from **device-local**
    /// state: the event log's running per-metric totals (matching the
    /// [`EventKind::metric_name`] bridge — window events add their window
    /// counts, and totals survive ring-buffer eviction), the virtual clock
    /// and model generation (gauges), and the quality monitor's
    /// accumulated margin histogram. The process-global `pilote_obs`
    /// registry is deliberately not consulted: it sums over every device
    /// in the process and cannot be attributed back to one fleet member.
    /// Returns `Snapshot::default()` (all empty, `enabled: false`) under
    /// the `PILOTE_OBS` kill switch.
    pub fn telemetry_snapshot(&self) -> pilote_obs::Snapshot {
        if !pilote_obs::enabled() {
            return pilote_obs::Snapshot::default();
        }
        let mut snapshot = pilote_obs::Snapshot { enabled: true, ..Default::default() };
        snapshot.counters = self.log.totals().clone();
        let point = |v: f64| pilote_obs::GaugeSnapshot { last: v, min: v, max: v, count: 1 };
        snapshot.gauges.insert("edge.clock_seconds".to_string(), point(self.log.now()));
        snapshot
            .gauges
            .insert("edge.generation".to_string(), point(self.model.generation() as f64));
        if let Some(monitor) = &self.quality {
            let mut margins =
                pilote_obs::HistogramSnapshot::with_bounds(pilote_core::quality::MARGIN_BOUNDS);
            for report in monitor.reports() {
                if let Some(merged) = margins.merge(&report.margins) {
                    margins = merged;
                }
            }
            snapshot.histograms.insert("quality.margins".to_string(), margins);
            if let Some(last) = monitor.last_report() {
                snapshot
                    .gauges
                    .insert("quality.forgetting".to_string(), point(f64::from(last.forgetting)));
                snapshot.gauges.insert(
                    "quality.old_class_accuracy".to_string(),
                    point(f64::from(last.old_class_accuracy)),
                );
            }
            if let Some(matrix) = monitor.session_matrix() {
                let summary = matrix.summary();
                snapshot
                    .gauges
                    .insert("session.sessions".to_string(), point(summary.sessions as f64));
                snapshot.gauges.insert(
                    "session.average_accuracy".to_string(),
                    point(summary.average_accuracy),
                );
                snapshot
                    .gauges
                    .insert("session.forgetting".to_string(), point(summary.final_forgetting));
                if let Some(bwt) = summary.backward_transfer {
                    snapshot.gauges.insert("session.bwt".to_string(), point(bwt));
                }
                if let Some(fwt) = summary.forward_transfer {
                    snapshot.gauges.insert("session.fwt".to_string(), point(fwt));
                }
            }
        }
        snapshot
    }

    /// The **windowed** telemetry upload: everything that accumulated
    /// since the previous `telemetry_delta` call (or since install, for
    /// the first call), as a [`pilote_obs::Snapshot::delta_since`] payload
    /// — counter/histogram increments plus current gauge readings. Ships
    /// far fewer bytes than a whole-life [`EdgeDevice::telemetry_snapshot`]
    /// on a long-running device, and summing every delta at the cloud
    /// reproduces the full-snapshot rollup exactly (see `docs/SCALING.md`).
    ///
    /// Advances the upload baseline; under the `PILOTE_OBS` kill switch
    /// the delta is empty and the baseline does not move.
    pub fn telemetry_delta(&mut self) -> pilote_obs::Snapshot {
        if !pilote_obs::enabled() {
            return pilote_obs::Snapshot::default();
        }
        let full = self.telemetry_snapshot();
        let delta = full.delta_since(&self.telemetry_baseline);
        self.telemetry_baseline = full;
        delta
    }
}

/// Whether every stored prototype is finite.
fn prototypes_finite(clf: &NcmClassifier) -> bool {
    clf.labels()
        .iter()
        .all(|&l| clf.prototype(l).is_none_or(|p| p.all_finite()))
}

impl std::fmt::Debug for EdgeDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeDevice")
            .field("profile", &self.profile.name)
            .field("classes", &self.known_classes())
            .field("events", &self.log.events().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::CloudServer;
    use pilote_core::PiloteConfig;
    use pilote_har_data::dataset::generate_features;
    use pilote_har_data::{Activity, Simulator};
    use pilote_har_data::features::extract_batch;
    use pilote_har_data::preprocess::Normalizer;

    fn deployed_device() -> (EdgeDevice, Simulator, Normalizer) {
        let mut sim = Simulator::with_seed(31);
        let (data, norm) = generate_features(
            &mut sim,
            &[(Activity::Still, 50), (Activity::Walk, 50), (Activity::Run, 50)],
        )
        .expect("simulate");
        let server = CloudServer::new(data, norm.clone(), PiloteConfig::fast_test(5));
        let (deployment, _) = server
            .pretrain_and_package(&[Activity::Still.label(), Activity::Walk.label()], 15)
            .expect("package");
        let device = EdgeDevice::install(
            DeviceProfile::flagship_phone(),
            &deployment,
            &LinkModel::wifi(),
        )
        .expect("install");
        (device, sim, norm)
    }

    #[test]
    fn install_records_deployment_event() {
        let (device, _, _) = deployed_device();
        assert_eq!(device.log().events().len(), 1);
        assert!(matches!(device.log().events()[0].kind, EventKind::Deployed { payload_bytes } if payload_bytes > 0));
        assert_eq!(device.known_classes().len(), 2);
    }

    #[test]
    fn streaming_classifies_known_activity() {
        let (mut device, mut sim, _) = deployed_device();
        let session = sim.session(Activity::Still, 10);
        let outcomes = device.stream(&session).expect("stream");
        assert_eq!(outcomes.len(), 10);
        assert_eq!(device.log().inference_count(), 10);
        let correct = outcomes
            .iter()
            .filter(|o| o.predicted == Activity::Still.label())
            .count();
        assert!(correct >= 7, "only {correct}/10 Still windows recognised");
        // virtual clock advanced by ≥ the stream duration
        assert!(device.log().now() >= 10.0);
    }

    #[test]
    fn incremental_update_adds_class_on_device() {
        let (mut device, mut sim, norm) = deployed_device();
        // User labels some Run windows.
        let raw = sim.raw_dataset(&[(Activity::Run, 25)]);
        let features = norm.transform(&extract_batch(&raw).expect("features")).expect("norm");
        for i in 0..features.rows() {
            device.label_sample(Activity::Run.label(), Tensor::vector(features.row(i)));
        }
        assert_eq!(device.pending_samples(), 25);
        device.update(20).expect("update");
        assert_eq!(device.pending_samples(), 0);
        assert_eq!(device.known_classes().len(), 3);
        assert_eq!(device.log().update_count(), 1);
    }

    /// Held-out Still/Walk probe windows, normalised with the deployment
    /// normaliser (the stream the monitor would realistically retain).
    fn probe_set(sim: &mut Simulator, norm: &Normalizer) -> Dataset {
        let raw = sim.raw_dataset(&[(Activity::Still, 20), (Activity::Walk, 20)]);
        let features = norm.transform(&extract_batch(&raw).expect("features")).expect("norm");
        Dataset::new(features, raw.labels).expect("probe")
    }

    #[test]
    fn quality_monitor_baselines_then_samples_every_commit() {
        let (mut device, mut sim, norm) = deployed_device();
        let probe = probe_set(&mut sim, &norm);
        let old = [Activity::Still.label(), Activity::Walk.label()];
        let clock_before_arm = device.log().now();
        device
            .arm_quality_monitor(probe, &old, QualityThresholds::default())
            .expect("arm");
        assert_eq!(device.quality_reports().len(), 1, "arming takes the baseline");
        let baseline_generation = device.quality_reports()[0].generation;
        assert_eq!(device.quality_reports()[0].forgetting, 0.0);
        assert!(
            device.log().now() > clock_before_arm,
            "probe evaluation must advance the virtual clock"
        );

        // An incremental update commits a new generation → a second sample.
        let raw = sim.raw_dataset(&[(Activity::Run, 25)]);
        let features = norm.transform(&extract_batch(&raw).expect("features")).expect("norm");
        for i in 0..features.rows() {
            device.label_sample(Activity::Run.label(), Tensor::vector(features.row(i)));
        }
        device.update(20).expect("update");
        assert_eq!(device.quality_reports().len(), 2, "the commit must be sampled");
        let last = device.quality_reports().last().expect("post-update report");
        assert!(last.generation > baseline_generation);
        // Per-class rows cover every class the model now knows; the new
        // class has no probe rows, so its accuracy is the -1.0 sentinel.
        assert_eq!(last.per_class.len(), 3);
        let run = last
            .per_class
            .iter()
            .find(|c| c.label == Activity::Run.label())
            .expect("new class row");
        assert_eq!(run.accuracy, -1.0, "no probe rows for the new class");
    }

    #[test]
    fn quality_alerts_are_recorded_as_events() {
        let (mut device, mut sim, norm) = deployed_device();
        let probe = probe_set(&mut sim, &norm);
        let old = [Activity::Still.label(), Activity::Walk.label()];
        device
            .arm_quality_monitor(probe, &old, QualityThresholds::default())
            .expect("arm");
        assert_eq!(device.log().alert_count(), 0, "healthy baseline must not alert");

        // Teleport one class's support set: its prototype jumps by far
        // more than its own norm, which must trip the drift-spike rule.
        let label = Activity::Still.label();
        let moved = device.model_mut().support().class(label).expect("class").add_scalar(100.0);
        device.model_mut().support_mut().put_class(label, moved);
        device.model_mut().refresh_prototypes().expect("refresh");
        device.sample_quality().expect("sample");
        assert!(device.log().alert_count() >= 1, "drift spike must raise an alert event");
        let raised = device.log().events().iter().any(|e| {
            matches!(&e.kind, EventKind::AlertRaised { rule, .. } if rule == "drift_spike")
        });
        assert!(raised, "the alert event must carry the rule name");
    }

    #[test]
    fn telemetry_snapshot_mirrors_the_device_log() {
        let (mut device, mut sim, _) = deployed_device();
        let session = sim.session(Activity::Still, 6);
        device.stream(&session).expect("stream");
        let snapshot = device.telemetry_snapshot();
        if !pilote_obs::enabled() {
            assert_eq!(snapshot, pilote_obs::Snapshot::default());
            return;
        }
        assert!(snapshot.enabled);
        assert_eq!(snapshot.counters.get("edge.deployed").copied(), Some(1));
        assert_eq!(snapshot.counters.get("edge.inference").copied(), Some(6));
        let clock = snapshot.gauges.get("edge.clock_seconds").expect("clock gauge");
        assert_eq!(clock.last, device.log().now());
        // Device-local snapshots are attributable: streaming on a second
        // device must not leak into this one's counters.
        let (mut other, mut sim2, _) = deployed_device();
        other.stream(&sim2.session(Activity::Walk, 9)).expect("stream");
        assert_eq!(device.telemetry_snapshot().counters.get("edge.inference").copied(), Some(6));
    }

    #[test]
    fn telemetry_deltas_sum_to_the_full_snapshot() {
        let (mut device, mut sim, _) = deployed_device();
        if !pilote_obs::enabled() {
            return; // kill switch: deltas are empty by contract
        }
        let mut summed = crate::cloud::TelemetryRollup::new();
        // Window 1: install + a short stream.
        device.stream(&sim.session(Activity::Still, 4)).expect("stream");
        summed.merge_snapshot(&device.telemetry_delta()).expect("merge w1");
        // Window 2: more streaming.
        device.stream(&sim.session(Activity::Walk, 5)).expect("stream");
        summed.merge_snapshot(&device.telemetry_delta()).expect("merge w2");
        // An idle window ships no counters at all.
        let idle = device.telemetry_delta();
        assert!(idle.counters.is_empty(), "idle delta must be counter-free");
        summed.merge_snapshot(&idle).expect("merge idle");
        // Conservation: the summed deltas equal the whole-life snapshot.
        let full = device.telemetry_snapshot();
        assert_eq!(summed.counters, full.counters);
        assert_eq!(summed.counter("edge.inference"), 9);
        assert_eq!(summed.gauges["edge.clock_seconds"].last, device.log().now());
        // Deltas are the point: window 2's payload excludes window 1's
        // history (9 lifetime inferences, only 5 in the second window).
        let mut fresh = crate::cloud::TelemetryRollup::new();
        let (mut device2, mut sim2, _) = deployed_device();
        device2.stream(&sim2.session(Activity::Still, 4)).expect("stream");
        device2.telemetry_delta();
        device2.stream(&sim2.session(Activity::Walk, 5)).expect("stream");
        fresh.merge_snapshot(&device2.telemetry_delta()).expect("merge");
        assert_eq!(fresh.counter("edge.inference"), 5);
        assert_eq!(fresh.counter("edge.deployed"), 0, "install predates the window");
    }

    #[test]
    fn bounded_event_log_does_not_change_telemetry() {
        let (mut bounded, mut sim_a, _) = deployed_device();
        let (mut unbounded, mut sim_b, _) = deployed_device();
        bounded.set_event_capacity(3);
        let a = sim_a.session(Activity::Still, 8);
        let b = sim_b.session(Activity::Still, 8);
        assert_eq!(a, b);
        bounded.stream(&a).expect("stream");
        unbounded.stream(&b).expect("stream");
        assert!(bounded.log().evicted() > 0, "the bound must actually evict");
        assert_eq!(bounded.log().events().len(), 3);
        // Same totals, same derived counts, same telemetry snapshot.
        assert_eq!(bounded.log().totals(), unbounded.log().totals());
        assert_eq!(bounded.log().inference_count(), unbounded.log().inference_count());
        assert_eq!(bounded.telemetry_snapshot(), unbounded.telemetry_snapshot());
    }

    #[test]
    fn install_presized_matches_install() {
        let (deployment, _, _) = deployment();
        let link = LinkModel::cellular_4g();
        let a = EdgeDevice::install(DeviceProfile::wearable(), &deployment, &link)
            .expect("install");
        let b = EdgeDevice::install_presized(
            DeviceProfile::wearable(),
            &deployment,
            &link,
            deployment.wire_bytes().expect("wire bytes"),
        )
        .expect("install presized");
        assert_eq!(
            serde_json::to_string(a.log().events()).expect("json"),
            serde_json::to_string(b.log().events()).expect("json"),
        );
        assert_eq!(a.log().now().to_bits(), b.log().now().to_bits());
    }

    fn deployment() -> (crate::cloud::Deployment, Simulator, Normalizer) {
        let mut sim = Simulator::with_seed(31);
        let (data, norm) = generate_features(
            &mut sim,
            &[(Activity::Still, 50), (Activity::Walk, 50), (Activity::Run, 50)],
        )
        .expect("simulate");
        let server = CloudServer::new(data, norm.clone(), PiloteConfig::fast_test(5));
        let (deployment, _) = server
            .pretrain_and_package(&[Activity::Still.label(), Activity::Walk.label()], 15)
            .expect("package");
        (deployment, sim, norm)
    }

    #[test]
    fn resilient_install_retries_until_success() {
        use pilote_edge_sim::faults::{LinkFaultRates, RetryPolicy};
        let (deployment, _, _) = deployment();
        // Find a seed whose first attempt fails but a later one succeeds.
        for seed in 0..64u64 {
            let mut flaky = FlakyLink::new(
                LinkModel::wifi(),
                seed,
                LinkFaultRates::uniform(0.3),
            );
            let device = EdgeDevice::install_resilient(
                DeviceProfile::flagship_phone(),
                &deployment,
                &mut flaky,
                &RetryPolicy::default_edge(),
            );
            let retries = flaky.faults();
            if let Ok(device) = device {
                if retries > 0 {
                    let logged = device
                        .log()
                        .events()
                        .iter()
                        .filter(|e| matches!(e.kind, EventKind::TransferRetried { .. }))
                        .count() as u64;
                    assert_eq!(logged, retries);
                    assert_eq!(device.known_classes().len(), 2);
                    return;
                }
            }
        }
        panic!("no seed produced a retry-then-success install");
    }

    #[test]
    fn resilient_install_gives_up_on_dead_link() {
        use pilote_edge_sim::faults::{LinkFaultRates, RetryPolicy};
        let (deployment, _, _) = deployment();
        let mut flaky = FlakyLink::new(
            LinkModel::weak_cellular(),
            1,
            LinkFaultRates { drop: 1.0, timeout: 0.0, truncate: 0.0 },
        );
        let policy = RetryPolicy::default_edge();
        match EdgeDevice::install_resilient(
            DeviceProfile::flagship_phone(),
            &deployment,
            &mut flaky,
            &policy,
        ) {
            Err(EdgeError::Link { attempts, last: LinkFault::Dropped }) => {
                assert!(attempts >= 1 && attempts <= policy.max_attempts);
            }
            other => panic!("expected Link error, got {other:?}"),
        }
    }

    #[test]
    fn interrupted_update_rolls_back_exactly() {
        let (mut device, mut sim, norm) = deployed_device();
        let raw = sim.raw_dataset(&[(Activity::Run, 25)]);
        let features = norm.transform(&extract_batch(&raw).expect("features")).expect("norm");
        let probe = features.clone();
        let before = device.classify_features(&probe).expect("classify");
        let before_support = device.model_mut().support().clone();
        for i in 0..features.rows() {
            device.label_sample(Activity::Run.label(), Tensor::vector(features.row(i)));
        }
        let status = device
            .update_faulted(20, Some(pilote_core::UpdateStage::Trained))
            .expect("update");
        assert_eq!(status, UpdateStatus::RolledBack);
        // Exact rollback: same predictions, same exemplars, pending kept.
        assert_eq!(device.classify_features(&probe).expect("classify"), before);
        assert_eq!(*device.model_mut().support(), before_support);
        assert_eq!(device.pending_samples(), 25);
        assert_eq!(device.update_failures(), 1);
        // A subsequent clean update succeeds from the restored state.
        let status = device.update_faulted(20, None).expect("retry");
        assert_eq!(status, UpdateStatus::Completed);
        assert_eq!(device.known_classes().len(), 3);
        assert_eq!(device.update_failures(), 0);
    }

    #[test]
    fn persistent_failures_degrade_to_pretrained() {
        let (mut device, mut sim, norm) = deployed_device();
        let raw = sim.raw_dataset(&[(Activity::Run, 15)]);
        let features = norm.transform(&extract_batch(&raw).expect("features")).expect("norm");
        for i in 0..features.rows() {
            device.label_sample(Activity::Run.label(), Tensor::vector(features.row(i)));
        }
        let probe = features.clone();
        let baseline_preds = device.classify_features(&probe).expect("classify");
        for failure in 1..=MAX_UPDATE_FAILURES {
            let status = device
                .update_faulted(10, Some(pilote_core::UpdateStage::Trained))
                .expect("update");
            if failure < MAX_UPDATE_FAILURES {
                assert_eq!(status, UpdateStatus::RolledBack);
            } else {
                assert_eq!(status, UpdateStatus::Degraded);
            }
        }
        assert!(device.is_degraded());
        assert_eq!(device.pending_samples(), 0);
        assert_eq!(device.known_classes().len(), 2);
        // The degraded device still classifies with the pre-trained model.
        assert_eq!(device.classify_features(&probe).expect("classify"), baseline_preds);
        assert!(device
            .log()
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::DegradedToPretrained { .. })));
    }

    #[test]
    fn corrupted_stream_quarantines_and_keeps_classifying() {
        let (mut device, mut sim, _) = deployed_device();
        let mut session = sim.session(Activity::Still, 10);
        session.row_mut(130)[3] = f32::NAN; // taints window 1 only
        let outcomes = device.stream(&session).expect("stream");
        assert_eq!(outcomes.len(), 9);
        assert_eq!(device.quarantined_windows(), 1);
        assert!(device
            .log()
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::WindowsQuarantined { windows: 1 })));
    }

    /// Regression test for the host/virtual clock mixing bug: the virtual
    /// clock used to be advanced by stopwatch-measured host time projected
    /// through the device profile, so traces varied with host load. Device
    /// time is now modeled from shape-derived kernel work, so an identical
    /// operation sequence must produce an *identical* event log — same
    /// events, same virtual timestamps — even while the host is saturated
    /// with busy-spinning threads.
    #[test]
    fn host_load_cannot_change_virtual_time_traces() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (mut quiet, mut sim_q, _) = deployed_device();
        let (mut loaded, mut sim_l, _) = deployed_device();
        let session_q = sim_q.session(Activity::Walk, 6);
        let session_l = sim_l.session(Activity::Walk, 6);
        assert_eq!(session_q, session_l, "same seed must give the same session");

        quiet.stream(&session_q).expect("stream");

        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        std::hint::spin_loop();
                    }
                });
            }
            loaded.stream(&session_l).expect("stream");
            stop.store(true, Ordering::Relaxed);
        });

        assert_eq!(
            quiet.log(),
            loaded.log(),
            "virtual-time trace changed under host load"
        );
        assert!(quiet.log().now() > 0.0);
    }

    /// The batched serving contract: one `serve_batch` over n windows must
    /// be **bitwise** identical — labels and distances — to n single-window
    /// serves, because every kernel is band-parallel over output rows.
    #[test]
    fn serve_batch_is_bitwise_identical_to_per_window_serving() {
        let (mut batched, mut sim, norm) = deployed_device();
        let (mut single, _, _) = deployed_device();
        let raw = sim.raw_dataset(&[(Activity::Walk, 12)]);
        let features = norm.transform(&extract_batch(&raw).expect("features")).expect("norm");

        let all = batched.serve_batch(&features).expect("serve");
        assert_eq!(all.len(), features.rows());
        for (i, outcome) in all.iter().enumerate() {
            let row = Tensor::vector(features.row(i)).reshape([1, FEATURE_DIM]).expect("row");
            let one = single.serve_batch(&row).expect("serve one");
            assert_eq!(one.len(), 1);
            assert_eq!(one[0].predicted, outcome.predicted, "window {i}");
            assert_eq!(
                one[0].distance.to_bits(),
                outcome.distance.to_bits(),
                "window {i}: batched distance must be bitwise equal"
            );
        }
        // One batch = one cache build + one BatchServed event for n windows.
        assert_eq!(batched.cache_rebuilds(), 1);
        assert_eq!(batched.log().served_count(), features.rows() as u64);
        // The per-window device rebuilt once too: generation never moved.
        assert_eq!(single.cache_rebuilds(), 1);
    }

    /// Cache coherence: every committed model change (update, rollback,
    /// degradation) bumps the generation and forces a rebuild on the next
    /// serve; serving twice at the same generation reuses the snapshot.
    #[test]
    fn serve_cache_rebuilds_only_when_generation_moves() {
        let (mut device, mut sim, norm) = deployed_device();
        let raw = sim.raw_dataset(&[(Activity::Run, 25)]);
        let features = norm.transform(&extract_batch(&raw).expect("features")).expect("norm");

        device.serve_batch(&features).expect("serve");
        device.serve_batch(&features).expect("serve again");
        assert_eq!(device.cache_rebuilds(), 1, "same generation must reuse the cache");
        let g0 = device.serve_cache_generation().expect("cache built");

        // A completed update commits through refresh_prototypes → new
        // generation → rebuild.
        for i in 0..features.rows() {
            device.label_sample(Activity::Run.label(), Tensor::vector(features.row(i)));
        }
        device.update(20).expect("update");
        let served = device.serve_batch(&features).expect("serve after update");
        assert_eq!(device.cache_rebuilds(), 2, "update must invalidate the cache");
        assert!(device.serve_cache_generation().expect("cache") > g0);
        // The rebuilt cache reflects the new class.
        assert!(served.iter().any(|o| o.predicted == Activity::Run.label()));

        // A rollback also commits (restores the snapshot) → rebuild again.
        for i in 0..5 {
            device.label_sample(Activity::Drive.label(), Tensor::vector(features.row(i)));
        }
        let status = device
            .update_faulted(20, Some(pilote_core::UpdateStage::Trained))
            .expect("faulted update");
        assert_eq!(status, UpdateStatus::RolledBack);
        device.serve_batch(&features).expect("serve after rollback");
        assert_eq!(device.cache_rebuilds(), 3, "rollback must invalidate the cache");
    }

    #[test]
    fn drift_monitor_fires_for_unseen_activity() {
        let (mut device, mut sim, norm) = deployed_device();
        let known = sim.raw_dataset(&[(Activity::Still, 30)]);
        let known_features =
            norm.transform(&extract_batch(&known).expect("features")).expect("norm");
        device.arm_drift_monitor(&known_features, 3.0).expect("arm");
        // Stream an unseen, very different activity.
        let session = sim.session(Activity::Run, 15);
        device.stream(&session).expect("stream");
        let drift_events = device
            .log()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::DriftDetected { .. }))
            .count();
        assert!(drift_events >= 1, "drift monitor never fired");
    }
}
