//! The edge side of MAGNETO: install a deployment once, then stream,
//! classify and incrementally learn — all on-device.

use crate::cloud::Deployment;
use crate::events::{EventKind, EventLog};
use pilote_core::{EmbeddingNet, Pilote};
use pilote_edge_sim::{DeviceProfile, LinkModel};
use pilote_har_data::dataset::Dataset;
use pilote_har_data::stream::{DriftMonitor, WindowAssembler};
use pilote_har_data::sensors::WINDOW_LEN;
use pilote_har_data::FEATURE_DIM;
use pilote_tensor::{Rng64, Tensor, TensorError};
use std::time::Instant;

/// Result of classifying one streamed window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceOutcome {
    /// Predicted activity label.
    pub predicted: usize,
    /// Squared embedding-space distance to the winning prototype — a
    /// confidence proxy (smaller = more confident).
    pub distance: f32,
}

/// An edge device running the MAGNETO recognition loop.
pub struct EdgeDevice {
    profile: DeviceProfile,
    model: Pilote,
    assembler: WindowAssembler,
    drift: Option<DriftMonitor>,
    log: EventLog,
    /// Buffered labelled samples awaiting the next incremental update.
    pending: Vec<(usize, Tensor)>,
}

impl EdgeDevice {
    /// Installs a cloud deployment onto a device, recording the download
    /// on the given link (Fig. 2 right, step i).
    pub fn install(
        profile: DeviceProfile,
        deployment: &Deployment,
        link: &LinkModel,
    ) -> Result<EdgeDevice, TensorError> {
        let payload = deployment.wire_bytes();
        let mut rng = Rng64::new(deployment.config.seed ^ 0xed6e);
        let mut net = EmbeddingNet::new(deployment.config.net.clone(), &mut rng);
        deployment
            .checkpoint
            .restore(net.layers_mut())
            .map_err(|e| TensorError::Empty { op: Box::leak(e.to_string().into_boxed_str()) })?;
        let model = Pilote::from_parts(
            deployment.config.clone(),
            net,
            deployment.support.clone(),
            rng,
        )?;
        let assembler = WindowAssembler::new(WINDOW_LEN, WINDOW_LEN, 1)
            .with_normalizer(deployment.normalizer.clone());
        let mut log = EventLog::new();
        log.record(EventKind::Deployed { payload_bytes: payload });
        log.advance(link.transfer_seconds(payload));
        Ok(EdgeDevice { profile, model, assembler, drift: None, log, pending: Vec::new() })
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Known activity labels.
    pub fn known_classes(&self) -> Vec<usize> {
        self.model.classifier().labels().to_vec()
    }

    /// Arms the drift monitor with a reference feature matrix.
    pub fn arm_drift_monitor(&mut self, reference: &Tensor, threshold: f32) -> Result<(), TensorError> {
        self.drift = Some(DriftMonitor::from_reference(reference, threshold)?);
        Ok(())
    }

    /// Feeds a block of raw sensor samples (`[n, 22]`), classifying every
    /// completed window. Virtual time advances by the block's duration.
    pub fn stream(&mut self, samples: &Tensor) -> Result<Vec<InferenceOutcome>, TensorError> {
        let features = self.assembler.push_block(samples)?;
        let mut out = Vec::with_capacity(features.len());
        for f in features {
            let row = f.reshape([1, FEATURE_DIM])?;
            let start = Instant::now();
            let emb = self.model.embed(&row);
            let dists = self.model.classifier().distances(&emb)?;
            let predicted = self.model.classifier().labels()[dists.argmin_rows()?[0]];
            let host = start.elapsed().as_secs_f64();
            self.log.advance(self.profile.project_seconds(host));
            self.log.record(EventKind::Inference { predicted });
            if let Some(monitor) = &mut self.drift {
                monitor.observe(&f);
                if monitor.drifted() {
                    self.log.record(EventKind::DriftDetected { max_shift: monitor.max_shift() });
                    monitor.reset();
                }
            }
            out.push(InferenceOutcome { predicted, distance: dists.min()? });
        }
        // Real-time stream: n samples at 120 Hz.
        self.log.advance(samples.rows() as f64 / 120.0);
        Ok(out)
    }

    /// Buffers one user-labelled feature vector (e.g. the user tagged a
    /// session with a new activity name).
    pub fn label_sample(&mut self, label: usize, features: Tensor) {
        assert_eq!(features.len(), FEATURE_DIM, "feature width mismatch");
        self.pending.push((label, features));
    }

    /// Labelled samples waiting for the next update.
    pub fn pending_samples(&self) -> usize {
        self.pending.len()
    }

    /// Runs the PILOTE incremental update on the buffered samples
    /// (Fig. 2 right, step iii — entirely on-device).
    pub fn update(&mut self, exemplar_budget: usize) -> Result<(), TensorError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let labels: Vec<usize> = self.pending.iter().map(|(l, _)| *l).collect();
        let rows: Vec<Tensor> = self
            .pending
            .iter()
            .map(|(_, f)| f.reshape([1, FEATURE_DIM]))
            .collect::<Result<_, _>>()?;
        let refs: Vec<&Tensor> = rows.iter().collect();
        let features = Tensor::vstack(&refs)?;
        let new_data = Dataset::new(features, labels.clone())?;
        let new_label = labels[0];

        self.log.record(EventKind::UpdateStarted { new_label, samples: new_data.len() });
        let start = Instant::now();
        let report = self.model.learn_new_class(&new_data, exemplar_budget)?;
        let host = start.elapsed().as_secs_f64();
        self.log.advance(self.profile.project_seconds(host));
        self.log.record(EventKind::UpdateFinished {
            new_label,
            epochs: report.epochs.len(),
            seconds: self.profile.project_seconds(host),
        });
        self.pending.clear();
        Ok(())
    }

    /// Classifies a pre-extracted feature batch (test harness path).
    pub fn classify_features(&mut self, features: &Tensor) -> Result<Vec<usize>, TensorError> {
        self.model.predict(features)
    }

    /// Accuracy on a labelled feature dataset.
    pub fn accuracy(&mut self, data: &Dataset) -> Result<f32, TensorError> {
        self.model.accuracy(data)
    }

    /// Direct access to the model (federated rounds exchange parameters).
    pub fn model_mut(&mut self) -> &mut Pilote {
        &mut self.model
    }

    /// Records a federated round in the log.
    pub fn note_federated_round(&mut self, participants: usize) {
        self.log.record(EventKind::FederatedRound { participants });
    }
}

impl std::fmt::Debug for EdgeDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeDevice")
            .field("profile", &self.profile.name)
            .field("classes", &self.known_classes())
            .field("events", &self.log.events().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::CloudServer;
    use pilote_core::PiloteConfig;
    use pilote_har_data::dataset::generate_features;
    use pilote_har_data::{Activity, Simulator};
    use pilote_har_data::features::extract_batch;
    use pilote_har_data::preprocess::Normalizer;

    fn deployed_device() -> (EdgeDevice, Simulator, Normalizer) {
        let mut sim = Simulator::with_seed(31);
        let (data, norm) = generate_features(
            &mut sim,
            &[(Activity::Still, 50), (Activity::Walk, 50), (Activity::Run, 50)],
        )
        .expect("simulate");
        let server = CloudServer::new(data, norm.clone(), PiloteConfig::fast_test(5));
        let (deployment, _) = server
            .pretrain_and_package(&[Activity::Still.label(), Activity::Walk.label()], 15)
            .expect("package");
        let device = EdgeDevice::install(
            DeviceProfile::flagship_phone(),
            &deployment,
            &LinkModel::wifi(),
        )
        .expect("install");
        (device, sim, norm)
    }

    #[test]
    fn install_records_deployment_event() {
        let (device, _, _) = deployed_device();
        assert_eq!(device.log().events().len(), 1);
        assert!(matches!(device.log().events()[0].kind, EventKind::Deployed { payload_bytes } if payload_bytes > 0));
        assert_eq!(device.known_classes().len(), 2);
    }

    #[test]
    fn streaming_classifies_known_activity() {
        let (mut device, mut sim, _) = deployed_device();
        let session = sim.session(Activity::Still, 10);
        let outcomes = device.stream(&session).expect("stream");
        assert_eq!(outcomes.len(), 10);
        assert_eq!(device.log().inference_count(), 10);
        let correct = outcomes
            .iter()
            .filter(|o| o.predicted == Activity::Still.label())
            .count();
        assert!(correct >= 7, "only {correct}/10 Still windows recognised");
        // virtual clock advanced by ≥ the stream duration
        assert!(device.log().now() >= 10.0);
    }

    #[test]
    fn incremental_update_adds_class_on_device() {
        let (mut device, mut sim, norm) = deployed_device();
        // User labels some Run windows.
        let raw = sim.raw_dataset(&[(Activity::Run, 25)]);
        let features = norm.transform(&extract_batch(&raw).expect("features")).expect("norm");
        for i in 0..features.rows() {
            device.label_sample(Activity::Run.label(), Tensor::vector(features.row(i)));
        }
        assert_eq!(device.pending_samples(), 25);
        device.update(20).expect("update");
        assert_eq!(device.pending_samples(), 0);
        assert_eq!(device.known_classes().len(), 3);
        assert_eq!(device.log().update_count(), 1);
    }

    #[test]
    fn drift_monitor_fires_for_unseen_activity() {
        let (mut device, mut sim, norm) = deployed_device();
        let known = sim.raw_dataset(&[(Activity::Still, 30)]);
        let known_features =
            norm.transform(&extract_batch(&known).expect("features")).expect("norm");
        device.arm_drift_monitor(&known_features, 3.0).expect("arm");
        // Stream an unseen, very different activity.
        let session = sim.session(Activity::Run, 15);
        device.stream(&session).expect("stream");
        let drift_events = device
            .log()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::DriftDetected { .. }))
            .count();
        assert!(drift_events >= 1, "drift monitor never fired");
    }
}
