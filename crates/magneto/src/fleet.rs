//! Fleet orchestration and serving: one coordinator owning N heterogeneous
//! [`EdgeDevice`]s, routing simulated user sessions to devices, serving
//! classification through the **batched** prototype-cache path, and
//! interleaving incremental updates with periodic federated rounds.
//!
//! Everything is deterministic by construction (see `docs/FLEET.md`):
//!
//! - **Routing** is a pure hash of `(fleet seed, user id)` — no load
//!   balancing on wall-clock state.
//! - **Time** is the per-device virtual clock: modeled kernel flops through
//!   [`DeviceProfile::seconds_for_flops`] plus modeled link transfers —
//!   never a host clock.
//! - **Serving** chunks each session through [`EdgeDevice::serve_batch`],
//!   which is bitwise identical to per-window classification.
//! - **Federated rounds** fire on a session-count schedule
//!   ([`FleetConfig::federated_every`]), charging each participant's link
//!   with the parameter upload/download before averaging. Payloads ship
//!   through the binary wire codec ([`crate::wire`], `docs/WIRE.md`) at
//!   the fleet's [`FleetConfig::wire`] setting — delta-encoded against
//!   the last committed broadcast when both ends are current, with a
//!   typed full-payload fallback for stale members — and what devices
//!   install is always the **decoded** payload.
//!
//! At scale (10k+ devices — see `docs/SCALING.md`) the roster is
//! **sharded** across worker threads: [`Fleet::deploy_sharded`] installs
//! contiguous device-index bands in parallel, [`Fleet::serve_sessions`]
//! serves a whole batch of routed sessions with each device's work
//! executed on the shard that owns it, and the telemetry/federated wire
//! serialisation fans out per band. Every sharded path merges its per-band
//! results back in **device-index order**, so rollups, event ordering and
//! stats are byte-identical to the serial walk at any `PILOTE_THREADS`
//! setting.

use crate::cloud::{Deployment, PackageError, ScenarioRollup, TelemetryRollup};
use crate::edge::{EdgeDevice, EdgeError, InferenceOutcome, UpdateStatus};
use crate::events::{EventKind, ExclusionReason, DEFAULT_EVENT_CAPACITY};
use crate::federated::{federated_average, FederatedCoordinator};
use crate::policy::{FleetPolicy, PolicyConfig, RepairAction, RolloutStage};
use crate::wire::{self, CodecError, WireConfig};
use pilote_core::{AdaptiveThresholds, QualityThresholds, TaskGroup};
use pilote_edge_sim::{DeviceProfile, LinkModel, WirePrecision};
use pilote_har_data::Dataset;
use pilote_nn::Checkpoint;
use pilote_tensor::{parallel, Tensor};
use serde::{Deserialize, Serialize};

/// Tuning knobs for a [`Fleet`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Seed for the routing hash (and anything else the fleet randomises).
    pub seed: u64,
    /// Maximum windows per [`EdgeDevice::serve_batch`] call; longer
    /// sessions are chunked. Chunking cannot change results — batched
    /// serving is bitwise identical at any batch size.
    pub serve_chunk: usize,
    /// Run a federated round after every this-many served sessions.
    /// `0` disables the schedule (rounds can still be run explicitly).
    pub federated_every: usize,
    /// Pending labelled samples that trigger an incremental update on a
    /// device. `0` disables auto-updates.
    pub update_threshold: usize,
    /// Exemplar budget per class handed to incremental updates.
    pub exemplar_budget: usize,
    /// Per-device event-log ring-buffer bound (`0` = unbounded). Evicted
    /// events stay folded into the log's running totals, so telemetry and
    /// derived counts are unaffected by the bound — see
    /// [`crate::events::EventLog`].
    pub event_capacity: usize,
    /// How deployments, federated round payloads and telemetry ship over
    /// the links ([`crate::wire`]). The default — bit-exact `f32` with
    /// deltas on — changes only byte counts and the virtual clocks they
    /// feed; quantised precisions additionally make every installed model
    /// the *decoded* (lossy) payload, so accuracy cost is real end to end.
    pub wire: WireConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 0x5eed_f1ee,
            serve_chunk: 64,
            federated_every: 8,
            update_threshold: 20,
            exemplar_budget: 20,
            event_capacity: DEFAULT_EVENT_CAPACITY,
            wire: WireConfig::default(),
        }
    }
}

/// A member's `base_round` after something wiped its copy of the last
/// committed broadcast (a re-anchor or an uncommitted package install):
/// never equal to any committed round, so the member's next federated
/// payload falls back to the full encoding.
const STALE_ROUND: u64 = u64::MAX;

/// One device slot: the device plus the link it talks to the cloud (and
/// the federated coordinator) over.
struct FleetMember {
    device: EdgeDevice,
    link: LinkModel,
    updates_completed: usize,
    /// The fleet round whose committed broadcast this member holds a
    /// bitwise copy of. Delta payloads are only exchanged with members
    /// whose `base_round` matches the fleet's committed round; everyone
    /// else gets the typed full-payload fallback ([`crate::wire`]).
    base_round: u64,
}

/// A deterministic multi-device deployment: routes user sessions to
/// devices, serves them through the batched prototype-cache path, and
/// interleaves local incremental updates with federated rounds.
pub struct Fleet {
    members: Vec<FleetMember>,
    coordinator: FederatedCoordinator,
    config: FleetConfig,
    sessions_served: u64,
    windows_served: u64,
    /// Self-healing control loop ([`crate::policy`]), armed via
    /// [`Fleet::enable_policy`]. When present, federated rounds and
    /// deployment rollouts run staged (canary → cohort → fleet) with
    /// quarantine, repair escalation and halt-and-rollback.
    policy: Option<PolicyState>,
    /// Committed broadcast round: bumps once per completed federated
    /// round or fleet-wide rollout. Delta payloads reference this round.
    round: u64,
    /// The last committed broadcast checkpoint — the shared reference
    /// both ends of a delta payload diff against. `None` never occurs
    /// after [`Fleet::deploy`] (the deployment checkpoint seeds it), but
    /// the codec's [`CodecError::MissingBase`] fallback keeps even that
    /// case well-typed.
    base: Option<Checkpoint>,
    /// Cumulative wire bytes moved, by traffic class.
    wire_totals: WireTotals,
}

/// The enabled policy plus the cloud anchor package its strike-2 repair
/// re-installs.
struct PolicyState {
    policy: FleetPolicy,
    anchor: Deployment,
    anchor_bytes: u64,
}

/// Cumulative wire bytes the fleet has moved, by traffic class — the
/// exact binary payload sizes that fed [`LinkModel::transfer_seconds`]
/// charges, summed over every device. `repro wire` sweeps these totals
/// across [`WireConfig`]s to draw the accuracy-vs-bytes frontier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireTotals {
    /// Package installs: initial deploys, rollouts and re-anchors.
    pub deploy_bytes: u64,
    /// Federated round uploads (device → coordinator).
    pub federated_upload_bytes: u64,
    /// Federated round downloads (coordinator → device).
    pub federated_download_bytes: u64,
    /// Telemetry snapshot and delta uploads.
    pub telemetry_bytes: u64,
}

impl WireTotals {
    /// Upload + download bytes of federated rounds.
    pub fn federated_bytes(&self) -> u64 {
        self.federated_upload_bytes + self.federated_download_bytes
    }

    /// All bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.deploy_bytes + self.federated_bytes() + self.telemetry_bytes
    }
}

/// Per-device summary for reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Device profile name.
    pub name: String,
    /// Windows classified through the batched serving path.
    pub windows_served: u64,
    /// Prototype-cache rebuilds (one per committed model change that was
    /// followed by a serve).
    pub cache_rebuilds: u64,
    /// Completed incremental updates.
    pub updates: usize,
    /// Activity classes the device currently recognises.
    pub classes: usize,
    /// Device virtual clock, in modeled seconds.
    pub clock_seconds: f64,
    /// Whether the device degraded to its pre-trained baseline.
    pub degraded: bool,
}

/// Fleet-wide summary for reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Per-device summaries, in device-index order.
    pub devices: Vec<DeviceStats>,
    /// User sessions served.
    pub sessions: u64,
    /// Total windows classified across the fleet.
    pub windows: u64,
    /// Federated rounds completed.
    pub federated_rounds: usize,
}

/// SplitMix64 — the routing hash (also the policy's stage-assignment
/// hash). Chosen for determinism and full-avalanche mixing, not
/// cryptographic strength.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn codec_package_error(e: CodecError) -> PackageError {
    PackageError { detail: format!("wire codec: {e}") }
}

/// Encodes `deployment` at `precision` and decodes it straight back —
/// the package devices actually install — returning the decoded package
/// with its exact binary wire size. Routing installs through the codec
/// makes any quantisation loss real on the serve path instead of an
/// accounting fiction; at `F32` the decode is bitwise lossless.
fn package_for_wire(
    deployment: &Deployment,
    precision: WirePrecision,
) -> Result<(Deployment, u64), PackageError> {
    let encoded = wire::encode_deployment(deployment, precision).map_err(codec_package_error)?;
    let bytes = encoded.len() as u64;
    let package = wire::decode_deployment(&encoded).map_err(codec_package_error)?;
    Ok((package, bytes))
}

/// Encodes one member's federated upload — delta against the fleet's
/// committed base when the member is current, full otherwise — and
/// decodes it back exactly as the coordinator would. The **decoded**
/// checkpoint is what enters the average, so quantisation loss on
/// uploads is real end to end.
fn round_trip_upload(
    ckpt: &Checkpoint,
    base: Option<&Checkpoint>,
    round: u64,
    member_round: u64,
    cfg: WireConfig,
) -> Result<(Checkpoint, u64), CodecError> {
    let payload = match (cfg.delta && member_round == round, base) {
        (true, Some(b)) => wire::encode_round_delta(b, ckpt, round, cfg.precision)?,
        _ => wire::encode_round_full(ckpt, cfg.precision)?,
    };
    let bytes = payload.len() as u64;
    let decoded = wire::decode_round(&payload, base.map(|b| (b, round)))?;
    Ok((decoded, bytes))
}

/// The download side of a federated round: the merged model encoded at
/// most twice — the **canonical** payload current members receive (delta
/// against the committed base when enabled) and the **full fallback**
/// stale members receive — each decoded exactly once. Every receiver
/// installs decoded bits, and the canonical decode becomes the next
/// committed base.
struct RoundBroadcast {
    cfg: WireConfig,
    /// The round the canonical payload's delta references.
    round: u64,
    canonical_bytes: u64,
    canonical: Checkpoint,
    canonical_is_delta: bool,
    /// `(bytes, decoded)` of the full fallback, built by
    /// [`RoundBroadcast::ensure_full`] when some receiver is stale.
    full: Option<(u64, Checkpoint)>,
    /// The exact merged model, kept to encode the full fallback from.
    merged: Checkpoint,
}

impl RoundBroadcast {
    fn new(
        merged: Checkpoint,
        base: Option<&Checkpoint>,
        round: u64,
        cfg: WireConfig,
    ) -> Result<Self, CodecError> {
        let (payload, canonical_is_delta) = match (cfg.delta, base) {
            (true, Some(b)) => (wire::encode_round_delta(b, &merged, round, cfg.precision)?, true),
            _ => (wire::encode_round_full(&merged, cfg.precision)?, false),
        };
        let canonical = wire::decode_round(&payload, base.map(|b| (b, round)))?;
        Ok(RoundBroadcast {
            cfg,
            round,
            canonical_bytes: payload.len() as u64,
            canonical,
            canonical_is_delta,
            full: None,
            merged,
        })
    }

    /// Builds the full fallback payload. Must be called before
    /// [`RoundBroadcast::payload_for`] sees any stale member.
    fn ensure_full(&mut self) -> Result<(), CodecError> {
        if self.full.is_none() {
            let payload = wire::encode_round_full(&self.merged, self.cfg.precision)?;
            let decoded = wire::decode_round(&payload, None)?;
            self.full = Some((payload.len() as u64, decoded));
        }
        Ok(())
    }

    /// `(bytes, checkpoint to install, becomes current)` for a member
    /// whose committed round is `member_round`. A full-fallback receiver
    /// only becomes current when the precision is lossless — at `F32`
    /// both payloads decode to the same bits, while a quantised full
    /// decode differs from the canonical one, so the member would not
    /// hold the committed base and must keep falling back.
    fn payload_for(&self, member_round: u64) -> (u64, &Checkpoint, bool) {
        if !self.canonical_is_delta || member_round == self.round {
            (self.canonical_bytes, &self.canonical, true)
        } else {
            let (bytes, decoded) = self
                .full
                .as_ref()
                .expect("ensure_full is called before any stale member downloads");
            (*bytes, decoded, self.cfg.precision == WirePrecision::F32)
        }
    }
}

/// Serves one feature matrix on a device through the batched
/// prototype-cache path, `serve_chunk` windows at a time. This is the
/// single serving loop shared by [`Fleet::serve_session`] (serial) and
/// [`Fleet::serve_sessions`] (sharded), so both paths are bitwise
/// identical by construction.
fn serve_chunked(
    device: &mut EdgeDevice,
    features: &Tensor,
    serve_chunk: usize,
) -> Result<Vec<InferenceOutcome>, EdgeError> {
    let mut outcomes = Vec::with_capacity(features.rows());
    let mut row = 0;
    while row < features.rows() {
        let end = (row + serve_chunk).min(features.rows());
        let chunk = features.slice_rows(row, end)?;
        outcomes.extend(device.serve_batch(&chunk)?);
        row = end;
    }
    Ok(outcomes)
}

/// Runs `f(device_index, member)` over every member, fanning contiguous
/// device-index **bands** out across worker threads (the same
/// `PILOTE_THREADS` band machinery the kernels use), and returns the
/// per-member results in device-index order regardless of thread count or
/// timing. With one thread (or one member) this is exactly the serial
/// in-order walk.
///
/// Callers must only hand this closures whose work is confined to the
/// member itself plus commutative global state (flop atomics, obs
/// counters): per-device flop deltas are measured on the executing
/// thread's local counter, so modeled clocks come out identical to the
/// serial walk, and the band merge restores device-index order for
/// everything else. Closures must not open observability spans — worker
/// spans would finish in nondeterministic order (see `docs/SCALING.md`).
fn map_member_bands<R: Send>(
    members: &mut [FleetMember],
    f: &(impl Fn(usize, &mut FleetMember) -> R + Sync),
) -> Vec<R> {
    // Members are coarse-grained work units (a device's whole serving or
    // wire workload), so the kernel layer's scalar-op threshold
    // (`min_parallel_len`) does not apply — only the configured thread
    // count gates the fan-out.
    let threads = parallel::current().num_threads.max(1).min(members.len());
    if threads <= 1 || members.len() <= 1 {
        return members.iter_mut().enumerate().map(|(i, m)| f(i, m)).collect();
    }
    let ranges = parallel::band_ranges(members.len(), threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len().saturating_sub(1));
        let mut rest = members;
        let mut first_band = None;
        for (band_index, range) in ranges.iter().enumerate() {
            let (band, tail) = rest.split_at_mut(range.end - range.start);
            rest = tail;
            let base = range.start;
            if band_index == 0 {
                first_band = Some((base, band));
            } else {
                handles.push(scope.spawn(move || {
                    band.iter_mut()
                        .enumerate()
                        .map(|(j, m)| f(base + j, m))
                        .collect::<Vec<R>>()
                }));
            }
        }
        let (base, band) = first_band.expect("band_ranges returns at least one band");
        let mut out: Vec<R> = band
            .iter_mut()
            .enumerate()
            .map(|(j, m)| f(base + j, m))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("fleet shard worker panicked"));
        }
        out
    })
}

/// One policy control step: inspects every device's not-yet-inspected
/// quality reports (local update samples, prior install samples) in
/// device-index order and escalates the repair ladder on any new
/// triggering alert.
fn control_step(
    members: &mut [FleetMember],
    state: &mut PolicyState,
    totals: &mut WireTotals,
) -> Result<(), EdgeError> {
    for (index, member) in members.iter_mut().enumerate() {
        let reports = member.device.quality_reports();
        let baseline = reports.first().map(|r| r.old_class_accuracy);
        let trigger = state
            .policy
            .unseen_reports(index, reports)
            .iter()
            .find_map(|r| state.policy.judge(r, baseline));
        let seen = member.device.quality_reports().len();
        state.policy.mark_seen(index, seen);
        if let Some(rule) = trigger {
            apply_repair(member, state, index, &rule, totals)?;
        }
    }
    Ok(())
}

/// Escalates a device's strike and applies the prescribed repair —
/// rollback → re-anchor → degrade, PR 2's resilience ladder driven by
/// model quality. The repair bumps the model generation but is
/// deliberately left unsampled: the device is quarantined (suspect
/// screening never touches it), and its next staged install sample
/// judges the repaired state.
fn apply_repair(
    member: &mut FleetMember,
    state: &mut PolicyState,
    index: usize,
    rule: &str,
    totals: &mut WireTotals,
) -> Result<(), EdgeError> {
    let action = state.policy.escalate(index);
    let strike = state.policy.strikes(index);
    if action != RepairAction::Degrade {
        member.device.record_event(EventKind::QuarantineEntered {
            rule: rule.to_string(),
            strike,
            rounds: state.policy.config().quarantine_rounds,
        });
    }
    match action {
        RepairAction::Rollback => member.device.repair_rollback(strike)?,
        RepairAction::Reanchor => {
            member.device.advance_clock(member.link.transfer_seconds(state.anchor_bytes));
            totals.deploy_bytes += state.anchor_bytes;
            member.device.adopt_deployment(&state.anchor)?;
            // The re-install wiped the device's copy of the committed
            // broadcast: its next federated payload must be a full one.
            member.base_round = STALE_ROUND;
            member.device.record_event(EventKind::Reanchored {
                payload_bytes: state.anchor_bytes,
                strike,
            });
        }
        RepairAction::Degrade => member.device.policy_degrade(strike)?,
    }
    state.policy.mark_seen(index, member.device.quality_reports().len());
    Ok(())
}

impl Fleet {
    /// Deploys the same cloud package onto every `(profile, link)` slot,
    /// charging each device's install download on its own link.
    pub fn deploy(
        slots: Vec<(DeviceProfile, LinkModel)>,
        deployment: &Deployment,
        config: FleetConfig,
    ) -> Result<Fleet, EdgeError> {
        assert!(!slots.is_empty(), "a fleet needs at least one device");
        assert!(config.serve_chunk > 0, "serve_chunk must be positive");
        let span = pilote_obs::span("fleet.deploy");
        span.annotate("devices", slots.len() as f64);
        // The package is identical for every device: encode and decode it
        // once at the configured precision and let every install share the
        // decoded package and its exact wire size.
        let (package, wire) = package_for_wire(deployment, config.wire.precision)?;
        let members = slots
            .into_iter()
            .map(|(profile, link)| {
                let mut device =
                    EdgeDevice::install_presized(profile, &package, &link, wire)?;
                device.set_event_capacity(config.event_capacity);
                Ok(FleetMember { device, link, updates_completed: 0, base_round: 0 })
            })
            .collect::<Result<Vec<_>, EdgeError>>()?;
        drop(span);
        let deploy_bytes = wire * members.len() as u64;
        Ok(Fleet {
            members,
            coordinator: FederatedCoordinator::new(),
            config,
            sessions_served: 0,
            windows_served: 0,
            policy: None,
            round: 0,
            base: Some(package.checkpoint),
            wire_totals: WireTotals { deploy_bytes, ..WireTotals::default() },
        })
    }

    /// [`Fleet::deploy`] with the install fan-out sharded across worker
    /// threads: contiguous device-index bands install in parallel and the
    /// roster is reassembled in band order, so the resulting fleet —
    /// device order, per-device clocks, logs, routing — is byte-identical
    /// to a serial [`Fleet::deploy`] at any `PILOTE_THREADS` setting.
    ///
    /// Unlike [`Fleet::deploy`] this opens **no** `fleet.deploy` span:
    /// install dispatches prototype-refresh kernel work, and attributing
    /// worker-thread flops to an orchestrator-side span would make trace
    /// contents depend on the thread count. Use this for large rosters
    /// where install wall-time matters and the serial variant when the
    /// deploy must appear in an exported trace.
    pub fn deploy_sharded(
        slots: Vec<(DeviceProfile, LinkModel)>,
        deployment: &Deployment,
        config: FleetConfig,
    ) -> Result<Fleet, EdgeError> {
        assert!(!slots.is_empty(), "a fleet needs at least one device");
        assert!(config.serve_chunk > 0, "serve_chunk must be positive");
        // Installs are coarse-grained; gate only on the configured thread
        // count, not the kernel layer's scalar-op threshold.
        let threads = parallel::current().num_threads.max(1).min(slots.len());
        // One encode/decode for the whole roster — the package is shared.
        let (package, wire) = package_for_wire(deployment, config.wire.precision)?;
        let bands = parallel::map_bands(slots.len(), threads, |range| {
            slots[range]
                .iter()
                .map(|(profile, link)| {
                    let mut device = EdgeDevice::install_presized(
                        profile.clone(),
                        &package,
                        link,
                        wire,
                    )?;
                    device.set_event_capacity(config.event_capacity);
                    Ok(FleetMember { device, link: *link, updates_completed: 0, base_round: 0 })
                })
                .collect::<Result<Vec<_>, EdgeError>>()
        });
        let mut members = Vec::with_capacity(slots.len());
        for band in bands {
            members.extend(band?);
        }
        let deploy_bytes = wire * members.len() as u64;
        Ok(Fleet {
            members,
            coordinator: FederatedCoordinator::new(),
            config,
            sessions_served: 0,
            windows_served: 0,
            policy: None,
            round: 0,
            base: Some(package.checkpoint),
            wire_totals: WireTotals { deploy_bytes, ..WireTotals::default() },
        })
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the fleet has no devices (never true after [`Fleet::deploy`]).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The device a user is pinned to: a pure hash of the fleet seed and
    /// the user id, stable for the lifetime of the fleet.
    pub fn route(&self, user_id: u64) -> usize {
        (splitmix64(self.config.seed ^ user_id) % self.members.len() as u64) as usize
    }

    /// Device at `index`.
    pub fn device(&self, index: usize) -> &EdgeDevice {
        &self.members[index].device
    }

    /// Mutable device at `index` (test and harness access).
    pub fn device_mut(&mut self, index: usize) -> &mut EdgeDevice {
        &mut self.members[index].device
    }

    /// Federated rounds completed so far.
    pub fn federated_rounds(&self) -> usize {
        self.coordinator.rounds()
    }

    /// Committed broadcast round — the generation delta payloads
    /// reference ([`crate::wire`]). Bumps once per completed federated
    /// round or fleet-wide rollout.
    pub fn committed_round(&self) -> u64 {
        self.round
    }

    /// The wire configuration this fleet's payloads ship under.
    pub fn wire_config(&self) -> WireConfig {
        self.config.wire
    }

    /// Cumulative wire bytes this fleet has moved, by traffic class —
    /// the exact payload sizes its links were charged with.
    pub fn wire_totals(&self) -> WireTotals {
        self.wire_totals
    }

    /// Serves one user session — a pre-extracted feature matrix
    /// (`[n, 28]`) — on the user's routed device, chunked through the
    /// batched prototype-cache path. Afterwards, runs any federated round
    /// the session schedule now owes ([`FleetConfig::federated_every`]).
    pub fn serve_session(
        &mut self,
        user_id: u64,
        features: &Tensor,
    ) -> Result<Vec<InferenceOutcome>, EdgeError> {
        let index = self.route(user_id);
        let span = pilote_obs::span("fleet.session");
        span.annotate("device", index as f64);
        span.annotate("windows", features.rows() as f64);
        let outcomes =
            serve_chunked(&mut self.members[index].device, features, self.config.serve_chunk)?;
        drop(span);
        self.sessions_served += 1;
        self.windows_served += features.rows() as u64;
        if pilote_obs::enabled() {
            pilote_obs::counter("fleet.sessions").inc();
            pilote_obs::counter("fleet.windows_served").add(features.rows() as u64);
        }
        if self.config.federated_every > 0
            && self.sessions_served.is_multiple_of(self.config.federated_every as u64)
        {
            self.federated_round()?;
        }
        Ok(outcomes)
    }

    /// Serves a batch of `(user_id, features)` sessions with the roster
    /// **sharded** across worker threads: sessions are routed up front,
    /// each device serves its own sessions in input order on the shard
    /// that owns it, and outcomes are returned in input order.
    ///
    /// Semantics match calling [`Fleet::serve_session`] once per entry, in
    /// order — same outcomes, device clocks, event logs, counters and
    /// federated schedule (the batch is cut at every
    /// [`FleetConfig::federated_every`] boundary so rounds fire between
    /// exactly the same sessions) — with one deliberate exception: no
    /// per-session `fleet.session` span is opened, because worker-side
    /// spans would finish in thread-timing order and their flop
    /// attribution would vary with the thread count. Bulk serving is for
    /// scale runs whose traces are not exported per session.
    ///
    /// # Errors
    /// Any serving error from the underlying devices. When an error is
    /// returned, sessions before the failing federated boundary have still
    /// been served and counted.
    pub fn serve_sessions(
        &mut self,
        sessions: &[(u64, Tensor)],
    ) -> Result<Vec<Vec<InferenceOutcome>>, EdgeError> {
        let mut results: Vec<Option<Vec<InferenceOutcome>>> = Vec::new();
        results.resize_with(sessions.len(), || None);
        let mut next = 0usize;
        while next < sessions.len() {
            let remaining = sessions.len() - next;
            let group = if self.config.federated_every > 0 {
                let every = self.config.federated_every as u64;
                let until_round = every - (self.sessions_served % every);
                remaining.min(until_round as usize)
            } else {
                remaining
            };
            // Route the whole group first; each device then serves its own
            // sessions in input order, so per-device event order matches
            // the serial walk exactly.
            let mut per_device: Vec<Vec<usize>> = vec![Vec::new(); self.members.len()];
            for (offset, (user_id, _)) in sessions[next..next + group].iter().enumerate() {
                per_device[self.route(*user_id)].push(next + offset);
            }
            let serve_chunk = self.config.serve_chunk;
            let served = map_member_bands(&mut self.members, &|index, member| {
                per_device[index]
                    .iter()
                    .map(|&pos| {
                        (pos, serve_chunked(&mut member.device, &sessions[pos].1, serve_chunk))
                    })
                    .collect::<Vec<_>>()
            });
            for (pos, outcome) in served.into_iter().flatten() {
                results[pos] = Some(outcome?);
            }
            let group_windows: u64 = sessions[next..next + group]
                .iter()
                .map(|(_, features)| features.rows() as u64)
                .sum();
            self.sessions_served += group as u64;
            self.windows_served += group_windows;
            if pilote_obs::enabled() {
                pilote_obs::counter("fleet.sessions").add(group as u64);
                pilote_obs::counter("fleet.windows_served").add(group_windows);
            }
            if self.config.federated_every > 0
                && self.sessions_served.is_multiple_of(self.config.federated_every as u64)
            {
                self.federated_round()?;
            }
            next += group;
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every session is served by its routed device"))
            .collect())
    }

    /// Buffers one labelled feature vector on the user's routed device
    /// (the user tagged part of a session with an activity name). When the
    /// device's pending buffer reaches [`FleetConfig::update_threshold`],
    /// runs the incremental update in place.
    pub fn label_sample(
        &mut self,
        user_id: u64,
        label: usize,
        features: Tensor,
    ) -> Result<Option<UpdateStatus>, EdgeError> {
        let index = self.route(user_id);
        let member = &mut self.members[index];
        member.device.label_sample(label, features);
        if self.config.update_threshold > 0
            && member.device.pending_samples() >= self.config.update_threshold
        {
            let status = member
                .device
                .update_faulted(self.config.exemplar_budget, None)?;
            if status == UpdateStatus::Completed {
                member.updates_completed += 1;
            }
            if pilote_obs::enabled() {
                pilote_obs::counter("fleet.updates").inc();
            }
            return Ok(Some(status));
        }
        Ok(None)
    }

    /// Runs one federated round across the whole fleet: every device with
    /// a non-empty support set uploads its parameters over its link and
    /// downloads the merged model back (both transfers advance that
    /// device's virtual clock); zero-support devices skip the upload but
    /// still receive — and pay for — the download.
    ///
    /// Both directions ship through the binary codec ([`crate::wire`]) at
    /// the fleet's [`FleetConfig::wire`] setting: uploads and the merged
    /// broadcast are delta-encoded against the committed base when the
    /// member is current (full-payload fallback otherwise), and what gets
    /// averaged and installed is the **decoded** payload — so quantised
    /// precisions pay their accuracy cost for real, while the default
    /// `f32` round trip is bitwise lossless. A completed round commits
    /// the decoded broadcast as the next delta base.
    pub fn federated_round(&mut self) -> Result<(), EdgeError> {
        if self.policy.is_some() {
            return self.staged_federated_round();
        }
        let span = pilote_obs::span("fleet.federated_round");
        span.annotate("devices", self.members.len() as f64);
        let cfg = self.config.wire;
        let round = self.round;
        let base = self.base.as_ref();
        // Capture + encode + coordinator-side decode fan out across
        // shards — no kernel flops, so neither the open span nor any
        // clock moves — while every clock charge lands serially in
        // device-index order below.
        let payloads = map_member_bands(&mut self.members, &|_, member| {
            let support = member.device.model_mut().support().len();
            if support == 0 {
                return (None, support);
            }
            let ckpt = Checkpoint::capture(member.device.model_mut().net_mut().layers_mut());
            (Some(round_trip_upload(&ckpt, base, round, member.base_round, cfg)), support)
        });
        let mut contributions = Vec::new();
        let mut upload_bytes: Vec<Option<u64>> = Vec::with_capacity(self.members.len());
        for (upload, support) in payloads {
            match upload {
                Some(result) => {
                    let (decoded, bytes) = result.map_err(codec_package_error)?;
                    contributions.push((decoded, support));
                    upload_bytes.push(Some(bytes));
                }
                None => upload_bytes.push(None),
            }
        }
        let participants = contributions.len();
        let merged = federated_average(&contributions)?;
        let mut broadcast =
            RoundBroadcast::new(merged, base, round, cfg).map_err(codec_package_error)?;
        if broadcast.canonical_is_delta && self.members.iter().any(|m| m.base_round != round) {
            broadcast.ensure_full().map_err(codec_package_error)?;
        }
        let new_round = round + 1;
        for (index, member) in self.members.iter_mut().enumerate() {
            if let Some(bytes) = upload_bytes[index] {
                member.device.advance_clock(member.link.transfer_seconds(bytes));
                self.wire_totals.federated_upload_bytes += bytes;
            }
            let (down, ckpt, current) = broadcast.payload_for(member.base_round);
            member.device.advance_clock(member.link.transfer_seconds(down));
            self.wire_totals.federated_download_bytes += down;
            ckpt.restore(member.device.model_mut().net_mut().layers_mut())?;
            member.device.model_mut().refresh_prototypes()?;
            if upload_bytes[index].is_none() {
                member.device.record_event(EventKind::FederatedExcluded {
                    participants,
                    reason: ExclusionReason::ZeroSupport,
                });
            }
            member.device.note_federated_round(participants);
            if current {
                member.base_round = new_round;
            }
        }
        self.base = Some(broadcast.canonical);
        self.round = new_round;
        self.coordinator.note_round();
        // The round installed merged parameters everywhere (generation
        // bumped), so armed quality monitors must sample the new model.
        for member in &mut self.members {
            member.device.sample_quality()?;
        }
        drop(span);
        if pilote_obs::enabled() {
            pilote_obs::counter("fleet.federated_rounds").inc();
        }
        Ok(())
    }

    /// Arms the self-healing control loop over this fleet
    /// ([`crate::policy`]): stage plan derived from the fleet seed, every
    /// device starting healthy, and `anchor` as the strike-2 re-anchor
    /// package. Subsequent [`Fleet::federated_round`] calls run the
    /// staged policied path and [`Fleet::rollout_deployment`] installs in
    /// stages with halt-and-rollback.
    pub fn enable_policy(
        &mut self,
        config: PolicyConfig,
        anchor: Deployment,
    ) -> Result<(), EdgeError> {
        // The anchor re-installs over the wire: store the decoded package
        // at the configured precision with its exact binary size, so a
        // re-anchor ships (and installs) the same bits a deploy would.
        let (anchor, anchor_bytes) = package_for_wire(&anchor, self.config.wire.precision)?;
        self.policy = Some(PolicyState {
            policy: FleetPolicy::new(config, self.members.len(), self.config.seed),
            anchor,
            anchor_bytes,
        });
        Ok(())
    }

    /// The enabled self-healing policy, if any.
    pub fn policy(&self) -> Option<&FleetPolicy> {
        self.policy.as_ref().map(|s| &s.policy)
    }

    /// Enables per-device adaptive threshold derivation on every armed
    /// quality monitor: each device's forgetting/drift thresholds then
    /// track its own probe history instead of the shared constants (see
    /// [`pilote_core::AdaptiveThresholds`]).
    pub fn set_adaptive_thresholds(&mut self, adaptive: AdaptiveThresholds) {
        for member in &mut self.members {
            member.device.set_adaptive_thresholds(Some(adaptive));
        }
    }

    /// The policied [`Fleet::federated_round`]: one control step (acting
    /// on alerts sampled since the last round), then healthy-only
    /// contribution collection, then a staged canary → cohort → fleet
    /// install of the merged model with halt-and-rollback and suspect
    /// screening. See `docs/POLICY.md` for the full loop. Every step runs
    /// in device-index order (wire sizing fans out per band but carries
    /// no spans or kernel flops), so the round is byte-identical across
    /// runs and `PILOTE_THREADS` settings.
    fn staged_federated_round(&mut self) -> Result<(), EdgeError> {
        let Fleet { members, coordinator, policy, config, round, base, wire_totals, .. } = self;
        let state = policy.as_mut().expect("staged round requires an enabled policy");
        let span = pilote_obs::span("fleet.staged_round");
        span.annotate("devices", members.len() as f64);

        // 1. Control step: quarantine/repair on any new triggering alert.
        control_step(members, state, wire_totals)?;

        // 2. Collect contributions — healthy devices with non-empty
        //    support, captured BEFORE any install — each encoded through
        //    the wire codec (delta against the committed base when the
        //    member is current) and decoded back: the decoded checkpoint
        //    is what enters the average.
        let cfg = config.wire;
        let committed = *round;
        let base_ref = base.as_ref();
        let policy_ref = &state.policy;
        let payloads = map_member_bands(members, &|index, member| {
            let support = member.device.model_mut().support().len();
            if !(policy_ref.contributes(index) && support > 0) {
                return (None, support);
            }
            let ckpt = Checkpoint::capture(member.device.model_mut().net_mut().layers_mut());
            (
                Some(round_trip_upload(&ckpt, base_ref, committed, member.base_round, cfg)),
                support,
            )
        });
        let mut contributions = Vec::new();
        let mut contributing = vec![false; members.len()];
        let mut upload_bytes = vec![0u64; members.len()];
        for (index, (upload, support)) in payloads.into_iter().enumerate() {
            if let Some(result) = upload {
                let (decoded, bytes) = result.map_err(codec_package_error)?;
                contributing[index] = true;
                upload_bytes[index] = bytes;
                contributions.push((decoded, support));
            }
        }
        let participants = contributions.len();
        for (index, member) in members.iter_mut().enumerate() {
            if contributing[index] {
                member.device.advance_clock(member.link.transfer_seconds(upload_bytes[index]));
                wire_totals.federated_upload_bytes += upload_bytes[index];
            } else {
                // Typed exclusion: a healthy-but-empty device skipped for
                // zero support, everyone else because the policy holds it
                // out (degraded devices are the ladder's terminal rung of
                // the same quarantine story).
                let reason = if state.policy.contributes(index) {
                    ExclusionReason::ZeroSupport
                } else {
                    ExclusionReason::Quarantined
                };
                member.device.record_event(EventKind::FederatedExcluded { participants, reason });
            }
        }
        let merged = federated_average(&contributions)?;
        let mut broadcast = RoundBroadcast::new(merged, base.as_ref(), committed, cfg)
            .map_err(codec_package_error)?;
        if broadcast.canonical_is_delta
            && members
                .iter()
                .enumerate()
                .any(|(i, m)| state.policy.receives(i) && m.base_round != committed)
        {
            broadcast.ensure_full().map_err(codec_package_error)?;
        }

        // 3. Staged install: canary → cohort → fleet, halting (and
        //    restoring the stage) when the stage's triggering-alert rate
        //    exceeds its historical baseline. Every install is the
        //    **decoded** broadcast payload for that member — delta for
        //    current members, the full fallback for stale ones.
        let mut installed_current = vec![false; members.len()];
        for stage in RolloutStage::ALL {
            let indices: Vec<usize> = state
                .policy
                .plan()
                .stage(stage)
                .iter()
                .copied()
                .filter(|&i| state.policy.receives(i))
                .collect();
            if indices.is_empty() {
                continue;
            }
            let mut snapshots = Vec::with_capacity(indices.len());
            for &i in &indices {
                let member = &mut members[i];
                snapshots.push(member.device.policy_snapshot());
                let (down, ckpt, current) = broadcast.payload_for(member.base_round);
                member.device.advance_clock(member.link.transfer_seconds(down));
                wire_totals.federated_download_bytes += down;
                ckpt.restore(member.device.model_mut().net_mut().layers_mut())?;
                member.device.model_mut().refresh_prototypes()?;
                member.device.note_federated_round(participants);
                installed_current[i] = current;
            }
            let mut alerts = 0u64;
            for &i in &indices {
                let before = members[i].device.quality_reports().len();
                members[i].device.sample_quality()?;
                let reports = members[i].device.quality_reports();
                alerts += reports[before..]
                    .iter()
                    .filter(|r| FleetPolicy::triggering_alert(r).is_some())
                    .count() as u64;
            }
            if state.policy.stage_completed(stage, indices.len(), alerts) {
                // Halt: the stage's devices are install *victims* — put
                // them back exactly and consume their reports so the next
                // control step does not quarantine them for our mistake.
                for (&i, snap) in indices.iter().zip(snapshots) {
                    let member = &mut members[i];
                    member.device.policy_restore(snap)?;
                    member.device.record_event(EventKind::RolloutHalted {
                        stage: stage.name().to_string(),
                        alerts,
                        stage_size: indices.len(),
                    });
                    let seen = member.device.quality_reports().len();
                    state.policy.mark_seen(i, seen);
                }
                // Suspect screening: sample every contributor. The
                // monitor gates on generation, so a healthy contributor
                // (sampled at its last commit) yields nothing, while a
                // silently poisoned one — generation moved without a
                // sample — now gets judged and quarantined. Judging
                // includes the absolute screening floor: a culprit that
                // sat *inside* the halted stage was just restored to its
                // own poisoned snapshot, so its incremental forgetting is
                // zero, but its accuracy against the armed baseline is
                // not.
                for index in 0..members.len() {
                    if !contributing[index] {
                        continue;
                    }
                    members[index].device.sample_quality()?;
                    let member = &mut members[index];
                    let reports = member.device.quality_reports();
                    let baseline = reports.first().map(|r| r.old_class_accuracy);
                    let trigger = state
                        .policy
                        .unseen_reports(index, reports)
                        .iter()
                        .find_map(|r| state.policy.judge(r, baseline));
                    let seen = member.device.quality_reports().len();
                    state.policy.mark_seen(index, seen);
                    if let Some(rule) = trigger {
                        apply_repair(member, state, index, &rule, wire_totals)?;
                    }
                }
                state.policy.note_halted_round();
                drop(span);
                if pilote_obs::enabled() {
                    pilote_obs::counter("fleet.policy.halted_rounds").inc();
                }
                return Ok(());
            }
        }

        // 4. All stages completed: commit the decoded broadcast as the
        //    next delta base, count the round and serve quarantine
        //    sentences. Members that installed the canonical payload are
        //    current for the new round; full-fallback and held-out
        //    members keep falling back until a lossless install catches
        //    them up.
        let new_round = committed + 1;
        for (index, member) in members.iter_mut().enumerate() {
            if installed_current[index] {
                member.base_round = new_round;
            }
        }
        *round = new_round;
        *base = Some(broadcast.canonical);
        coordinator.note_round();
        for (index, strikes) in state.policy.finish_round() {
            members[index].device.record_event(EventKind::QuarantineLifted { strikes });
        }
        drop(span);
        if pilote_obs::enabled() {
            pilote_obs::counter("fleet.federated_rounds").inc();
            pilote_obs::counter("fleet.policy.staged_rounds").inc();
        }
        Ok(())
    }

    /// Installs a new cloud package across the fleet. Without a policy
    /// this is a single wave: every device adopts the package, pays the
    /// download on its link, and samples its quality monitor. With a
    /// policy enabled the install runs canary → cohort → fleet with
    /// halt-and-rollback, exactly like a staged federated round, and a
    /// completed rollout re-bases the policy's re-anchor package on the
    /// new deployment. Returns `true` when every stage completed, `false`
    /// when a stage halted (its installs restored exactly).
    pub fn rollout_deployment(&mut self, deployment: &Deployment) -> Result<bool, EdgeError> {
        // Every device installs the decoded wire package (lossless at
        // `f32`, genuinely quantised below it) and pays its exact binary
        // size on the link. A completed rollout re-bases the federated
        // delta chain on the package checkpoint — every installer now
        // holds exactly those bits.
        let (package, wire) = package_for_wire(deployment, self.config.wire.precision)?;
        let Fleet { members, policy, round, base, wire_totals, .. } = self;
        let Some(state) = policy.as_mut() else {
            for member in members.iter_mut() {
                member.device.advance_clock(member.link.transfer_seconds(wire));
                wire_totals.deploy_bytes += wire;
                member.device.adopt_deployment(&package)?;
                member.device.record_event(EventKind::Deployed { payload_bytes: wire });
                member.device.sample_quality()?;
            }
            *round += 1;
            for member in members.iter_mut() {
                member.base_round = *round;
            }
            *base = Some(package.checkpoint);
            return Ok(true);
        };
        let span = pilote_obs::span("fleet.rollout");
        span.annotate("devices", members.len() as f64);
        // Devices from *completed* stages keep the new package when a
        // later stage halts: the rollout never commits, so their copy of
        // the committed broadcast is gone and their next federated
        // payload must be a full one.
        let mut adopted: Vec<usize> = Vec::new();
        for stage in RolloutStage::ALL {
            let indices: Vec<usize> = state
                .policy
                .plan()
                .stage(stage)
                .iter()
                .copied()
                .filter(|&i| state.policy.receives(i))
                .collect();
            if indices.is_empty() {
                continue;
            }
            let mut snapshots = Vec::with_capacity(indices.len());
            for &i in &indices {
                let member = &mut members[i];
                snapshots.push(member.device.policy_snapshot());
                member.device.advance_clock(member.link.transfer_seconds(wire));
                wire_totals.deploy_bytes += wire;
                member.device.adopt_deployment(&package)?;
                member.device.record_event(EventKind::Deployed { payload_bytes: wire });
            }
            let mut alerts = 0u64;
            for &i in &indices {
                let before = members[i].device.quality_reports().len();
                members[i].device.sample_quality()?;
                let reports = members[i].device.quality_reports();
                alerts += reports[before..]
                    .iter()
                    .filter(|r| FleetPolicy::triggering_alert(r).is_some())
                    .count() as u64;
            }
            if state.policy.stage_completed(stage, indices.len(), alerts) {
                for (&i, snap) in indices.iter().zip(snapshots) {
                    let member = &mut members[i];
                    member.device.policy_restore(snap)?;
                    member.device.record_event(EventKind::RolloutHalted {
                        stage: stage.name().to_string(),
                        alerts,
                        stage_size: indices.len(),
                    });
                    let seen = member.device.quality_reports().len();
                    state.policy.mark_seen(i, seen);
                }
                for &i in &adopted {
                    members[i].base_round = STALE_ROUND;
                }
                drop(span);
                if pilote_obs::enabled() {
                    pilote_obs::counter("fleet.policy.halted_rollouts").inc();
                }
                return Ok(false);
            }
            adopted.extend_from_slice(&indices);
        }
        // The fleet now runs the new package everywhere: it becomes the
        // re-anchor target and the new federated delta base. Held-out
        // devices (quarantined, degraded) never installed it and stay on
        // the full-payload fallback.
        *round += 1;
        for &i in &adopted {
            members[i].base_round = *round;
        }
        *base = Some(package.checkpoint.clone());
        state.anchor = package;
        state.anchor_bytes = wire;
        drop(span);
        if pilote_obs::enabled() {
            pilote_obs::counter("fleet.policy.rollouts").inc();
        }
        Ok(true)
    }

    /// Arms a [`pilote_core::QualityMonitor`] with the same probe set and
    /// thresholds on every device, in device-index order. Each monitor
    /// takes its baseline measurement immediately and then samples at
    /// every later generation bump (updates, rollbacks, degradations and
    /// federated installs), raising [`crate::events::EventKind::AlertRaised`]
    /// events into the device log.
    pub fn arm_quality_monitors(
        &mut self,
        probe: &Dataset,
        old_labels: &[usize],
        thresholds: QualityThresholds,
    ) -> Result<(), EdgeError> {
        for member in &mut self.members {
            member
                .device
                .arm_quality_monitor(probe.clone(), old_labels, thresholds)?;
        }
        Ok(())
    }

    /// [`Fleet::arm_quality_monitors`] plus session-matrix recording on
    /// every device: each monitor also stamps one row of a session × task
    /// [`pilote_core::AccuracyMatrix`] per observation (the baseline taken
    /// here is row 0), collected fleet-wide by
    /// [`Fleet::session_matrix_rollup`].
    pub fn arm_quality_monitors_with_sessions(
        &mut self,
        probe: &Dataset,
        old_labels: &[usize],
        thresholds: QualityThresholds,
        tasks: &[TaskGroup],
    ) -> Result<(), EdgeError> {
        for member in &mut self.members {
            member.device.arm_quality_monitor_with_sessions(
                probe.clone(),
                old_labels,
                thresholds,
                tasks.to_vec(),
            )?;
        }
        Ok(())
    }

    /// Collects every device's telemetry snapshot over its own link
    /// (charging real wire bytes and modeled transfer time, like any other
    /// deployment traffic) and merges them into a deterministic fleet-wide
    /// [`TelemetryRollup`] in device-index order.
    ///
    /// Each payload is sized by the binary telemetry codec
    /// ([`crate::wire::snapshot_wire_bytes`]) — the exact bytes
    /// [`crate::wire::encode_snapshot`] would emit.
    ///
    /// Under `PILOTE_OBS=0` each device ships an empty snapshot — the
    /// rollup stays well-formed (all sections empty) and the devices are
    /// still counted, but no telemetry leaves the device.
    ///
    /// # Errors
    /// [`EdgeError::Rollup`] when two devices disagree on histogram
    /// bucket bounds.
    pub fn telemetry_rollup(&mut self) -> Result<TelemetryRollup, EdgeError> {
        let span = pilote_obs::span("fleet.telemetry_rollup");
        span.annotate("devices", self.members.len() as f64);
        // Snapshot + wire sizing fan out across shards (no kernel flops,
        // so neither the span nor any clock changes); the clock charges
        // and the rollup merge run serially in device-index order, which
        // keeps gauge last-write-wins and histogram-bounds errors
        // identical to the serial walk.
        let payloads = map_member_bands(&mut self.members, &|_, member| {
            let snapshot = member.device.telemetry_snapshot();
            let bytes = wire::snapshot_wire_bytes(&snapshot);
            (snapshot, bytes)
        });
        let mut rollup = TelemetryRollup::new();
        for (member, (snapshot, bytes)) in self.members.iter_mut().zip(payloads) {
            member.device.advance_clock(member.link.transfer_seconds(bytes));
            self.wire_totals.telemetry_bytes += bytes;
            rollup.merge_snapshot(&snapshot)?;
        }
        drop(span);
        if pilote_obs::enabled() {
            pilote_obs::counter("fleet.telemetry_rollups").inc();
        }
        Ok(rollup)
    }

    /// Collects every device's **delta** telemetry — the increment since
    /// that device's previous upload ([`EdgeDevice::telemetry_delta`]) —
    /// charges each link with the (much smaller) delta payload, and merges
    /// the deltas into `rollup` in device-index order.
    ///
    /// Summing delta uploads at the cloud reproduces the full-snapshot
    /// rollup exactly: counter and histogram merges are commutative
    /// associative sums, and gauges ship their current value every upload
    /// so last-write-wins lands on the same device either way. See
    /// `docs/SCALING.md` for the wire protocol; the conservation property
    /// is tested in `tests/fleet_props.rs`.
    ///
    /// Under `PILOTE_OBS=0` each device ships an empty snapshot and keeps
    /// its baseline untouched.
    ///
    /// # Errors
    /// [`EdgeError::Rollup`] when two devices disagree on histogram
    /// bucket bounds.
    pub fn upload_telemetry_deltas(
        &mut self,
        rollup: &mut TelemetryRollup,
    ) -> Result<(), EdgeError> {
        let payloads = map_member_bands(&mut self.members, &|_, member| {
            let delta = member.device.telemetry_delta();
            let bytes = wire::snapshot_wire_bytes(&delta);
            (delta, bytes)
        });
        for (member, (delta, bytes)) in self.members.iter_mut().zip(payloads) {
            member.device.advance_clock(member.link.transfer_seconds(bytes));
            self.wire_totals.telemetry_bytes += bytes;
            rollup.merge_snapshot(&delta)?;
        }
        if pilote_obs::enabled() {
            pilote_obs::counter("fleet.telemetry_uploads").inc();
        }
        Ok(())
    }

    /// Collects every device's session × task accuracy matrix over its
    /// own link (each payload sized by the binary `PWM1` codec,
    /// [`crate::wire::session_matrix_wire_bytes`]) and merges them into a
    /// [`ScenarioRollup`] in device-index order — the same merge-order
    /// contract as [`Fleet::telemetry_rollup`], so the fleet curves are
    /// byte-identical across runs and `PILOTE_THREADS` settings.
    ///
    /// Devices without session recording (armed via
    /// [`Fleet::arm_quality_monitors`] or not at all) ship nothing and are
    /// skipped. Unlike telemetry snapshots, matrices are device
    /// *behaviour* records fed by the always-on quality monitor, so the
    /// `PILOTE_OBS` kill switch does not empty them.
    pub fn session_matrix_rollup(&mut self) -> ScenarioRollup {
        let span = pilote_obs::span("fleet.session_matrix_rollup");
        span.annotate("devices", self.members.len() as f64);
        let payloads = map_member_bands(&mut self.members, &|_, member| {
            member.device.session_matrix().map(|matrix| {
                let bytes = wire::session_matrix_wire_bytes(matrix);
                (matrix.clone(), bytes)
            })
        });
        let mut rollup = ScenarioRollup::new();
        for (member, payload) in self.members.iter_mut().zip(payloads) {
            let Some((matrix, bytes)) = payload else { continue };
            member.device.advance_clock(member.link.transfer_seconds(bytes));
            self.wire_totals.telemetry_bytes += bytes;
            rollup.merge_matrix(&matrix);
        }
        drop(span);
        if pilote_obs::enabled() {
            pilote_obs::counter("fleet.session_matrix_rollups").inc();
        }
        rollup
    }

    /// Fleet-wide summary.
    pub fn stats(&self) -> FleetStats {
        let devices = self
            .members
            .iter()
            .map(|m| DeviceStats {
                name: m.device.profile().name.clone(),
                windows_served: m.device.log().served_count(),
                cache_rebuilds: m.device.cache_rebuilds(),
                updates: m.updates_completed,
                classes: m.device.known_classes().len(),
                clock_seconds: m.device.log().now(),
                degraded: m.device.is_degraded(),
            })
            .collect();
        FleetStats {
            devices,
            sessions: self.sessions_served,
            windows: self.windows_served,
            federated_rounds: self.coordinator.rounds(),
        }
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("devices", &self.members.len())
            .field("sessions", &self.sessions_served)
            .field("federated_rounds", &self.coordinator.rounds())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::CloudServer;
    use crate::events::EventKind;
    use crate::policy::DeviceHealth;
    use pilote_core::PiloteConfig;
    use pilote_har_data::dataset::generate_features;
    use pilote_har_data::features::extract_batch;
    use pilote_har_data::preprocess::Normalizer;
    use pilote_har_data::{Activity, Simulator, FEATURE_DIM};

    fn deployment() -> (Deployment, Simulator, Normalizer) {
        let mut sim = Simulator::with_seed(31);
        let (data, norm) = generate_features(
            &mut sim,
            &[(Activity::Still, 50), (Activity::Walk, 50), (Activity::Run, 50)],
        )
        .expect("simulate");
        let server = CloudServer::new(data, norm.clone(), PiloteConfig::fast_test(5));
        let (deployment, _) = server
            .pretrain_and_package(&[Activity::Still.label(), Activity::Walk.label()], 15)
            .expect("package");
        (deployment, sim, norm)
    }

    fn slots(n: usize) -> Vec<(DeviceProfile, LinkModel)> {
        let links = [LinkModel::wifi(), LinkModel::cellular_4g(), LinkModel::weak_cellular()];
        DeviceProfile::roster(n)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, links[i % links.len()]))
            .collect()
    }

    fn fleet(n: usize, config: FleetConfig) -> (Fleet, Simulator, Normalizer) {
        let (deployment, sim, norm) = deployment();
        let fleet = Fleet::deploy(slots(n), &deployment, config).expect("deploy");
        (fleet, sim, norm)
    }

    fn session_features(sim: &mut Simulator, norm: &Normalizer, activity: Activity, windows: usize) -> Tensor {
        let raw = sim.raw_dataset(&[(activity, windows)]);
        norm.transform(&extract_batch(&raw).expect("features")).expect("norm")
    }

    #[test]
    fn routing_is_deterministic_and_spreads_users() {
        let (fleet, _, _) = fleet(8, FleetConfig::default());
        let hit: std::collections::BTreeSet<usize> =
            (0..200u64).map(|u| fleet.route(u)).collect();
        assert_eq!(hit.len(), 8, "200 users must reach all 8 devices");
        for u in 0..200u64 {
            assert_eq!(fleet.route(u), fleet.route(u));
        }
    }

    #[test]
    fn deploy_charges_each_link_separately() {
        let (fleet, _, _) = fleet(3, FleetConfig::default());
        // Slot 0 is wifi, slot 2 weak cellular: same payload, slower link,
        // later deployment timestamp.
        let t0 = fleet.device(0).log().now();
        let t2 = fleet.device(2).log().now();
        assert!(t2 > t0, "weak-cellular install must take longer than wifi");
    }

    #[test]
    fn sessions_are_served_on_the_routed_device_only() {
        let cfg = FleetConfig { federated_every: 0, ..FleetConfig::default() };
        let (mut fleet, mut sim, norm) = fleet(4, cfg);
        let features = session_features(&mut sim, &norm, Activity::Still, 9);
        let user = 7u64;
        let index = fleet.route(user);
        let outcomes = fleet.serve_session(user, &features).expect("serve");
        assert_eq!(outcomes.len(), 9);
        for i in 0..fleet.len() {
            let expect = if i == index { 9 } else { 0 };
            assert_eq!(fleet.device(i).log().served_count(), expect, "device {i}");
        }
        assert_eq!(fleet.stats().windows, 9);
    }

    #[test]
    fn chunked_serving_is_bitwise_identical_to_one_big_batch() {
        // serve_chunk: 4 forces 3 chunks for 10 windows.
        let small =
            FleetConfig { serve_chunk: 4, federated_every: 0, ..FleetConfig::default() };
        let big =
            FleetConfig { serve_chunk: 1024, federated_every: 0, ..FleetConfig::default() };
        let (mut fleet_small, mut sim, norm) = fleet(4, small);
        let (mut fleet_big, _, _) = fleet(4, big);
        let features = session_features(&mut sim, &norm, Activity::Walk, 10);
        let a = fleet_small.serve_session(3, &features).expect("serve");
        let b = fleet_big.serve_session(3, &features).expect("serve");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.predicted, y.predicted);
            assert_eq!(x.distance.to_bits(), y.distance.to_bits());
        }
    }

    #[test]
    fn labelling_past_threshold_triggers_an_update() {
        let cfg =
            FleetConfig { update_threshold: 10, federated_every: 0, ..FleetConfig::default() };
        let (mut fleet, mut sim, norm) = fleet(3, cfg);
        let features = session_features(&mut sim, &norm, Activity::Run, 10);
        let user = 1u64;
        let index = fleet.route(user);
        let mut last = None;
        for i in 0..features.rows() {
            last = fleet
                .label_sample(user, Activity::Run.label(), Tensor::vector(features.row(i)))
                .expect("label");
        }
        assert_eq!(last, Some(UpdateStatus::Completed));
        assert_eq!(fleet.device(index).known_classes().len(), 3);
        assert_eq!(fleet.stats().devices[index].updates, 1);
        // Other devices don't know Run until a federated round spreads it.
        for i in (0..fleet.len()).filter(|&i| i != index) {
            assert_eq!(fleet.device(i).known_classes().len(), 2);
        }
    }

    #[test]
    fn federated_schedule_fires_every_n_sessions() {
        let cfg = FleetConfig { federated_every: 3, ..FleetConfig::default() };
        let (mut fleet, mut sim, norm) = fleet(3, cfg);
        let features = session_features(&mut sim, &norm, Activity::Still, 2);
        for user in 0..7u64 {
            fleet.serve_session(user, &features).expect("serve");
        }
        assert_eq!(fleet.federated_rounds(), 2, "rounds after sessions 3 and 6");
        // Every device saw both rounds in its log.
        for i in 0..fleet.len() {
            let rounds = fleet
                .device(i)
                .log()
                .events()
                .iter()
                .filter(|e| matches!(e.kind, EventKind::FederatedRound { .. }))
                .count();
            assert_eq!(rounds, 2, "device {i}");
        }
    }

    #[test]
    fn federated_round_charges_link_time_and_invalidates_caches() {
        let cfg = FleetConfig { federated_every: 0, ..FleetConfig::default() };
        let (mut fleet, mut sim, norm) = fleet(3, cfg);
        let features = session_features(&mut sim, &norm, Activity::Still, 4);
        fleet.serve_session(0, &features).expect("serve");
        let clocks_before: Vec<f64> = (0..3).map(|i| fleet.device(i).log().now()).collect();
        fleet.federated_round().expect("round");
        for (i, before) in clocks_before.iter().enumerate() {
            assert!(
                fleet.device(i).log().now() > *before,
                "device {i} paid no link time for the round"
            );
        }
        // The round reinstalls parameters on every device → generation
        // moved → the next serve on any device rebuilds its cache.
        for user in 0..64u64 {
            let idx = fleet.route(user);
            let before = fleet.device(idx).cache_rebuilds();
            let row = Tensor::vector(features.row(0)).reshape([1, FEATURE_DIM]).expect("row");
            fleet.serve_session(user, &row).expect("serve");
            if fleet.device(idx).log().served_count() > 1 {
                assert_eq!(
                    fleet.device(idx).cache_rebuilds(),
                    before + 1,
                    "device {idx} served before the round must rebuild after it"
                );
                return;
            }
        }
        panic!("no user routed back to an already-serving device");
    }

    /// Held-out Still/Walk probe windows, normalised with the deployment
    /// normaliser.
    fn probe_set(sim: &mut Simulator, norm: &Normalizer) -> Dataset {
        let raw = sim.raw_dataset(&[(Activity::Still, 15), (Activity::Walk, 15)]);
        let features = norm.transform(&extract_batch(&raw).expect("features")).expect("norm");
        Dataset::new(features, raw.labels).expect("probe")
    }

    #[test]
    fn federated_round_samples_armed_quality_monitors() {
        let cfg = FleetConfig { federated_every: 0, ..FleetConfig::default() };
        let (mut fleet, mut sim, norm) = fleet(3, cfg);
        let probe = probe_set(&mut sim, &norm);
        let old = [Activity::Still.label(), Activity::Walk.label()];
        fleet
            .arm_quality_monitors(&probe, &old, QualityThresholds::default())
            .expect("arm");
        for i in 0..fleet.len() {
            assert_eq!(fleet.device(i).quality_reports().len(), 1, "device {i} baseline");
        }
        // The round installs merged parameters everywhere → every armed
        // monitor must sample the new generation.
        fleet.federated_round().expect("round");
        for i in 0..fleet.len() {
            assert_eq!(
                fleet.device(i).quality_reports().len(),
                2,
                "device {i} must sample the federated install"
            );
        }
    }

    #[test]
    fn f32_delta_rounds_match_full_rounds_bitwise_and_cost_less_link_time() {
        let delta_cfg = FleetConfig {
            update_threshold: 10,
            federated_every: 0,
            wire: WireConfig::delta(WirePrecision::F32),
            ..FleetConfig::default()
        };
        let full_cfg =
            FleetConfig { wire: WireConfig::full(WirePrecision::F32), ..delta_cfg.clone() };
        let (mut with_delta, mut sim, norm) = fleet(3, delta_cfg);
        let (mut with_full, _, _) = fleet(3, full_cfg);
        // Diverge one device with a local update — identically on both
        // fleets — so round payloads carry real parameter changes.
        let features = session_features(&mut sim, &norm, Activity::Run, 10);
        for i in 0..features.rows() {
            for f in [&mut with_delta, &mut with_full] {
                f.label_sample(1, Activity::Run.label(), Tensor::vector(features.row(i)))
                    .expect("label");
            }
        }
        with_delta.federated_round().expect("delta round");
        with_full.federated_round().expect("full round");
        assert_eq!(with_delta.committed_round(), 1);
        assert_eq!(with_full.committed_round(), 1);
        let mut delta_time = 0.0;
        let mut full_time = 0.0;
        for i in 0..with_delta.len() {
            let a =
                Checkpoint::capture(with_delta.device_mut(i).model_mut().net_mut().layers_mut());
            let b =
                Checkpoint::capture(with_full.device_mut(i).model_mut().net_mut().layers_mut());
            assert_eq!(a, b, "device {i}: f32 delta and full rounds must agree bitwise");
            delta_time += with_delta.device(i).log().now();
            full_time += with_full.device(i).log().now();
        }
        // The two never-updated devices upload near-empty deltas (every
        // layer still matches the committed base), dwarfing the few bytes
        // of per-layer flag overhead the changed payloads add.
        assert!(
            delta_time < full_time,
            "delta rounds must cost less total link time: {delta_time} vs {full_time}"
        );
    }

    #[test]
    fn quantised_rounds_commit_and_keep_the_fleet_serving() {
        let cfg = FleetConfig {
            federated_every: 0,
            wire: WireConfig::delta(WirePrecision::I8),
            ..FleetConfig::default()
        };
        let (mut fleet, mut sim, norm) = fleet(3, cfg);
        let features = session_features(&mut sim, &norm, Activity::Still, 4);
        fleet.serve_session(0, &features).expect("serve");
        fleet.federated_round().expect("round");
        assert_eq!(fleet.committed_round(), 1);
        // The second round deltas against the base the first one committed.
        fleet.federated_round().expect("second round");
        assert_eq!(fleet.committed_round(), 2);
        fleet.serve_session(1, &features).expect("serve after quantised installs");
    }

    #[test]
    fn unpolicied_rollout_rebases_the_delta_chain() {
        let cfg = FleetConfig { federated_every: 0, ..FleetConfig::default() };
        let (mut fleet, _, _) = fleet(2, cfg);
        let (package, _, _) = deployment();
        assert!(fleet.rollout_deployment(&package).expect("rollout"));
        assert_eq!(fleet.committed_round(), 1, "a fleet-wide install commits a new base");
        fleet.federated_round().expect("round after rollout");
        assert_eq!(fleet.committed_round(), 2);
    }

    #[test]
    fn telemetry_rollup_totals_match_per_device_snapshots() {
        let cfg = FleetConfig { federated_every: 0, ..FleetConfig::default() };
        let (mut fleet, mut sim, norm) = fleet(3, cfg);
        let features = session_features(&mut sim, &norm, Activity::Still, 5);
        for user in 0..6u64 {
            fleet.serve_session(user, &features).expect("serve");
        }
        let clocks_before: Vec<f64> = (0..3).map(|i| fleet.device(i).log().now()).collect();
        let per_device: Vec<_> = (0..3).map(|i| fleet.device(i).telemetry_snapshot()).collect();
        let rollup = fleet.telemetry_rollup().expect("rollup");
        assert_eq!(rollup.devices, 3);
        if !pilote_obs::enabled() {
            assert!(rollup.counters.is_empty(), "kill switch ships empty snapshots");
            return;
        }
        // Rollup counters are exactly the sum of the per-device snapshots.
        let mut expected = std::collections::BTreeMap::new();
        for snap in &per_device {
            for (name, value) in &snap.counters {
                *expected.entry(name.clone()).or_insert(0u64) += value;
            }
        }
        assert_eq!(rollup.counters, expected);
        assert_eq!(rollup.counter("edge.batch_served"), 30, "6 sessions × 5 windows");
        // Shipping the snapshot charges each device's own link.
        for (i, before) in clocks_before.iter().enumerate() {
            assert!(
                fleet.device(i).log().now() > *before,
                "device {i} paid no link time for its telemetry upload"
            );
        }
    }

    #[test]
    fn stats_summarise_the_fleet() {
        let cfg = FleetConfig { federated_every: 2, ..FleetConfig::default() };
        let (mut fleet, mut sim, norm) = fleet(8, cfg);
        let features = session_features(&mut sim, &norm, Activity::Walk, 3);
        for user in 0..8u64 {
            fleet.serve_session(user, &features).expect("serve");
        }
        let stats = fleet.stats();
        assert_eq!(stats.devices.len(), 8);
        assert_eq!(stats.sessions, 8);
        assert_eq!(stats.windows, 24);
        assert_eq!(stats.federated_rounds, 4);
        assert_eq!(
            stats.devices.iter().map(|d| d.windows_served).sum::<u64>(),
            24
        );
        // Serde round-trip: FleetStats is a report payload.
        let json = serde_json::to_string(&stats).expect("serialise");
        let back: FleetStats = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, stats);
    }

    /// Runs `f` under an `n`-thread zero-threshold config, restoring the
    /// previous config afterwards. Kernel results are thread-count
    /// invariant, so a concurrent test observing the temporary config can
    /// only change scheduling, never outcomes.
    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let prev = parallel::current();
        parallel::configure(parallel::ThreadConfig { num_threads: n, min_parallel_len: 1 });
        let out = f();
        parallel::configure(prev);
        out
    }

    fn log_json(fleet: &Fleet, index: usize) -> String {
        serde_json::to_string(fleet.device(index).log()).expect("log json")
    }

    #[test]
    fn deploy_sharded_matches_serial_deploy_at_any_thread_count() {
        let (deployment, _, _) = deployment();
        let serial =
            Fleet::deploy(slots(8), &deployment, FleetConfig::default()).expect("deploy");
        for n in [1usize, 4] {
            let sharded = with_threads(n, || {
                Fleet::deploy_sharded(slots(8), &deployment, FleetConfig::default())
                    .expect("deploy")
            });
            assert_eq!(sharded.len(), serial.len());
            for i in 0..serial.len() {
                assert_eq!(
                    log_json(&sharded, i),
                    log_json(&serial, i),
                    "device {i} log at {n} threads"
                );
            }
        }
    }

    #[test]
    fn bulk_serving_matches_serial_sessions_at_any_thread_count() {
        let cfg = FleetConfig { federated_every: 3, ..FleetConfig::default() };
        let (mut serial, mut sim, norm) = fleet(4, cfg.clone());
        let sessions: Vec<(u64, Tensor)> = (0..7u64)
            .map(|u| (u, session_features(&mut sim, &norm, Activity::Walk, 4)))
            .collect();
        let mut expected = Vec::new();
        for (user, features) in &sessions {
            expected.push(serial.serve_session(*user, features).expect("serve"));
        }
        for n in [1usize, 4] {
            let (mut sharded, _, _) = fleet(4, cfg.clone());
            let got = with_threads(n, || sharded.serve_sessions(&sessions).expect("serve"));
            assert_eq!(got.len(), expected.len());
            for (a, b) in got.iter().flatten().zip(expected.iter().flatten()) {
                assert_eq!(a.predicted, b.predicted);
                assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
            assert_eq!(sharded.federated_rounds(), serial.federated_rounds(), "{n} threads");
            assert_eq!(
                serde_json::to_string(&sharded.stats()).expect("stats json"),
                serde_json::to_string(&serial.stats()).expect("stats json"),
                "{n} threads"
            );
            for i in 0..serial.len() {
                assert_eq!(
                    log_json(&sharded, i),
                    log_json(&serial, i),
                    "device {i} log at {n} threads"
                );
            }
        }
    }

    #[test]
    fn delta_uploads_sum_to_the_full_snapshot_rollup() {
        let cfg = FleetConfig { federated_every: 0, ..FleetConfig::default() };
        let (mut fleet_delta, mut sim, norm) = fleet(3, cfg.clone());
        let (mut fleet_full, _, _) = fleet(3, cfg);
        let still = session_features(&mut sim, &norm, Activity::Still, 5);
        let walk = session_features(&mut sim, &norm, Activity::Walk, 6);
        let mut delta_rollup = TelemetryRollup::new();
        // Two upload windows for the delta fleet, one whole-life snapshot
        // upload for the reference fleet — same served schedule.
        for features in [&still, &walk] {
            for user in 0..4u64 {
                fleet_delta.serve_session(user, features).expect("serve");
                fleet_full.serve_session(user, features).expect("serve");
            }
            fleet_delta.upload_telemetry_deltas(&mut delta_rollup).expect("upload");
        }
        let full_rollup = fleet_full.telemetry_rollup().expect("rollup");
        if !pilote_obs::enabled() {
            assert!(delta_rollup.counters.is_empty(), "kill switch ships empty deltas");
            return;
        }
        // Counters and histograms are conserved exactly; gauges are
        // point-in-time (the delta fleet's clocks include an extra upload
        // charge) and device counts differ (one merge per upload), so
        // neither is compared.
        assert_eq!(delta_rollup.counters, full_rollup.counters);
        assert_eq!(delta_rollup.histograms, full_rollup.histograms);
    }

    #[test]
    fn deploy_applies_the_configured_event_capacity() {
        // serve_chunk 2 → a 6-window session emits 3 BatchServed events,
        // overflowing the 2-slot ring on top of the install event.
        let cfg = FleetConfig {
            event_capacity: 2,
            serve_chunk: 2,
            federated_every: 0,
            ..FleetConfig::default()
        };
        let (mut fleet, mut sim, norm) = fleet(2, cfg);
        assert_eq!(fleet.device(0).log().capacity(), 2);
        let features = session_features(&mut sim, &norm, Activity::Still, 6);
        let user = 0u64;
        let index = fleet.route(user);
        fleet.serve_session(user, &features).expect("serve");
        assert!(fleet.device(index).log().events().len() <= 2, "ring must stay bounded");
        assert!(fleet.device(index).log().evicted() > 0, "schedule must overflow the ring");
        // Derived counts read the running totals, not the retained window.
        assert_eq!(fleet.device(index).log().served_count(), 6);
        assert_eq!(fleet.stats().devices[index].windows_served, 6);
    }

    /// A policied fleet: armed monitors (default thresholds) plus the
    /// self-healing policy anchored on the original deployment.
    fn policied_fleet(n: usize) -> (Fleet, Deployment) {
        let (deployment, mut sim, norm) = deployment();
        let cfg = FleetConfig { federated_every: 0, ..FleetConfig::default() };
        let mut fleet = Fleet::deploy(slots(n), &deployment, cfg).expect("deploy");
        let probe = probe_set(&mut sim, &norm);
        let old = [Activity::Still.label(), Activity::Walk.label()];
        fleet
            .arm_quality_monitors(&probe, &old, QualityThresholds::default())
            .expect("arm");
        fleet.enable_policy(PolicyConfig::default(), deployment.clone()).expect("policy");
        (fleet, deployment)
    }

    /// Overwrites a device's net parameters with a fixed junk pattern and
    /// commits the damage (prototypes recomputed through the ruined net),
    /// collapsing old-class probe accuracy.
    fn poison(device: &mut EdgeDevice) {
        use pilote_nn::Layer;
        let model = device.model_mut();
        for (p, _) in model.net_mut().layers_mut().params_and_grads() {
            for (k, v) in p.as_mut_slice().iter_mut().enumerate() {
                *v = ((k % 7) as f32 - 3.0) * 1.5;
            }
        }
        model.refresh_prototypes().expect("refresh");
    }

    #[test]
    fn policy_quarantines_alerting_device_and_completes_the_round() {
        let (mut fleet, _) = policied_fleet(5);
        let victim = 2usize;
        poison(fleet.device_mut(victim));
        let report =
            fleet.device_mut(victim).sample_quality().expect("sample").expect("report");
        assert!(FleetPolicy::triggering_alert(&report).is_some(), "poison must alert");

        fleet.federated_round().expect("round");

        // The control step quarantined and rolled the victim back before
        // collection, so the merge stayed clean and every stage completed.
        let policy = fleet.policy().expect("policy");
        assert!(matches!(policy.health(victim), DeviceHealth::Quarantined { .. }));
        assert_eq!(policy.strikes(victim), 1);
        let summary = policy.summary();
        assert_eq!(summary.quarantines, 1);
        assert_eq!(summary.rollbacks, 1);
        assert_eq!(summary.halts, 0);
        assert_eq!(summary.rounds_completed, 1);
        let events = fleet.device(victim).log().events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::QuarantineEntered { strike: 1, .. })));
        assert!(events.iter().any(|e| matches!(e.kind, EventKind::RepairRollback { strike: 1 })));
        assert!(events.iter().any(|e| matches!(
            e.kind,
            EventKind::FederatedExcluded { reason: ExclusionReason::Quarantined, .. }
        )));
        for i in (0..fleet.len()).filter(|&i| i != victim) {
            assert!(
                fleet
                    .device(i)
                    .log()
                    .events()
                    .iter()
                    .any(|e| matches!(e.kind, EventKind::FederatedRound { .. })),
                "healthy device {i} must finish the staged install"
            );
        }
    }

    #[test]
    fn silent_poison_halts_the_canary_and_screening_catches_the_culprit() {
        let (mut fleet, _) = policied_fleet(5);
        // The culprit never samples its monitor: the bad weights enter
        // the merge and only the canary stage can catch them.
        let culprit = 2usize;
        poison(fleet.device_mut(culprit));

        fleet.federated_round().expect("round");

        let policy = fleet.policy().expect("policy");
        let summary = policy.summary();
        assert_eq!(summary.halts, 1, "canary must halt on the poisoned merge");
        assert_eq!(summary.rounds_halted, 1);
        assert_eq!(summary.rounds_completed, 0);
        assert_eq!(fleet.federated_rounds(), 0, "halted rounds don't count");
        assert!(
            matches!(policy.health(culprit), DeviceHealth::Quarantined { .. }),
            "screening must quarantine the silent contributor"
        );
        // Canary devices were restored and told why; devices outside the
        // canary never installed the poisoned merge.
        let canary: std::collections::BTreeSet<usize> =
            policy.plan().stage(RolloutStage::Canary).iter().copied().collect();
        for i in 0..fleet.len() {
            let halted = fleet
                .device(i)
                .log()
                .events()
                .iter()
                .any(|e| matches!(e.kind, EventKind::RolloutHalted { .. }));
            assert_eq!(halted, canary.contains(&i), "device {i}");
        }
    }

    #[test]
    fn staged_rollout_completes_and_halted_rollout_restores_installs() {
        let (mut fleet, deployment) = policied_fleet(4);
        // A clean package clears every stage.
        assert!(fleet.rollout_deployment(&deployment).expect("rollout"));
        for i in 0..fleet.len() {
            let installs = fleet
                .device(i)
                .log()
                .events()
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Deployed { .. }))
                .count();
            assert_eq!(installs, 2, "device {i}: initial install + staged rollout");
        }
        assert_eq!(fleet.policy().expect("policy").summary().halts, 0);
    }
}
