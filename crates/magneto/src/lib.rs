//! # pilote-magneto
//!
//! The MAGNETO platform of the PILOTE paper (§3): *sMArt sensinG for humaN
//! activity rEcogniTiOn*. MAGNETO's edge-based architecture is:
//!
//! 1. an initial HAR model is **pre-trained on the cloud** as a warm
//!    starting point ([`cloud::CloudServer`]);
//! 2. the model and its exemplar support set are **downloaded once** to
//!    the device ([`cloud::Deployment`]);
//! 3. the device performs **streaming inference** and **local incremental
//!    updates** with no further data exchange ([`edge::EdgeDevice`]) —
//!    sensor data never leaves the device;
//! 4. every step is recorded in a typed, virtually-clocked event log
//!    ([`events::EventLog`]) so deployments are auditable and testable.
//!
//! The [`federated`] module implements the paper's §7 future-work
//! direction: FedAvg-style collaboration where devices share *model
//! parameters*, never data — consistent with MAGNETO's privacy stance.
//! The [`fleet`] module scales the edge loop out: a deterministic
//! multi-device [`fleet::Fleet`] routes user sessions to heterogeneous
//! devices, serves them through the batched prototype-cache path, and
//! interleaves incremental updates with scheduled federated rounds (see
//! `docs/FLEET.md`). The [`policy`] module closes the quality loop on
//! top of it: quarantine, rollback → re-anchor → degrade repairs, and
//! canary → cohort → fleet staged rollouts with auto halt (see
//! `docs/POLICY.md`).

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cloud;
pub mod edge;
pub mod events;
pub mod federated;
pub mod fleet;
pub mod policy;
pub mod wire;

pub use cloud::{
    CloudServer, Deployment, PackageError, RollupError, ScenarioRollup, ShippedPrototypes,
    TelemetryRollup,
};
pub use edge::{EdgeDevice, EdgeError, InferenceOutcome, UpdateStatus, MAX_UPDATE_FAILURES};
pub use events::{Event, EventKind, EventLog, ExclusionReason};
pub use federated::{federated_average, FederatedCoordinator, FederatedError};
pub use fleet::{DeviceStats, Fleet, FleetConfig, FleetStats, WireTotals};
pub use policy::{
    DeviceHealth, FleetPolicy, PolicyConfig, PolicySummary, RepairAction, RolloutStage, StagePlan,
};
pub use wire::{CodecError, WireConfig};
