//! The cloud side of MAGNETO: pre-training and the one-time deployment
//! package.

use pilote_core::pilote::TrainReport;
use pilote_core::{Pilote, PiloteConfig, SelectionStrategy, SupportSet};
use pilote_har_data::preprocess::Normalizer;
use pilote_har_data::Dataset;
use pilote_nn::Checkpoint;
use pilote_tensor::TensorError;
use serde::{Deserialize, Serialize};

/// Everything an edge device needs, shipped once (Fig. 2, right side,
/// step i): model parameters, exemplar support set, and the feature
/// normaliser fitted on the cloud corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Deployment {
    /// Embedding-network parameters.
    pub checkpoint: Checkpoint,
    /// Per-class exemplar support set.
    pub support: SupportSet,
    /// Feature normaliser (train-fitted statistics).
    pub normalizer: Normalizer,
    /// Hyper-parameters the edge should keep using.
    pub config: PiloteConfig,
}

/// A deployment payload that could not be serialised for the wire.
///
/// Carries the encoder's message rather than the source error so the type
/// stays `Clone + PartialEq` (matching [`crate::edge::EdgeError`], which
/// wraps it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageError {
    /// What the JSON encoder reported.
    pub detail: String,
}

impl std::fmt::Display for PackageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deployment payload not serialisable: {}", self.detail)
    }
}

impl std::error::Error for PackageError {}

impl Deployment {
    /// Wire size of the deployment payload in bytes (JSON encoding — the
    /// repo's cloud→edge format; a production system would use a binary
    /// codec, making this an upper bound).
    ///
    /// # Errors
    /// Returns [`PackageError`] when the payload cannot be serialised
    /// (e.g. non-finite statistics in the normaliser), instead of the
    /// `expect("serialisable")` panic this used to hide behind.
    pub fn wire_bytes(&self) -> Result<u64, PackageError> {
        serde_json::to_string(self)
            .map(|body| body.len() as u64)
            .map_err(|e| PackageError { detail: e.to_string() })
    }
}

/// The cloud training service.
pub struct CloudServer {
    corpus: Dataset,
    normalizer: Normalizer,
    config: PiloteConfig,
}

impl CloudServer {
    /// New server over a labelled corpus with its fitted normaliser.
    pub fn new(corpus: Dataset, normalizer: Normalizer, config: PiloteConfig) -> Self {
        CloudServer { corpus, normalizer, config }
    }

    /// Labelled records available on the cloud.
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }

    /// Pre-trains a model on the given classes and packages the
    /// deployment (Fig. 2 right, step i).
    pub fn pretrain_and_package(
        &self,
        classes: &[usize],
        exemplars_per_class: usize,
    ) -> Result<(Deployment, TrainReport), TensorError> {
        let train = self.corpus.filter_classes(classes)?;
        let (mut model, report) = Pilote::pretrain(
            self.config.clone(),
            &train,
            exemplars_per_class,
            SelectionStrategy::Herding,
        )?;
        let deployment = Deployment {
            checkpoint: Checkpoint::capture(model.net_mut().layers_mut()),
            support: model.support().clone(),
            normalizer: self.normalizer.clone(),
            config: self.config.clone(),
        };
        Ok((deployment, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_har_data::dataset::generate_features;
    use pilote_har_data::{Activity, Simulator};

    fn corpus() -> (Dataset, Normalizer) {
        let mut sim = Simulator::with_seed(9);
        generate_features(
            &mut sim,
            &[(Activity::Still, 40), (Activity::Walk, 40), (Activity::Run, 40)],
        )
        .expect("simulate")
    }

    #[test]
    fn pretrain_and_package_produces_complete_deployment() {
        let (data, norm) = corpus();
        let server = CloudServer::new(data, norm, PiloteConfig::fast_test(1));
        let classes = [Activity::Still.label(), Activity::Walk.label()];
        let (deployment, report) = server.pretrain_and_package(&classes, 10).unwrap();
        assert!(!report.epochs.is_empty());
        assert_eq!(deployment.support.labels().len(), 2);
        assert_eq!(deployment.support.len(), 20);
        assert!(deployment.checkpoint.param_count() > 0);
        assert!(deployment.wire_bytes().expect("serialisable") > 1000);
    }

    #[test]
    fn deployment_serde_round_trip() {
        let (data, norm) = corpus();
        let server = CloudServer::new(data, norm, PiloteConfig::fast_test(2));
        let (deployment, _) =
            server.pretrain_and_package(&[Activity::Still.label(), Activity::Run.label()], 5).unwrap();
        let json = serde_json::to_string(&deployment).unwrap();
        let back: Deployment = serde_json::from_str(&json).unwrap();
        assert_eq!(back.support, deployment.support);
        assert_eq!(back.checkpoint, deployment.checkpoint);
    }
}
