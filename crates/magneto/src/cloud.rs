//! The cloud side of MAGNETO: pre-training, the one-time deployment
//! package, and the fleet telemetry rollup.

use pilote_core::pilote::TrainReport;
use pilote_core::{
    AccuracyMatrix, Pilote, PiloteConfig, SelectionStrategy, SessionSummary, SupportSet,
};
use pilote_har_data::preprocess::Normalizer;
use pilote_har_data::Dataset;
use pilote_nn::Checkpoint;
use pilote_obs::{GaugeSnapshot, HistogramSnapshot, Snapshot};
use pilote_tensor::TensorError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Class prototypes shipped with a deployment, installed on the device
/// verbatim via `Pilote::install_prototypes` so the edge serves from
/// exactly the (possibly quantised) values that crossed the wire instead
/// of a local recompute — otherwise quantisation error would be silently
/// repaired by the device and never show up in the measured accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShippedPrototypes {
    /// Class labels, one per prototype row.
    pub labels: Vec<usize>,
    /// `[classes, d]` prototype matrix in label order.
    pub matrix: pilote_tensor::Tensor,
}

/// Everything an edge device needs, shipped once (Fig. 2, right side,
/// step i): model parameters, exemplar support set, class prototypes,
/// and the feature normaliser fitted on the cloud corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Deployment {
    /// Embedding-network parameters.
    pub checkpoint: Checkpoint,
    /// Per-class exemplar support set.
    pub support: SupportSet,
    /// Feature normaliser (train-fitted statistics).
    pub normalizer: Normalizer,
    /// Hyper-parameters the edge should keep using.
    pub config: PiloteConfig,
    /// Cloud-computed class prototypes, installed verbatim when present;
    /// when absent the device recomputes prototypes from the support set
    /// (the legacy behaviour).
    pub prototypes: Option<ShippedPrototypes>,
}

/// A deployment payload that could not be serialised for the wire.
///
/// Carries the encoder's message rather than the source error so the type
/// stays `Clone + PartialEq` (matching [`crate::edge::EdgeError`], which
/// wraps it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageError {
    /// What the wire encoder reported.
    pub detail: String,
}

impl std::fmt::Display for PackageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deployment payload not serialisable: {}", self.detail)
    }
}

impl std::error::Error for PackageError {}

impl Deployment {
    /// Exact wire size of the deployment payload in bytes: the binary
    /// f32 encoding of `docs/WIRE.md` ([`crate::wire::encode_deployment`]
    /// at [`pilote_edge_sim::WirePrecision::F32`]).
    ///
    /// This used to measure JSON text length — decimal-printed floats
    /// cost ~10+ bytes each, so every modeled install time was inflated
    /// by a format no real deployment would ship. Quantised deployments
    /// are sized by encoding at their own precision; see
    /// [`crate::wire::deployment_wire_bytes`].
    ///
    /// # Errors
    /// Returns [`PackageError`] when the payload cannot be encoded
    /// (e.g. a non-rank-2 exemplar tensor), instead of the
    /// `expect("serialisable")` panic this used to hide behind.
    pub fn wire_bytes(&self) -> Result<u64, PackageError> {
        crate::wire::deployment_wire_bytes(self, pilote_edge_sim::WirePrecision::F32)
            .map_err(|e| PackageError { detail: e.to_string() })
    }
}

/// Two per-device histograms under the same name disagreed on bucket
/// bounds, so the rollup cannot merge them bucket-wise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollupError {
    /// The histogram name whose bounds disagreed.
    pub histogram: String,
}

impl std::fmt::Display for RollupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "histogram {:?} has mismatched bucket bounds across devices", self.histogram)
    }
}

impl std::error::Error for RollupError {}

/// Deterministic fleet-wide telemetry, merged on the cloud from per-device
/// [`Snapshot`]s in device-index order (see `docs/QUALITY.md`):
///
/// * **counters** — summed by name (counter merges are commutative);
/// * **histograms** — merged bucket-wise by name via
///   [`HistogramSnapshot::merge`] (same-bounds contract; a bounds mismatch
///   is a [`RollupError`], never a silent misfile);
/// * **gauges** — last write wins, in device-index order, so the value is
///   a deterministic function of the merge order alone.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TelemetryRollup {
    /// Devices merged in (kill-switched devices ship empty snapshots but
    /// are still counted).
    pub devices: usize,
    /// Per-device counters summed by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-by-device-index gauges by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Bucket-wise merged histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetryRollup {
    /// Empty rollup.
    pub fn new() -> Self {
        TelemetryRollup::default()
    }

    /// Merges one device's snapshot. Callers merge in device-index order;
    /// counter and histogram merges are commutative and associative, so
    /// the order only determines gauge last-writes.
    pub fn merge_snapshot(&mut self, snapshot: &Snapshot) -> Result<(), RollupError> {
        self.devices += 1;
        for (name, value) in &snapshot.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, gauge) in &snapshot.gauges {
            self.gauges.insert(name.clone(), gauge.clone());
        }
        for (name, histogram) in &snapshot.histograms {
            match self.histograms.get(name) {
                Some(existing) => {
                    let merged = existing
                        .merge(histogram)
                        .ok_or_else(|| RollupError { histogram: name.clone() })?;
                    self.histograms.insert(name.clone(), merged);
                }
                None => {
                    self.histograms.insert(name.clone(), histogram.clone());
                }
            }
        }
        Ok(())
    }

    /// Total count across one named counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// Fleet-wide continual-learning scenario telemetry: the cloud-side
/// rollup of per-device session × task accuracy matrices
/// (`pilote_core::session_metrics`, shipped as `PWM1` payloads).
///
/// Devices are merged in device-index order — the same contract as
/// [`TelemetryRollup`] — and every fleet curve is a serial fold over the
/// stored per-device summaries in that order, so the rollup is
/// byte-identical across runs and `PILOTE_THREADS` settings
/// (`docs/METRICS.md`).
///
/// Devices may have recorded different session counts (a device that
/// joined late has a shorter curve); the fleet curves are as long as the
/// longest device curve, each point averaging only the devices that
/// reached that session.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScenarioRollup {
    /// Per-device derived metrics, in merge (device-index) order.
    pub per_device: Vec<SessionSummary>,
}

impl ScenarioRollup {
    /// Empty rollup.
    pub fn new() -> Self {
        ScenarioRollup::default()
    }

    /// Devices merged in so far.
    pub fn devices(&self) -> usize {
        self.per_device.len()
    }

    /// Merges one device's matrix. Callers merge in device-index order
    /// (the curve folds below iterate the stored order, so merge order is
    /// the only order there is).
    pub fn merge_matrix(&mut self, matrix: &AccuracyMatrix) {
        self.per_device.push(matrix.summary());
    }

    /// Position-wise mean over the per-device curves selected by `f`:
    /// point `i` averages the devices whose curve has an `i`-th point,
    /// accumulated in `f64` in device order. Empty when no device
    /// recorded anything.
    fn mean_curve(&self, f: impl Fn(&SessionSummary) -> &[f64]) -> Vec<f64> {
        let longest = self.per_device.iter().map(|s| f(s).len()).max().unwrap_or(0);
        (0..longest)
            .map(|i| {
                let mut sum = 0.0f64;
                let mut count = 0usize;
                for summary in &self.per_device {
                    if let Some(&v) = f(summary).get(i) {
                        sum += v;
                        count += 1;
                    }
                }
                sum / count as f64
            })
            .collect()
    }

    /// Position-wise percentile (nearest-rank, `p` in `[0, 100]`) over
    /// the per-device curves selected by `f`. Values at each position are
    /// sorted by total order (`f64::total_cmp`), so ties and signed zeros
    /// resolve deterministically.
    fn percentile_curve(&self, p: f64, f: impl Fn(&SessionSummary) -> &[f64]) -> Vec<f64> {
        let longest = self.per_device.iter().map(|s| f(s).len()).max().unwrap_or(0);
        (0..longest)
            .map(|i| {
                let mut values: Vec<f64> = self
                    .per_device
                    .iter()
                    .filter_map(|s| f(s).get(i).copied())
                    .collect();
                values.sort_unstable_by(f64::total_cmp);
                let rank = ((p / 100.0) * values.len() as f64).ceil() as usize;
                values[rank.clamp(1, values.len()) - 1]
            })
            .collect()
    }

    /// Fleet mean forgetting curve: point `i` averages, in `f64` and in
    /// device order, the devices whose forgetting curve has an `i`-th
    /// point. Empty when no device recorded anything.
    pub fn mean_forgetting_curve(&self) -> Vec<f64> {
        self.mean_curve(|s| &s.forgetting_curve)
    }

    /// Fleet mean average-accuracy curve.
    pub fn mean_accuracy_curve(&self) -> Vec<f64> {
        self.mean_curve(|s| &s.average_accuracy_curve)
    }

    /// Fleet percentile forgetting curve (nearest-rank; `p50` is the
    /// median device, `p90` the worst-but-one decile).
    pub fn percentile_forgetting_curve(&self, p: f64) -> Vec<f64> {
        self.percentile_curve(p, |s| &s.forgetting_curve)
    }
}

/// The cloud training service.
pub struct CloudServer {
    corpus: Dataset,
    normalizer: Normalizer,
    config: PiloteConfig,
}

impl CloudServer {
    /// New server over a labelled corpus with its fitted normaliser.
    pub fn new(corpus: Dataset, normalizer: Normalizer, config: PiloteConfig) -> Self {
        CloudServer { corpus, normalizer, config }
    }

    /// Labelled records available on the cloud.
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }

    /// Pre-trains a model on the given classes and packages the
    /// deployment (Fig. 2 right, step i).
    pub fn pretrain_and_package(
        &self,
        classes: &[usize],
        exemplars_per_class: usize,
    ) -> Result<(Deployment, TrainReport), TensorError> {
        let train = self.corpus.filter_classes(classes)?;
        let (mut model, report) = Pilote::pretrain(
            self.config.clone(),
            &train,
            exemplars_per_class,
            SelectionStrategy::Herding,
        )?;
        let checkpoint = Checkpoint::capture(model.net_mut().layers_mut());
        // Compute the shipped prototypes through a device-equivalent net:
        // a fresh network with the checkpoint restored, exactly as the
        // edge install path builds it. The checkpoint carries parameters
        // but not BatchNorm running statistics, so prototypes taken from
        // the cloud training net would live in a different embedding
        // space than the device's probe embeddings. Through the restored
        // net they are bitwise what the device would recompute locally —
        // shipping them changes nothing at f32, and lets the wire codec
        // quantise the prototype section end-to-end.
        let mut rng = pilote_tensor::Rng64::new(self.config.seed ^ 0xed6e);
        let mut net = pilote_core::EmbeddingNet::new(self.config.net.clone(), &mut rng);
        checkpoint.restore(net.layers_mut()).map_err(|_| TensorError::Empty {
            op: "CloudServer::pretrain_and_package (restore into shadow net)",
        })?;
        let shadow = Pilote::from_parts(self.config.clone(), net, model.support().clone(), rng)?;
        let deployment = Deployment {
            checkpoint,
            support: model.support().clone(),
            normalizer: self.normalizer.clone(),
            config: self.config.clone(),
            prototypes: Some(ShippedPrototypes {
                labels: shadow.classifier().labels().to_vec(),
                matrix: shadow.classifier().prototype_matrix().clone(),
            }),
        };
        Ok((deployment, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_har_data::dataset::generate_features;
    use pilote_har_data::{Activity, Simulator};

    fn corpus() -> (Dataset, Normalizer) {
        let mut sim = Simulator::with_seed(9);
        generate_features(
            &mut sim,
            &[(Activity::Still, 40), (Activity::Walk, 40), (Activity::Run, 40)],
        )
        .expect("simulate")
    }

    #[test]
    fn pretrain_and_package_produces_complete_deployment() {
        let (data, norm) = corpus();
        let server = CloudServer::new(data, norm, PiloteConfig::fast_test(1));
        let classes = [Activity::Still.label(), Activity::Walk.label()];
        let (deployment, report) = server.pretrain_and_package(&classes, 10).unwrap();
        assert!(!report.epochs.is_empty());
        assert_eq!(deployment.support.labels().len(), 2);
        assert_eq!(deployment.support.len(), 20);
        assert!(deployment.checkpoint.param_count() > 0);
        assert!(deployment.wire_bytes().expect("serialisable") > 1000);
    }

    fn snapshot_with(
        counters: &[(&str, u64)],
        gauge_last: f64,
        histogram_values: &[f64],
    ) -> Snapshot {
        let mut snap = Snapshot { enabled: true, ..Default::default() };
        for (name, value) in counters {
            snap.counters.insert((*name).to_string(), *value);
        }
        snap.gauges.insert(
            "edge.clock_seconds".to_string(),
            GaugeSnapshot { last: gauge_last, min: gauge_last, max: gauge_last, count: 1 },
        );
        let mut h = HistogramSnapshot::with_bounds(&[1.0, 10.0]);
        for &v in histogram_values {
            h.record(v);
        }
        snap.histograms.insert("quality.margins".to_string(), h);
        snap
    }

    #[test]
    fn rollup_sums_counters_merges_histograms_and_keeps_last_gauge() {
        let a = snapshot_with(&[("edge.inference", 3), ("edge.batch_served", 8)], 1.5, &[0.5, 42.0]);
        let b = snapshot_with(&[("edge.inference", 2), ("edge.alert_raised", 1)], 9.25, &[5.0]);
        let mut rollup = TelemetryRollup::new();
        rollup.merge_snapshot(&a).expect("merge a");
        rollup.merge_snapshot(&b).expect("merge b");
        assert_eq!(rollup.devices, 2);
        assert_eq!(rollup.counter("edge.inference"), 5);
        assert_eq!(rollup.counter("edge.batch_served"), 8);
        assert_eq!(rollup.counter("edge.alert_raised"), 1);
        assert_eq!(rollup.counter("edge.absent"), 0);
        // Gauge: last write (device-index order) wins.
        assert_eq!(rollup.gauges["edge.clock_seconds"].last, 9.25);
        // Histogram: bucket-wise sum.
        assert_eq!(rollup.histograms["quality.margins"].counts, vec![1, 1, 1]);
        assert_eq!(rollup.histograms["quality.margins"].total(), 3);
        // Serde round-trip: the rollup is a report payload.
        let json = serde_json::to_string(&rollup).expect("serialise");
        let back: TelemetryRollup = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, rollup);
    }

    #[test]
    fn rollup_counter_totals_equal_per_device_sums() {
        let snaps = [
            snapshot_with(&[("edge.inference", 7)], 0.0, &[]),
            snapshot_with(&[("edge.inference", 11)], 0.0, &[]),
            snapshot_with(&[("edge.inference", 13)], 0.0, &[]),
        ];
        let mut rollup = TelemetryRollup::new();
        for s in &snaps {
            rollup.merge_snapshot(s).expect("merge");
        }
        let per_device: u64 = snaps.iter().map(|s| s.counters["edge.inference"]).sum();
        assert_eq!(rollup.counter("edge.inference"), per_device);
    }

    #[test]
    fn scenario_rollup_curves_merge_per_device_curves() {
        use pilote_core::TaskGroup;
        let tasks = || vec![TaskGroup::new("base", &[0]), TaskGroup::new("new", &[1])];
        // Device A: three sessions; device B joined late, only two.
        let mut a = AccuracyMatrix::new(tasks());
        a.record(1, vec![0.9, 0.2], vec![true, false]);
        a.record(2, vec![0.8, 0.7], vec![true, true]);
        a.record(3, vec![0.7, 0.6], vec![true, true]);
        let mut b = AccuracyMatrix::new(tasks());
        b.record(1, vec![1.0, -1.0], vec![true, false]);
        b.record(2, vec![0.5, 0.9], vec![true, true]);

        let mut rollup = ScenarioRollup::new();
        rollup.merge_matrix(&a);
        rollup.merge_matrix(&b);
        assert_eq!(rollup.devices(), 2);
        assert_eq!(rollup.per_device, vec![a.summary(), b.summary()]);

        // Each fleet point is the plain mean of the device curves that
        // reach that session; session 2 exists only on device A.
        let fa = a.summary().forgetting_curve;
        let fb = b.summary().forgetting_curve;
        let fleet = rollup.mean_forgetting_curve();
        assert_eq!(fleet.len(), 3);
        assert!((fleet[0] - (fa[0] + fb[0]) / 2.0).abs() < 1e-12);
        assert!((fleet[1] - (fa[1] + fb[1]) / 2.0).abs() < 1e-12);
        assert!((fleet[2] - fa[2]).abs() < 1e-12);
        let aa = a.summary().average_accuracy_curve;
        let ab = b.summary().average_accuracy_curve;
        let fleet_acc = rollup.mean_accuracy_curve();
        assert!((fleet_acc[0] - (aa[0] + ab[0]) / 2.0).abs() < 1e-12);

        // Nearest-rank percentiles: p50 of two values is the lower one,
        // p90 the upper.
        let p50 = rollup.percentile_forgetting_curve(50.0);
        let p90 = rollup.percentile_forgetting_curve(90.0);
        assert_eq!(p50[1], fa[1].min(fb[1]));
        assert_eq!(p90[1], fa[1].max(fb[1]));

        // Serde round-trip: the rollup is a report payload.
        let json = serde_json::to_string(&rollup).expect("serialise");
        let back: ScenarioRollup = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, rollup);
    }

    #[test]
    fn rollup_rejects_mismatched_histogram_bounds() {
        let a = snapshot_with(&[], 0.0, &[0.5]);
        let mut b = snapshot_with(&[], 0.0, &[]);
        b.histograms
            .insert("quality.margins".to_string(), HistogramSnapshot::with_bounds(&[2.0, 20.0]));
        let mut rollup = TelemetryRollup::new();
        rollup.merge_snapshot(&a).expect("merge a");
        let err = rollup.merge_snapshot(&b).expect_err("bounds mismatch must fail");
        assert_eq!(err.histogram, "quality.margins");
    }

    #[test]
    fn deployment_serde_round_trip() {
        let (data, norm) = corpus();
        let server = CloudServer::new(data, norm, PiloteConfig::fast_test(2));
        let (deployment, _) =
            server.pretrain_and_package(&[Activity::Still.label(), Activity::Run.label()], 5).unwrap();
        let json = serde_json::to_string(&deployment).unwrap();
        let back: Deployment = serde_json::from_str(&json).unwrap();
        assert_eq!(back.support, deployment.support);
        assert_eq!(back.checkpoint, deployment.checkpoint);
    }
}
