//! Typed, virtually-clocked event log for edge deployments.

use serde::{Deserialize, Serialize};

/// What happened on the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Model + support set installed from the cloud.
    Deployed {
        /// Bytes transferred for the one-time download.
        payload_bytes: u64,
    },
    /// One window classified.
    Inference {
        /// Predicted activity label.
        predicted: usize,
    },
    /// The drift monitor crossed its threshold.
    DriftDetected {
        /// Largest standardised feature shift observed.
        max_shift: f32,
    },
    /// An incremental update began.
    UpdateStarted {
        /// Label of the incoming class.
        new_label: usize,
        /// Samples available for it.
        samples: usize,
    },
    /// An incremental update finished.
    UpdateFinished {
        /// Label of the learned class.
        new_label: usize,
        /// Training epochs consumed.
        epochs: usize,
        /// Wall-clock seconds on the host.
        seconds: f64,
    },
    /// A federated round was applied.
    FederatedRound {
        /// Number of participating devices.
        participants: usize,
    },
    /// A cloud→edge transfer attempt failed and will be retried.
    TransferRetried {
        /// 1-based attempt number that failed.
        attempt: usize,
        /// Backoff before the next attempt, in seconds.
        backoff_seconds: f64,
    },
    /// The transfer gave up (attempts or deadline exhausted).
    TransferAborted {
        /// Attempts made before giving up.
        attempts: usize,
    },
    /// Completed windows were dropped by the assembler's quarantine.
    WindowsQuarantined {
        /// Windows quarantined during this stream call.
        windows: u64,
    },
    /// An incremental update failed and the last-good checkpoint was
    /// restored.
    UpdateRolledBack {
        /// Label of the class whose update failed.
        new_label: usize,
        /// Consecutive failures for this device so far.
        failures: u32,
    },
    /// Persistent faults exhausted the retry budget; the device fell back
    /// to the frozen pre-trained model (the paper's Pre-trained baseline).
    DegradedToPretrained {
        /// Update failures that triggered the degradation.
        failures: u32,
    },
}

/// One log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Virtual device time in seconds since deployment.
    pub at_seconds: f64,
    /// What happened.
    pub kind: EventKind,
}

/// An append-only event log with a virtual clock.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    clock_seconds: f64,
    events: Vec<Event>,
}

impl EventLog {
    /// Empty log at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the virtual clock.
    pub fn advance(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "time flows forward");
        self.clock_seconds += seconds;
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.clock_seconds
    }

    /// Appends an event at the current virtual time.
    pub fn record(&mut self, kind: EventKind) {
        self.events.push(Event { at_seconds: self.clock_seconds, kind });
    }

    /// All events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of inference events.
    pub fn inference_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Inference { .. }))
            .count()
    }

    /// Number of completed updates.
    pub fn update_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::UpdateFinished { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_stamped() {
        let mut log = EventLog::new();
        log.record(EventKind::Deployed { payload_bytes: 10 });
        log.advance(5.0);
        log.record(EventKind::Inference { predicted: 2 });
        assert_eq!(log.events()[0].at_seconds, 0.0);
        assert_eq!(log.events()[1].at_seconds, 5.0);
        assert_eq!(log.now(), 5.0);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn clock_rejects_negative_steps() {
        EventLog::new().advance(-1.0);
    }

    #[test]
    fn counters_filter_by_kind() {
        let mut log = EventLog::new();
        log.record(EventKind::Inference { predicted: 0 });
        log.record(EventKind::Inference { predicted: 1 });
        log.record(EventKind::UpdateStarted { new_label: 2, samples: 30 });
        log.record(EventKind::UpdateFinished { new_label: 2, epochs: 8, seconds: 1.5 });
        assert_eq!(log.inference_count(), 2);
        assert_eq!(log.update_count(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let mut log = EventLog::new();
        log.record(EventKind::DriftDetected { max_shift: 4.2 });
        let json = serde_json::to_string(&log).unwrap();
        let back: EventLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
    }
}
