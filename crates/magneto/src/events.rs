//! Typed, virtually-clocked event log for edge deployments.
//!
//! The log is a **fixed-capacity ring buffer** (see `docs/SCALING.md`):
//! an unbounded stream of events would grow per-device memory without
//! bound, so once [`EventLog::capacity`] events are retained the oldest
//! event is evicted to make room. Nothing observable is lost to eviction:
//! every `record` also folds the event into a running per-metric total
//! ([`EventLog::totals`], keyed by [`EventKind::metric_name`]), and every
//! derived count ([`EventLog::served_count`] etc.) and telemetry snapshot
//! reads those totals — so they are conserved exactly whether the ring
//! holds every event or none of them.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Why a device was excluded from a federated round's average (it still
/// received the merged model either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExclusionReason {
    /// The device held no support exemplars — a zero-sample model must not
    /// out-vote devices that actually hold data.
    ZeroSupport,
    /// The fleet policy quarantined the device after a quality alert
    /// (forgetting / margin collapse) — see `docs/POLICY.md`.
    Quarantined,
}

/// What happened on the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Model + support set installed from the cloud.
    Deployed {
        /// Bytes transferred for the one-time download.
        payload_bytes: u64,
    },
    /// One window classified.
    Inference {
        /// Predicted activity label.
        predicted: usize,
    },
    /// The drift monitor crossed its threshold.
    DriftDetected {
        /// Largest standardised feature shift observed.
        max_shift: f32,
    },
    /// An incremental update began.
    UpdateStarted {
        /// Label of the incoming class.
        new_label: usize,
        /// Samples available for it.
        samples: usize,
    },
    /// An incremental update finished.
    UpdateFinished {
        /// Label of the learned class.
        new_label: usize,
        /// Training epochs consumed.
        epochs: usize,
        /// Modeled device seconds charged to the virtual clock for the
        /// update (derived from shape-based kernel work via
        /// `DeviceProfile::seconds_for_flops` — never a host wall-clock
        /// measurement, which would make traces vary with host load).
        seconds: f64,
    },
    /// A batch of pre-extracted feature windows was classified through the
    /// batched serving path (one embedding forward + one distance kernel
    /// for the whole batch — see `docs/FLEET.md`).
    BatchServed {
        /// Windows classified in this batch.
        windows: u64,
        /// Whether the prototype cache had to be rebuilt (the model
        /// generation moved since the last serve).
        cache_rebuilt: bool,
    },
    /// A federated round was applied.
    FederatedRound {
        /// Number of participating devices.
        participants: usize,
    },
    /// This device was excluded from a federated round's average — either
    /// it had no support exemplars (a zero-sample vote would previously be
    /// inflated to weight 1) or the fleet policy quarantined it. It still
    /// received the merged model.
    FederatedExcluded {
        /// Devices that did contribute to the round.
        participants: usize,
        /// Why the device was left out of the average.
        reason: ExclusionReason,
    },
    /// A cloud→edge transfer attempt failed and will be retried.
    TransferRetried {
        /// 1-based attempt number that failed.
        attempt: usize,
        /// Backoff before the next attempt, in seconds.
        backoff_seconds: f64,
    },
    /// The transfer gave up (attempts or deadline exhausted).
    TransferAborted {
        /// Attempts made before giving up.
        attempts: usize,
    },
    /// Completed windows were dropped by the assembler's quarantine.
    WindowsQuarantined {
        /// Windows quarantined during this stream call.
        windows: u64,
    },
    /// An incremental update failed and the last-good checkpoint was
    /// restored.
    UpdateRolledBack {
        /// Label of the class whose update failed.
        new_label: usize,
        /// Consecutive failures for this device so far.
        failures: u32,
    },
    /// Persistent faults exhausted the retry budget; the device fell back
    /// to the frozen pre-trained model (the paper's Pre-trained baseline).
    DegradedToPretrained {
        /// Update failures that triggered the degradation.
        failures: u32,
    },
    /// A quality-monitor threshold rule fired for this device's model (see
    /// `pilote_core::quality` and `docs/QUALITY.md`).
    AlertRaised {
        /// Stable rule name (`AlertRule::name`): `forgetting`,
        /// `margin_collapse` or `drift_spike`.
        rule: String,
        /// Model generation the measurement was taken at.
        generation: u64,
        /// The measured value that tripped the rule (forgetting score,
        /// mean margin, or worst drift ratio, per rule) — kept in the
        /// event so policy decisions are auditable from the log alone.
        value: f64,
        /// The effective threshold the value crossed (the *adapted*
        /// per-device threshold when adaptive baselines are armed, not
        /// the shared constant — see `docs/POLICY.md`).
        threshold: f64,
    },
    /// The fleet policy quarantined this device: its parameters stay out
    /// of federated averages for the next `rounds` rounds (see
    /// `docs/POLICY.md`).
    QuarantineEntered {
        /// The triggering rule name (`forgetting` or `margin_collapse`).
        rule: String,
        /// Repair-ladder strike this quarantine escalated to (1-based).
        strike: u32,
        /// Federated rounds the device will sit out.
        rounds: usize,
    },
    /// The policy released this device from quarantine after it served its
    /// excluded rounds without a fresh alert.
    QuarantineLifted {
        /// Repair-ladder strikes accumulated while quarantined.
        strikes: u32,
    },
    /// Repair step 1: the policy rolled the model back to the last
    /// alert-free checkpoint + exemplar set.
    RepairRollback {
        /// Strike that triggered the rollback (always 1 on the ladder).
        strike: u32,
    },
    /// Repair step 2: the policy reinstalled a fresh cloud deployment
    /// (parameters + exemplars) over this device's model.
    Reanchored {
        /// Bytes downloaded for the re-anchor package.
        payload_bytes: u64,
        /// Strike that triggered the re-anchor.
        strike: u32,
    },
    /// The quality monitor stamped one row of the session × task accuracy
    /// matrix (see `pilote_core::session_metrics` and `docs/METRICS.md`).
    SessionRecorded {
        /// 0-based matrix row index (session number).
        session: u64,
        /// Model generation the row was measured at.
        generation: u64,
        /// Mean accuracy over the tasks known and measured at this session
        /// (the accuracy curve's newest point; `-1.0` when none qualify).
        average_accuracy: f64,
        /// The forgetting curve's newest point (mean drop from each
        /// learned task's own best; 0 until a task is measured twice).
        forgetting: f64,
    },
    /// A staged rollout halted while this device held the new model; the
    /// device was restored to its pre-install state.
    RolloutHalted {
        /// Stage name the halt fired in (`canary`, `cohort` or `fleet`).
        stage: String,
        /// Triggering alerts observed in the stage.
        alerts: u64,
        /// Devices in the stage.
        stage_size: usize,
    },
}

impl EventKind {
    /// Stable `pilote-obs` counter name for this event kind (`edge.*`).
    pub fn metric_name(&self) -> &'static str {
        match self {
            EventKind::Deployed { .. } => "edge.deployed",
            EventKind::Inference { .. } => "edge.inference",
            EventKind::DriftDetected { .. } => "edge.drift_detected",
            EventKind::UpdateStarted { .. } => "edge.update_started",
            EventKind::UpdateFinished { .. } => "edge.update_finished",
            EventKind::BatchServed { .. } => "edge.batch_served",
            EventKind::FederatedRound { .. } => "edge.federated_round",
            // The exclusion reason is part of the bridged counter name so
            // zero-support and policy-quarantine exclusions are separable
            // in telemetry without reading event payloads.
            EventKind::FederatedExcluded { reason: ExclusionReason::ZeroSupport, .. } => {
                "edge.federated_excluded.zero_support"
            }
            EventKind::FederatedExcluded { reason: ExclusionReason::Quarantined, .. } => {
                "edge.federated_excluded.quarantined"
            }
            EventKind::TransferRetried { .. } => "edge.transfer_retried",
            EventKind::TransferAborted { .. } => "edge.transfer_aborted",
            EventKind::WindowsQuarantined { .. } => "edge.windows_quarantined",
            EventKind::UpdateRolledBack { .. } => "edge.update_rolled_back",
            EventKind::DegradedToPretrained { .. } => "edge.degraded_to_pretrained",
            EventKind::AlertRaised { .. } => "edge.alert_raised",
            EventKind::QuarantineEntered { .. } => "edge.quarantine_entered",
            EventKind::QuarantineLifted { .. } => "edge.quarantine_lifted",
            EventKind::RepairRollback { .. } => "edge.repair_rollback",
            EventKind::Reanchored { .. } => "edge.reanchored",
            EventKind::SessionRecorded { .. } => "edge.session_recorded",
            EventKind::RolloutHalted { .. } => "edge.rollout_halted",
        }
    }
}

/// One log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Virtual device time in seconds since deployment.
    pub at_seconds: f64,
    /// What happened.
    pub kind: EventKind,
}

/// Metric contribution of one event, matching the `pilote-obs` counter
/// bridge: window events add their window count, everything else counts
/// one occurrence.
fn metric_weight(kind: &EventKind) -> u64 {
    match kind {
        EventKind::WindowsQuarantined { windows } | EventKind::BatchServed { windows, .. } => {
            *windows
        }
        _ => 1,
    }
}

/// Default number of events an [`EventLog`] retains before evicting the
/// oldest. Generous enough that the benchmark schedules never evict; the
/// large-scale fleet runner lowers it (see `docs/SCALING.md`).
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// A bounded event log with a virtual clock.
///
/// Retains at most [`EventLog::capacity`] recent events; older events are
/// evicted but stay folded into the running [`EventLog::totals`], which
/// every derived count and telemetry snapshot reads — eviction never
/// changes an observable total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    clock_seconds: f64,
    /// Maximum retained events; `0` means unbounded.
    capacity: usize,
    /// Events evicted from the ring so far.
    evicted: u64,
    /// Running per-metric totals over **every** event ever recorded
    /// (retained or evicted), keyed by [`EventKind::metric_name`].
    totals: BTreeMap<String, u64>,
    events: Vec<Event>,
}

impl Default for EventLog {
    /// Same as [`EventLog::new`].
    fn default() -> Self {
        EventLog::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    /// Empty log at virtual time zero with the default retention
    /// ([`DEFAULT_EVENT_CAPACITY`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty log retaining at most `capacity` events (`0` = unbounded).
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            clock_seconds: 0.0,
            capacity,
            evicted: 0,
            totals: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// Maximum retained events (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Re-bounds the ring to `capacity` (`0` = unbounded), evicting the
    /// oldest retained events immediately if the log is already over the
    /// new bound. Totals are unaffected — they cover evicted events.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if capacity > 0 && self.events.len() > capacity {
            let excess = self.events.len() - capacity;
            self.events.drain(..excess);
            self.evicted += excess as u64;
        }
    }

    /// Events evicted from the ring so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Advances the virtual clock.
    pub fn advance(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "time flows forward");
        self.clock_seconds += seconds;
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.clock_seconds
    }

    /// Appends an event at the current virtual time, folding it into the
    /// running totals and bridging it into the `pilote-obs` registry as an
    /// `edge.*` counter (window events add their window count; every other
    /// kind counts occurrences). When the ring is at capacity the oldest
    /// retained event is evicted — its totals contribution is already
    /// banked, so no observable count changes.
    pub fn record(&mut self, kind: EventKind) {
        let weight = metric_weight(&kind);
        if pilote_obs::enabled() {
            pilote_obs::counter(kind.metric_name()).add(weight);
        }
        *self.totals.entry(kind.metric_name().to_string()).or_insert(0) += weight;
        if self.capacity > 0 && self.events.len() == self.capacity {
            self.events.remove(0);
            self.evicted += 1;
        }
        self.events.push(Event { at_seconds: self.clock_seconds, kind });
    }

    /// Retained events in order (the newest [`EventLog::capacity`] when
    /// bounded; everything ever recorded when unbounded).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Running per-metric totals over every event ever recorded, keyed by
    /// [`EventKind::metric_name`] — conserved under ring eviction.
    pub fn totals(&self) -> &BTreeMap<String, u64> {
        &self.totals
    }

    /// Running total for one metric name, 0 when never recorded.
    pub fn total(&self, metric_name: &str) -> u64 {
        self.totals.get(metric_name).copied().unwrap_or(0)
    }

    /// Number of inference events (conserved under eviction).
    pub fn inference_count(&self) -> usize {
        self.total("edge.inference") as usize
    }

    /// Total windows classified through the batched serving path
    /// (conserved under eviction).
    pub fn served_count(&self) -> u64 {
        self.total("edge.batch_served")
    }

    /// Number of quality alerts raised (conserved under eviction).
    pub fn alert_count(&self) -> usize {
        self.total("edge.alert_raised") as usize
    }

    /// Number of completed updates (conserved under eviction).
    pub fn update_count(&self) -> usize {
        self.total("edge.update_finished") as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_stamped() {
        let mut log = EventLog::new();
        log.record(EventKind::Deployed { payload_bytes: 10 });
        log.advance(5.0);
        log.record(EventKind::Inference { predicted: 2 });
        assert_eq!(log.events()[0].at_seconds, 0.0);
        assert_eq!(log.events()[1].at_seconds, 5.0);
        assert_eq!(log.now(), 5.0);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn clock_rejects_negative_steps() {
        EventLog::new().advance(-1.0);
    }

    #[test]
    fn counters_filter_by_kind() {
        let mut log = EventLog::new();
        log.record(EventKind::Inference { predicted: 0 });
        log.record(EventKind::Inference { predicted: 1 });
        log.record(EventKind::UpdateStarted { new_label: 2, samples: 30 });
        log.record(EventKind::UpdateFinished { new_label: 2, epochs: 8, seconds: 1.5 });
        assert_eq!(log.inference_count(), 2);
        assert_eq!(log.update_count(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let mut log = EventLog::new();
        log.record(EventKind::DriftDetected { max_shift: 4.2 });
        let json = serde_json::to_string(&log).unwrap();
        let back: EventLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn rollback_and_degradation_do_not_inflate_update_count() {
        // A device that fails three updates and degrades has completed
        // ZERO updates — only UpdateFinished may count.
        let mut log = EventLog::new();
        for failures in 1..=3u32 {
            log.record(EventKind::UpdateStarted { new_label: 7, samples: 20 });
            log.record(EventKind::UpdateRolledBack { new_label: 7, failures });
        }
        log.record(EventKind::DegradedToPretrained { failures: 3 });
        assert_eq!(log.update_count(), 0);
        log.record(EventKind::UpdateFinished { new_label: 8, epochs: 4, seconds: 2.5 });
        assert_eq!(log.update_count(), 1);
    }

    #[test]
    fn fault_events_round_trip_and_bridge_to_counters() {
        let saved = pilote_obs::enabled();
        pilote_obs::set_enabled(true);
        let retried_before =
            pilote_obs::snapshot().counters.get("edge.transfer_retried").copied().unwrap_or(0);
        let quarantined_before =
            pilote_obs::snapshot().counters.get("edge.windows_quarantined").copied().unwrap_or(0);

        let mut log = EventLog::new();
        log.record(EventKind::TransferRetried { attempt: 1, backoff_seconds: 0.5 });
        log.record(EventKind::TransferRetried { attempt: 2, backoff_seconds: 1.0 });
        log.record(EventKind::TransferAborted { attempts: 2 });
        log.advance(3.0);
        log.record(EventKind::WindowsQuarantined { windows: 4 });
        log.record(EventKind::UpdateRolledBack { new_label: 5, failures: 1 });
        log.record(EventKind::DegradedToPretrained { failures: 3 });

        // Serde round-trip of the fault/telemetry event kinds.
        let json = serde_json::to_string(&log).unwrap();
        let back: EventLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
        assert_eq!(back.now(), 3.0);

        // Bridged counters: retries count occurrences, quarantine counts
        // windows. Other tests in this binary may record events
        // concurrently, so assert lower bounds on the deltas.
        let snap = pilote_obs::snapshot();
        assert!(
            snap.counters.get("edge.transfer_retried").copied().unwrap_or(0) - retried_before >= 2
        );
        assert!(
            snap.counters.get("edge.windows_quarantined").copied().unwrap_or(0)
                - quarantined_before
                >= 4
        );
        pilote_obs::set_enabled(saved);
    }

    #[test]
    fn policy_events_round_trip_and_split_exclusion_counters() {
        let saved = pilote_obs::enabled();
        pilote_obs::set_enabled(true);
        let before = |name: &str| {
            pilote_obs::snapshot().counters.get(name).copied().unwrap_or(0)
        };
        let zero_before = before("edge.federated_excluded.zero_support");
        let quarantined_before = before("edge.federated_excluded.quarantined");

        let mut log = EventLog::new();
        log.record(EventKind::FederatedExcluded {
            participants: 3,
            reason: ExclusionReason::ZeroSupport,
        });
        log.record(EventKind::FederatedExcluded {
            participants: 3,
            reason: ExclusionReason::Quarantined,
        });
        log.record(EventKind::FederatedExcluded {
            participants: 2,
            reason: ExclusionReason::Quarantined,
        });
        log.record(EventKind::AlertRaised {
            rule: "margin_collapse".into(),
            generation: 4,
            value: 0.01,
            threshold: 0.05,
        });
        log.record(EventKind::QuarantineEntered {
            rule: "margin_collapse".into(),
            strike: 2,
            rounds: 2,
        });
        log.record(EventKind::Reanchored { payload_bytes: 4096, strike: 2 });
        log.record(EventKind::QuarantineLifted { strikes: 2 });
        log.record(EventKind::RolloutHalted {
            stage: "canary".into(),
            alerts: 1,
            stage_size: 2,
        });

        // Serde round-trip of every policy-facing event kind.
        let json = serde_json::to_string(&log).unwrap();
        let back: EventLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);

        // The exclusion reason splits the running totals and the bridged
        // counters by name.
        assert_eq!(log.total("edge.federated_excluded.zero_support"), 1);
        assert_eq!(log.total("edge.federated_excluded.quarantined"), 2);
        let snap = pilote_obs::snapshot();
        assert!(
            snap.counters.get("edge.federated_excluded.zero_support").copied().unwrap_or(0)
                - zero_before
                >= 1
        );
        assert!(
            snap.counters.get("edge.federated_excluded.quarantined").copied().unwrap_or(0)
                - quarantined_before
                >= 2
        );
        pilote_obs::set_enabled(saved);
    }

    #[test]
    fn served_count_sums_batch_windows() {
        let mut log = EventLog::new();
        log.record(EventKind::BatchServed { windows: 5, cache_rebuilt: true });
        log.record(EventKind::Inference { predicted: 1 });
        log.record(EventKind::BatchServed { windows: 3, cache_rebuilt: false });
        assert_eq!(log.served_count(), 8);
        assert_eq!(log.inference_count(), 1);
    }

    #[test]
    fn ring_evicts_oldest_but_conserves_totals() {
        let mut bounded = EventLog::with_capacity(3);
        let mut unbounded = EventLog::with_capacity(0);
        for i in 0..10 {
            let kind = if i % 2 == 0 {
                EventKind::Inference { predicted: i }
            } else {
                EventKind::BatchServed { windows: 4, cache_rebuilt: false }
            };
            bounded.record(kind.clone());
            unbounded.record(kind);
        }
        // The ring holds only the newest 3 events…
        assert_eq!(bounded.events().len(), 3);
        assert_eq!(bounded.evicted(), 7);
        assert_eq!(unbounded.events().len(), 10);
        assert_eq!(unbounded.evicted(), 0);
        // …but every observable total is conserved exactly.
        assert_eq!(bounded.totals(), unbounded.totals());
        assert_eq!(bounded.inference_count(), 5);
        assert_eq!(bounded.served_count(), 20);
        // The retained tail is the newest events, oldest first.
        assert_eq!(bounded.events()[0].kind, unbounded.events()[7].kind);
        assert_eq!(bounded.events()[2].kind, unbounded.events()[9].kind);
    }

    #[test]
    fn set_capacity_rebounds_and_evicts_immediately() {
        let mut log = EventLog::with_capacity(0);
        for i in 0..6 {
            log.record(EventKind::Inference { predicted: i });
        }
        log.set_capacity(2);
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.evicted(), 4);
        assert_eq!(log.inference_count(), 6, "totals survive re-bounding");
        // Recording at the new bound keeps evicting one-for-one.
        log.record(EventKind::Inference { predicted: 6 });
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.evicted(), 5);
        assert_eq!(log.inference_count(), 7);
    }

    #[test]
    fn bounded_log_serde_round_trip() {
        let mut log = EventLog::with_capacity(2);
        log.record(EventKind::Inference { predicted: 0 });
        log.advance(1.5);
        log.record(EventKind::BatchServed { windows: 3, cache_rebuilt: true });
        log.record(EventKind::AlertRaised {
            rule: "forgetting".into(),
            generation: 1,
            value: 0.2,
            threshold: 0.1,
        });
        let json = serde_json::to_string(&log).unwrap();
        let back: EventLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
        assert_eq!(back.evicted(), 1);
        assert_eq!(back.capacity(), 2);
        assert_eq!(back.inference_count(), 1, "evicted totals survive the wire");
    }

    #[test]
    fn every_event_kind_has_a_unique_metric_name() {
        let kinds = [
            EventKind::Deployed { payload_bytes: 1 },
            EventKind::Inference { predicted: 0 },
            EventKind::DriftDetected { max_shift: 1.0 },
            EventKind::UpdateStarted { new_label: 0, samples: 1 },
            EventKind::UpdateFinished { new_label: 0, epochs: 1, seconds: 1.0 },
            EventKind::BatchServed { windows: 8, cache_rebuilt: true },
            EventKind::FederatedRound { participants: 2 },
            EventKind::FederatedExcluded {
                participants: 2,
                reason: ExclusionReason::ZeroSupport,
            },
            EventKind::FederatedExcluded {
                participants: 2,
                reason: ExclusionReason::Quarantined,
            },
            EventKind::TransferRetried { attempt: 1, backoff_seconds: 0.5 },
            EventKind::TransferAborted { attempts: 1 },
            EventKind::WindowsQuarantined { windows: 1 },
            EventKind::UpdateRolledBack { new_label: 0, failures: 1 },
            EventKind::DegradedToPretrained { failures: 3 },
            EventKind::AlertRaised {
                rule: "forgetting".into(),
                generation: 2,
                value: 0.2,
                threshold: 0.1,
            },
            EventKind::QuarantineEntered { rule: "forgetting".into(), strike: 1, rounds: 2 },
            EventKind::QuarantineLifted { strikes: 1 },
            EventKind::RepairRollback { strike: 1 },
            EventKind::Reanchored { payload_bytes: 1024, strike: 2 },
            EventKind::SessionRecorded {
                session: 0,
                generation: 1,
                average_accuracy: 0.9,
                forgetting: 0.0,
            },
            EventKind::RolloutHalted { stage: "canary".into(), alerts: 1, stage_size: 1 },
        ];
        let mut names: Vec<_> = kinds.iter().map(EventKind::metric_name).collect();
        assert!(names.iter().all(|n| n.starts_with("edge.")));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }
}
