//! Typed, virtually-clocked event log for edge deployments.

use serde::{Deserialize, Serialize};

/// What happened on the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Model + support set installed from the cloud.
    Deployed {
        /// Bytes transferred for the one-time download.
        payload_bytes: u64,
    },
    /// One window classified.
    Inference {
        /// Predicted activity label.
        predicted: usize,
    },
    /// The drift monitor crossed its threshold.
    DriftDetected {
        /// Largest standardised feature shift observed.
        max_shift: f32,
    },
    /// An incremental update began.
    UpdateStarted {
        /// Label of the incoming class.
        new_label: usize,
        /// Samples available for it.
        samples: usize,
    },
    /// An incremental update finished.
    UpdateFinished {
        /// Label of the learned class.
        new_label: usize,
        /// Training epochs consumed.
        epochs: usize,
        /// Modeled device seconds charged to the virtual clock for the
        /// update (derived from shape-based kernel work via
        /// `DeviceProfile::seconds_for_flops` — never a host wall-clock
        /// measurement, which would make traces vary with host load).
        seconds: f64,
    },
    /// A batch of pre-extracted feature windows was classified through the
    /// batched serving path (one embedding forward + one distance kernel
    /// for the whole batch — see `docs/FLEET.md`).
    BatchServed {
        /// Windows classified in this batch.
        windows: u64,
        /// Whether the prototype cache had to be rebuilt (the model
        /// generation moved since the last serve).
        cache_rebuilt: bool,
    },
    /// A federated round was applied.
    FederatedRound {
        /// Number of participating devices.
        participants: usize,
    },
    /// This device was excluded from a federated round's average because
    /// it had no support exemplars (a zero-sample vote would previously be
    /// inflated to weight 1). It still received the merged model.
    FederatedExcluded {
        /// Devices that did contribute to the round.
        participants: usize,
    },
    /// A cloud→edge transfer attempt failed and will be retried.
    TransferRetried {
        /// 1-based attempt number that failed.
        attempt: usize,
        /// Backoff before the next attempt, in seconds.
        backoff_seconds: f64,
    },
    /// The transfer gave up (attempts or deadline exhausted).
    TransferAborted {
        /// Attempts made before giving up.
        attempts: usize,
    },
    /// Completed windows were dropped by the assembler's quarantine.
    WindowsQuarantined {
        /// Windows quarantined during this stream call.
        windows: u64,
    },
    /// An incremental update failed and the last-good checkpoint was
    /// restored.
    UpdateRolledBack {
        /// Label of the class whose update failed.
        new_label: usize,
        /// Consecutive failures for this device so far.
        failures: u32,
    },
    /// Persistent faults exhausted the retry budget; the device fell back
    /// to the frozen pre-trained model (the paper's Pre-trained baseline).
    DegradedToPretrained {
        /// Update failures that triggered the degradation.
        failures: u32,
    },
    /// A quality-monitor threshold rule fired for this device's model (see
    /// `pilote_core::quality` and `docs/QUALITY.md`).
    AlertRaised {
        /// Stable rule name (`AlertRule::name`): `forgetting`,
        /// `margin_collapse` or `drift_spike`.
        rule: String,
        /// Model generation the measurement was taken at.
        generation: u64,
    },
}

impl EventKind {
    /// Stable `pilote-obs` counter name for this event kind (`edge.*`).
    pub fn metric_name(&self) -> &'static str {
        match self {
            EventKind::Deployed { .. } => "edge.deployed",
            EventKind::Inference { .. } => "edge.inference",
            EventKind::DriftDetected { .. } => "edge.drift_detected",
            EventKind::UpdateStarted { .. } => "edge.update_started",
            EventKind::UpdateFinished { .. } => "edge.update_finished",
            EventKind::BatchServed { .. } => "edge.batch_served",
            EventKind::FederatedRound { .. } => "edge.federated_round",
            EventKind::FederatedExcluded { .. } => "edge.federated_excluded",
            EventKind::TransferRetried { .. } => "edge.transfer_retried",
            EventKind::TransferAborted { .. } => "edge.transfer_aborted",
            EventKind::WindowsQuarantined { .. } => "edge.windows_quarantined",
            EventKind::UpdateRolledBack { .. } => "edge.update_rolled_back",
            EventKind::DegradedToPretrained { .. } => "edge.degraded_to_pretrained",
            EventKind::AlertRaised { .. } => "edge.alert_raised",
        }
    }
}

/// One log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Virtual device time in seconds since deployment.
    pub at_seconds: f64,
    /// What happened.
    pub kind: EventKind,
}

/// An append-only event log with a virtual clock.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    clock_seconds: f64,
    events: Vec<Event>,
}

impl EventLog {
    /// Empty log at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the virtual clock.
    pub fn advance(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "time flows forward");
        self.clock_seconds += seconds;
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.clock_seconds
    }

    /// Appends an event at the current virtual time, bridging it into the
    /// `pilote-obs` registry as an `edge.*` counter (quarantine events add
    /// their window count; every other kind counts occurrences).
    pub fn record(&mut self, kind: EventKind) {
        if pilote_obs::enabled() {
            match &kind {
                EventKind::WindowsQuarantined { windows }
                | EventKind::BatchServed { windows, .. } => {
                    pilote_obs::counter(kind.metric_name()).add(*windows);
                }
                _ => pilote_obs::counter(kind.metric_name()).inc(),
            }
        }
        self.events.push(Event { at_seconds: self.clock_seconds, kind });
    }

    /// All events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of inference events.
    pub fn inference_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Inference { .. }))
            .count()
    }

    /// Total windows classified through the batched serving path.
    pub fn served_count(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e.kind {
                EventKind::BatchServed { windows, .. } => windows,
                _ => 0,
            })
            .sum()
    }

    /// Number of quality alerts raised.
    pub fn alert_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::AlertRaised { .. }))
            .count()
    }

    /// Number of completed updates.
    pub fn update_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::UpdateFinished { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_stamped() {
        let mut log = EventLog::new();
        log.record(EventKind::Deployed { payload_bytes: 10 });
        log.advance(5.0);
        log.record(EventKind::Inference { predicted: 2 });
        assert_eq!(log.events()[0].at_seconds, 0.0);
        assert_eq!(log.events()[1].at_seconds, 5.0);
        assert_eq!(log.now(), 5.0);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn clock_rejects_negative_steps() {
        EventLog::new().advance(-1.0);
    }

    #[test]
    fn counters_filter_by_kind() {
        let mut log = EventLog::new();
        log.record(EventKind::Inference { predicted: 0 });
        log.record(EventKind::Inference { predicted: 1 });
        log.record(EventKind::UpdateStarted { new_label: 2, samples: 30 });
        log.record(EventKind::UpdateFinished { new_label: 2, epochs: 8, seconds: 1.5 });
        assert_eq!(log.inference_count(), 2);
        assert_eq!(log.update_count(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let mut log = EventLog::new();
        log.record(EventKind::DriftDetected { max_shift: 4.2 });
        let json = serde_json::to_string(&log).unwrap();
        let back: EventLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn rollback_and_degradation_do_not_inflate_update_count() {
        // A device that fails three updates and degrades has completed
        // ZERO updates — only UpdateFinished may count.
        let mut log = EventLog::new();
        for failures in 1..=3u32 {
            log.record(EventKind::UpdateStarted { new_label: 7, samples: 20 });
            log.record(EventKind::UpdateRolledBack { new_label: 7, failures });
        }
        log.record(EventKind::DegradedToPretrained { failures: 3 });
        assert_eq!(log.update_count(), 0);
        log.record(EventKind::UpdateFinished { new_label: 8, epochs: 4, seconds: 2.5 });
        assert_eq!(log.update_count(), 1);
    }

    #[test]
    fn fault_events_round_trip_and_bridge_to_counters() {
        let saved = pilote_obs::enabled();
        pilote_obs::set_enabled(true);
        let retried_before =
            pilote_obs::snapshot().counters.get("edge.transfer_retried").copied().unwrap_or(0);
        let quarantined_before =
            pilote_obs::snapshot().counters.get("edge.windows_quarantined").copied().unwrap_or(0);

        let mut log = EventLog::new();
        log.record(EventKind::TransferRetried { attempt: 1, backoff_seconds: 0.5 });
        log.record(EventKind::TransferRetried { attempt: 2, backoff_seconds: 1.0 });
        log.record(EventKind::TransferAborted { attempts: 2 });
        log.advance(3.0);
        log.record(EventKind::WindowsQuarantined { windows: 4 });
        log.record(EventKind::UpdateRolledBack { new_label: 5, failures: 1 });
        log.record(EventKind::DegradedToPretrained { failures: 3 });

        // Serde round-trip of the fault/telemetry event kinds.
        let json = serde_json::to_string(&log).unwrap();
        let back: EventLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
        assert_eq!(back.now(), 3.0);

        // Bridged counters: retries count occurrences, quarantine counts
        // windows. Other tests in this binary may record events
        // concurrently, so assert lower bounds on the deltas.
        let snap = pilote_obs::snapshot();
        assert!(
            snap.counters.get("edge.transfer_retried").copied().unwrap_or(0) - retried_before >= 2
        );
        assert!(
            snap.counters.get("edge.windows_quarantined").copied().unwrap_or(0)
                - quarantined_before
                >= 4
        );
        pilote_obs::set_enabled(saved);
    }

    #[test]
    fn served_count_sums_batch_windows() {
        let mut log = EventLog::new();
        log.record(EventKind::BatchServed { windows: 5, cache_rebuilt: true });
        log.record(EventKind::Inference { predicted: 1 });
        log.record(EventKind::BatchServed { windows: 3, cache_rebuilt: false });
        assert_eq!(log.served_count(), 8);
        assert_eq!(log.inference_count(), 1);
    }

    #[test]
    fn every_event_kind_has_a_unique_metric_name() {
        let kinds = [
            EventKind::Deployed { payload_bytes: 1 },
            EventKind::Inference { predicted: 0 },
            EventKind::DriftDetected { max_shift: 1.0 },
            EventKind::UpdateStarted { new_label: 0, samples: 1 },
            EventKind::UpdateFinished { new_label: 0, epochs: 1, seconds: 1.0 },
            EventKind::BatchServed { windows: 8, cache_rebuilt: true },
            EventKind::FederatedRound { participants: 2 },
            EventKind::FederatedExcluded { participants: 2 },
            EventKind::TransferRetried { attempt: 1, backoff_seconds: 0.5 },
            EventKind::TransferAborted { attempts: 1 },
            EventKind::WindowsQuarantined { windows: 1 },
            EventKind::UpdateRolledBack { new_label: 0, failures: 1 },
            EventKind::DegradedToPretrained { failures: 3 },
            EventKind::AlertRaised { rule: "forgetting".into(), generation: 2 },
        ];
        let mut names: Vec<_> = kinds.iter().map(EventKind::metric_name).collect();
        assert!(names.iter().all(|n| n.starts_with("edge.")));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }
}
