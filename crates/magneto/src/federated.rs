//! Federated collaboration — the paper's §7 future-work direction:
//! "one can consider the model's scaling up or collaborative learning with
//! strong privacy-preserving guarantees, e.g., Federated Learning."
//!
//! Devices exchange **model parameters only** (FedAvg, McMahan et al.
//! 2017), never sensor data — consistent with MAGNETO's privacy stance.
//! Prototype sharing works the same way: class means in embedding space
//! are aggregated, not raw exemplars.

use crate::edge::EdgeDevice;
use crate::events::{EventKind, ExclusionReason};
use pilote_nn::Checkpoint;
use pilote_tensor::{Tensor, TensorError};

/// Errors from federated parameter aggregation.
#[derive(Debug, Clone, PartialEq)]
pub enum FederatedError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// Contributions carry different checkpoint format versions. Averaging
    /// across formats and silently stamping the result with one of them
    /// would mislabel the merged model; the round must be rejected until
    /// every participant runs the same format.
    VersionSkew {
        /// Version of the first contribution (the reference).
        expected: u32,
        /// The disagreeing version.
        found: u32,
    },
    /// Two contributions disagree on the shape of one parameter tensor.
    LayerShapeMismatch {
        /// Index of the offending layer in [`Checkpoint::shapes`] order.
        layer: usize,
        /// Shape of that layer in the first contribution.
        expected: Vec<usize>,
        /// Shape of that layer in the disagreeing contribution.
        found: Vec<usize>,
    },
    /// The contribution list was empty, or every contribution had zero
    /// weight.
    NoContributions,
}

impl std::fmt::Display for FederatedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederatedError::Tensor(e) => write!(f, "tensor error: {e}"),
            FederatedError::VersionSkew { expected, found } => write!(
                f,
                "checkpoint version skew: expected v{expected}, found v{found}"
            ),
            FederatedError::LayerShapeMismatch { layer, expected, found } => write!(
                f,
                "layer {layer} shape mismatch: expected {expected:?}, found {found:?}"
            ),
            FederatedError::NoContributions => {
                write!(f, "no weighted contributions to average")
            }
        }
    }
}

impl std::error::Error for FederatedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FederatedError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for FederatedError {
    fn from(e: TensorError) -> Self {
        FederatedError::Tensor(e)
    }
}

/// Weighted FedAvg over parameter snapshots.
///
/// `contributions` pairs each client's checkpoint with its local sample
/// count; the result is the sample-weighted mean of every parameter.
///
/// # Errors
/// Fails when the list is empty, the total weight is zero, checkpoints
/// disagree on format version ([`FederatedError::VersionSkew`]) or any
/// layer's shape ([`FederatedError::LayerShapeMismatch`], which names the
/// offending layer index and both shapes).
pub fn federated_average(
    contributions: &[(Checkpoint, usize)],
) -> Result<Checkpoint, FederatedError> {
    let Some(((first, _), rest)) = contributions.split_first() else {
        return Err(FederatedError::NoContributions);
    };
    let total_weight: f64 = contributions.iter().map(|(_, w)| *w as f64).sum();
    if total_weight <= 0.0 {
        return Err(FederatedError::NoContributions);
    }
    for (ckpt, _) in rest {
        if ckpt.version != first.version {
            return Err(FederatedError::VersionSkew {
                expected: first.version,
                found: ckpt.version,
            });
        }
        if ckpt.shapes.len() != first.shapes.len() {
            return Err(FederatedError::LayerShapeMismatch {
                layer: first.shapes.len().min(ckpt.shapes.len()),
                expected: first.shapes.get(ckpt.shapes.len()).cloned().unwrap_or_default(),
                found: ckpt.shapes.get(first.shapes.len()).cloned().unwrap_or_default(),
            });
        }
        for (layer, (exp, got)) in first.shapes.iter().zip(&ckpt.shapes).enumerate() {
            if exp != got {
                return Err(FederatedError::LayerShapeMismatch {
                    layer,
                    expected: exp.clone(),
                    found: got.clone(),
                });
            }
        }
    }
    let mut averaged: Vec<Tensor> =
        first.params.iter().map(|p| Tensor::zeros(p.shape().clone())).collect();
    for (ckpt, weight) in contributions {
        let w = *weight as f64 / total_weight;
        for (acc, p) in averaged.iter_mut().zip(&ckpt.params) {
            acc.axpy(w as f32, p)?;
        }
    }
    Ok(Checkpoint { version: first.version, shapes: first.shapes.clone(), params: averaged })
}

/// Orchestrates FedAvg rounds across edge devices.
#[derive(Debug, Default)]
pub struct FederatedCoordinator {
    rounds_completed: usize,
}

impl FederatedCoordinator {
    /// New coordinator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rounds applied so far.
    pub fn rounds(&self) -> usize {
        self.rounds_completed
    }

    /// Counts one completed round that an external orchestrator drove
    /// itself (the staged fleet-policy path collects contributions,
    /// averages and installs stage by stage — see `crate::policy`).
    pub(crate) fn note_round(&mut self) {
        self.rounds_completed += 1;
    }

    /// Runs one FedAvg round: collects every device's parameters (weighted
    /// by its support-set size), averages, and installs the average back
    /// on every device, refreshing prototypes under the new weights.
    ///
    /// Devices with an **empty** support set are excluded from the average
    /// — a zero-sample model must not out-vote devices that actually hold
    /// data (the old `len().max(1)` gave it the same weight as a
    /// one-sample device). Excluded devices still receive the merged model
    /// and record the exclusion as [`EventKind::FederatedExcluded`] in
    /// their [`crate::events::EventLog`].
    ///
    /// No sensor data, exemplar, or feature leaves any device.
    pub fn run_round(&mut self, devices: &mut [&mut EdgeDevice]) -> Result<(), crate::edge::EdgeError> {
        if devices.is_empty() {
            return Err(FederatedError::NoContributions.into());
        }
        let mut contributions = Vec::with_capacity(devices.len());
        let mut contributed = Vec::with_capacity(devices.len());
        for device in devices.iter_mut() {
            let weight = device.model_mut().support().len();
            contributed.push(weight > 0);
            if weight > 0 {
                let ckpt = Checkpoint::capture(device.model_mut().net_mut().layers_mut());
                contributions.push((ckpt, weight));
            }
        }
        let averaged = federated_average(&contributions)?;
        let participants = contributions.len();
        for (device, contributed) in devices.iter_mut().zip(contributed) {
            averaged.restore(device.model_mut().net_mut().layers_mut())?;
            device.model_mut().refresh_prototypes()?;
            if !contributed {
                device.record_event(EventKind::FederatedExcluded {
                    participants,
                    reason: ExclusionReason::ZeroSupport,
                });
            }
            device.note_federated_round(participants);
        }
        self.rounds_completed += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_nn::{Dense, Layer, Sequential};
    use pilote_tensor::Rng64;

    fn checkpoint_with(value: f32) -> Checkpoint {
        let mut rng = Rng64::new(1);
        let mut net = Sequential::new().push(Dense::new(2, 2, &mut rng));
        for (p, _) in net.params_and_grads() {
            p.as_mut_slice().fill(value);
        }
        Checkpoint::capture(&mut net)
    }

    #[test]
    fn unweighted_average_of_two() {
        let avg =
            federated_average(&[(checkpoint_with(0.0), 1), (checkpoint_with(2.0), 1)]).unwrap();
        for p in &avg.params {
            for &v in p.as_slice() {
                assert!((v - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn weights_shift_the_average() {
        let avg =
            federated_average(&[(checkpoint_with(0.0), 3), (checkpoint_with(4.0), 1)]).unwrap();
        for p in &avg.params {
            for &v in p.as_slice() {
                assert!((v - 1.0).abs() < 1e-6); // (0·3 + 4·1)/4
            }
        }
    }

    #[test]
    fn average_of_identical_models_is_identity() {
        let c = checkpoint_with(0.7);
        let avg = federated_average(&[(c.clone(), 5), (c.clone(), 9)]).unwrap();
        for (a, b) in avg.params.iter().zip(&c.params) {
            assert!(a.max_abs_diff(b).unwrap() < 1e-6);
        }
    }

    /// Regression: merging a v1 and a v2 checkpoint used to silently stamp
    /// the result with the first contributor's version. Mixed-version
    /// rounds must be rejected instead.
    #[test]
    fn mixed_version_contributions_rejected() {
        let v1 = checkpoint_with(1.0);
        let mut v2 = checkpoint_with(2.0);
        v2.version = v1.version + 1;
        match federated_average(&[(v1.clone(), 1), (v2, 1)]) {
            Err(FederatedError::VersionSkew { expected, found }) => {
                assert_eq!(expected, v1.version);
                assert_eq!(found, v1.version + 1);
            }
            other => panic!("expected VersionSkew, got {other:?}"),
        }
    }

    #[test]
    fn structural_mismatch_names_the_offending_layer() {
        let mut rng = Rng64::new(2);
        // Same first layer, different second layer: the error must point at
        // layer index 2 (Dense stores weight then bias per layer).
        let mut a = Sequential::new().push(Dense::new(3, 2, &mut rng)).push(Dense::new(2, 4, &mut rng));
        let mut b = Sequential::new().push(Dense::new(3, 2, &mut rng)).push(Dense::new(2, 5, &mut rng));
        let ca = Checkpoint::capture(&mut a);
        let cb = Checkpoint::capture(&mut b);
        match federated_average(&[(ca.clone(), 1), (cb.clone(), 1)]) {
            Err(FederatedError::LayerShapeMismatch { layer, expected, found }) => {
                assert_eq!(layer, 2, "first disagreeing parameter tensor");
                assert_eq!(expected, ca.shapes[2]);
                assert_eq!(found, cb.shapes[2]);
                assert_ne!(expected, found);
            }
            other => panic!("expected LayerShapeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn structural_mismatch_rejected() {
        let mut rng = Rng64::new(2);
        let mut other = Sequential::new().push(Dense::new(3, 2, &mut rng));
        let wrong = Checkpoint::capture(&mut other);
        assert!(federated_average(&[(checkpoint_with(1.0), 1), (wrong, 1)]).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(federated_average(&[]), Err(FederatedError::NoContributions));
    }

    #[test]
    fn zero_total_weight_rejected() {
        let c = checkpoint_with(1.0);
        assert_eq!(
            federated_average(&[(c.clone(), 0), (c, 0)]),
            Err(FederatedError::NoContributions)
        );
    }
}
