//! Federated collaboration — the paper's §7 future-work direction:
//! "one can consider the model's scaling up or collaborative learning with
//! strong privacy-preserving guarantees, e.g., Federated Learning."
//!
//! Devices exchange **model parameters only** (FedAvg, McMahan et al.
//! 2017), never sensor data — consistent with MAGNETO's privacy stance.
//! Prototype sharing works the same way: class means in embedding space
//! are aggregated, not raw exemplars.

use crate::edge::EdgeDevice;
use pilote_nn::Checkpoint;
use pilote_tensor::{Tensor, TensorError};

/// Weighted FedAvg over parameter snapshots.
///
/// `contributions` pairs each client's checkpoint with its local sample
/// count; the result is the sample-weighted mean of every parameter.
///
/// # Errors
/// Fails when checkpoints disagree structurally or the list is empty.
pub fn federated_average(
    contributions: &[(Checkpoint, usize)],
) -> Result<Checkpoint, TensorError> {
    let Some(((first, _), rest)) = contributions.split_first() else {
        return Err(TensorError::Empty { op: "federated_average" });
    };
    let total_weight: f64 = contributions.iter().map(|(_, w)| *w as f64).sum();
    if total_weight <= 0.0 {
        return Err(TensorError::Empty { op: "federated_average (zero total weight)" });
    }
    for (ckpt, _) in rest {
        if ckpt.shapes != first.shapes {
            return Err(TensorError::ShapeMismatch {
                left: first.shapes.first().cloned().unwrap_or_default(),
                right: ckpt.shapes.first().cloned().unwrap_or_default(),
                op: "federated_average",
            });
        }
    }
    let mut averaged: Vec<Tensor> =
        first.params.iter().map(|p| Tensor::zeros(p.shape().clone())).collect();
    for (ckpt, weight) in contributions {
        let w = *weight as f64 / total_weight;
        for (acc, p) in averaged.iter_mut().zip(&ckpt.params) {
            acc.axpy(w as f32, p)?;
        }
    }
    Ok(Checkpoint { version: first.version, shapes: first.shapes.clone(), params: averaged })
}

/// Orchestrates FedAvg rounds across edge devices.
#[derive(Debug, Default)]
pub struct FederatedCoordinator {
    rounds_completed: usize,
}

impl FederatedCoordinator {
    /// New coordinator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rounds applied so far.
    pub fn rounds(&self) -> usize {
        self.rounds_completed
    }

    /// Runs one FedAvg round: collects every device's parameters (weighted
    /// by its support-set size), averages, and installs the average back
    /// on every device, refreshing prototypes under the new weights.
    ///
    /// No sensor data, exemplar, or feature leaves any device.
    pub fn run_round(&mut self, devices: &mut [&mut EdgeDevice]) -> Result<(), crate::edge::EdgeError> {
        if devices.is_empty() {
            return Err(TensorError::Empty { op: "run_round" }.into());
        }
        let mut contributions = Vec::with_capacity(devices.len());
        for device in devices.iter_mut() {
            let weight = device.model_mut().support().len().max(1);
            let ckpt = Checkpoint::capture(device.model_mut().net_mut().layers_mut());
            contributions.push((ckpt, weight));
        }
        let averaged = federated_average(&contributions)?;
        let participants = devices.len();
        for device in devices.iter_mut() {
            averaged.restore(device.model_mut().net_mut().layers_mut())?;
            device.model_mut().refresh_prototypes()?;
            device.note_federated_round(participants);
        }
        self.rounds_completed += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_nn::{Dense, Layer, Sequential};
    use pilote_tensor::Rng64;

    fn checkpoint_with(value: f32) -> Checkpoint {
        let mut rng = Rng64::new(1);
        let mut net = Sequential::new().push(Dense::new(2, 2, &mut rng));
        for (p, _) in net.params_and_grads() {
            p.as_mut_slice().fill(value);
        }
        Checkpoint::capture(&mut net)
    }

    #[test]
    fn unweighted_average_of_two() {
        let avg =
            federated_average(&[(checkpoint_with(0.0), 1), (checkpoint_with(2.0), 1)]).unwrap();
        for p in &avg.params {
            for &v in p.as_slice() {
                assert!((v - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn weights_shift_the_average() {
        let avg =
            federated_average(&[(checkpoint_with(0.0), 3), (checkpoint_with(4.0), 1)]).unwrap();
        for p in &avg.params {
            for &v in p.as_slice() {
                assert!((v - 1.0).abs() < 1e-6); // (0·3 + 4·1)/4
            }
        }
    }

    #[test]
    fn average_of_identical_models_is_identity() {
        let c = checkpoint_with(0.7);
        let avg = federated_average(&[(c.clone(), 5), (c.clone(), 9)]).unwrap();
        for (a, b) in avg.params.iter().zip(&c.params) {
            assert!(a.max_abs_diff(b).unwrap() < 1e-6);
        }
    }

    #[test]
    fn structural_mismatch_rejected() {
        let mut rng = Rng64::new(2);
        let mut other = Sequential::new().push(Dense::new(3, 2, &mut rng));
        let wrong = Checkpoint::capture(&mut other);
        assert!(federated_average(&[(checkpoint_with(1.0), 1), (wrong, 1)]).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(federated_average(&[]).is_err());
    }
}
