//! The MAGNETO payload codec — exact binary encodings for every byte
//! that crosses the cloud↔edge link (`docs/WIRE.md`).
//!
//! Four payload families share the checked little-endian primitives of
//! [`pilote_edge_sim::wire`]:
//!
//! * **Deployments** (`PWD1`) — checkpoint, exemplar support set,
//!   shipped prototypes, normaliser and config. Tensor sections carry
//!   either bit-exact `f32` values or per-column affine codes
//!   ([`QuantizedMatrix`]) at the payload's [`WirePrecision`].
//! * **Federated round payloads** (`PWR1`) — a full checkpoint, or a
//!   per-layer delta against the last committed round's broadcast
//!   ([`pilote_nn::CheckpointDelta`]). At `F32` a delta round-trips
//!   bitwise; at `U16`/`I8` the *arithmetic diff* is quantised, which is
//!   where delta + quantisation compound: diffs span a far tighter range
//!   than raw weights, so the same 8-bit budget buys a much finer step.
//! * **Telemetry** (`PWS1`) — [`pilote_obs::Snapshot`]s (both full
//!   snapshots and since-last-rollup deltas use the same shape), with
//!   `f64` statistics encoded as IEEE-754 bits, never decimal text.
//! * **Session matrices** (`PWM1`) — the continual-learning accuracy
//!   matrix of `pilote_core::session_metrics` (task definitions plus
//!   per-session rows), `f32` accuracies bit-exact; the fleet's
//!   scenario rollup ships these (`docs/METRICS.md`).
//!
//! Every encoder's `len()` **is** the byte count charged to the link
//! model, so wire bytes → modeled transfer time with no format fudge
//! factor; the decoders are total (typed [`CodecError`]s, no panics) and
//! every production path decodes what it shipped — quantisation loss is
//! real, not an accounting fiction.

use crate::cloud::{Deployment, ShippedPrototypes};
use pilote_core::PiloteConfig;
use pilote_core::config::NetConfig;
use pilote_core::session_metrics::SessionRecord;
use pilote_core::{AccuracyMatrix, SupportSet, TaskGroup};
use pilote_edge_sim::quantize::{QuantizeError, Quantization, QuantizedMatrix};
use pilote_edge_sim::wire::{WireError, WirePrecision, WireReader, WireWriter};
use pilote_har_data::preprocess::Normalizer;
use pilote_nn::delta::{CheckpointDelta, DeltaError};
use pilote_nn::loss::ContrastiveForm;
use pilote_nn::Checkpoint;
use pilote_obs::{GaugeSnapshot, HistogramSnapshot, KernelStats, Snapshot, SpanNode};
use pilote_tensor::{Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Deployment payload magic.
pub const DEPLOYMENT_MAGIC: [u8; 4] = *b"PWD1";
/// Federated round payload magic.
pub const ROUND_MAGIC: [u8; 4] = *b"PWR1";
/// Telemetry payload magic.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"PWS1";
/// Session-matrix payload magic (the continual-learning accuracy matrix,
/// `pilote_core::session_metrics`).
pub const SESSION_MATRIX_MAGIC: [u8; 4] = *b"PWM1";

/// Span trees deeper than this are rejected as corrupt rather than
/// recursed into (a hostile payload could otherwise exhaust the stack).
const MAX_SPAN_DEPTH: usize = 64;

/// How a fleet ships its payloads: tensor precision plus whether
/// federated rounds use delta encoding against the last committed
/// broadcast.
///
/// The default — bit-exact `f32` with deltas on — changes **only** byte
/// counts and the virtual clocks they feed; model numerics, alerts and
/// policy decisions are untouched, because an `F32` encode/decode (full
/// or delta) is bitwise lossless. Quantised precisions trade accuracy
/// for bytes; the frontier is measured by `repro wire`
/// (`results/BENCH_wire.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireConfig {
    /// Precision tensor sections are encoded at.
    pub precision: WirePrecision,
    /// Delta-encode federated round payloads when sender and receiver
    /// share a committed base (stale members fall back to full payloads).
    pub delta: bool,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig { precision: WirePrecision::F32, delta: true }
    }
}

impl WireConfig {
    /// Full-payload config at `precision`.
    pub fn full(precision: WirePrecision) -> Self {
        WireConfig { precision, delta: false }
    }

    /// Delta-enabled config at `precision`.
    pub fn delta(precision: WirePrecision) -> Self {
        WireConfig { precision, delta: true }
    }

    /// Stable name used in benchmark output: `"i8-delta"`, `"f32-full"`,
    /// …
    pub fn name(&self) -> String {
        format!("{}-{}", self.precision.name(), if self.delta { "delta" } else { "full" })
    }
}

/// Errors from encoding or decoding a MAGNETO payload.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The byte stream itself was malformed.
    Wire(WireError),
    /// A tensor section could not be quantised (non-finite values).
    Quantize(QuantizeError),
    /// A tensor could not be assembled from the decoded sections.
    Tensor(TensorError),
    /// A delta payload could not be applied to the receiver's base.
    Delta(DeltaError),
    /// A delta payload arrived but the receiver holds no base checkpoint
    /// to apply it against — the sender must fall back to a full payload.
    MissingBase,
    /// Decoded sections disagree structurally (e.g. a quantised section's
    /// shape does not match its announced dims).
    Structure {
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Wire(e) => write!(f, "wire error: {e}"),
            CodecError::Quantize(e) => write!(f, "quantise error: {e}"),
            CodecError::Tensor(e) => write!(f, "tensor error: {e}"),
            CodecError::Delta(e) => write!(f, "delta error: {e}"),
            CodecError::MissingBase => {
                write!(f, "delta payload received with no base checkpoint to apply it against")
            }
            CodecError::Structure { detail } => write!(f, "payload structure error: {detail}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Wire(e) => Some(e),
            CodecError::Quantize(e) => Some(e),
            CodecError::Tensor(e) => Some(e),
            CodecError::Delta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for CodecError {
    fn from(e: WireError) -> Self {
        CodecError::Wire(e)
    }
}

impl From<QuantizeError> for CodecError {
    fn from(e: QuantizeError) -> Self {
        CodecError::Quantize(e)
    }
}

impl From<TensorError> for CodecError {
    fn from(e: TensorError) -> Self {
        CodecError::Tensor(e)
    }
}

impl From<DeltaError> for CodecError {
    fn from(e: DeltaError) -> Self {
        CodecError::Delta(e)
    }
}

fn quantization_of(precision: WirePrecision) -> Option<Quantization> {
    match precision {
        WirePrecision::F32 => None,
        WirePrecision::U16 => Some(Quantization::U16),
        WirePrecision::I8 => Some(Quantization::I8),
    }
}

/// Rank-2 view for per-column quantisation: rank-2 tensors quantise
/// column-wise as-is; anything else flattens to a single column.
fn rank2_view(t: &Tensor) -> Result<Tensor, TensorError> {
    if t.rank() == 2 {
        Ok(t.clone())
    } else {
        t.reshape([t.len(), 1])
    }
}

// ---------------------------------------------------------------------
// Tensor sections
// ---------------------------------------------------------------------

/// Writes one tensor section: rank, dims, then values — raw `f32` bits
/// at `F32`, a [`QuantizedMatrix`] wire section otherwise.
fn write_tensor(w: &mut WireWriter, t: &Tensor, precision: WirePrecision) -> Result<(), CodecError> {
    w.u64(t.rank() as u64);
    for &d in t.shape().dims() {
        w.u64(d as u64);
    }
    match quantization_of(precision) {
        None => {
            for &v in t.as_slice() {
                w.f32(v);
            }
        }
        Some(mode) => {
            QuantizedMatrix::encode(&rank2_view(t)?, mode)?.to_wire(w);
        }
    }
    Ok(())
}

/// Reads one tensor section written by [`write_tensor`].
fn read_tensor(r: &mut WireReader<'_>, precision: WirePrecision) -> Result<Tensor, CodecError> {
    let rank = r.len_for("tensor rank", 8)?;
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(r.u64()? as usize);
    }
    let len: usize = dims.iter().product();
    let t = match quantization_of(precision) {
        None => {
            if r.remaining() < len * 4 {
                return Err(WireError::LengthOverflow {
                    context: "tensor values",
                    announced: len as u64,
                }
                .into());
            }
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(r.f32()?);
            }
            Tensor::from_vec(data, dims.clone())?
        }
        Some(_) => {
            let q = QuantizedMatrix::from_wire(r)?;
            if q.rows() * q.cols() != len {
                return Err(CodecError::Structure {
                    detail: format!(
                        "quantised section holds {} values, dims {:?} need {len}",
                        q.rows() * q.cols(),
                        dims
                    ),
                });
            }
            q.decode().reshape(dims.clone())?
        }
    };
    Ok(t)
}

fn write_checkpoint(w: &mut WireWriter, c: &Checkpoint, precision: WirePrecision) -> Result<(), CodecError> {
    w.u32(c.version);
    w.u64(c.params.len() as u64);
    for p in &c.params {
        write_tensor(w, p, precision)?;
    }
    Ok(())
}

fn read_checkpoint(r: &mut WireReader<'_>, precision: WirePrecision) -> Result<Checkpoint, CodecError> {
    let version = r.u32()?;
    let n = r.len_for("checkpoint tensors", 8)?;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        params.push(read_tensor(r, precision)?);
    }
    Ok(Checkpoint {
        version,
        shapes: params.iter().map(|p| p.shape().dims().to_vec()).collect(),
        params,
    })
}

// ---------------------------------------------------------------------
// Deployment payloads
// ---------------------------------------------------------------------

/// Encodes a deployment at `precision`. Tensor sections (checkpoint
/// parameters, exemplar features, shipped prototypes) follow the
/// precision; the normaliser and config are always bit-exact — they are
/// tiny and getting them wrong corrupts every downstream feature.
pub fn encode_deployment(d: &Deployment, precision: WirePrecision) -> Result<Vec<u8>, CodecError> {
    let mut w = WireWriter::with_magic(DEPLOYMENT_MAGIC);
    w.u8(precision.tag());
    write_checkpoint(&mut w, &d.checkpoint, precision)?;
    // Support set.
    let labels = d.support.labels();
    w.u64(labels.len() as u64);
    for label in labels {
        w.u64(label as u64);
        let features = d.support.class(label).ok_or_else(|| CodecError::Structure {
            detail: format!("support label {label} vanished during encode"),
        })?;
        write_tensor(&mut w, features, precision)?;
    }
    // Shipped prototypes.
    match &d.prototypes {
        None => w.u8(0),
        Some(p) => {
            w.u8(1);
            w.u64(p.labels.len() as u64);
            for &l in &p.labels {
                w.u64(l as u64);
            }
            write_tensor(&mut w, &p.matrix, precision)?;
        }
    }
    // Normaliser (always exact).
    w.u64(d.normalizer.dim() as u64);
    for &m in d.normalizer.mean() {
        w.f32(m);
    }
    for &s in d.normalizer.std() {
        w.f32(s);
    }
    write_config(&mut w, &d.config);
    Ok(w.into_bytes())
}

/// Decodes a deployment payload. The result is what the device installs:
/// at quantised precisions the checkpoint, exemplars and prototypes carry
/// real reconstruction error.
pub fn decode_deployment(bytes: &[u8]) -> Result<Deployment, CodecError> {
    let mut r = WireReader::with_magic(bytes, DEPLOYMENT_MAGIC)?;
    let precision = WirePrecision::from_tag(r.u8()?)?;
    let checkpoint = read_checkpoint(&mut r, precision)?;
    let n_classes = r.len_for("support classes", 8)?;
    let mut support = SupportSet::new();
    for _ in 0..n_classes {
        let label = r.u64()? as usize;
        let features = read_tensor(&mut r, precision)?;
        support.put_class(label, features);
    }
    let prototypes = match r.u8()? {
        0 => None,
        1 => {
            let n = r.len_for("prototype labels", 8)?;
            let mut labels = Vec::with_capacity(n);
            for _ in 0..n {
                labels.push(r.u64()? as usize);
            }
            let matrix = read_tensor(&mut r, precision)?;
            Some(ShippedPrototypes { labels, matrix })
        }
        tag => return Err(WireError::BadTag { context: "prototype presence", tag }.into()),
    };
    let dim = r.len_for("normalizer columns", 8)?;
    let mut mean = Vec::with_capacity(dim);
    for _ in 0..dim {
        mean.push(r.f32()?);
    }
    let mut std = Vec::with_capacity(dim);
    for _ in 0..dim {
        std.push(r.f32()?);
    }
    let normalizer = Normalizer::from_parts(mean, std)
        .map_err(|e| CodecError::Structure { detail: e.to_string() })?;
    let config = read_config(&mut r)?;
    r.finish()?;
    Ok(Deployment { checkpoint, support, normalizer, config, prototypes })
}

/// Exact byte count [`encode_deployment`] produces for `d` at
/// `precision` — the number the link model is charged with.
pub fn deployment_wire_bytes(d: &Deployment, precision: WirePrecision) -> Result<u64, CodecError> {
    Ok(encode_deployment(d, precision)?.len() as u64)
}

fn write_config(w: &mut WireWriter, cfg: &PiloteConfig) {
    w.u64(cfg.net.input_dim as u64);
    w.u64(cfg.net.hidden.len() as u64);
    for &h in &cfg.net.hidden {
        w.u64(h as u64);
    }
    w.u64(cfg.net.embedding_dim as u64);
    w.f32(cfg.alpha);
    w.f32(cfg.margin);
    w.u8(match cfg.contrastive_form {
        ContrastiveForm::SquaredMargin => 0,
        ContrastiveForm::Hadsell => 1,
    });
    w.f32(cfg.initial_lr);
    w.u64(cfg.lr_halve_every as u64);
    w.u64(cfg.distill_batch as u64);
    w.u64(cfg.max_epochs as u64);
    w.u64(cfg.pair_batch as u64);
    w.u64(cfg.pairs_per_sample as u64);
    w.f32(cfg.val_fraction);
    w.f32(cfg.early_stop_threshold);
    w.u64(cfg.early_stop_patience as u64);
    w.u64(cfg.seed);
}

fn read_config(r: &mut WireReader<'_>) -> Result<PiloteConfig, CodecError> {
    let input_dim = r.u64()? as usize;
    let n_hidden = r.len_for("hidden layers", 8)?;
    let mut hidden = Vec::with_capacity(n_hidden);
    for _ in 0..n_hidden {
        hidden.push(r.u64()? as usize);
    }
    let embedding_dim = r.u64()? as usize;
    let alpha = r.f32()?;
    let margin = r.f32()?;
    let contrastive_form = match r.u8()? {
        0 => ContrastiveForm::SquaredMargin,
        1 => ContrastiveForm::Hadsell,
        tag => return Err(WireError::BadTag { context: "ContrastiveForm", tag }.into()),
    };
    Ok(PiloteConfig {
        net: NetConfig { input_dim, hidden, embedding_dim },
        alpha,
        margin,
        contrastive_form,
        initial_lr: r.f32()?,
        lr_halve_every: r.u64()? as usize,
        distill_batch: r.u64()? as usize,
        max_epochs: r.u64()? as usize,
        pair_batch: r.u64()? as usize,
        pairs_per_sample: r.u64()? as usize,
        val_fraction: r.f32()?,
        early_stop_threshold: r.f32()?,
        early_stop_patience: r.u64()? as usize,
        seed: r.u64()?,
    })
}

// ---------------------------------------------------------------------
// Federated round payloads
// ---------------------------------------------------------------------

const ROUND_FULL: u8 = 0;
const ROUND_DELTA: u8 = 1;

/// Encodes a full checkpoint round payload at `precision`.
pub fn encode_round_full(target: &Checkpoint, precision: WirePrecision) -> Result<Vec<u8>, CodecError> {
    let mut w = WireWriter::with_magic(ROUND_MAGIC);
    w.u8(precision.tag());
    w.u8(ROUND_FULL);
    write_checkpoint(&mut w, target, precision)?;
    Ok(w.into_bytes())
}

/// Encodes a delta round payload: per-layer diffs of `target` against
/// `base`, tagged with `base_generation` (the round both ends committed).
///
/// At `F32`, changed layers ship their raw target bits — the decoded
/// checkpoint is bitwise identical to `target`. At `U16`/`I8` the
/// *arithmetic diff* `target − base` is quantised: between consecutive
/// rounds diffs span a range orders of magnitude tighter than raw
/// weights, so the affine step — `range / 255` for i8 — is
/// correspondingly finer. That compounding is the whole point of
/// delta + quantisation.
pub fn encode_round_delta(
    base: &Checkpoint,
    target: &Checkpoint,
    base_generation: u64,
    precision: WirePrecision,
) -> Result<Vec<u8>, CodecError> {
    let delta = CheckpointDelta::diff(base, target, base_generation)?;
    let mut w = WireWriter::with_magic(ROUND_MAGIC);
    w.u8(precision.tag());
    w.u8(ROUND_DELTA);
    w.u64(delta.base_generation);
    w.u32(delta.version);
    w.u64(delta.layers.len() as u64);
    for (layer, b) in delta.layers.iter().zip(&base.params) {
        match layer {
            None => w.u8(0),
            Some(t) => {
                w.u8(1);
                match quantization_of(precision) {
                    None => write_tensor(&mut w, t, precision)?,
                    Some(mode) => {
                        let diff: Vec<f32> = t
                            .as_slice()
                            .iter()
                            .zip(b.as_slice())
                            .map(|(next, prev)| next - prev)
                            .collect();
                        let diff = Tensor::from_vec(diff, t.shape().dims().to_vec())?;
                        w.u64(diff.rank() as u64);
                        for &d in diff.shape().dims() {
                            w.u64(d as u64);
                        }
                        QuantizedMatrix::encode(&rank2_view(&diff)?, mode)?.to_wire(&mut w);
                    }
                }
            }
        }
    }
    Ok(w.into_bytes())
}

/// Decodes a round payload into the checkpoint it carries.
///
/// `base` is the receiver's committed broadcast and its generation; a
/// delta payload fails with [`CodecError::MissingBase`] when the receiver
/// holds none, or [`DeltaError::GenerationMismatch`] (wrapped) when the
/// generations disagree — the typed signals for "request a full payload
/// instead". Full payloads ignore `base`.
pub fn decode_round(
    bytes: &[u8],
    base: Option<(&Checkpoint, u64)>,
) -> Result<Checkpoint, CodecError> {
    let mut r = WireReader::with_magic(bytes, ROUND_MAGIC)?;
    let precision = WirePrecision::from_tag(r.u8()?)?;
    let kind = r.u8()?;
    let out = match kind {
        ROUND_FULL => read_checkpoint(&mut r, precision)?,
        ROUND_DELTA => {
            let (base, held_generation) = base.ok_or(CodecError::MissingBase)?;
            let base_generation = r.u64()?;
            let version = r.u32()?;
            let n = r.len_for("delta layers", 1)?;
            if base_generation != held_generation {
                return Err(DeltaError::GenerationMismatch {
                    expected: base_generation,
                    found: held_generation,
                }
                .into());
            }
            if n != base.params.len() {
                return Err(DeltaError::StructureMismatch {
                    detail: format!("payload has {n} layers, base has {}", base.params.len()),
                }
                .into());
            }
            let mut layers = Vec::with_capacity(n);
            for i in 0..n {
                match r.u8()? {
                    0 => layers.push(None),
                    1 => {
                        let section = read_tensor(&mut r, precision)?;
                        let value = match quantization_of(precision) {
                            // F32 ships the raw target bits.
                            None => section,
                            // Quantised modes ship the diff; rebuild the
                            // target from the receiver's base.
                            Some(_) => {
                                let b = &base.params[i];
                                if b.shape() != section.shape() {
                                    return Err(DeltaError::StructureMismatch {
                                        detail: format!(
                                            "layer {i}: diff {:?} vs base {:?}",
                                            section.shape().dims(),
                                            b.shape().dims()
                                        ),
                                    }
                                    .into());
                                }
                                let data: Vec<f32> = b
                                    .as_slice()
                                    .iter()
                                    .zip(section.as_slice())
                                    .map(|(prev, d)| prev + d)
                                    .collect();
                                Tensor::from_vec(data, b.shape().dims().to_vec())?
                            }
                        };
                        layers.push(Some(value));
                    }
                    tag => {
                        return Err(WireError::BadTag { context: "delta layer presence", tag }
                            .into())
                    }
                }
            }
            let delta = CheckpointDelta {
                version,
                base_generation,
                shapes: base.shapes.clone(),
                layers,
            };
            delta.apply(base, held_generation)?
        }
        tag => return Err(WireError::BadTag { context: "round payload kind", tag }.into()),
    };
    r.finish()?;
    Ok(out)
}

// ---------------------------------------------------------------------
// Telemetry payloads
// ---------------------------------------------------------------------

/// Encodes a telemetry snapshot (full or delta — both are
/// [`Snapshot`]s). Infallible: every field is a plain scalar or string.
pub fn encode_snapshot(s: &Snapshot) -> Vec<u8> {
    let mut w = WireWriter::with_magic(SNAPSHOT_MAGIC);
    w.u8(s.enabled as u8);
    w.u64(s.counters.len() as u64);
    for (name, &v) in &s.counters {
        w.str(name);
        w.u64(v);
    }
    w.u64(s.gauges.len() as u64);
    for (name, g) in &s.gauges {
        w.str(name);
        w.f64(g.last);
        w.f64(g.min);
        w.f64(g.max);
        w.u64(g.count);
    }
    w.u64(s.histograms.len() as u64);
    for (name, h) in &s.histograms {
        w.str(name);
        w.u64(h.bounds.len() as u64);
        for &b in &h.bounds {
            w.f64(b);
        }
        w.u64(h.counts.len() as u64);
        for &c in &h.counts {
            w.u64(c);
        }
        w.u64(h.nan);
    }
    w.u64(s.kernels.len() as u64);
    for (name, k) in &s.kernels {
        w.str(name);
        w.u64(k.dispatches);
        w.u64(k.flops);
    }
    write_spans(&mut w, &s.spans);
    w.into_bytes()
}

/// Decodes a telemetry snapshot payload.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, CodecError> {
    let mut r = WireReader::with_magic(bytes, SNAPSHOT_MAGIC)?;
    let enabled = match r.u8()? {
        0 => false,
        1 => true,
        tag => return Err(WireError::BadTag { context: "snapshot enabled", tag }.into()),
    };
    let mut s = Snapshot { enabled, ..Default::default() };
    let n = r.len_for("snapshot counters", 9)?;
    for _ in 0..n {
        let name = r.str()?;
        s.counters.insert(name, r.u64()?);
    }
    let n = r.len_for("snapshot gauges", 9)?;
    for _ in 0..n {
        let name = r.str()?;
        let g = GaugeSnapshot { last: r.f64()?, min: r.f64()?, max: r.f64()?, count: r.u64()? };
        s.gauges.insert(name, g);
    }
    let n = r.len_for("snapshot histograms", 9)?;
    for _ in 0..n {
        let name = r.str()?;
        let nb = r.len_for("histogram bounds", 8)?;
        let mut bounds = Vec::with_capacity(nb);
        for _ in 0..nb {
            bounds.push(r.f64()?);
        }
        let nc = r.len_for("histogram counts", 8)?;
        let mut counts = Vec::with_capacity(nc);
        for _ in 0..nc {
            counts.push(r.u64()?);
        }
        let nan = r.u64()?;
        s.histograms.insert(name, HistogramSnapshot { bounds, counts, nan });
    }
    let n = r.len_for("snapshot kernels", 9)?;
    for _ in 0..n {
        let name = r.str()?;
        let k = KernelStats { dispatches: r.u64()?, flops: r.u64()? };
        s.kernels.insert(name, k);
    }
    s.spans = read_spans(&mut r, 0)?;
    r.finish()?;
    Ok(s)
}

/// Exact byte count [`encode_snapshot`] produces — what telemetry
/// uploads charge the link with.
pub fn snapshot_wire_bytes(s: &Snapshot) -> u64 {
    encode_snapshot(s).len() as u64
}

// ---------------------------------------------------------------------
// Session-matrix payloads
// ---------------------------------------------------------------------

/// Encodes a session × task [`AccuracyMatrix`] (see
/// `pilote_core::session_metrics`): the task definitions (name + label
/// set) followed by every row's generation, per-task known flag and
/// per-task `f32` accuracy, bit-exact. Infallible: every field is a
/// plain scalar or string.
pub fn encode_session_matrix(m: &AccuracyMatrix) -> Vec<u8> {
    let mut w = WireWriter::with_magic(SESSION_MATRIX_MAGIC);
    w.u64(m.tasks().len() as u64);
    for task in m.tasks() {
        w.str(&task.name);
        w.u64(task.labels.len() as u64);
        for &label in &task.labels {
            w.u64(label as u64);
        }
    }
    w.u64(m.rows().len() as u64);
    for row in m.rows() {
        w.u64(row.generation);
        for (j, &acc) in row.accuracies.iter().enumerate() {
            w.u8(row.known[j] as u8);
            w.f32(acc);
        }
    }
    w.into_bytes()
}

/// Decodes a session-matrix payload, re-validating the row shape through
/// [`AccuracyMatrix::from_parts`].
pub fn decode_session_matrix(bytes: &[u8]) -> Result<AccuracyMatrix, CodecError> {
    let mut r = WireReader::with_magic(bytes, SESSION_MATRIX_MAGIC)?;
    let nt = r.len_for("session matrix tasks", 9)?;
    let mut tasks = Vec::with_capacity(nt);
    for _ in 0..nt {
        let name = r.str()?;
        let nl = r.len_for("task labels", 8)?;
        let mut labels = Vec::with_capacity(nl);
        for _ in 0..nl {
            labels.push(r.u64()? as usize);
        }
        tasks.push(TaskGroup { name, labels });
    }
    let nr = r.len_for("session matrix rows", 8)?;
    let mut rows = Vec::with_capacity(nr);
    for _ in 0..nr {
        let generation = r.u64()?;
        let mut accuracies = Vec::with_capacity(nt);
        let mut known = Vec::with_capacity(nt);
        for _ in 0..nt {
            known.push(match r.u8()? {
                0 => false,
                1 => true,
                tag => {
                    return Err(WireError::BadTag { context: "session known flag", tag }.into())
                }
            });
            accuracies.push(r.f32()?);
        }
        rows.push(SessionRecord { generation, accuracies, known });
    }
    r.finish()?;
    AccuracyMatrix::from_parts(tasks, rows)
        .map_err(|e| CodecError::Structure { detail: e.to_string() })
}

/// Exact byte count [`encode_session_matrix`] produces — what a matrix
/// upload charges the link with.
pub fn session_matrix_wire_bytes(m: &AccuracyMatrix) -> u64 {
    encode_session_matrix(m).len() as u64
}

fn write_spans(w: &mut WireWriter, spans: &[SpanNode]) {
    w.u64(spans.len() as u64);
    for span in spans {
        w.str(&span.name);
        w.u64(span.seq_open);
        w.u64(span.seq_close);
        w.u64(span.flops);
        w.u64(span.attrs.len() as u64);
        for (name, &v) in &span.attrs {
            w.str(name);
            w.f64(v);
        }
        write_spans(w, &span.children);
    }
}

fn read_spans(r: &mut WireReader<'_>, depth: usize) -> Result<Vec<SpanNode>, CodecError> {
    if depth > MAX_SPAN_DEPTH {
        return Err(CodecError::Structure {
            detail: format!("span tree deeper than {MAX_SPAN_DEPTH}"),
        });
    }
    let n = r.len_for("spans", 8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let seq_open = r.u64()?;
        let seq_close = r.u64()?;
        let flops = r.u64()?;
        let na = r.len_for("span attrs", 9)?;
        let mut attrs = std::collections::BTreeMap::new();
        for _ in 0..na {
            let attr = r.str()?;
            attrs.insert(attr, r.f64()?);
        }
        let children = read_spans(r, depth + 1)?;
        out.push(SpanNode { name, seq_open, seq_close, flops, attrs, children });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::CloudServer;
    use pilote_har_data::dataset::generate_features;
    use pilote_har_data::{Activity, Simulator};

    fn deployment() -> Deployment {
        let mut sim = Simulator::with_seed(17);
        let (data, norm) = generate_features(
            &mut sim,
            &[(Activity::Still, 40), (Activity::Walk, 40), (Activity::Run, 40)],
        )
        .expect("simulate");
        let server = CloudServer::new(data, norm, PiloteConfig::fast_test(3));
        let (d, _) = server
            .pretrain_and_package(&[Activity::Still.label(), Activity::Walk.label()], 10)
            .expect("package");
        d
    }

    #[test]
    fn f32_deployment_round_trips_bitwise() {
        let d = deployment();
        let bytes = encode_deployment(&d, WirePrecision::F32).unwrap();
        assert_eq!(bytes.len() as u64, deployment_wire_bytes(&d, WirePrecision::F32).unwrap());
        let back = decode_deployment(&bytes).unwrap();
        assert_eq!(back.checkpoint, d.checkpoint);
        assert_eq!(back.support, d.support);
        assert_eq!(back.prototypes, d.prototypes);
        assert_eq!(back.normalizer, d.normalizer);
        assert_eq!(back.config, d.config);
    }

    #[test]
    fn quantised_deployments_shrink_and_stay_close() {
        let d = deployment();
        let f32_bytes = deployment_wire_bytes(&d, WirePrecision::F32).unwrap();
        let u16_bytes = deployment_wire_bytes(&d, WirePrecision::U16).unwrap();
        let i8_bytes = deployment_wire_bytes(&d, WirePrecision::I8).unwrap();
        assert!(u16_bytes < f32_bytes);
        assert!(i8_bytes < u16_bytes);
        let back = decode_deployment(&encode_deployment(&d, WirePrecision::I8).unwrap()).unwrap();
        for (a, b) in back.checkpoint.params.iter().zip(&d.checkpoint.params) {
            assert_eq!(a.shape(), b.shape());
            assert!(a.max_abs_diff(b).unwrap().is_finite());
        }
        // The decoded package really is lossy — quantisation is not an
        // accounting fiction.
        assert_ne!(back.checkpoint, d.checkpoint);
    }

    #[test]
    fn f32_checkpoint_payload_matches_closed_form() {
        let d = deployment();
        let bytes = encode_round_full(&d.checkpoint, WirePrecision::F32).unwrap();
        // magic (4) + precision (1) + kind (1) + the closed form
        // `Checkpoint::wire_bytes` promises for the binary f32 layout.
        assert_eq!(bytes.len() as u64, 6 + d.checkpoint.wire_bytes());
    }

    #[test]
    fn f32_delta_round_trips_bitwise_and_elides_unchanged_layers() {
        let d = deployment();
        let base = d.checkpoint.clone();
        let mut target = base.clone();
        // Perturb a small layer (the first Dense bias) so the elision of
        // the large unchanged weight matrices dominates the payload.
        target.params[1].as_mut_slice()[7] += 0.25;
        let delta_bytes = encode_round_delta(&base, &target, 3, WirePrecision::F32).unwrap();
        let full_bytes = encode_round_full(&target, WirePrecision::F32).unwrap();
        assert!(delta_bytes.len() < full_bytes.len() / 2);
        let back = decode_round(&delta_bytes, Some((&base, 3))).unwrap();
        assert_eq!(back, target);
    }

    #[test]
    fn delta_against_wrong_generation_is_typed() {
        let d = deployment();
        let base = d.checkpoint.clone();
        let bytes = encode_round_delta(&base, &base, 5, WirePrecision::F32).unwrap();
        assert!(matches!(
            decode_round(&bytes, Some((&base, 4))),
            Err(CodecError::Delta(DeltaError::GenerationMismatch { expected: 5, found: 4 }))
        ));
        assert_eq!(decode_round(&bytes, None), Err(CodecError::MissingBase));
    }

    #[test]
    fn quantised_delta_rebuilds_near_target() {
        let d = deployment();
        let base = d.checkpoint.clone();
        let mut target = base.clone();
        for p in &mut target.params {
            for v in p.as_mut_slice() {
                *v += 0.01;
            }
        }
        let bytes = encode_round_delta(&base, &target, 1, WirePrecision::I8).unwrap();
        let back = decode_round(&bytes, Some((&base, 1))).unwrap();
        for (a, b) in back.params.iter().zip(&target.params) {
            // Diff range is ~0.01, so the i8 step is ~4e-5.
            assert!(a.max_abs_diff(b).unwrap() < 1e-3);
        }
        let full = encode_round_full(&target, WirePrecision::F32).unwrap();
        assert!(bytes.len() < full.len() / 3);
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let mut s = Snapshot { enabled: true, ..Default::default() };
        s.counters.insert("edge.inference".into(), 42);
        s.gauges.insert(
            "edge.clock_seconds".into(),
            GaugeSnapshot { last: 1.5, min: -0.0, max: f64::MAX, count: 3 },
        );
        let mut h = HistogramSnapshot::with_bounds(&[1.0, 10.0]);
        h.record(0.5);
        h.record(f64::NAN);
        s.histograms.insert("quality.margins".into(), h);
        s.kernels.insert("gemm".into(), KernelStats { dispatches: 9, flops: 1 << 40 });
        s.spans = vec![SpanNode {
            name: "serve".into(),
            seq_open: 1,
            seq_close: 4,
            flops: 77,
            attrs: [("windows".to_string(), 3.5)].into_iter().collect(),
            children: vec![SpanNode {
                name: "embed".into(),
                seq_open: 2,
                seq_close: 3,
                flops: 70,
                attrs: Default::default(),
                children: Vec::new(),
            }],
        }];
        let bytes = encode_snapshot(&s);
        assert_eq!(bytes.len() as u64, snapshot_wire_bytes(&s));
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back, s);
        // Binary is materially smaller than the JSON it replaces.
        let json_len = serde_json::to_string(&s).unwrap().len();
        assert!(bytes.len() < json_len);
    }

    #[test]
    fn session_matrix_round_trips_bitwise() {
        let mut m = AccuracyMatrix::new(vec![
            TaskGroup::new("base", &[0, 1]),
            TaskGroup::new("run", &[2]),
        ]);
        m.record(3, vec![0.9375, -1.0], vec![true, false]);
        m.record(4, vec![0.875, 0.75], vec![true, true]);
        let bytes = encode_session_matrix(&m);
        assert_eq!(bytes.len() as u64, session_matrix_wire_bytes(&m));
        let back = decode_session_matrix(&bytes).unwrap();
        assert_eq!(back, m);
        // Binary is materially smaller than the JSON it replaces.
        let json_len = serde_json::to_string(&m).unwrap().len();
        assert!(bytes.len() < json_len);
    }

    #[test]
    fn corrupt_session_matrix_payloads_are_typed_errors() {
        let m = AccuracyMatrix::new(vec![TaskGroup::new("base", &[0])]);
        let mut bytes = encode_session_matrix(&m);
        bytes[0] = b'X';
        assert!(matches!(
            decode_session_matrix(&bytes),
            Err(CodecError::Wire(WireError::BadMagic { .. }))
        ));
        assert!(matches!(
            decode_session_matrix(b"PWM1"),
            Err(CodecError::Wire(WireError::UnexpectedEof { .. }))
        ));
        // A bad known-flag tag is caught, not coerced.
        let mut m = AccuracyMatrix::new(vec![TaskGroup::new("base", &[0])]);
        m.record(1, vec![0.5], vec![true]);
        let mut bytes = encode_session_matrix(&m);
        let flag_at = bytes.len() - 5; // last row: u8 flag then f32 accuracy
        assert_eq!(bytes[flag_at], 1);
        bytes[flag_at] = 7;
        assert!(matches!(
            decode_session_matrix(&bytes),
            Err(CodecError::Wire(WireError::BadTag { context: "session known flag", .. }))
        ));
    }

    #[test]
    fn corrupt_payloads_are_typed_errors() {
        let d = deployment();
        let mut bytes = encode_deployment(&d, WirePrecision::F32).unwrap();
        assert!(matches!(
            decode_deployment(&bytes[..bytes.len() / 2]),
            Err(CodecError::Wire(_))
        ));
        bytes[0] = b'X';
        assert!(matches!(
            decode_deployment(&bytes),
            Err(CodecError::Wire(WireError::BadMagic { .. }))
        ));
        assert!(matches!(
            decode_snapshot(b"PWS1"),
            Err(CodecError::Wire(WireError::UnexpectedEof { .. }))
        ));
    }
}
