//! Self-healing fleet policy: the deterministic control loop that turns
//! [`pilote_core::QualityMonitor`] alerts into fleet actions.
//!
//! The paper's Q2 motivates on-device incremental learning precisely
//! because cloud round-trips are expensive — so a production fleet must
//! *autonomously* contain a device whose model is forgetting rather than
//! wait for an operator. The detectors exist (`core::quality`, PR 5) and
//! the actuators exist (FedAvg rounds, installs, rollback — PR 2/4/6);
//! this module closes the loop:
//!
//! 1. **Quarantine** — a device whose monitor fires a *triggering* rule
//!    (`forgetting` or `margin_collapse`; drift alone is advisory) is
//!    excluded from the next [`PolicyConfig::quarantine_rounds`] FedAvg
//!    rounds. It still receives staged installs, and the exclusion is
//!    logged with the typed
//!    [`crate::events::ExclusionReason::Quarantined`] reason.
//! 2. **Repair escalation** — each *new* triggering alert bumps the
//!    device's strike count and walks PR 2's resilience ladder, now
//!    driven by model quality instead of crashes: strike 1 rolls back to
//!    the device's last-good snapshot, strike 2 re-anchors from the cloud
//!    package, strike 3 degrades to the frozen pre-trained deployment.
//! 3. **Staged rollouts** — federated installs (and deployment rollouts)
//!    proceed canary → cohort → fleet over a hash-routed, deterministic
//!    [`StagePlan`]. After each stage installs and samples, the stage's
//!    triggering-alert rate is compared against that stage's historical
//!    baseline; exceeding it by [`PolicyConfig::halt_margin`] halts the
//!    rollout, restores the stage's pre-install snapshots, and screens
//!    every contributor for silent poison (a generation that moved
//!    without being sampled).
//! 4. **Adaptive thresholds** — per-device
//!    [`pilote_core::AdaptiveThresholds`] derivation lives in
//!    `core::quality`; the fleet arms it via
//!    [`crate::fleet::Fleet::set_adaptive_thresholds`].
//!
//! Every decision here is a pure function of alert history, the stage
//! plan and the config — no randomness beyond the seeded stage hash, no
//! wall clock — so two runs (at any `PILOTE_THREADS`) make byte-identical
//! decisions. The orchestration that *applies* the decisions lives in
//! [`crate::fleet::Fleet::federated_round`] and
//! [`crate::fleet::Fleet::rollout_deployment`]; see `docs/POLICY.md` for
//! the full state machine.

use crate::fleet::splitmix64;
use pilote_core::{AlertRule, QualityAlert, QualityReport};
use serde::{Deserialize, Serialize};

/// Domain-separation constant for the stage-assignment hash, so stage
/// membership is decorrelated from session routing under the same seed.
const STAGE_HASH_SALT: u64 = 0x57a6_e5a1;

/// Tuning knobs for the self-healing control loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Completed FedAvg rounds a newly quarantined device sits out
    /// (halted rounds do not count down — nothing was installed).
    pub quarantine_rounds: usize,
    /// Fraction of the roster in the canary stage (at least one device).
    pub canary_fraction: f64,
    /// Fraction of the roster in the cohort stage; the remainder is the
    /// fleet stage.
    pub cohort_fraction: f64,
    /// How far a stage's triggering-alert rate may exceed its historical
    /// baseline rate before the rollout halts (absolute rate margin).
    pub halt_margin: f64,
    /// Absolute screening floor: a device whose probe old-class accuracy
    /// sits more than this below its *armed baseline* (its first quality
    /// report) is treated as triggering even when no alert fired. The
    /// forgetting rule measures the drop versus the previous observation,
    /// so a device that was already broken when last sampled — e.g. a
    /// halted canary restored to its own silently-poisoned snapshot —
    /// shows a forgetting of zero forever; this floor is what breaks that
    /// masking loop.
    pub screening_accuracy_drop: f32,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            quarantine_rounds: 2,
            canary_fraction: 0.2,
            cohort_fraction: 0.3,
            halt_margin: 0.25,
            screening_accuracy_drop: 0.2,
        }
    }
}

/// The three rollout stages, in install order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RolloutStage {
    /// The small first wave — the blast-radius probe.
    Canary,
    /// The mid-size second wave.
    Cohort,
    /// Everyone else.
    Fleet,
}

impl RolloutStage {
    /// All stages in install order.
    pub const ALL: [RolloutStage; 3] =
        [RolloutStage::Canary, RolloutStage::Cohort, RolloutStage::Fleet];

    /// Stable machine-readable stage name (used in events and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            RolloutStage::Canary => "canary",
            RolloutStage::Cohort => "cohort",
            RolloutStage::Fleet => "fleet",
        }
    }

    fn index(&self) -> usize {
        match self {
            RolloutStage::Canary => 0,
            RolloutStage::Cohort => 1,
            RolloutStage::Fleet => 2,
        }
    }
}

/// Deterministic stage membership: device indices hash-routed into
/// canary/cohort/fleet waves, each wave sorted ascending so installs walk
/// in device-index order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagePlan {
    /// Canary-stage device indices (never empty).
    pub canary: Vec<usize>,
    /// Cohort-stage device indices.
    pub cohort: Vec<usize>,
    /// Fleet-stage device indices.
    pub fleet: Vec<usize>,
}

impl StagePlan {
    fn build(devices: usize, seed: u64, config: &PolicyConfig) -> StagePlan {
        let mut order: Vec<usize> = (0..devices).collect();
        // Hash-routed assignment: sort by a salted per-device hash (index
        // as tiebreak), then cut the waves off the front. Pure function
        // of (seed, roster size) — stable for the fleet's lifetime.
        order.sort_by_key(|&i| (splitmix64(seed ^ STAGE_HASH_SALT ^ i as u64), i));
        let canary_n =
            (((devices as f64) * config.canary_fraction).round() as usize).clamp(1, devices);
        let cohort_n = (((devices as f64) * config.cohort_fraction).round() as usize)
            .min(devices - canary_n);
        let mut canary: Vec<usize> = order[..canary_n].to_vec();
        let mut cohort: Vec<usize> = order[canary_n..canary_n + cohort_n].to_vec();
        let mut fleet: Vec<usize> = order[canary_n + cohort_n..].to_vec();
        canary.sort_unstable();
        cohort.sort_unstable();
        fleet.sort_unstable();
        StagePlan { canary, cohort, fleet }
    }

    /// Device indices of one stage, ascending.
    pub fn stage(&self, stage: RolloutStage) -> &[usize] {
        match stage {
            RolloutStage::Canary => &self.canary,
            RolloutStage::Cohort => &self.cohort,
            RolloutStage::Fleet => &self.fleet,
        }
    }
}

/// A device's standing with the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceHealth {
    /// Contributing and receiving normally.
    Healthy,
    /// Excluded from the next `rounds_left` completed FedAvg rounds; still
    /// receives staged installs.
    Quarantined {
        /// Completed rounds left to sit out.
        rounds_left: usize,
    },
    /// Third strike: frozen on the pre-trained deployment. Terminal —
    /// neither contributes nor receives.
    Degraded,
}

/// The repair the escalation ladder prescribes for a strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairAction {
    /// Strike 1: restore the device's last-good snapshot.
    Rollback,
    /// Strike 2: re-install the cloud anchor package.
    Reanchor,
    /// Strike 3: freeze on the pre-trained deployment.
    Degrade,
}

/// Per-stage alert-rate history: the baseline a new stage install is
/// judged against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct StageBaseline {
    /// Triggering alerts across past non-halted installs of this stage.
    alerts: u64,
    /// Devices installed across those stages.
    installed: u64,
}

impl StageBaseline {
    fn rate(&self) -> f64 {
        if self.installed == 0 {
            0.0
        } else {
            self.alerts as f64 / self.installed as f64
        }
    }
}

/// Counts for reports — the policy's own telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicySummary {
    /// Roster size.
    pub devices: usize,
    /// Devices currently [`DeviceHealth::Healthy`].
    pub healthy: usize,
    /// Devices currently [`DeviceHealth::Quarantined`].
    pub quarantined: usize,
    /// Devices currently [`DeviceHealth::Degraded`].
    pub degraded: usize,
    /// Quarantine entries (including escalations of an active quarantine).
    pub quarantines: u64,
    /// Quarantines served out and lifted.
    pub lifts: u64,
    /// Strike-1 rollback repairs.
    pub rollbacks: u64,
    /// Strike-2 cloud re-anchor repairs.
    pub reanchors: u64,
    /// Strike-3 degradations.
    pub degrades: u64,
    /// Stage installs halted and rolled back.
    pub halts: u64,
    /// Policied FedAvg rounds that completed all stages.
    pub rounds_completed: u64,
    /// Policied FedAvg rounds halted mid-rollout.
    pub rounds_halted: u64,
}

/// The control-loop state for one fleet (see the module docs). Decisions
/// only — the [`crate::fleet::Fleet`] owns the devices and applies them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetPolicy {
    config: PolicyConfig,
    plan: StagePlan,
    health: Vec<DeviceHealth>,
    strikes: Vec<u32>,
    /// Per-device count of quality reports the control loop has already
    /// inspected; anything past it is "new" at the next control step.
    seen_reports: Vec<usize>,
    baselines: [StageBaseline; 3],
    quarantines: u64,
    lifts: u64,
    rollbacks: u64,
    reanchors: u64,
    degrades: u64,
    halts: u64,
    rounds_completed: u64,
    rounds_halted: u64,
}

impl FleetPolicy {
    /// A policy over a roster of `devices`, with stage membership derived
    /// from `seed` (use the fleet's own seed so one seed fixes routing
    /// *and* staging).
    pub fn new(config: PolicyConfig, devices: usize, seed: u64) -> FleetPolicy {
        assert!(devices > 0, "a policy needs at least one device");
        let plan = StagePlan::build(devices, seed, &config);
        FleetPolicy {
            config,
            plan,
            health: vec![DeviceHealth::Healthy; devices],
            strikes: vec![0; devices],
            seen_reports: vec![0; devices],
            baselines: [StageBaseline::default(); 3],
            quarantines: 0,
            lifts: 0,
            rollbacks: 0,
            reanchors: 0,
            degrades: 0,
            halts: 0,
            rounds_completed: 0,
            rounds_halted: 0,
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &PolicyConfig {
        &self.config
    }

    /// The deterministic stage plan.
    pub fn plan(&self) -> &StagePlan {
        &self.plan
    }

    /// A device's current standing.
    pub fn health(&self, index: usize) -> DeviceHealth {
        self.health[index]
    }

    /// A device's lifetime strike count.
    pub fn strikes(&self, index: usize) -> u32 {
        self.strikes[index]
    }

    /// Whether a device's parameters may enter the next average.
    pub fn contributes(&self, index: usize) -> bool {
        matches!(self.health[index], DeviceHealth::Healthy)
    }

    /// Whether a device receives staged installs (everyone but the
    /// degraded).
    pub fn receives(&self, index: usize) -> bool {
        !matches!(self.health[index], DeviceHealth::Degraded)
    }

    /// The first *triggering* alert in a report — `forgetting` or
    /// `margin_collapse`. Drift alone never triggers repair: prototypes
    /// legitimately jump on rollbacks and re-anchors.
    pub fn triggering_alert(report: &QualityReport) -> Option<&QualityAlert> {
        report
            .alerts
            .iter()
            .find(|a| matches!(a.rule, AlertRule::Forgetting | AlertRule::MarginCollapse))
    }

    /// Judges one not-yet-inspected report: a triggering alert wins;
    /// otherwise the absolute screening floor
    /// ([`PolicyConfig::screening_accuracy_drop`]) against the device's
    /// armed-baseline accuracy catches a model that was *already* broken
    /// at its previous observation and therefore shows zero incremental
    /// forgetting. Returns the rule name driving the repair.
    pub fn judge(&self, report: &QualityReport, baseline_accuracy: Option<f32>) -> Option<String> {
        if let Some(alert) = FleetPolicy::triggering_alert(report) {
            return Some(alert.rule.name().to_string());
        }
        match baseline_accuracy {
            Some(base)
                if report.old_class_accuracy < base - self.config.screening_accuracy_drop =>
            {
                Some("screening_floor".to_string())
            }
            _ => None,
        }
    }

    /// The reports of `reports` the control loop has not inspected yet.
    pub fn unseen_reports<'a>(
        &self,
        index: usize,
        reports: &'a [QualityReport],
    ) -> &'a [QualityReport] {
        &reports[self.seen_reports[index].min(reports.len())..]
    }

    /// Marks the first `len` reports of a device as inspected.
    pub fn mark_seen(&mut self, index: usize, len: usize) {
        self.seen_reports[index] = self.seen_reports[index].max(len);
    }

    /// Registers a new triggering alert on a device: bumps its strike,
    /// (re-)enters quarantine with a full [`PolicyConfig::quarantine_rounds`]
    /// sentence, and returns the repair the ladder prescribes. Idempotent
    /// on a degraded device (already at the terminal rung).
    pub fn escalate(&mut self, index: usize) -> RepairAction {
        if matches!(self.health[index], DeviceHealth::Degraded) {
            return RepairAction::Degrade;
        }
        self.strikes[index] += 1;
        self.quarantines += 1;
        let action = match self.strikes[index] {
            1 => RepairAction::Rollback,
            2 => RepairAction::Reanchor,
            _ => RepairAction::Degrade,
        };
        match action {
            RepairAction::Rollback => self.rollbacks += 1,
            RepairAction::Reanchor => self.reanchors += 1,
            RepairAction::Degrade => self.degrades += 1,
        }
        self.health[index] = if action == RepairAction::Degrade {
            DeviceHealth::Degraded
        } else {
            DeviceHealth::Quarantined { rounds_left: self.config.quarantine_rounds }
        };
        action
    }

    /// Judges one finished stage install: `alerts` triggering alerts
    /// across `installed` devices, against the stage's historical
    /// baseline rate. Returns `true` when the rollout must halt. A
    /// non-halted stage folds into the baseline; a halted one does not
    /// (a poisoned wave must not inflate future tolerance).
    pub fn stage_completed(
        &mut self,
        stage: RolloutStage,
        installed: usize,
        alerts: u64,
    ) -> bool {
        if installed == 0 {
            return false;
        }
        let baseline = &mut self.baselines[stage.index()];
        let rate = alerts as f64 / installed as f64;
        let halted = rate > baseline.rate() + self.config.halt_margin;
        if halted {
            self.halts += 1;
        } else {
            baseline.alerts += alerts;
            baseline.installed += installed as u64;
        }
        halted
    }

    /// Closes a fully completed round: counts it, serves one round of
    /// every quarantine sentence, and returns the `(device, strikes)`
    /// pairs whose quarantine just lifted (health back to Healthy;
    /// strikes persist, so a relapse escalates rather than restarts).
    pub fn finish_round(&mut self) -> Vec<(usize, u32)> {
        self.rounds_completed += 1;
        let mut lifted = Vec::new();
        for (index, health) in self.health.iter_mut().enumerate() {
            if let DeviceHealth::Quarantined { rounds_left } = health {
                *rounds_left = rounds_left.saturating_sub(1);
                if *rounds_left == 0 {
                    *health = DeviceHealth::Healthy;
                    self.lifts += 1;
                    lifted.push((index, self.strikes[index]));
                }
            }
        }
        lifted
    }

    /// Counts a round that halted mid-rollout (quarantine sentences do
    /// not advance — nothing completed).
    pub fn note_halted_round(&mut self) {
        self.rounds_halted += 1;
    }

    /// Snapshot of the policy's counters and current health tallies.
    pub fn summary(&self) -> PolicySummary {
        let mut healthy = 0;
        let mut quarantined = 0;
        let mut degraded = 0;
        for h in &self.health {
            match h {
                DeviceHealth::Healthy => healthy += 1,
                DeviceHealth::Quarantined { .. } => quarantined += 1,
                DeviceHealth::Degraded => degraded += 1,
            }
        }
        PolicySummary {
            devices: self.health.len(),
            healthy,
            quarantined,
            degraded,
            quarantines: self.quarantines,
            lifts: self.lifts,
            rollbacks: self.rollbacks,
            reanchors: self.reanchors,
            degrades: self.degrades,
            halts: self.halts,
            rounds_completed: self.rounds_completed,
            rounds_halted: self.rounds_halted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_plan_partitions_the_roster_deterministically() {
        let config = PolicyConfig::default();
        let a = StagePlan::build(10, 42, &config);
        let b = StagePlan::build(10, 42, &config);
        assert_eq!(a, b, "same seed must give the same plan");
        assert_ne!(
            a,
            StagePlan::build(10, 43, &config),
            "a different seed should (here) reshuffle the stages"
        );
        // Exact partition: every index exactly once, waves sized by the
        // configured fractions (canary 2, cohort 3, fleet 5 for n=10).
        assert_eq!(a.canary.len(), 2);
        assert_eq!(a.cohort.len(), 3);
        assert_eq!(a.fleet.len(), 5);
        let mut all: Vec<usize> =
            a.canary.iter().chain(&a.cohort).chain(&a.fleet).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        // Waves install in device-index order.
        assert!(a.canary.windows(2).all(|w| w[0] < w[1]));
        assert!(a.fleet.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn tiny_roster_still_gets_a_canary() {
        let plan = StagePlan::build(1, 7, &PolicyConfig::default());
        assert_eq!(plan.canary, vec![0]);
        assert!(plan.cohort.is_empty());
        assert!(plan.fleet.is_empty());
    }

    #[test]
    fn escalation_walks_the_resilience_ladder() {
        let mut policy = FleetPolicy::new(PolicyConfig::default(), 3, 1);
        assert!(policy.contributes(0));
        assert_eq!(policy.escalate(0), RepairAction::Rollback);
        assert_eq!(policy.health(0), DeviceHealth::Quarantined { rounds_left: 2 });
        assert!(!policy.contributes(0));
        assert!(policy.receives(0), "quarantined devices still receive installs");
        assert_eq!(policy.escalate(0), RepairAction::Reanchor);
        assert_eq!(
            policy.health(0),
            DeviceHealth::Quarantined { rounds_left: 2 },
            "escalation restarts the sentence"
        );
        assert_eq!(policy.escalate(0), RepairAction::Degrade);
        assert_eq!(policy.health(0), DeviceHealth::Degraded);
        assert!(!policy.receives(0), "degraded devices receive nothing");
        // Terminal rung is idempotent.
        assert_eq!(policy.escalate(0), RepairAction::Degrade);
        assert_eq!(policy.strikes(0), 3);
        let summary = policy.summary();
        assert_eq!(summary.quarantines, 3);
        assert_eq!((summary.rollbacks, summary.reanchors, summary.degrades), (1, 1, 1));
        assert_eq!((summary.healthy, summary.quarantined, summary.degraded), (2, 0, 1));
    }

    #[test]
    fn quarantine_lifts_after_serving_completed_rounds() {
        let mut policy = FleetPolicy::new(PolicyConfig::default(), 2, 1);
        policy.escalate(1);
        assert!(policy.finish_round().is_empty(), "one round served, one to go");
        // A halted round does not advance the sentence.
        policy.note_halted_round();
        assert_eq!(policy.health(1), DeviceHealth::Quarantined { rounds_left: 1 });
        let lifted = policy.finish_round();
        assert_eq!(lifted, vec![(1, 1)], "sentence served; strikes persist");
        assert_eq!(policy.health(1), DeviceHealth::Healthy);
        assert!(policy.contributes(1));
        let summary = policy.summary();
        assert_eq!(summary.lifts, 1);
        assert_eq!(summary.rounds_completed, 2);
        assert_eq!(summary.rounds_halted, 1);
    }

    #[test]
    fn stage_halts_against_its_rolling_baseline() {
        let mut policy = FleetPolicy::new(PolicyConfig::default(), 8, 1);
        // Clean history: two alert-free canary installs.
        assert!(!policy.stage_completed(RolloutStage::Canary, 2, 0));
        assert!(!policy.stage_completed(RolloutStage::Canary, 2, 0));
        // Rate 0.5 > baseline 0 + margin 0.25 → halt; and the poisoned
        // wave must not pollute the baseline.
        assert!(policy.stage_completed(RolloutStage::Canary, 2, 1));
        assert!(
            policy.stage_completed(RolloutStage::Canary, 2, 1),
            "an identical second spike must still halt (baseline unchanged)"
        );
        // Other stages keep independent baselines.
        assert!(!policy.stage_completed(RolloutStage::Fleet, 4, 1));
        assert_eq!(policy.summary().halts, 2);
        // Empty stages never halt.
        assert!(!policy.stage_completed(RolloutStage::Cohort, 0, 0));
    }

    #[test]
    fn policy_serde_round_trips() {
        let mut policy = FleetPolicy::new(PolicyConfig::default(), 5, 9);
        policy.escalate(2);
        policy.stage_completed(RolloutStage::Canary, 1, 1);
        policy.finish_round();
        let json = serde_json::to_string(&policy).expect("serialise");
        let back: FleetPolicy = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, policy);
        let summary_json = serde_json::to_string(&policy.summary()).expect("summary");
        let summary: PolicySummary =
            serde_json::from_str(&summary_json).expect("deserialise summary");
        assert_eq!(summary, policy.summary());
    }
}
