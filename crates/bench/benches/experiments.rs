//! End-to-end benchmarks of the experiment building blocks: one
//! incremental-update epoch (the paper's "< 0.5 s per epoch" claim, Q2),
//! a full PILOTE edge update, and the exemplar-selection step — all at a
//! reduced scale so `cargo bench` completes in minutes on one core.

use criterion::{criterion_group, criterion_main, Criterion};
use pilote_bench::scenario::{build_scenario, pretrain_base, run_pilote, run_pretrained};
use pilote_bench::Scale;
use pilote_core::{Pilote, PiloteConfig, SelectionStrategy};
use pilote_har_data::Activity;
use std::hint::black_box;

fn bench_scale() -> Scale {
    Scale { per_activity: 120, rounds: 1, exemplars_per_class: 40, max_epochs: 3, ..Scale::default() }
}

fn bench_pilote_update(c: &mut Criterion) {
    let scale = bench_scale();
    let scenario = build_scenario(Activity::Run, &scale, 99);
    let base = pretrain_base(scenario, &scale, 99);
    let mut group = c.benchmark_group("edge_update");
    group.bench_function("pilote_update_40ex_3epochs", |b| {
        b.iter(|| {
            let mut m = base.model.clone_model();
            black_box(run_pilote(&mut m, &base.scenario, 40, 7));
        });
    });
    group.bench_function("pretrained_update_40ex", |b| {
        b.iter(|| {
            let mut m = base.model.clone_model();
            black_box(run_pretrained(&mut m, &base.scenario, 40, 7));
        });
    });
    group.finish();
}

fn bench_pretrain(c: &mut Criterion) {
    let scale = bench_scale();
    let scenario = build_scenario(Activity::Walk, &scale, 98);
    let mut group = c.benchmark_group("cloud_pretrain");
    group.bench_function("pretrain_4class_84per", |b| {
        b.iter(|| {
            let mut cfg = PiloteConfig::paper(1);
            cfg.max_epochs = 2;
            cfg.pairs_per_sample = 2;
            let (model, _) = Pilote::pretrain(
                cfg,
                &scenario.train_old,
                20,
                SelectionStrategy::Herding,
            )
            .unwrap();
            black_box(model);
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(8)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pilote_update, bench_pretrain
}
criterion_main!(benches);
