//! Micro-benchmarks of the kernels behind the paper's latency claims:
//! matrix multiplication (the embedding forward pass), feature extraction
//! (the linear-time preprocessing argument), herding selection, NCM
//! classification (per-window inference on the edge) and exemplar
//! quantisation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pilote_core::{select_exemplars, EmbeddingNet, NcmClassifier, NetConfig, SelectionStrategy};
use pilote_edge_sim::quantize::{Quantization, QuantizedMatrix};
use pilote_har_data::features::{extract, extract_batch};
use pilote_har_data::{Activity, Simulator};
use pilote_tensor::parallel::{self, ThreadConfig};
use pilote_tensor::{Rng64, Tensor};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = Rng64::new(1);
    for &(m, k, n) in &[(64usize, 80usize, 1024usize), (256, 1024, 512), (256, 128, 64)] {
        let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
        group.throughput(Throughput::Elements((2 * m * k * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(format!("{m}x{k}x{n}")), &(a, b), |bench, (a, b)| {
            bench.iter(|| black_box(a.matmul(b).unwrap()));
        });
    }
    group.finish();
}

fn bench_feature_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("features");
    let mut sim = Simulator::with_seed(2);
    let window = sim.window(Activity::Run);
    group.bench_function("extract_one_window", |b| {
        b.iter(|| black_box(extract(&window).unwrap()));
    });
    let raw = sim.raw_dataset(&[(Activity::Walk, 64)]);
    group.throughput(Throughput::Elements(64));
    group.bench_function("extract_batch_64", |b| {
        b.iter(|| black_box(extract_batch(&raw).unwrap()));
    });
    group.finish();
}

fn bench_embedding_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding_forward");
    let mut rng = Rng64::new(3);
    let mut net = EmbeddingNet::new(NetConfig::paper(), &mut rng);
    for &batch in &[1usize, 32, 256] {
        let x = Tensor::randn([batch, 80], 0.0, 1.0, &mut rng);
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &x, |b, x| {
            b.iter(|| black_box(net.embed(x)));
        });
    }
    group.finish();
}

fn bench_herding(c: &mut Criterion) {
    let mut group = c.benchmark_group("herding");
    let mut rng = Rng64::new(4);
    for &(n, m) in &[(500usize, 50usize), (500, 200)] {
        let emb = Tensor::randn([n, 128], 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_m{m}")), &emb, |b, emb| {
            let mut r = Rng64::new(5);
            b.iter(|| {
                black_box(select_exemplars(emb, m, SelectionStrategy::Herding, &mut r).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_ncm_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("ncm");
    let mut rng = Rng64::new(6);
    let mut clf = NcmClassifier::new(128);
    for label in 0..5 {
        clf.set_prototype(label, &Tensor::randn([128], 0.0, 1.0, &mut rng)).unwrap();
    }
    for &batch in &[1usize, 256] {
        let emb = Tensor::randn([batch, 128], 0.0, 1.0, &mut rng);
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &emb, |b, emb| {
            b.iter(|| black_box(clf.classify(emb).unwrap()));
        });
    }
    group.finish();
}

/// Thread-scaling sweep over the two anchor kernels of the parallel layer
/// (`docs/THREADING.md`): the 256×1024×512 training GEMM and NCM scoring of
/// 10 000 embeddings against 5 prototypes. Results are bitwise-identical at
/// every thread count; on a single-core host expect ratios ≤ 1.
fn bench_kernel_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    let mut rng = Rng64::new(8);
    let a = Tensor::randn([256, 1024], 0.0, 1.0, &mut rng);
    let b = Tensor::randn([1024, 512], 0.0, 1.0, &mut rng);
    let mut clf = NcmClassifier::new(128);
    for label in 0..5 {
        clf.set_prototype(label, &Tensor::randn([128], 0.0, 1.0, &mut rng)).unwrap();
    }
    let queries = Tensor::randn([10_000, 128], 0.0, 1.0, &mut rng);

    let saved = parallel::current();
    for threads in [1usize, 2, 4] {
        parallel::configure(ThreadConfig { num_threads: threads, ..saved });
        group.throughput(Throughput::Elements((2 * 256 * 1024 * 512) as u64));
        group.bench_with_input(
            BenchmarkId::new("gemm_256x1024x512", threads),
            &(&a, &b),
            |bench, (a, b)| {
                bench.iter(|| black_box(a.matmul(b).unwrap()));
            },
        );
        group.throughput(Throughput::Elements(10_000));
        group.bench_with_input(
            BenchmarkId::new("ncm_5x10000", threads),
            &queries,
            |bench, q| {
                bench.iter(|| black_box(clf.classify(q).unwrap()));
            },
        );
    }
    parallel::configure(saved);
    group.finish();
}

fn bench_quantize(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantize");
    let mut rng = Rng64::new(7);
    let data = Tensor::randn([800, 80], 0.0, 1.0, &mut rng);
    group.bench_function("encode_i8_800x80", |b| {
        b.iter(|| black_box(QuantizedMatrix::encode(&data, Quantization::I8).unwrap()));
    });
    let q = QuantizedMatrix::encode(&data, Quantization::I8).unwrap();
    group.bench_function("decode_i8_800x80", |b| {
        b.iter(|| black_box(q.decode()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul, bench_feature_extraction, bench_embedding_forward, bench_herding, bench_ncm_classify, bench_kernel_threads, bench_quantize
}
criterion_main!(benches);
