//! CLI contract tests for the `repro` binary: usage errors must exit with
//! status 2 and print a usage message listing every runner, so scripts and
//! CI can distinguish "bad invocation" from "experiment failed" (status 1).

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// Every runner the usage message must enumerate.
const RUNNERS: &[&str] =
    &[
        "all", "table2", "kernels", "faults", "obs", "fleet", "quality", "policy", "timing",
        "cloud-vs-edge", "wire", "scenarios", "index",
    ];

#[test]
fn unknown_experiment_prints_usage_and_exits_nonzero() {
    let output = repro().arg("no-such-experiment").output().expect("spawn repro");
    assert_eq!(output.status.code(), Some(2), "usage errors must exit 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage: repro"), "stderr must carry the usage line:\n{stderr}");
    for runner in RUNNERS {
        assert!(stderr.contains(runner), "usage must list the `{runner}` runner:\n{stderr}");
    }
}

#[test]
fn missing_experiment_prints_usage_and_exits_nonzero() {
    let output = repro().output().expect("spawn repro");
    assert_eq!(output.status.code(), Some(2), "a bare `repro` is a usage error");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage: repro"), "stderr must carry the usage line:\n{stderr}");
}

#[test]
fn unknown_flag_and_bad_scale_are_usage_errors() {
    let output = repro().args(["fleet", "--frobnicate"]).output().expect("spawn repro");
    assert_eq!(output.status.code(), Some(2), "unknown flags must exit 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown flag: --frobnicate"), "stderr must name the flag:\n{stderr}");

    let output = repro().args(["fleet", "--scale", "huge"]).output().expect("spawn repro");
    assert_eq!(output.status.code(), Some(2), "bad --scale values must exit 2");
}
