//! **Fleet** — deterministic multi-device orchestration and serving
//! (`BENCH_fleet.json`; see `docs/FLEET.md`).
//!
//! Pre-trains once on the cloud, deploys to a heterogeneous fleet of
//! [`FLEET_DEVICES`] devices over a mix of links, then runs a fixed
//! session schedule: users are hash-routed to devices, each session is
//! served through the **batched** prototype-cache path, a few users label
//! the held-out activity (triggering on-device incremental updates), and
//! a federated round fires every `FEDERATED_EVERY` sessions.
//!
//! Two contracts are asserted while the schedule runs and recorded in the
//! JSON:
//!
//! * **Batched = per-window**: the first session is replayed window-by-
//!   window on a reference device with the same deployment; labels and
//!   distances must match **bitwise**.
//! * **No wall-clock fields**: every timestamp is the flop-modeled virtual
//!   clock, so for a fixed seed the JSON is byte-identical across runs and
//!   `PILOTE_THREADS` settings (`scripts/ci.sh` diffs three runs).

use crate::exp_faults::faulted_scenario;
use crate::report::{write_json, ReportError, Table};
use crate::scale::Scale;
use crate::scenario::pretrain_base;
use pilote_edge_sim::{DeviceProfile, LinkModel};
use pilote_har_data::dataset::Dataset;
use pilote_magneto::{Deployment, EdgeDevice, Fleet, FleetConfig, FleetStats, TelemetryRollup};
use pilote_nn::Checkpoint;
use pilote_tensor::{Rng64, Tensor};
use serde_json::json;
use std::path::Path;

/// Devices in the fleet (heterogeneous: the roster cycles flagship /
/// budget / wearable; links cycle wifi / 4G / weak cellular).
pub const FLEET_DEVICES: usize = 8;

/// Simulated users routed into the fleet.
const USERS: u64 = 10;

/// Sessions each user runs through the schedule.
const SESSIONS_PER_USER: usize = 2;

/// Feature windows per served session.
const WINDOWS_PER_SESSION: usize = 4;

/// A federated round fires after every this-many served sessions.
const FEDERATED_EVERY: usize = 5;

/// Users who label the held-out activity on their device.
const LABELLING_USERS: u64 = 3;

/// Labelled samples per labelling user (also the update threshold, so the
/// last label of each user triggers exactly one incremental update).
const LABELS_PER_USER: usize = 12;

/// Runs the fleet schedule and writes `BENCH_fleet.json`. Returns the
/// fleet-wide stats.
pub fn run(scale: &Scale, seed: u64, out: &Path) -> Result<FleetStats, ReportError> {
    eprintln!(
        "[fleet] {FLEET_DEVICES} heterogeneous devices, {USERS} users × {SESSIONS_PER_USER} sessions, federated round every {FEDERATED_EVERY} sessions"
    );
    let was_enabled = pilote_obs::enabled();
    pilote_obs::reset();
    pilote_obs::set_enabled(true);

    // --- cloud: pre-train once, package once --------------------------
    let (scenario, norm, _sim) = faulted_scenario(scale, seed);
    let mut base = pretrain_base(scenario, scale, seed);
    let deployment = Deployment {
        checkpoint: Checkpoint::capture(base.model.net_mut().layers_mut()),
        support: base.model.support().clone(),
        normalizer: norm,
        config: base.model.config().clone(),
        prototypes: None,
    };

    // --- fleet: heterogeneous devices over a link mix ------------------
    let links = [LinkModel::wifi(), LinkModel::cellular_4g(), LinkModel::weak_cellular()];
    let slots: Vec<(DeviceProfile, LinkModel)> = DeviceProfile::roster(FLEET_DEVICES)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, links[i % links.len()]))
        .collect();
    let config = FleetConfig {
        seed: seed ^ 0xf1ee7,
        serve_chunk: 16,
        federated_every: FEDERATED_EVERY,
        update_threshold: LABELS_PER_USER,
        exemplar_budget: scale.exemplars_per_class,
    ..FleetConfig::default()
    };
    let mut fleet = Fleet::deploy(slots, &deployment, config).expect("fleet deploy");
    // Reference device for the batched-vs-per-window assertion: same
    // deployment, served one window at a time.
    let mut reference =
        EdgeDevice::install(DeviceProfile::flagship_phone(), &deployment, &LinkModel::wifi())
            .expect("reference install");

    // --- the schedule --------------------------------------------------
    // Sessions draw deterministic slices from the held-out test pool;
    // labelling users draw from the new-activity training pool.
    let eval = &base.scenario.test;
    let new_label = base.scenario.new_activity.label();
    let mut rng = Rng64::new(seed ^ 0xf1e7);
    let new_samples = base
        .scenario
        .new_pool
        .sample_class(new_label, LABELS_PER_USER * LABELLING_USERS as usize, &mut rng)
        .expect("new-class batch");

    let mut batched_equals_per_window = true;
    let mut session_cursor = 0usize;
    for round in 0..SESSIONS_PER_USER {
        for user in 0..USERS {
            let features = session_slice(eval, &mut session_cursor);
            let outcomes = fleet.serve_session(user, &features).expect("serve session");
            if round == 0 && user == 0 {
                batched_equals_per_window =
                    matches_per_window(&mut reference, &features, &outcomes);
            }
        }
        // After every user served once, the labelling users teach their
        // devices the held-out activity; the last sample of each batch
        // crosses the update threshold and runs the incremental update.
        if round == 0 {
            for labeller in 0..LABELLING_USERS {
                let start = labeller as usize * LABELS_PER_USER;
                for i in start..start + LABELS_PER_USER {
                    fleet
                        .label_sample(
                            labeller,
                            new_label,
                            Tensor::vector(new_samples.features.row(i)),
                        )
                        .expect("label sample");
                }
            }
        }
    }
    let stats = fleet.stats();
    let fleet_counters: std::collections::BTreeMap<String, u64> = pilote_obs::snapshot()
        .counters_with_prefix("fleet.")
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    pilote_obs::set_enabled(was_enabled);

    // --- report --------------------------------------------------------
    let mut t = Table::new(
        "Fleet: deterministic multi-device serving (batched prototype-cache path)",
        &["device", "windows", "cache rebuilds", "updates", "classes", "virtual clock (s)"],
    );
    for d in &stats.devices {
        t.row(vec![
            d.name.clone(),
            d.windows_served.to_string(),
            d.cache_rebuilds.to_string(),
            d.updates.to_string(),
            d.classes.to_string(),
            format!("{:.4}", d.clock_seconds),
        ]);
    }
    t.row(vec![
        "TOTAL".into(),
        stats.windows.to_string(),
        String::new(),
        stats.devices.iter().map(|d| d.updates).sum::<usize>().to_string(),
        String::new(),
        format!("federated rounds: {}", stats.federated_rounds),
    ]);
    println!("{t}");
    println!(
        "batched serving bitwise-identical to per-window: {}",
        if batched_equals_per_window { "yes" } else { "NO — CONTRACT VIOLATED" }
    );

    assert!(
        batched_equals_per_window,
        "batched serving diverged from per-window classification"
    );

    write_json(
        out,
        "BENCH_fleet.json",
        &json!({
            "seed": seed,
            "schedule": {
                "devices": FLEET_DEVICES,
                "users": USERS,
                "sessions_per_user": SESSIONS_PER_USER,
                "windows_per_session": WINDOWS_PER_SESSION,
                "federated_every": FEDERATED_EVERY,
                "labelling_users": LABELLING_USERS,
                "labels_per_user": LABELS_PER_USER,
            },
            "determinism": "no host wall-clock fields: routing is a pure hash, device time is flop-modeled virtual seconds, link time is modeled transfer cost — byte-identical for a fixed seed at any PILOTE_THREADS",
            "batched_equals_per_window": batched_equals_per_window,
            "fleet_counters": fleet_counters,
            "stats": stats,
        }),
    )?;
    Ok(stats)
}

/// Next deterministic `[WINDOWS_PER_SESSION, 28]` slice of the eval pool,
/// wrapping at the end.
fn session_slice(eval: &Dataset, cursor: &mut usize) -> Tensor {
    session_slice_of(eval, cursor, WINDOWS_PER_SESSION)
}

/// Next deterministic `[windows, 28]` slice of the eval pool, wrapping at
/// the end.
fn session_slice_of(eval: &Dataset, cursor: &mut usize, windows: usize) -> Tensor {
    let rows = eval.features.rows();
    let start = *cursor % rows.saturating_sub(windows).max(1);
    *cursor += windows;
    eval.features
        .slice_rows(start, (start + windows).min(rows))
        .expect("eval slice in range")
}

/// Default device count for `repro fleet --scale large`.
pub const LARGE_DEVICES: usize = 10_000;

/// Feature windows per served session in the large-scale run.
pub const LARGE_WINDOWS_PER_SESSION: usize = 8;

/// Serve-chunk in the large-scale run — small on purpose, so every session
/// emits several `BatchServed` events and the bounded logs actually evict.
pub const LARGE_SERVE_CHUNK: usize = 4;

/// Per-device event-log ring capacity in the large-scale run — far below
/// the event volume, so retained memory stays bounded while the running
/// totals keep every count.
pub const LARGE_EVENT_CAPACITY: usize = 8;

/// Sessions served between delta telemetry uploads in the large-scale run.
pub const LARGE_UPLOAD_EVERY: usize = 2048;

/// Runs the large-scale fleet benchmark (`repro fleet --scale large`) and
/// writes `BENCH_fleet_large.json`: `devices` devices deployed via the
/// sharded installer, one 8-window session per device-count of users
/// served through [`Fleet::serve_sessions`], bounded event logs
/// ([`LARGE_EVENT_CAPACITY`] retained events per device), and windowed
/// **delta** telemetry uploads every [`LARGE_UPLOAD_EVERY`] sessions
/// summed into one cloud rollup.
///
/// Host wall-clock throughput (windows/sec) goes to **stderr only**; the
/// JSON contains virtual-time and conservation results exclusively, so it
/// is byte-identical across runs and `PILOTE_THREADS` settings
/// (`scripts/ci.sh` diffs a reduced-device smoke both ways).
pub fn run_large(
    scale: &Scale,
    seed: u64,
    out: &Path,
    devices: usize,
) -> Result<(), ReportError> {
    assert!(devices > 0, "--devices must be positive");
    eprintln!(
        "[fleet-large] {devices} devices, {devices} sessions × {LARGE_WINDOWS_PER_SESSION} windows, \
         event ring {LARGE_EVENT_CAPACITY}, delta upload every {LARGE_UPLOAD_EVERY} sessions"
    );
    let was_enabled = pilote_obs::enabled();
    pilote_obs::reset();
    pilote_obs::set_enabled(true);

    // --- cloud: pre-train once, package once --------------------------
    let (scenario, norm, _sim) = faulted_scenario(scale, seed);
    let mut base = pretrain_base(scenario, scale, seed);
    let deployment = Deployment {
        checkpoint: Checkpoint::capture(base.model.net_mut().layers_mut()),
        support: base.model.support().clone(),
        normalizer: norm,
        config: base.model.config().clone(),
        prototypes: None,
    };

    // --- fleet: sharded install over the standard link mix -------------
    let links = [LinkModel::wifi(), LinkModel::cellular_4g(), LinkModel::weak_cellular()];
    let slots: Vec<(DeviceProfile, LinkModel)> = DeviceProfile::roster(devices)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, links[i % links.len()]))
        .collect();
    let config = FleetConfig {
        seed: seed ^ 0xf1ee7,
        serve_chunk: LARGE_SERVE_CHUNK,
        federated_every: 0,
        event_capacity: LARGE_EVENT_CAPACITY,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::deploy_sharded(slots, &deployment, config).expect("fleet deploy");

    // --- the schedule: one session per user, users = devices -----------
    let eval = &base.scenario.test;
    let mut cursor = 0usize;
    let sessions: Vec<(u64, Tensor)> = (0..devices as u64)
        .map(|user| (user, session_slice_of(eval, &mut cursor, LARGE_WINDOWS_PER_SESSION)))
        .collect();

    let mut rollup = TelemetryRollup::new();
    let mut delta_uploads = 0usize;
    let mut served_windows = 0u64;
    let started = std::time::Instant::now();
    for chunk in sessions.chunks(LARGE_UPLOAD_EVERY) {
        let outcomes = fleet.serve_sessions(chunk).expect("serve sessions");
        served_windows += outcomes.iter().map(|o| o.len() as u64).sum::<u64>();
        fleet.upload_telemetry_deltas(&mut rollup).expect("delta upload");
        delta_uploads += 1;
    }
    let elapsed = started.elapsed().as_secs_f64();
    // Host wall-clock throughput: stderr only, never in the JSON.
    eprintln!(
        "[fleet-large] host throughput: {:.0} windows/sec ({} windows in {:.2}s wall)",
        served_windows as f64 / elapsed.max(1e-9),
        served_windows,
        elapsed
    );

    // --- conservation + aggregates (virtual time only) ------------------
    let stats = fleet.stats();
    let rollup_windows = rollup.counter("edge.batch_served");
    let conserved = rollup_windows == served_windows;
    let mut events_retained = 0u64;
    let mut events_evicted = 0u64;
    let mut max_retained = 0usize;
    for i in 0..fleet.len() {
        let log = fleet.device(i).log();
        events_retained += log.events().len() as u64;
        events_evicted += log.evicted();
        max_retained = max_retained.max(log.events().len());
    }
    let devices_serving = stats.devices.iter().filter(|d| d.windows_served > 0).count();
    let clock_sum: f64 = stats.devices.iter().map(|d| d.clock_seconds).sum();
    let clock_max = stats.devices.iter().map(|d| d.clock_seconds).fold(0.0f64, f64::max);
    pilote_obs::set_enabled(was_enabled);

    println!(
        "fleet-large: {} devices ({} serving), {} sessions, {} windows, {} delta uploads",
        stats.devices.len(),
        devices_serving,
        stats.sessions,
        stats.windows,
        delta_uploads
    );
    println!(
        "fleet-large: rollup conserves windows: {} ({} retained events, {} evicted, ring ≤ {})",
        if conserved { "yes" } else { "NO — CONTRACT VIOLATED" },
        events_retained,
        events_evicted,
        max_retained
    );
    assert!(conserved, "delta rollup lost windows: {rollup_windows} != {served_windows}");
    assert!(
        max_retained <= LARGE_EVENT_CAPACITY,
        "a device exceeded its event ring capacity"
    );

    write_json(
        out,
        "BENCH_fleet_large.json",
        &json!({
            "seed": seed,
            "schedule": {
                "devices": devices,
                "sessions": devices,
                "windows_per_session": LARGE_WINDOWS_PER_SESSION,
                "serve_chunk": LARGE_SERVE_CHUNK,
                "federated_every": 0,
                "event_capacity": LARGE_EVENT_CAPACITY,
                "delta_upload_every_sessions": LARGE_UPLOAD_EVERY,
                "delta_uploads": delta_uploads,
            },
            "determinism": "sharded deploy + bulk serving merge in device-index order; no host wall-clock fields (throughput goes to stderr) — byte-identical for a fixed seed at any PILOTE_THREADS",
            "conservation": {
                "rollup_batch_served_equals_windows": conserved,
                "events_retained": events_retained,
                "events_evicted": events_evicted,
                "max_retained_per_device": max_retained,
            },
            "rollup": {
                "merged_uploads": rollup.devices,
                "counters": rollup.counters,
            },
            "totals": {
                "sessions": stats.sessions,
                "windows": stats.windows,
                "devices": stats.devices.len(),
                "devices_serving": devices_serving,
                "degraded": stats.devices.iter().filter(|d| d.degraded).count(),
                "clock_seconds_sum": clock_sum,
                "clock_seconds_max": clock_max,
            },
        }),
    )?;
    Ok(())
}

/// Replays a served session window-by-window on the reference device and
/// checks labels and distances bitwise.
fn matches_per_window(
    reference: &mut EdgeDevice,
    features: &Tensor,
    batched: &[pilote_magneto::InferenceOutcome],
) -> bool {
    batched.iter().enumerate().all(|(i, outcome)| {
        let row = features.slice_rows(i, i + 1).expect("window row");
        let one = reference.serve_batch(&row).expect("reference serve");
        one.len() == 1
            && one[0].predicted == outcome.predicted
            && one[0].distance.to_bits() == outcome.distance.to_bits()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            per_activity: 60,
            rounds: 1,
            exemplars_per_class: 12,
            max_epochs: 2,
            pretrain_epochs: 2,
            ..Scale::default()
        }
    }

    /// Acceptance check: two runs at the same seed must produce identical
    /// stats, the batched contract must hold, and updates + federated
    /// rounds must actually have happened.
    #[test]
    #[ignore = "slow (two full fleet schedules); run by scripts/ci.sh fleet step"]
    fn fleet_schedule_is_deterministic_and_complete() {
        let dir = std::env::temp_dir().join("pilote_fleet_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let a = run(&tiny(), 7, &dir).expect("run a");
        let b = run(&tiny(), 7, &dir).expect("run b");
        assert_eq!(a, b, "same seed must produce identical fleet stats");
        assert_eq!(a.devices.len(), FLEET_DEVICES);
        assert_eq!(a.sessions, USERS * SESSIONS_PER_USER as u64);
        assert!(a.federated_rounds >= 1, "the schedule must run federated rounds");
        assert!(
            a.devices.iter().map(|d| d.updates).sum::<usize>() >= 1,
            "labelling users must trigger incremental updates"
        );
    }
}
