//! **Wire** — accuracy-vs-bytes frontier of the binary wire codec
//! (`BENCH_wire.json`; see `docs/WIRE.md`).
//!
//! Pre-trains once, then replays the *same* fleet schedule under every
//! wire configuration in `f32/u16/i8 × full/delta`: deploy to a
//! heterogeneous fleet, have labelling users trigger on-device updates,
//! run two explicit federated rounds (so delta payloads exercise a
//! committed base), and upload one telemetry rollup. Every payload moves
//! through [`pilote_magneto::wire`], so the recorded byte totals are the
//! exact sizes the virtual links were charged with — not JSON-length
//! proxies.
//!
//! Alongside the codec configs the run records the **JSON-f32 baseline**:
//! the bytes the old `serde_json`-length accounting would have billed for
//! the same federated rounds. Three contracts are asserted and recorded:
//!
//! * `i8-delta` federated traffic is at least `MIN_SAVINGS`× smaller
//!   than the JSON-f32 baseline;
//! * `i8-delta` old-class accuracy is within `MAX_OLD_ACC_LOSS` of the
//!   lossless `f32-full` run;
//! * `i8-delta` moves fewer federated bytes than `f32-full`.
//!
//! No wall-clock fields: device time is flop-modeled, link time is
//! `LinkModel::transfer_seconds` over the binary payload sizes, so the
//! JSON is byte-identical across runs and `PILOTE_THREADS` settings
//! (`scripts/ci.sh` diffs two runs plus a `PILOTE_THREADS=4` run).

use crate::exp_faults::faulted_scenario;
use crate::report::{write_json, ReportError, Table};
use crate::scale::Scale;
use crate::scenario::pretrain_base;
use pilote_edge_sim::{DeviceProfile, LinkModel, WirePrecision};
use pilote_har_data::dataset::Dataset;
use pilote_magneto::{Deployment, Fleet, FleetConfig, WireConfig, WireTotals};
use pilote_nn::Checkpoint;
use pilote_tensor::{Rng64, Tensor};
use serde_json::json;
use std::path::Path;

/// Devices in the fleet (roster cycles flagship / budget / wearable;
/// links cycle wifi / 4G / weak cellular).
const WIRE_DEVICES: usize = 6;

/// Simulated users routed into the fleet.
const USERS: u64 = 8;

/// Feature windows per served session.
const WINDOWS_PER_SESSION: usize = 4;

/// Users who label the held-out activity before each federated round.
const LABELLING_USERS: u64 = 3;

/// Labelled samples per labelling user per batch (also the update
/// threshold, so the last label of a batch triggers exactly one
/// incremental update).
const LABELS_PER_USER: usize = 10;

/// Explicit federated rounds in the schedule. The second round runs
/// against the base committed by the first, so delta configs ship
/// genuine diffs, not just the initial full broadcast.
const FEDERATED_ROUNDS: usize = 2;

/// `i8-delta` must shrink federated traffic at least this much vs the
/// JSON-f32 baseline.
const MIN_SAVINGS: f64 = 4.0;

/// `i8-delta` may lose at most this much old-class accuracy vs the
/// lossless `f32-full` run.
const MAX_OLD_ACC_LOSS: f32 = 0.01;

/// One wire configuration's measurements.
struct ConfigRun {
    name: String,
    totals: WireTotals,
    committed_round: u64,
    old_accuracy: f32,
    new_accuracy: f32,
    clock_seconds_sum: f64,
    /// JSON-length accounting for the same federated rounds (the bytes
    /// the pre-codec implementation would have billed). Captured for
    /// every config, but the *baseline* is the `f32-full` run's value.
    json_federated_bytes: u64,
}

/// Runs the frontier sweep and writes `BENCH_wire.json`.
pub fn run(scale: &Scale, seed: u64, out: &Path) -> Result<(), ReportError> {
    eprintln!(
        "[wire] {WIRE_DEVICES} devices, {USERS} users, {FEDERATED_ROUNDS} federated rounds per config, 6 wire configs"
    );
    let was_enabled = pilote_obs::enabled();
    pilote_obs::reset();
    pilote_obs::set_enabled(true);

    // --- cloud: pre-train once, package once --------------------------
    let (scenario, norm, _sim) = faulted_scenario(scale, seed);
    let mut base = pretrain_base(scenario, scale, seed);
    let deployment = Deployment {
        checkpoint: Checkpoint::capture(base.model.net_mut().layers_mut()),
        support: base.model.support().clone(),
        normalizer: norm,
        config: base.model.config().clone(),
        prototypes: None,
    };
    let old_test = base.scenario.old_test();
    let new_test = base.scenario.new_test();

    // One deterministic label stream shared by every config: enough
    // samples for every labeller to cross the update threshold once per
    // federated round.
    let new_label = base.scenario.new_activity.label();
    let mut rng = Rng64::new(seed ^ 0x31e7);
    let new_samples = base
        .scenario
        .new_pool
        .sample_class(
            new_label,
            FEDERATED_ROUNDS * LABELLING_USERS as usize * LABELS_PER_USER,
            &mut rng,
        )
        .expect("new-class batch");

    // --- the sweep -----------------------------------------------------
    let configs = [
        WireConfig::full(WirePrecision::F32),
        WireConfig::delta(WirePrecision::F32),
        WireConfig::full(WirePrecision::U16),
        WireConfig::delta(WirePrecision::U16),
        WireConfig::full(WirePrecision::I8),
        WireConfig::delta(WirePrecision::I8),
    ];
    let mut runs = Vec::with_capacity(configs.len());
    for cfg in configs {
        runs.push(run_config(
            cfg,
            &base.scenario.test,
            &deployment,
            new_label,
            &new_samples,
            &old_test,
            &new_test,
            seed,
        ));
    }
    pilote_obs::set_enabled(was_enabled);

    // --- contracts -----------------------------------------------------
    let f32_full = by_name(&runs, "f32-full");
    let i8_delta = by_name(&runs, "i8-delta");
    let json_baseline = f32_full.json_federated_bytes;
    let savings = json_baseline as f64 / i8_delta.totals.federated_bytes().max(1) as f64;
    let old_acc_loss = f32_full.old_accuracy - i8_delta.old_accuracy;

    // --- report --------------------------------------------------------
    let mut t = Table::new(
        "Wire: accuracy vs federated bytes (binary codec, exact link accounting)",
        &["config", "fed bytes", "deploy bytes", "telemetry", "old acc", "new acc", "clock sum (s)"],
    );
    for r in &runs {
        t.row(vec![
            r.name.clone(),
            r.totals.federated_bytes().to_string(),
            r.totals.deploy_bytes.to_string(),
            r.totals.telemetry_bytes.to_string(),
            format!("{:.4}", r.old_accuracy),
            format!("{:.4}", r.new_accuracy),
            format!("{:.4}", r.clock_seconds_sum),
        ]);
    }
    println!("{t}");
    println!(
        "json-f32 baseline (old accounting): {json_baseline} federated bytes; i8-delta saves {savings:.1}x at {old_acc_loss:+.4} old-class accuracy",
    );

    assert!(
        savings >= MIN_SAVINGS,
        "i8-delta must shrink federated bytes >= {MIN_SAVINGS}x vs json-f32 ({json_baseline} -> {} is {savings:.2}x)",
        i8_delta.totals.federated_bytes()
    );
    assert!(
        old_acc_loss <= MAX_OLD_ACC_LOSS,
        "i8-delta old-class accuracy lost {old_acc_loss:.4} vs f32-full (limit {MAX_OLD_ACC_LOSS})"
    );
    assert!(
        i8_delta.totals.federated_bytes() < f32_full.totals.federated_bytes(),
        "i8-delta must move fewer federated bytes than f32-full"
    );

    write_json(
        out,
        "BENCH_wire.json",
        &json!({
            "seed": seed,
            "schedule": {
                "devices": WIRE_DEVICES,
                "users": USERS,
                "windows_per_session": WINDOWS_PER_SESSION,
                "labelling_users": LABELLING_USERS,
                "labels_per_user": LABELS_PER_USER,
                "federated_rounds": FEDERATED_ROUNDS,
            },
            "determinism": "same pre-trained package replayed under each wire config; byte totals are the exact binary payload sizes charged to the virtual links — byte-identical for a fixed seed at any PILOTE_THREADS",
            "json_f32_baseline_federated_bytes": json_baseline,
            "contracts": {
                "min_savings_vs_json_f32": MIN_SAVINGS,
                "max_old_accuracy_loss": MAX_OLD_ACC_LOSS,
                "i8_delta_savings_vs_json_f32": savings,
                "i8_delta_old_accuracy_loss": old_acc_loss,
            },
            "frontier": runs.iter().map(|r| json!({
                "config": r.name,
                "wire_totals": r.totals,
                "federated_bytes": r.totals.federated_bytes(),
                "total_bytes": r.totals.total_bytes(),
                "json_federated_bytes": r.json_federated_bytes,
                "committed_round": r.committed_round,
                "old_accuracy": r.old_accuracy,
                "new_accuracy": r.new_accuracy,
                "clock_seconds_sum": r.clock_seconds_sum,
            })).collect::<Vec<_>>(),
        }),
    )?;
    Ok(())
}

fn by_name<'a>(runs: &'a [ConfigRun], name: &str) -> &'a ConfigRun {
    runs.iter().find(|r| r.name == name).expect("config in sweep")
}

/// Replays the fixed schedule under one wire config on a fresh fleet.
#[allow(clippy::too_many_arguments)]
fn run_config(
    wire: WireConfig,
    eval: &Dataset,
    deployment: &Deployment,
    new_label: usize,
    new_samples: &Dataset,
    old_test: &Dataset,
    new_test: &Dataset,
    seed: u64,
) -> ConfigRun {
    let links = [LinkModel::wifi(), LinkModel::cellular_4g(), LinkModel::weak_cellular()];
    let slots: Vec<(DeviceProfile, LinkModel)> = DeviceProfile::roster(WIRE_DEVICES)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, links[i % links.len()]))
        .collect();
    let config = FleetConfig {
        seed: seed ^ 0x31e3,
        serve_chunk: 16,
        federated_every: 0, // rounds fire explicitly below
        update_threshold: LABELS_PER_USER,
        wire,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::deploy(slots, deployment, config).expect("fleet deploy");

    // Identical schedule for every config: each federated round is
    // preceded by one serve pass and one labelling batch per labeller
    // (the batch crosses the update threshold, so round N merges fresh
    // on-device updates and round N+1 ships a genuine diff).
    let mut cursor = 0usize;
    let mut json_federated_bytes = 0u64;
    for round in 0..FEDERATED_ROUNDS {
        for user in 0..USERS {
            let features = session_slice(eval, &mut cursor);
            fleet.serve_session(user, &features).expect("serve session");
        }
        for labeller in 0..LABELLING_USERS {
            let start =
                (round * LABELLING_USERS as usize + labeller as usize) * LABELS_PER_USER;
            for i in start..start + LABELS_PER_USER {
                fleet
                    .label_sample(labeller, new_label, Tensor::vector(new_samples.features.row(i)))
                    .expect("label sample");
            }
        }
        // What the pre-codec JSON-length accounting would have billed
        // for this round: each device uploads its checkpoint and
        // downloads the merge, both priced at serialised-JSON length.
        for i in 0..fleet.len() {
            let ckpt = Checkpoint::capture(fleet.device_mut(i).model_mut().net_mut().layers_mut());
            json_federated_bytes += ckpt.to_json().len() as u64 * 2;
        }
        fleet.federated_round().expect("federated round");
    }
    fleet.telemetry_rollup().expect("telemetry rollup");

    let stats = fleet.stats();
    let n = fleet.len();
    let mut old_sum = 0.0f32;
    let mut new_sum = 0.0f32;
    for i in 0..n {
        old_sum += fleet.device_mut(i).model_mut().accuracy(old_test).expect("old eval");
        new_sum += fleet.device_mut(i).model_mut().accuracy(new_test).expect("new eval");
    }
    ConfigRun {
        name: wire.name(),
        totals: fleet.wire_totals(),
        committed_round: fleet.committed_round(),
        old_accuracy: old_sum / n as f32,
        new_accuracy: new_sum / n as f32,
        clock_seconds_sum: stats.devices.iter().map(|d| d.clock_seconds).sum(),
        json_federated_bytes,
    }
}

/// Next deterministic `[WINDOWS_PER_SESSION, 28]` slice of the eval pool,
/// wrapping at the end.
fn session_slice(eval: &Dataset, cursor: &mut usize) -> Tensor {
    let rows = eval.features.rows();
    let start = *cursor % rows.saturating_sub(WINDOWS_PER_SESSION).max(1);
    *cursor += WINDOWS_PER_SESSION;
    eval.features
        .slice_rows(start, (start + WINDOWS_PER_SESSION).min(rows))
        .expect("eval slice in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            per_activity: 60,
            rounds: 1,
            exemplars_per_class: 12,
            max_epochs: 2,
            pretrain_epochs: 2,
            ..Scale::default()
        }
    }

    /// Acceptance check: two runs at the same seed must produce the same
    /// JSON bytes (the run itself asserts the savings and accuracy
    /// contracts).
    #[test]
    #[ignore = "slow (six full fleet schedules, twice); run by scripts/ci.sh wire step"]
    fn wire_frontier_is_deterministic() {
        let dir = std::env::temp_dir().join("pilote_wire_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        run(&tiny(), 7, &dir).expect("run a");
        let a = std::fs::read(dir.join("BENCH_wire.json")).expect("read a");
        run(&tiny(), 7, &dir).expect("run b");
        let b = std::fs::read(dir.join("BENCH_wire.json")).expect("read b");
        assert_eq!(a, b, "same seed must produce byte-identical BENCH_wire.json");
    }
}
