//! `repro` — regenerates every table and figure of the PILOTE paper.
//!
//! ```text
//! repro <experiment> [--quick] [--rounds N] [--per-activity N]
//!                    [--seed N] [--out DIR]
//!
//! experiments: all, table2, fig4, fig5, fig6, fig7, timing,
//!              ablate-alpha, ablate-margin, ablate-pairs,
//!              ablate-strategies, cloud-vs-edge, kernels, faults
//! ```
//!
//! Run it in release mode: `cargo run --release -p pilote-bench --bin repro -- all`.

use pilote_bench::report::results_dir;
use pilote_bench::{
    exp_ablations, exp_cloud, exp_faults, exp_fig4, exp_fig5, exp_fig6, exp_fig7, exp_kernels,
    exp_table2, exp_timing, Scale,
};
use std::process::ExitCode;

struct Args {
    experiment: String,
    scale: Scale,
    seed: u64,
    out: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <experiment> [--quick] [--rounds N] [--per-activity N] [--seed N] [--out DIR]\n\
         experiments: all, table2, fig4, fig5, fig6, fig7, timing,\n\
                      ablate-alpha, ablate-margin, ablate-pairs, ablate-strategies,\n\
                      cloud-vs-edge, kernels, faults"
    );
    ExitCode::from(2)
}

fn parse() -> Result<Args, ExitCode> {
    let mut args = std::env::args().skip(1);
    let Some(experiment) = args.next() else {
        return Err(usage());
    };
    let mut scale = Scale::default();
    let mut seed = 20230328; // EDBT 2023 opening day
    let mut out = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => scale = Scale::quick(),
            "--rounds" => {
                scale.rounds = args.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
            }
            "--per-activity" => {
                scale.per_activity = args.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
            }
            "--out" => {
                out = Some(args.next().ok_or_else(usage)?);
            }
            other => {
                eprintln!("unknown flag: {other}");
                return Err(usage());
            }
        }
    }
    Ok(Args { experiment, scale, seed, out })
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let out = results_dir(args.out.as_deref());
    let scale = args.scale;
    let seed = args.seed;
    eprintln!(
        "[repro] experiment={} per_activity={} rounds={} exemplars={} seed={}",
        args.experiment, scale.per_activity, scale.rounds, scale.exemplars_per_class, seed
    );

    let started = std::time::Instant::now();
    match args.experiment.as_str() {
        "table2" => {
            exp_table2::run(&scale, seed, &out);
        }
        "fig4" => {
            exp_fig4::run(&scale, seed, &out);
        }
        "fig5" => {
            exp_fig5::run(&scale, seed, &out);
        }
        "fig6" => {
            exp_fig6::run(&scale, seed, &out);
        }
        "fig7" => {
            exp_fig7::run(&scale, seed, &out);
        }
        "timing" => {
            exp_timing::run(&scale, seed, &out);
        }
        "ablate-alpha" => {
            exp_ablations::alpha_sweep(&scale, seed, &out);
        }
        "ablate-margin" => {
            exp_ablations::margin_sweep(&scale, seed, &out);
        }
        "ablate-pairs" => {
            exp_ablations::pair_scheme_sweep(&scale, seed, &out);
        }
        "ablate-strategies" => {
            exp_ablations::strategy_comparison(&scale, seed, &out);
        }
        "cloud-vs-edge" => {
            exp_cloud::run(&out);
        }
        "kernels" => {
            exp_kernels::run(&out);
        }
        "faults" => {
            exp_faults::run(&scale, seed, &out);
        }
        "all" => {
            exp_table2::run(&scale, seed, &out);
            exp_fig4::run(&scale, seed, &out);
            exp_fig5::run(&scale, seed, &out);
            exp_fig6::run(&scale, seed, &out);
            exp_fig7::run(&scale, seed, &out);
            exp_timing::run(&scale, seed, &out);
            exp_ablations::alpha_sweep(&scale, seed, &out);
            exp_ablations::margin_sweep(&scale, seed, &out);
            exp_ablations::pair_scheme_sweep(&scale, seed, &out);
            exp_ablations::strategy_comparison(&scale, seed, &out);
            exp_cloud::run(&out);
            exp_kernels::run(&out);
            exp_faults::run(&scale, seed, &out);
        }
        _ => return usage(),
    }
    eprintln!("[repro] done in {:.1}s", started.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
