//! `repro` — regenerates every table and figure of the PILOTE paper.
//!
//! ```text
//! repro <experiment> [--quick] [--scale quick|default|large] [--rounds N]
//!                    [--per-activity N] [--devices N] [--seed N] [--out DIR]
//!
//! experiments: all, table2, fig4, fig5, fig6, fig7, timing,
//!              ablate-alpha, ablate-margin, ablate-pairs,
//!              ablate-strategies, cloud-vs-edge, kernels, faults, obs,
//!              fleet, quality, policy, wire, scenarios, index
//! ```
//!
//! Run it in release mode: `cargo run --release -p pilote-bench --bin repro -- all`.
//!
//! Exit status: `0` on success, `1` when an experiment fails (e.g. the
//! output directory is not writable — the error names the path), `2` on a
//! usage error.

use pilote_bench::report::{results_dir, ReportError};
use pilote_bench::{
    bench_index, exp_ablations, exp_cloud, exp_faults, exp_fig4, exp_fig5, exp_fig6, exp_fig7,
    exp_fleet, exp_kernels, exp_obs, exp_policy, exp_quality, exp_scenarios, exp_table2,
    exp_timing, exp_wire, Scale,
};
use std::path::Path;
use std::process::ExitCode;

struct Args {
    experiment: String,
    scale: Scale,
    /// `--scale large`: run the large-scale variant of an experiment
    /// (currently `fleet` only).
    large: bool,
    /// `--devices N`: device count for the large-scale fleet run.
    devices: Option<usize>,
    seed: u64,
    out: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <experiment> [--quick] [--scale quick|default|large] [--rounds N]\n\
         \x20                  [--per-activity N] [--devices N] [--seed N] [--out DIR]\n\
         experiments: all, table2, fig4, fig5, fig6, fig7, timing,\n\
                      ablate-alpha, ablate-margin, ablate-pairs, ablate-strategies,\n\
                      cloud-vs-edge, kernels, faults, obs, fleet, quality, policy, wire,\n\
                      scenarios, index\n\
         --scale large runs the ~10k-device sharded fleet benchmark (fleet only);\n\
         --devices N overrides its device count"
    );
    ExitCode::from(2)
}

fn parse() -> Result<Args, ExitCode> {
    let mut args = std::env::args().skip(1);
    let Some(experiment) = args.next() else {
        return Err(usage());
    };
    let mut scale = Scale::default();
    let mut large = false;
    let mut devices = None;
    let mut seed = 20230328; // EDBT 2023 opening day
    let mut out = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => scale = Scale::quick(),
            "--scale" => match args.next().as_deref() {
                Some("quick") => {
                    scale = Scale::quick();
                    large = false;
                }
                Some("default") => {
                    scale = Scale::default();
                    large = false;
                }
                // The large fleet run pre-trains at quick scale: the model
                // under deployment is not what the benchmark measures.
                Some("large") => {
                    scale = Scale::quick();
                    large = true;
                }
                _ => return Err(usage()),
            },
            "--devices" => {
                devices = Some(args.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            "--rounds" => {
                scale.rounds = args.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
            }
            "--per-activity" => {
                scale.per_activity = args.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
            }
            "--out" => {
                out = Some(args.next().ok_or_else(usage)?);
            }
            other => {
                eprintln!("unknown flag: {other}");
                return Err(usage());
            }
        }
    }
    Ok(Args { experiment, scale, large, devices, seed, out })
}

/// Runs one named experiment. Returns `None` for an unknown name; a
/// [`ReportError`] (a result file could not be written) propagates so
/// `main` can exit non-zero with the failing path in the message.
fn dispatch(
    args: &Args,
    scale: &Scale,
    seed: u64,
    out: &Path,
) -> Option<Result<(), ReportError>> {
    let result = match args.experiment.as_str() {
        "table2" => exp_table2::run(scale, seed, out).map(drop),
        "fig4" => exp_fig4::run(scale, seed, out).map(drop),
        "fig5" => exp_fig5::run(scale, seed, out).map(drop),
        "fig6" => exp_fig6::run(scale, seed, out).map(drop),
        "fig7" => exp_fig7::run(scale, seed, out).map(drop),
        "timing" => exp_timing::run(scale, seed, out).map(drop),
        "ablate-alpha" => exp_ablations::alpha_sweep(scale, seed, out).map(drop),
        "ablate-margin" => exp_ablations::margin_sweep(scale, seed, out).map(drop),
        "ablate-pairs" => exp_ablations::pair_scheme_sweep(scale, seed, out).map(drop),
        "ablate-strategies" => exp_ablations::strategy_comparison(scale, seed, out).map(drop),
        "cloud-vs-edge" => exp_cloud::run(out).map(drop),
        "kernels" => exp_kernels::run(out).map(drop),
        "faults" => exp_faults::run(scale, seed, out).map(drop),
        "obs" => exp_obs::run(scale, seed, out).map(drop),
        "fleet" if args.large => {
            let devices = args.devices.unwrap_or(exp_fleet::LARGE_DEVICES);
            exp_fleet::run_large(scale, seed, out, devices)
        }
        "fleet" => exp_fleet::run(scale, seed, out).map(drop),
        "quality" => exp_quality::run(scale, seed, out).map(drop),
        "policy" => exp_policy::run(scale, seed, out).map(drop),
        "wire" => exp_wire::run(scale, seed, out),
        "scenarios" => exp_scenarios::run(scale, seed, out).map(drop),
        "index" => bench_index::run(out).map(drop),
        "all" => (|| {
            exp_table2::run(scale, seed, out)?;
            exp_fig4::run(scale, seed, out)?;
            exp_fig5::run(scale, seed, out)?;
            exp_fig6::run(scale, seed, out)?;
            exp_fig7::run(scale, seed, out)?;
            exp_timing::run(scale, seed, out)?;
            exp_ablations::alpha_sweep(scale, seed, out)?;
            exp_ablations::margin_sweep(scale, seed, out)?;
            exp_ablations::pair_scheme_sweep(scale, seed, out)?;
            exp_ablations::strategy_comparison(scale, seed, out)?;
            exp_cloud::run(out)?;
            exp_kernels::run(out)?;
            exp_faults::run(scale, seed, out)?;
            exp_obs::run(scale, seed, out)?;
            exp_fleet::run(scale, seed, out)?;
            exp_quality::run(scale, seed, out)?;
            exp_policy::run(scale, seed, out)?;
            exp_wire::run(scale, seed, out)?;
            exp_scenarios::run(scale, seed, out)?;
            // Last: the index summarises everything written above.
            bench_index::run(out)?;
            Ok(())
        })(),
        _ => return None,
    };
    Some(result)
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let out = match results_dir(args.out.as_deref()) {
        Ok(dir) => dir,
        Err(e) => {
            eprintln!("[repro] error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scale = args.scale;
    let seed = args.seed;
    eprintln!(
        "[repro] experiment={} per_activity={} rounds={} exemplars={} seed={}",
        args.experiment, scale.per_activity, scale.rounds, scale.exemplars_per_class, seed
    );

    let started = std::time::Instant::now();
    match dispatch(&args, &scale, seed, &out) {
        None => return usage(),
        Some(Err(e)) => {
            eprintln!("[repro] error: {e}");
            return ExitCode::FAILURE;
        }
        Some(Ok(())) => {}
    }
    eprintln!("[repro] done in {:.1}s", started.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
