//! Calibration probe: runs two scenarios (Run and Drive as the new class)
//! at moderate scale and prints the three-model accuracies, old-class
//! retention and update times — a fast sanity check that the simulated
//! data reproduces the paper's orderings before committing to the full
//! experiment suite.

use pilote_bench::scenario::{build_scenario, pretrain_base, run_pilote, run_pretrained, run_retrained};
use pilote_bench::Scale;
use pilote_har_data::Activity;

fn main() {
    let per_activity: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let scale = Scale { per_activity, rounds: 1, ..Scale::default() };
    for activity in [Activity::Run, Activity::Drive] {
        eprintln!("== scenario: new class {activity} (per-activity {per_activity}) ==");
        let scenario = build_scenario(activity, &scale, 1);
        let base = pretrain_base(scenario, &scale, 1);
        let n = scale.exemplars_per_class;

        let mut pre = base.model.clone_model();
        let r_pre = run_pretrained(&mut pre, &base.scenario, n, 11);
        let mut retr = base.model.clone_model();
        let r_retr = run_retrained(&mut retr, &base.scenario, n, 11);
        let mut pil = base.model.clone_model();
        let (r_pil, _) = run_pilote(&mut pil, &base.scenario, n, 11);

        println!("new={activity}");
        println!(
            "  pretrained acc {:.4} (old {:.4}, new {:.4})",
            r_pre.accuracy, r_pre.old_accuracy, r_pre.new_accuracy
        );
        println!(
            "  retrained  acc {:.4} (old {:.4}, new {:.4}) {:.0}s/{} epochs",
            r_retr.accuracy, r_retr.old_accuracy, r_retr.new_accuracy, r_retr.seconds, r_retr.epochs
        );
        println!(
            "  pilote     acc {:.4} (old {:.4}, new {:.4}) {:.0}s/{} epochs",
            r_pil.accuracy, r_pil.old_accuracy, r_pil.new_accuracy, r_pil.seconds, r_pil.epochs
        );
    }
}
