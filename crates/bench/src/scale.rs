//! Experiment sizing.
//!
//! The paper's campaign has ~200 k records; on this single-core benchmark
//! host we default to 600 windows per activity (3 000 total), which keeps
//! each experiment minutes-scale while preserving every relative result.
//! `Scale::full_paper()` documents the full-scale configuration; `quick()`
//! is for smoke runs.

use serde::{Deserialize, Serialize};

/// Dataset/repetition sizing for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Simulated windows generated per activity (before the test split).
    pub per_activity: usize,
    /// Fraction (×100) of records held out as the test set — the paper
    /// splits 30%.
    pub test_percent: usize,
    /// Repetition rounds for mean ± std (paper: 5).
    pub rounds: usize,
    /// Default exemplars per class in the support set (paper: 200).
    pub exemplars_per_class: usize,
    /// Hard epoch cap for edge updates (paper reports convergence within
    /// 20; updates converge faster).
    pub max_epochs: usize,
    /// Epoch budget for cloud pre-training (run closer to convergence —
    /// the paper's pre-training "benefits from the rich computation
    /// resources on the Cloud").
    pub pretrain_epochs: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            per_activity: 600,
            test_percent: 30,
            rounds: 5,
            exemplars_per_class: 200,
            max_epochs: 12,
            pretrain_epochs: 16,
        }
    }
}

impl Scale {
    /// Smoke-test sizing (~seconds per experiment).
    pub fn quick() -> Self {
        Scale {
            per_activity: 120,
            rounds: 2,
            exemplars_per_class: 50,
            max_epochs: 6,
            pretrain_epochs: 8,
            ..Scale::default()
        }
    }

    /// The paper's full campaign scale (~200 k records, 5 rounds). Only
    /// practical on a multi-core host; documented for completeness.
    pub fn full_paper() -> Self {
        Scale {
            per_activity: 40_000,
            rounds: 5,
            exemplars_per_class: 200,
            max_epochs: 20,
            pretrain_epochs: 40,
            ..Scale::default()
        }
    }

    /// Test fraction as a float.
    pub fn test_fraction(&self) -> f32 {
        self.test_percent as f32 / 100.0
    }

    /// Training windows available per activity after the split.
    pub fn train_per_activity(&self) -> usize {
        self.per_activity - self.per_activity * self.test_percent / 100
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_protocol() {
        let s = Scale::default();
        assert_eq!(s.test_percent, 30);
        assert_eq!(s.rounds, 5);
        assert_eq!(s.exemplars_per_class, 200);
    }

    #[test]
    fn train_split_arithmetic() {
        let s = Scale { per_activity: 600, ..Scale::default() };
        assert_eq!(s.train_per_activity(), 420);
        assert!((s.test_fraction() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn quick_is_smaller() {
        let q = Scale::quick();
        let d = Scale::default();
        assert!(q.per_activity < d.per_activity);
        assert!(q.rounds < d.rounds);
    }
}
