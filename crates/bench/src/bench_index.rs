//! **Index** — the committed-benchmark manifest (`BENCH_index.json`).
//!
//! Scans the results directory for every committed `BENCH_*.json`, pulls
//! each file's **headline figure** (one named metric per benchmark, see
//! [`HEADLINES`]) and writes a single summary manifest so a reader — or a
//! dashboard — gets the whole benchmark surface at a glance without
//! opening ten files.
//!
//! The table of headline key paths doubles as a completeness gate: a
//! `BENCH_*.json` with no entry in [`HEADLINES`], or whose headline path
//! no longer resolves, is a **hard error** — adding a benchmark without
//! declaring its headline metric (or silently renaming a headline field)
//! fails `repro index`, and with it the `scripts/ci.sh` index step.

use crate::report::{write_json, ReportError, Table};
use serde_json::{json, Value};
use std::fs;
use std::io;
use std::path::Path;

/// Headline metric per committed benchmark file: `(file name, metric
/// label, '/'-separated key path into the JSON document — array steps are
/// numeric indices)`.
pub const HEADLINES: &[(&str, &str, &str)] = &[
    ("BENCH_faults.json", "pilote accuracy under sensor faults", "sensor/0/accuracy/pilote"),
    ("BENCH_fleet.json", "fleet windows served", "fleet_counters/fleet.windows_served"),
    ("BENCH_fleet_large.json", "sessions served at 10k devices", "totals/sessions"),
    ("BENCH_kernels.json", "packed GEMM speedup vs legacy", "packed_vs_legacy_speedup"),
    ("BENCH_kernels_check.json", "GEMM parity checksum", "gemm_checksum"),
    ("BENCH_obs.json", "virtual clock seconds", "virtual_clock_seconds"),
    ("BENCH_policy.json", "forgetting alerts caught by policy", "policy_on/forgetting_alerts"),
    ("BENCH_quality.json", "re-trained forgetting (A/B demo)", "ab_demo/retrained/forgetting"),
    (
        "BENCH_scenarios.json",
        "PILOTE final forgetting (class-incremental)",
        "ab_split/pilote_final_forgetting",
    ),
    ("BENCH_wire.json", "JSON f32 federated payload bytes", "json_f32_baseline_federated_bytes"),
];

/// The index's own file name, excluded from the scan.
pub const INDEX_FILE: &str = "BENCH_index.json";

fn data_error(path: &Path, detail: String) -> ReportError {
    ReportError {
        path: path.to_path_buf(),
        source: io::Error::new(io::ErrorKind::InvalidData, detail),
    }
}

/// Walks a '/'-separated key path through a JSON document. Object steps
/// are member names; array steps are numeric indices.
fn lookup<'a>(doc: &'a Value, path: &str) -> Option<&'a Value> {
    let mut node = doc;
    for step in path.split('/') {
        node = match node {
            Value::Array(_) => node.as_array()?.get(step.parse::<usize>().ok()?)?,
            _ => node.get(step)?,
        };
    }
    Some(node)
}

/// Scans `out` for committed `BENCH_*.json` files and writes
/// `BENCH_index.json` summarising each one's headline figure. Returns the
/// manifest (used by tests). Errors if a benchmark file has no
/// [`HEADLINES`] entry, cannot be parsed, or its headline path is gone.
pub fn run(out: &Path) -> Result<Value, ReportError> {
    let mut names: Vec<String> = fs::read_dir(out)
        .map_err(|source| ReportError { path: out.to_path_buf(), source })?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json") && name != INDEX_FILE)
        .collect();
    names.sort();

    let mut files = Vec::new();
    let mut table = Table::new("Committed benchmark headlines", &["file", "metric", "value"]);
    for name in &names {
        let path = out.join(name);
        let (_, metric, key_path) = HEADLINES
            .iter()
            .find(|(file, _, _)| file == name)
            .ok_or_else(|| {
                data_error(
                    &path,
                    format!("no headline rule for {name}: add one to bench_index::HEADLINES"),
                )
            })?;
        let body = fs::read_to_string(&path)
            .map_err(|source| ReportError { path: path.clone(), source })?;
        let doc: Value = serde_json::parse(&body)
            .map_err(|e| data_error(&path, format!("unparsable benchmark JSON: {e}")))?;
        let value = lookup(&doc, key_path)
            .ok_or_else(|| data_error(&path, format!("headline path {key_path} not found")))?;
        table.row(vec![name.clone(), metric.to_string(), serde_json::to_string(value).unwrap_or_default()]);
        files.push(json!({
            "file": name,
            "metric": metric,
            "path": key_path,
            "value": value.clone(),
        }));
    }
    println!("{table}");

    let doc = json!({
        "count": files.len(),
        "files": files,
    });
    write_json(out, INDEX_FILE, &doc)?;
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_walks_objects_and_arrays() {
        let doc = json!({"a": [{"b": 3.5}], "top": 7});
        assert_eq!(lookup(&doc, "top").and_then(Value::as_u64), Some(7));
        assert_eq!(lookup(&doc, "a/0/b").and_then(Value::as_f64), Some(3.5));
        assert!(lookup(&doc, "a/1/b").is_none());
        assert!(lookup(&doc, "a/x").is_none());
        assert!(lookup(&doc, "missing").is_none());
    }

    #[test]
    fn index_summarises_known_files_and_rejects_unknown_ones() {
        let dir = std::env::temp_dir().join("pilote_bench_index_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp dir");
        fs::write(
            dir.join("BENCH_kernels.json"),
            serde_json::to_string(&json!({"packed_vs_legacy_speedup": 2.5})).expect("json"),
        )
        .expect("write");
        let doc = run(&dir).expect("index");
        assert_eq!(doc["count"], json!(1));
        assert_eq!(doc["files"][0]["file"], json!("BENCH_kernels.json"));
        assert_eq!(doc["files"][0]["value"], json!(2.5));
        assert!(dir.join(INDEX_FILE).exists(), "manifest written");

        // Re-running over its own output is stable: the index excludes itself.
        let again = run(&dir).expect("re-index");
        assert_eq!(doc, again);

        // A benchmark with no headline rule is a hard error...
        fs::write(dir.join("BENCH_mystery.json"), "{}").expect("write");
        let err = run(&dir).expect_err("unknown benchmark must fail");
        assert!(err.to_string().contains("no headline rule"), "{err}");
        fs::remove_file(dir.join("BENCH_mystery.json")).expect("cleanup");

        // ...and so is a headline path that no longer resolves.
        fs::write(dir.join("BENCH_kernels.json"), "{\"renamed\": 1}").expect("write");
        let err = run(&dir).expect_err("missing headline path must fail");
        assert!(err.to_string().contains("headline path"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
