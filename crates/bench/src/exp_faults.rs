//! **Faults** — the resilience sweep of `docs/RESILIENCE.md`: accuracy and
//! recovery behaviour of the edge pipeline under seed-driven fault
//! injection at increasing rates.
//!
//! Three fault families are swept independently (their schedules come from
//! forked RNG streams, so raising one rate never perturbs another's
//! schedule):
//!
//! * **sensor** — raw eval windows are corrupted ahead of the
//!   `WindowAssembler` (dropout gaps, stuck channels, NaN/Inf spikes,
//!   saturation); tainted windows are quarantined, and the three models of
//!   §6.1.3 (Pre-trained / Re-trained / PILOTE) are scored on the
//!   survivors;
//! * **link** — the cloud→edge deployment download runs over a flaky
//!   weak-cellular link with retry + exponential backoff;
//! * **process** — incremental updates are killed at random kill-points;
//!   the device rolls back to its last-good checkpoint and, under
//!   persistent failures, degrades to the pre-trained deployment.
//!
//! Results land in `BENCH_faults.json` (schema in `EXPERIMENTS.md`). The
//! JSON contains no wall-clock fields: for a fixed seed the file is
//! bit-identical across runs and thread counts.

use crate::report::{write_json, ReportError, Table};
use crate::scale::Scale;
use crate::scenario::{pretrain_base, run_pilote, run_pretrained, run_retrained, Scenario};
use pilote_core::{Pilote, UpdateStage};
use pilote_edge_sim::faults::{
    FlakyLink, LinkFaultRates, RetryPolicy, SensorFaultInjector, SensorFaultRates,
};
use pilote_edge_sim::{DeviceProfile, LinkModel};
use pilote_har_data::dataset::Dataset;
use pilote_har_data::features::extract_batch;
use pilote_har_data::preprocess::Normalizer;
use pilote_har_data::sensors::WINDOW_LEN;
use pilote_har_data::stream::WindowAssembler;
use pilote_har_data::{Activity, Simulator, FEATURE_DIM};
use pilote_magneto::{Deployment, EdgeDevice, UpdateStatus};
use pilote_nn::Checkpoint;
use pilote_tensor::{Rng64, Tensor};
use serde_json::json;
use std::path::Path;

/// Per-family fault rates swept by [`run`].
pub const FAULT_RATES: [f64; 4] = [0.0, 0.1, 0.25, 0.5];

/// Transfer trials per link-fault rate.
const LINK_TRIALS: usize = 24;

/// Incremental updates attempted per process-fault rate.
const PROCESS_UPDATES: usize = 6;

/// Builds the corpus + scenario while keeping the fitted normaliser (the
/// shared `build_scenario` discards it, but fault injection — and the
/// `exp_obs` lifecycle capture — needs it to stream raw windows through
/// the assembler exactly as a device would).
pub(crate) fn faulted_scenario(scale: &Scale, seed: u64) -> (Scenario, Normalizer, Simulator) {
    let mut sim = Simulator::with_seed(seed);
    let counts: Vec<(Activity, usize)> =
        Activity::ALL.iter().map(|&a| (a, scale.per_activity)).collect();
    let raw = sim.raw_dataset(&counts);
    let features = extract_batch(&raw).expect("feature extraction");
    let (norm, features) = Normalizer::fit_transform(&features).expect("normalise");
    let data = Dataset::new(features, raw.labels).expect("dataset");
    let mut rng = Rng64::new(seed ^ 0x5011);
    let (train, test) = data.stratified_split(scale.test_fraction(), &mut rng).expect("split");
    let new_activity = Activity::Run;
    let old_labels: Vec<usize> = Activity::ALL
        .iter()
        .filter(|&&a| a != new_activity)
        .map(|a| a.label())
        .collect();
    let scenario = Scenario {
        new_activity,
        train_old: train.filter_classes(&old_labels).expect("old classes"),
        new_pool: train.filter_classes(&[new_activity.label()]).expect("new class"),
        test,
    };
    (scenario, norm, sim)
}

/// Streams raw eval windows (optionally corrupted) through a fresh
/// assembler and scores each model on the surviving features.
fn sensor_row(
    rate: f64,
    rate_idx: usize,
    seed: u64,
    eval: &[(usize, Tensor)],
    norm: &Normalizer,
    models: &mut [(&'static str, &mut Pilote)],
) -> serde_json::Value {
    let mut injector =
        SensorFaultInjector::new(seed.wrapping_add(rate_idx as u64), SensorFaultRates::uniform(rate));
    let mut assembler =
        WindowAssembler::new(WINDOW_LEN, WINDOW_LEN, 1).with_normalizer(norm.clone());
    let mut survivors: Vec<Tensor> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for (label, window) in eval {
        let mut w = window.clone();
        injector.corrupt_window(&mut w);
        let feats = assembler.push_block(&w).expect("assembler never fails on finite shapes");
        for f in feats {
            survivors.push(f.reshape([1, FEATURE_DIM]).expect("row"));
            labels.push(*label);
        }
    }
    let accuracy: Vec<(&str, f32)> = if survivors.is_empty() {
        models.iter().map(|(name, _)| (*name, 0.0)).collect()
    } else {
        let refs: Vec<&Tensor> = survivors.iter().collect();
        let features = Tensor::vstack(&refs).expect("stack survivors");
        let ds = Dataset::new(features, labels.clone()).expect("survivor dataset");
        models
            .iter_mut()
            .map(|(name, model)| (*name, model.accuracy(&ds).expect("eval")))
            .collect()
    };
    let counts = injector.counts();
    let acc_map = serde_json::Value::Object(
        accuracy.iter().map(|(n, a)| (n.to_string(), json!(a))).collect(),
    );
    json!({
        "rate": rate,
        "windows_seen": injector.windows_seen(),
        "windows_faulted": injector.windows_faulted(),
        "quarantined": assembler.quarantined(),
        "survivors": survivors.len(),
        "injected": {
            "dropout": counts.dropout,
            "stuck": counts.stuck,
            "spike": counts.spike,
            "saturation": counts.saturation,
        },
        "accuracy": acc_map,
    })
}

/// Repeated resilient installs over a flaky link at one fault rate.
fn link_row(rate: f64, rate_idx: usize, seed: u64, deployment: &Deployment) -> serde_json::Value {
    let policy = RetryPolicy::default_edge();
    let mut ok = 0usize;
    let mut aborted = 0usize;
    let mut attempts_total = 0u64;
    for trial in 0..LINK_TRIALS {
        let link_seed = seed ^ ((rate_idx as u64) << 32) ^ trial as u64;
        let mut flaky = FlakyLink::new(
            LinkModel::weak_cellular(),
            link_seed,
            LinkFaultRates::uniform(rate),
        );
        match EdgeDevice::install_resilient(
            DeviceProfile::budget_phone(),
            deployment,
            &mut flaky,
            &policy,
        ) {
            Ok(_) => ok += 1,
            Err(_) => aborted += 1,
        }
        attempts_total += flaky.attempts();
    }
    json!({
        "rate": rate,
        "trials": LINK_TRIALS,
        "installed": ok,
        "aborted": aborted,
        "mean_attempts": attempts_total as f64 / LINK_TRIALS as f64,
    })
}

/// Repeated incremental updates under a crash schedule at one fault rate.
fn process_row(
    rate: f64,
    rate_idx: usize,
    seed: u64,
    deployment: &Deployment,
    scenario: &Scenario,
    scale: &Scale,
) -> serde_json::Value {
    let mut plan =
        pilote_edge_sim::faults::CrashPlan::new(seed ^ ((rate_idx as u64) << 16), rate);
    let mut device = EdgeDevice::install(
        DeviceProfile::budget_phone(),
        deployment,
        &LinkModel::wifi(),
    )
    .expect("install");
    let mut rng = Rng64::new(seed ^ 0xf417);
    let batch = scale.exemplars_per_class.min(scenario.new_pool.len());
    let (mut completed, mut rolled_back, mut degraded) = (0usize, 0usize, 0usize);
    for _ in 0..PROCESS_UPDATES {
        if device.is_degraded() {
            break;
        }
        let new_data = scenario
            .new_pool
            .sample_class(scenario.new_activity.label(), batch, &mut rng)
            .expect("new-class batch");
        for i in 0..new_data.features.rows() {
            device.label_sample(scenario.new_activity.label(), Tensor::vector(new_data.features.row(i)));
        }
        let kill = plan
            .next_kill(UpdateStage::ALL.len())
            .map(|stage| UpdateStage::ALL[stage]);
        match device.update_faulted(scale.exemplars_per_class, kill).expect("update never errors") {
            UpdateStatus::Completed => completed += 1,
            UpdateStatus::RolledBack => rolled_back += 1,
            UpdateStatus::Degraded => degraded += 1,
        }
    }
    let final_accuracy = device.accuracy(&scenario.test).expect("final eval");
    json!({
        "rate": rate,
        "updates": completed + rolled_back + degraded,
        "completed": completed,
        "rolled_back": rolled_back,
        "degraded": degraded,
        "is_degraded": device.is_degraded(),
        "final_classes": device.known_classes().len(),
        "final_accuracy": final_accuracy,
    })
}

/// Runs the three fault sweeps and writes `BENCH_faults.json`. Returns the
/// JSON document (used by the determinism test).
pub fn run(scale: &Scale, seed: u64, out: &Path) -> Result<serde_json::Value, ReportError> {
    eprintln!("[faults] resilience sweep at rates {FAULT_RATES:?}");
    let (scenario, norm, mut sim) = faulted_scenario(scale, seed);
    let mut base = pretrain_base(scenario, scale, seed);
    let new_exemplars = scale.exemplars_per_class.min(base.scenario.new_pool.len());

    // The three models of §6.1.3, updated once on clean data; the sensor
    // sweep then measures how their accuracy holds up on corrupted input.
    let mut pre = base.model.clone_model();
    run_pretrained(&mut pre, &base.scenario, new_exemplars, seed);
    let mut ret = base.model.clone_model();
    run_retrained(&mut ret, &base.scenario, new_exemplars, seed);
    let mut pil = base.model.clone_model();
    run_pilote(&mut pil, &base.scenario, new_exemplars, seed);

    // Raw eval windows (label, [120, 22]) streamed through the assembler.
    let eval_per_activity = (scale.per_activity / 4).max(20);
    let mut eval: Vec<(usize, Tensor)> = Vec::new();
    for &activity in &Activity::ALL {
        let raw = sim.raw_dataset(&[(activity, eval_per_activity)]);
        for w in raw.windows {
            eval.push((activity.label(), w));
        }
    }

    let mut sensor_rows = Vec::new();
    for (i, &rate) in FAULT_RATES.iter().enumerate() {
        let mut models: Vec<(&'static str, &mut Pilote)> = vec![
            ("pretrained", &mut pre),
            ("retrained", &mut ret),
            ("pilote", &mut pil),
        ];
        sensor_rows.push(sensor_row(rate, i, seed, &eval, &norm, &mut models));
    }

    let deployment = Deployment {
        checkpoint: Checkpoint::capture(base.model.net_mut().layers_mut()),
        support: base.model.support().clone(),
        normalizer: norm.clone(),
        config: base.model.config().clone(),
        prototypes: None,
    };
    let link_rows: Vec<serde_json::Value> = FAULT_RATES
        .iter()
        .enumerate()
        .map(|(i, &rate)| link_row(rate, i, seed, &deployment))
        .collect();
    let process_rows: Vec<serde_json::Value> = FAULT_RATES
        .iter()
        .enumerate()
        .map(|(i, &rate)| process_row(rate, i, seed, &deployment, &base.scenario, scale))
        .collect();

    let mut t = Table::new(
        "Sensor faults: accuracy on surviving windows (quarantine up front)",
        &["rate", "quarantined", "survivors", "Pre-trained", "Re-trained", "PILOTE"],
    );
    for row in &sensor_rows {
        let acc = &row["accuracy"];
        t.row(vec![
            format!("{:.2}", row["rate"].as_f64().unwrap_or(0.0)),
            row["quarantined"].as_u64().unwrap_or(0).to_string(),
            row["survivors"].as_u64().unwrap_or(0).to_string(),
            format!("{:.3}", acc["pretrained"].as_f64().unwrap_or(0.0)),
            format!("{:.3}", acc["retrained"].as_f64().unwrap_or(0.0)),
            format!("{:.3}", acc["pilote"].as_f64().unwrap_or(0.0)),
        ]);
    }
    println!("{t}");

    let mut t = Table::new(
        "Link faults: resilient install over weak cellular (retry + backoff)",
        &["rate", "installed", "aborted", "mean attempts"],
    );
    for row in &link_rows {
        t.row(vec![
            format!("{:.2}", row["rate"].as_f64().unwrap_or(0.0)),
            format!(
                "{}/{}",
                row["installed"].as_u64().unwrap_or(0),
                row["trials"].as_u64().unwrap_or(0)
            ),
            row["aborted"].as_u64().unwrap_or(0).to_string(),
            format!("{:.2}", row["mean_attempts"].as_f64().unwrap_or(0.0)),
        ]);
    }
    println!("{t}");

    let mut t = Table::new(
        "Process faults: crash-safe incremental updates (rollback + degradation)",
        &["rate", "completed", "rolled back", "degraded", "classes", "final acc"],
    );
    for row in &process_rows {
        t.row(vec![
            format!("{:.2}", row["rate"].as_f64().unwrap_or(0.0)),
            row["completed"].as_u64().unwrap_or(0).to_string(),
            row["rolled_back"].as_u64().unwrap_or(0).to_string(),
            row["degraded"].as_u64().unwrap_or(0).to_string(),
            row["final_classes"].as_u64().unwrap_or(0).to_string(),
            format!("{:.3}", row["final_accuracy"].as_f64().unwrap_or(0.0)),
        ]);
    }
    println!("{t}");

    let doc = json!({
        "seed": seed,
        "fault_rates": FAULT_RATES.to_vec(),
        "scale": { "per_activity": scale.per_activity, "exemplars_per_class": scale.exemplars_per_class },
        "determinism": "one seed, one fault schedule; no wall-clock fields — byte-identical for a fixed seed at any thread count",
        "sensor": sensor_rows,
        "link": link_rows,
        "process": process_rows,
    });
    write_json(out, "BENCH_faults.json", &doc)?;
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            per_activity: 60,
            rounds: 1,
            exemplars_per_class: 12,
            max_epochs: 2,
            pretrain_epochs: 3,
            ..Scale::default()
        }
    }

    /// Runs the whole sweep twice and compares serialized bytes — the
    /// acceptance check for the determinism contract. Two full sweeps are
    /// minutes-scale even at this tiny sizing, so the tier-1 suite skips
    /// it; `scripts/ci.sh`'s fault-matrix step runs it in release.
    #[test]
    #[ignore = "slow (two full sweeps); run by scripts/ci.sh fault matrix"]
    fn faults_sweep_is_deterministic_and_well_formed() {
        let dir = std::env::temp_dir().join("pilote_faults_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = run(&tiny(), 99, &dir).expect("sweep a");
        let b = run(&tiny(), 99, &dir).expect("sweep b");
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same seed must produce a byte-identical BENCH_faults.json"
        );
        // Zero-rate rows are fault-free; the highest rate must actually bite.
        assert_eq!(a["sensor"][0]["quarantined"], json!(0));
        assert_eq!(a["link"][0]["installed"], json!(LINK_TRIALS));
        assert!(a["sensor"][3]["windows_faulted"].as_u64().unwrap() > 0);
        for row in a["process"].as_array().unwrap() {
            assert!(row["final_classes"].as_u64().unwrap() >= 4);
        }
    }
}
