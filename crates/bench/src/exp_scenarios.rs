//! **Scenarios** — the class-incremental continual-learning comparison
//! measured through session matrices (`BENCH_scenarios.json`; see
//! `docs/METRICS.md`).
//!
//! One fixed class-incremental schedule — pre-train on {Still, Walk},
//! then learn Run, Drive and EScooter one at a time — replayed for the
//! paper's three strategies from the **same** deployment and the **same**
//! pre-drawn sample batches:
//!
//! * **PILOTE** — on-device labelling + the distillation update;
//! * **Re-trained** — contrastive-only fine-tune (no distillation), the
//!   paper's catastrophic-forgetting baseline;
//! * **Pre-trained** — frozen embedding, new exemplars only.
//!
//! Each arm's device carries a session-recording quality monitor
//! ([`pilote_magneto::EdgeDevice::arm_quality_monitor_with_sessions`]),
//! so every model generation stamps one row of a session × task
//! [`pilote_core::AccuracyMatrix`] over a five-class held-out probe. The
//! emitted JSON holds the **full matrices** plus the derived metrics —
//! average-accuracy and forgetting curves, backward/forward transfer —
//! so rival strategies (replay, self-distillation, …) can land as new
//! arms of this one benchmark.
//!
//! A second part replays the PILOTE schedule on a heterogeneous fleet
//! (serve → label → federated round per increment) and rolls the
//! per-device matrices up in device-index order
//! ([`pilote_magneto::Fleet::session_matrix_rollup`]) into fleet
//! mean/percentile curves.
//!
//! Every number is a deterministic function of the seed — virtual clocks
//! from modeled flops, serial fixed-order folds — so the JSON is
//! byte-identical across runs and `PILOTE_THREADS` settings (diffed by
//! the `scripts/ci.sh` scenarios gate, which also asserts PILOTE's final
//! forgetting stays strictly below Re-trained's).

use crate::report::{write_json, ReportError, Table};
use crate::scale::Scale;
use pilote_core::baselines::{pretrained_update, retrained_update};
use pilote_core::{
    Pilote, PiloteConfig, QualityThresholds, SelectionStrategy, SessionSummary, TaskGroup,
};
use pilote_edge_sim::{DeviceProfile, LinkModel};
use pilote_har_data::dataset::Dataset;
use pilote_har_data::features::extract_batch;
use pilote_har_data::preprocess::Normalizer;
use pilote_har_data::{Activity, Simulator};
use pilote_magneto::{Deployment, EdgeDevice, Fleet, FleetConfig};
use pilote_nn::Checkpoint;
use pilote_tensor::{Rng64, Tensor};
use serde_json::json;
use std::path::Path;

/// Devices in the fleet part.
pub const FLEET_DEVICES: usize = 4;

/// Activities the cloud pre-trains on; the other three arrive as
/// increments.
const BASE_ACTIVITIES: [Activity; 2] = [Activity::Still, Activity::Walk];

/// The incremental schedule, learned one activity at a time.
const INCREMENTS: [Activity; 3] = [Activity::Run, Activity::Drive, Activity::EScooter];

/// Users routed into the fleet each serving phase.
const USERS: u64 = 6;

/// Feature windows per served session.
const WINDOWS_PER_SESSION: usize = 4;

/// Labelled samples per increment (also the fleet's update threshold).
const LABELS_PER_INCREMENT: usize = 12;

/// The schedule's task groups: the pre-trained base classes as one task,
/// then one task per increment, in schedule order.
fn task_groups() -> Vec<TaskGroup> {
    let base: Vec<usize> = BASE_ACTIVITIES.iter().map(|a| a.label()).collect();
    let mut tasks = vec![TaskGroup::new("base", &base)];
    tasks.extend(INCREMENTS.iter().map(|a| TaskGroup::new(a.name(), &[a.label()])));
    tasks
}

/// Builds the five-activity corpus, keeping the fitted normaliser for the
/// deployment package, and splits a held-out test set.
fn corpus(scale: &Scale, seed: u64) -> (Dataset, Dataset, Normalizer) {
    let mut sim = Simulator::with_seed(seed);
    let counts: Vec<(Activity, usize)> =
        Activity::ALL.iter().map(|&a| (a, scale.per_activity)).collect();
    let raw = sim.raw_dataset(&counts);
    let features = extract_batch(&raw).expect("feature extraction");
    let (norm, features) = Normalizer::fit_transform(&features).expect("normalise");
    let data = Dataset::new(features, raw.labels).expect("dataset");
    let mut rng = Rng64::new(seed ^ 0x5011);
    let (train, test) = data.stratified_split(scale.test_fraction(), &mut rng).expect("split");
    (train, test, norm)
}

/// Pre-trains on the base activities only (the schedule needs three
/// increments of headroom).
fn pretrain_two_class(train: &Dataset, scale: &Scale, seed: u64) -> Pilote {
    let base_labels: Vec<usize> = BASE_ACTIVITIES.iter().map(|a| a.label()).collect();
    let base_train = train.filter_classes(&base_labels).expect("base classes");
    let mut cfg = PiloteConfig::paper(seed);
    cfg.max_epochs = scale.pretrain_epochs;
    cfg.pairs_per_sample = 8;
    cfg.lr_halve_every = 3;
    let (mut model, _) = Pilote::pretrain(
        cfg,
        &base_train,
        scale.exemplars_per_class,
        SelectionStrategy::Herding,
    )
    .expect("pretrain");
    // Gentler edge schedule than the single-increment benches: three
    // stacked increments (and the Re-trained arm's full pair scheme) sit
    // at the edge of contrastive collapse at the paper's 0.01 — a lower
    // starting rate keeps every arm in the learn-then-forget regime the
    // matrices are meant to measure.
    model.config_mut().max_epochs = scale.max_epochs.min(6);
    model.config_mut().pairs_per_sample = 4;
    model.config_mut().lr_halve_every = 1;
    model.config_mut().initial_lr = 0.003;
    model
}

/// Matrix + derived metrics of one strategy arm, as JSON.
fn arm_json(device: &EdgeDevice) -> (SessionSummary, serde_json::Value) {
    let matrix = device.session_matrix().expect("session recording armed");
    let summary = matrix.summary();
    let doc = json!({
        "matrix": serde_json::to_value(matrix),
        "summary": serde_json::to_value(&summary),
    });
    (summary, doc)
}

/// Runs both parts and writes `BENCH_scenarios.json`. Returns the JSON
/// document (used by the determinism test).
pub fn run(scale: &Scale, seed: u64, out: &Path) -> Result<serde_json::Value, ReportError> {
    eprintln!(
        "[scenarios] 3-strategy class-incremental comparison + {FLEET_DEVICES}-device fleet, \
         {} increments",
        INCREMENTS.len()
    );
    let was_enabled = pilote_obs::enabled();
    pilote_obs::reset();
    pilote_obs::set_enabled(true);

    // --- cloud: one corpus, one two-class pre-train, one package --------
    let (train, test, norm) = corpus(scale, seed);
    let mut model = pretrain_two_class(&train, scale, seed);
    let deployment = Deployment {
        checkpoint: Checkpoint::capture(model.net_mut().layers_mut()),
        support: model.support().clone(),
        normalizer: norm,
        config: model.config().clone(),
        prototypes: None,
    };
    let base_labels: Vec<usize> = BASE_ACTIVITIES.iter().map(|a| a.label()).collect();
    let tasks = task_groups();
    let thresholds = QualityThresholds::default();
    let budget = scale.exemplars_per_class;

    // The probe carries all five activities: not-yet-learned tasks are
    // measured from session 0, which is what makes forward transfer (and
    // the honest NCM zero on unseen labels) visible in the matrix.
    let probe = test.clone();

    // Every arm replays the same increments from the same pre-drawn
    // batches — strategies differ, data never does.
    let mut rng = Rng64::new(seed ^ 0xab_de);
    let batches: Vec<Dataset> = INCREMENTS
        .iter()
        .map(|activity| {
            train
                .filter_classes(&[activity.label()])
                .expect("increment pool")
                .sample_class(activity.label(), LABELS_PER_INCREMENT.max(budget), &mut rng)
                .expect("increment batch")
        })
        .collect();

    let arm = |strategy: &str| -> EdgeDevice {
        let mut device =
            EdgeDevice::install(DeviceProfile::flagship_phone(), &deployment, &LinkModel::wifi())
                .expect("install");
        device
            .arm_quality_monitor_with_sessions(
                probe.clone(),
                &base_labels,
                thresholds,
                tasks.clone(),
            )
            .expect("arm");
        for (activity, batch) in INCREMENTS.iter().zip(&batches) {
            match strategy {
                "pilote" => {
                    for i in 0..batch.features.rows() {
                        device
                            .label_sample(activity.label(), Tensor::vector(batch.features.row(i)));
                    }
                    device.update(budget).expect("pilote update");
                }
                "retrained" => {
                    retrained_update(device.model_mut(), batch, budget).expect("retrained update");
                    device.sample_quality().expect("sample");
                }
                "pretrained" => {
                    pretrained_update(device.model_mut(), batch, budget)
                        .expect("pretrained update");
                    device.sample_quality().expect("sample");
                }
                other => unreachable!("unknown strategy {other}"),
            }
        }
        device
    };
    let (pilote_summary, pilote_doc) = arm_json(&arm("pilote"));
    let (retrained_summary, retrained_doc) = arm_json(&arm("retrained"));
    let (pretrained_summary, pretrained_doc) = arm_json(&arm("pretrained"));

    // --- part 2: the PILOTE schedule on a heterogeneous fleet -----------
    let links = [LinkModel::wifi(), LinkModel::cellular_4g(), LinkModel::weak_cellular()];
    let slots: Vec<(DeviceProfile, LinkModel)> = DeviceProfile::roster(FLEET_DEVICES)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, links[i % links.len()]))
        .collect();
    let config = FleetConfig {
        seed: seed ^ 0x5ce7_4a11,
        serve_chunk: 16,
        federated_every: 0, // rounds run explicitly after each increment
        update_threshold: LABELS_PER_INCREMENT,
        exemplar_budget: budget,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::deploy(slots, &deployment, config).expect("fleet deploy");
    fleet
        .arm_quality_monitors_with_sessions(&probe, &base_labels, thresholds, &tasks)
        .expect("arm fleet");

    let mut session_cursor = 0usize;
    let mut rng = Rng64::new(seed ^ 0xf1e7_5ce7);
    for (step, activity) in INCREMENTS.iter().enumerate() {
        for user in 0..USERS {
            let features = session_slice(&test, &mut session_cursor);
            fleet.serve_session(user, &features).expect("serve session");
        }
        let labeller = step as u64;
        let samples = train
            .filter_classes(&[activity.label()])
            .expect("increment pool")
            .sample_class(activity.label(), LABELS_PER_INCREMENT, &mut rng)
            .expect("increment batch");
        for i in 0..samples.features.rows() {
            fleet
                .label_sample(labeller, activity.label(), Tensor::vector(samples.features.row(i)))
                .expect("label sample");
        }
        fleet.federated_round().expect("federated round");
    }
    let rollup = fleet.session_matrix_rollup();

    // --- report ----------------------------------------------------------
    let fmt_opt = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:+.4}"));
    let mut t = Table::new(
        "Scenarios: session-matrix metrics per strategy (class-incremental schedule)",
        &["strategy", "sessions", "final ACC", "final forgetting", "BWT", "FWT"],
    );
    for (name, s) in [
        ("pilote", &pilote_summary),
        ("retrained", &retrained_summary),
        ("pretrained", &pretrained_summary),
    ] {
        t.row(vec![
            name.to_string(),
            s.sessions.to_string(),
            format!("{:.4}", s.average_accuracy),
            format!("{:.4}", s.final_forgetting),
            fmt_opt(s.backward_transfer),
            fmt_opt(s.forward_transfer),
        ]);
    }
    println!("{t}");
    println!(
        "A/B split — PILOTE final forgetting {:.4} vs Re-trained {:.4}; fleet mean curve {:?}",
        pilote_summary.final_forgetting,
        retrained_summary.final_forgetting,
        rollup.mean_forgetting_curve()
    );

    pilote_obs::set_enabled(was_enabled);

    let doc = json!({
        "seed": seed,
        "schedule": {
            "devices": FLEET_DEVICES,
            "base_activities": BASE_ACTIVITIES.iter().map(|a| a.label()).collect::<Vec<_>>(),
            "increments": INCREMENTS.iter().map(|a| a.label()).collect::<Vec<_>>(),
            "users": USERS,
            "windows_per_session": WINDOWS_PER_SESSION,
            "labels_per_increment": LABELS_PER_INCREMENT,
        },
        "tasks": serde_json::to_value(&tasks),
        "determinism": "no host wall-clock fields: every matrix cell is a fixed-seed probe measurement, curves are serial fixed-order folds, and the fleet rollup merges in device-index order — byte-identical for a fixed seed at any PILOTE_THREADS",
        "strategies": {
            "pilote": pilote_doc,
            "retrained": retrained_doc,
            "pretrained": pretrained_doc,
        },
        "ab_split": {
            "pilote_final_forgetting": pilote_summary.final_forgetting,
            "retrained_final_forgetting": retrained_summary.final_forgetting,
        },
        "fleet": {
            "devices": rollup.devices(),
            "per_device": serde_json::to_value(&rollup.per_device),
            "mean_forgetting_curve": rollup.mean_forgetting_curve(),
            "p50_forgetting_curve": rollup.percentile_forgetting_curve(50.0),
            "p90_forgetting_curve": rollup.percentile_forgetting_curve(90.0),
            "mean_accuracy_curve": rollup.mean_accuracy_curve(),
        },
    });
    write_json(out, "BENCH_scenarios.json", &doc)?;
    Ok(doc)
}

/// Next deterministic `[WINDOWS_PER_SESSION, 28]` slice of the eval pool,
/// wrapping at the end.
fn session_slice(eval: &Dataset, cursor: &mut usize) -> Tensor {
    let rows = eval.features.rows();
    let start = *cursor % rows.saturating_sub(WINDOWS_PER_SESSION).max(1);
    *cursor += WINDOWS_PER_SESSION;
    eval.features
        .slice_rows(start, (start + WINDOWS_PER_SESSION).min(rows))
        .expect("eval slice in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reduced scale for the acceptance test — deep enough that PILOTE's
    /// distillation measurably protects old tasks where Re-trained does
    /// not (same shape as the quality bench's tiny scale).
    fn tiny() -> Scale {
        Scale {
            per_activity: 100,
            rounds: 1,
            exemplars_per_class: 15,
            max_epochs: 3,
            pretrain_epochs: 4,
            ..Scale::default()
        }
    }

    /// Acceptance check: two runs at the same seed must produce identical
    /// JSON, every strategy's matrix must cover the whole schedule
    /// (baseline + one row per increment, one column per task), and the
    /// A/B split must hold — PILOTE's final forgetting strictly below
    /// Re-trained's.
    #[test]
    #[ignore = "slow (two full scenario schedules); run by scripts/ci.sh scenarios step"]
    fn scenario_matrices_are_deterministic_and_split_strategies() {
        let dir = std::env::temp_dir().join("pilote_scenarios_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let a = run(&tiny(), 5, &dir).expect("run a");
        let b = run(&tiny(), 5, &dir).expect("run b");
        assert_eq!(
            serde_json::to_string(&a).expect("json a"),
            serde_json::to_string(&b).expect("json b"),
            "same seed must produce identical scenario JSON"
        );
        let sessions = 1 + INCREMENTS.len();
        for strategy in ["pilote", "retrained", "pretrained"] {
            let s = &a["strategies"][strategy]["summary"];
            assert_eq!(
                s["sessions"],
                json!(sessions),
                "{strategy}: baseline + one session per increment"
            );
            assert_eq!(s["tasks"], json!(1 + INCREMENTS.len()));
            let matrix = &a["strategies"][strategy]["matrix"];
            assert_eq!(matrix["rows"].as_array().expect("rows").len(), sessions);
        }
        let split = &a["ab_split"];
        let pilote = split["pilote_final_forgetting"].as_f64().expect("pilote");
        let retrained = split["retrained_final_forgetting"].as_f64().expect("retrained");
        assert!(
            pilote < retrained,
            "PILOTE must forget strictly less than Re-trained: {pilote} vs {retrained}"
        );
        // Fleet rollup: the mean curve spans at least the schedule (devices
        // stamp extra sessions for federated installs on top of their own
        // incremental updates).
        assert_eq!(a["fleet"]["devices"], json!(FLEET_DEVICES));
        let mean = a["fleet"]["mean_forgetting_curve"].as_array().expect("curve");
        assert!(mean.len() >= sessions, "fleet curve spans the whole schedule: {}", mean.len());
    }
}
