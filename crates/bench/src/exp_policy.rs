//! **Policy** — the closed quality loop on a fleet
//! (`BENCH_policy.json`; see `docs/POLICY.md`).
//!
//! One pre-training, two arms at the same seed with the same poison
//! schedule — the only difference is whether the self-healing policy
//! ([`pilote_magneto::FleetPolicy`]) is enabled:
//!
//! * **policy off** — a poisoned contributor's junk parameters are
//!   averaged into the federated round and installed fleet-wide; every
//!   armed monitor alerts at each subsequent generation and the damage
//!   never heals.
//! * **policy on** — the visibly-alerting device is quarantined and
//!   rolled back *before* collection; the silently-poisoned device's
//!   junk reaches the merge once, the canary stage alerts, the rollout
//!   halts (installs restored exactly), and suspect screening catches
//!   the culprit. Repeat offenses escalate rollback → cloud re-anchor →
//!   degrade-to-pretrained, so the arm ends with strictly fewer
//!   forgetting alerts and an intact fleet.
//!
//! All timestamps in the report are flop-modeled virtual seconds — never
//! host wall time — so the JSON is byte-identical for a fixed seed at
//! any `PILOTE_THREADS` (diffed by `scripts/ci.sh`).

use crate::report::{write_json, ReportError, Table};
use crate::scale::Scale;
use pilote_core::{
    AdaptiveThresholds, Pilote, PiloteConfig, QualityThresholds, SelectionStrategy,
};
use pilote_edge_sim::{DeviceProfile, LinkModel};
use pilote_har_data::dataset::Dataset;
use pilote_har_data::features::extract_batch;
use pilote_har_data::preprocess::Normalizer;
use pilote_har_data::{Activity, Simulator};
use pilote_magneto::{Deployment, EdgeDevice, Fleet, FleetConfig, PolicyConfig, RolloutStage};
use pilote_nn::{Checkpoint, Layer};
use pilote_tensor::Rng64;
use serde_json::json;
use std::path::Path;

/// Devices in the policy fleet.
pub const FLEET_DEVICES: usize = 6;

/// Activities the cloud pre-trains on (the probe set covers both).
const BASE_ACTIVITIES: [Activity; 2] = [Activity::Still, Activity::Walk];

/// Federated rounds driven by the schedule.
const ROUNDS: usize = 6;

/// The device whose poisoning is *visible* (it samples its own monitor).
const VISIBLE_DEVICE: usize = 1;

/// The device that poisons *silently* (never samples — only the canary
/// stage or suspect screening can catch it), then re-offends twice.
const SILENT_DEVICE: usize = 4;

/// Builds the base-activity corpus and a held-out probe set.
fn corpus(scale: &Scale, seed: u64) -> (Dataset, Dataset, Normalizer) {
    let mut sim = Simulator::with_seed(seed);
    let counts: Vec<(Activity, usize)> =
        BASE_ACTIVITIES.iter().map(|&a| (a, scale.per_activity)).collect();
    let raw = sim.raw_dataset(&counts);
    let features = extract_batch(&raw).expect("feature extraction");
    let (norm, features) = Normalizer::fit_transform(&features).expect("normalise");
    let data = Dataset::new(features, raw.labels).expect("dataset");
    let mut rng = Rng64::new(seed ^ 0x70_11);
    let (train, test) = data.stratified_split(scale.test_fraction(), &mut rng).expect("split");
    (train, test, norm)
}

/// Pre-trains the two-class base model that every device deploys.
fn pretrain(train: &Dataset, scale: &Scale, seed: u64) -> Pilote {
    let mut cfg = PiloteConfig::paper(seed);
    cfg.max_epochs = scale.pretrain_epochs;
    cfg.pairs_per_sample = 8;
    cfg.lr_halve_every = 3;
    let (model, _) =
        Pilote::pretrain(cfg, train, scale.exemplars_per_class, SelectionStrategy::Herding)
            .expect("pretrain");
    model
}

/// Overwrites a device's net parameters with a fixed junk pattern and
/// commits the damage (prototypes recomputed through the ruined net) —
/// the model-quality failure the loop must contain. Deterministic: no
/// RNG, no host state.
fn poison(device: &mut EdgeDevice) {
    let model = device.model_mut();
    for (p, _) in model.net_mut().layers_mut().params_and_grads() {
        for (k, v) in p.as_mut_slice().iter_mut().enumerate() {
            *v = ((k % 7) as f32 - 3.0) * 1.5;
        }
    }
    model.refresh_prototypes().expect("refresh prototypes");
}

/// Forgetting alerts accumulated across a fleet's quality reports.
fn forgetting_alerts(fleet: &Fleet) -> usize {
    (0..fleet.len())
        .map(|i| {
            fleet
                .device(i)
                .quality_reports()
                .iter()
                .flat_map(|r| r.alerts.iter())
                .filter(|a| a.rule.name() == "forgetting")
                .count()
        })
        .sum()
}

/// Mean old-class probe accuracy over each device's last report.
fn mean_final_accuracy(fleet: &Fleet) -> f64 {
    let sum: f64 = (0..fleet.len())
        .map(|i| {
            fleet.device(i).quality_reports().last().expect("armed baseline").old_class_accuracy
                as f64
        })
        .sum();
    sum / fleet.len() as f64
}

/// One arm of the A/B: deploy, arm monitors, optionally enable the
/// policy, then drive the shared poison schedule. Returns the arm's JSON.
fn run_arm(
    deployment: &Deployment,
    probe: &Dataset,
    scale: &Scale,
    seed: u64,
    policy_on: bool,
) -> Result<serde_json::Value, ReportError> {
    let links = [LinkModel::wifi(), LinkModel::cellular_4g(), LinkModel::weak_cellular()];
    let slots: Vec<(DeviceProfile, LinkModel)> = DeviceProfile::roster(FLEET_DEVICES)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, links[i % links.len()]))
        .collect();
    let config = FleetConfig {
        seed: seed ^ 0x90_11c7,
        federated_every: 0, // rounds run explicitly by the schedule
        exemplar_budget: scale.exemplars_per_class,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::deploy(slots, deployment, config).expect("fleet deploy");
    let base_labels: Vec<usize> = BASE_ACTIVITIES.iter().map(|a| a.label()).collect();
    fleet
        .arm_quality_monitors(probe, &base_labels, QualityThresholds::default())
        .expect("arm fleet");
    if policy_on {
        fleet.enable_policy(PolicyConfig::default(), deployment.clone()).expect("enable policy");
        fleet.set_adaptive_thresholds(AdaptiveThresholds::default());
    }

    // The shared schedule: one clean round to fold stage baselines, a
    // double poisoning (one visible, one silent), a recovery round, then
    // the silent device re-offends twice — visibly, each after a clean
    // install sample so the forgetting rule has a fresh reference —
    // before a final clean round.
    for round in 0..ROUNDS {
        match round {
            1 => {
                poison(fleet.device_mut(VISIBLE_DEVICE));
                fleet.device_mut(VISIBLE_DEVICE).sample_quality().expect("sample visible");
                poison(fleet.device_mut(SILENT_DEVICE));
            }
            3 | 4 => {
                poison(fleet.device_mut(SILENT_DEVICE));
                fleet.device_mut(SILENT_DEVICE).sample_quality().expect("sample repeat");
            }
            _ => {}
        }
        fleet.federated_round().expect("federated round");
    }

    let devices: Vec<serde_json::Value> = (0..fleet.len())
        .map(|i| {
            let reports = fleet.device(i).quality_reports();
            let last = reports.last().expect("armed baseline");
            json!({
                "device": fleet.device(i).profile().name.clone(),
                "health": fleet.policy().map(|p| format!("{:?}", p.health(i))),
                "reports": reports.len(),
                "final_old_class_accuracy": last.old_class_accuracy,
                "final_forgetting": last.forgetting,
                "alerts": fleet.device(i).log().alert_count(),
                "virtual_now_s": fleet.device(i).log().now(),
            })
        })
        .collect();
    let arm = json!({
        "forgetting_alerts": forgetting_alerts(&fleet),
        "mean_final_old_class_accuracy": mean_final_accuracy(&fleet),
        "federated_rounds_completed": fleet.federated_rounds(),
        "policy": fleet.policy().map(|p| json!({
            "summary": serde_json::to_value(&p.summary()),
            "stage_plan": {
                "canary": p.plan().stage(RolloutStage::Canary),
                "cohort": p.plan().stage(RolloutStage::Cohort),
                "fleet": p.plan().stage(RolloutStage::Fleet),
            },
        })),
        "devices": devices,
    });
    Ok(arm)
}

/// Runs both arms and writes `BENCH_policy.json`. Returns the JSON
/// document (used by the determinism test and `scripts/ci.sh`).
pub fn run(scale: &Scale, seed: u64, out: &Path) -> Result<serde_json::Value, ReportError> {
    eprintln!(
        "[policy] closed-loop A/B: {FLEET_DEVICES}-device fleet, {ROUNDS} rounds, \
         poison devices {VISIBLE_DEVICE} (visible) and {SILENT_DEVICE} (silent ×3)"
    );
    let was_enabled = pilote_obs::enabled();
    pilote_obs::reset();
    pilote_obs::set_enabled(true);

    let (train, test, norm) = corpus(scale, seed);
    let mut model = pretrain(&train, scale, seed);
    let deployment = Deployment {
        checkpoint: Checkpoint::capture(model.net_mut().layers_mut()),
        support: model.support().clone(),
        normalizer: norm,
        config: model.config().clone(),
        prototypes: None,
    };
    let base_labels: Vec<usize> = BASE_ACTIVITIES.iter().map(|a| a.label()).collect();
    let probe = test.filter_classes(&base_labels).expect("probe classes");

    let off = run_arm(&deployment, &probe, scale, seed, false)?;
    let on = run_arm(&deployment, &probe, scale, seed, true)?;
    pilote_obs::set_enabled(was_enabled);

    let mut t = Table::new(
        "Policy: closed-loop self-healing vs. open-loop (same seed, same poison)",
        &["arm", "forgetting alerts", "mean old-class acc", "rounds", "halts", "degraded"],
    );
    let count = |v: &serde_json::Value| {
        v.as_u64().map(|n| n.to_string()).unwrap_or_else(|| "-".to_string())
    };
    for (name, arm) in [("policy off", &off), ("policy on", &on)] {
        t.row(vec![
            name.to_string(),
            count(&arm["forgetting_alerts"]),
            format!("{:.4}", arm["mean_final_old_class_accuracy"].as_f64().unwrap_or(0.0)),
            count(&arm["federated_rounds_completed"]),
            count(&arm["policy"]["summary"]["halts"]),
            count(&arm["policy"]["summary"]["degrades"]),
        ]);
    }
    println!("{t}");

    let doc = json!({
        "seed": seed,
        "schedule": {
            "devices": FLEET_DEVICES,
            "rounds": ROUNDS,
            "visible_device": VISIBLE_DEVICE,
            "silent_device": SILENT_DEVICE,
            "probe_rows": probe.len(),
        },
        "determinism": "no host wall-clock fields: repairs, re-anchors and staged installs advance the flop-modeled virtual clock only — byte-identical for a fixed seed at any PILOTE_THREADS",
        "policy_off": off,
        "policy_on": on,
    });
    write_json(out, "BENCH_policy.json", &doc)?;
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reduced scale for the acceptance test (the demo needs a competent
    /// two-class base model, not a converged one).
    fn tiny() -> Scale {
        Scale {
            per_activity: 100,
            rounds: 1,
            exemplars_per_class: 15,
            max_epochs: 3,
            pretrain_epochs: 4,
            ..Scale::default()
        }
    }

    /// Acceptance check: two runs at the same seed must produce identical
    /// JSON, and the closed loop must demonstrably win — the policy arm
    /// quarantines at canary, halts, repairs, and ends with strictly
    /// fewer forgetting alerts than the open-loop arm.
    #[test]
    #[ignore = "slow (two full policy A/Bs); run by scripts/ci.sh policy step"]
    fn policy_ab_is_deterministic_and_the_loop_closes() {
        let dir = std::env::temp_dir().join("pilote_policy_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let a = run(&tiny(), 9, &dir).expect("run a");
        let b = run(&tiny(), 9, &dir).expect("run b");
        assert_eq!(
            serde_json::to_string(&a).expect("json a"),
            serde_json::to_string(&b).expect("json b"),
            "same seed must produce identical policy JSON"
        );
        let off = &a["policy_off"];
        let on = &a["policy_on"];
        assert!(
            on["forgetting_alerts"].as_u64().expect("on alerts")
                < off["forgetting_alerts"].as_u64().expect("off alerts"),
            "the closed loop must end with strictly fewer forgetting alerts: {a:?}"
        );
        let summary = &on["policy"]["summary"];
        assert!(summary["halts"].as_u64().expect("halts") >= 1, "canary must halt: {summary:?}");
        assert!(
            summary["quarantines"].as_u64().expect("quarantines") >= 2,
            "both poisoned devices must be quarantined: {summary:?}"
        );
        assert_eq!(summary["degrades"], json!(1), "the repeat offender must degrade: {summary:?}");
        assert!(
            on["mean_final_old_class_accuracy"].as_f64().expect("on acc")
                > off["mean_final_old_class_accuracy"].as_f64().expect("off acc"),
            "self-healing must preserve fleet accuracy: {a:?}"
        );
    }
}

