//! Text tables and JSON result files.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A result-file I/O failure, carrying the path that could not be written
/// so `repro` can report *which* file failed before exiting non-zero.
#[derive(Debug)]
pub struct ReportError {
    /// The file or directory the operation targeted.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot write {}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for ReportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption, printed above the rows.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (ragged rows are padded with empty cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<1$}|", "", w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats `mean ± std` the way Table 2 prints it.
pub fn pm(mean: f32, std: f32) -> String {
    format!("{mean:.4}±{std:.4}")
}

/// Resolves (and creates) the output directory, default `results/`.
pub fn results_dir(out: Option<&str>) -> Result<PathBuf, ReportError> {
    let dir = PathBuf::from(out.unwrap_or("results"));
    fs::create_dir_all(&dir).map_err(|source| ReportError { path: dir.clone(), source })?;
    Ok(dir)
}

/// Writes pretty-printed JSON next to the text output. On failure the
/// error names the exact path, and callers propagate it up to `repro`,
/// which exits non-zero instead of panicking.
pub fn write_json(dir: &Path, name: &str, value: &serde_json::Value) -> Result<(), ReportError> {
    let path = dir.join(name);
    let body = serde_json::to_string_pretty(value).expect("serialise");
    fs::write(&path, body).map_err(|source| ReportError { path: path.clone(), source })?;
    println!("  → wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| long-name |"));
        // aligned: "a" padded to width of "long-name"
        assert!(s.contains("| a         |"));
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new("ragged", &["a", "b", "c"]);
        t.row(vec!["x".into()]);
        let s = t.to_string();
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn pm_formats_like_the_paper() {
        assert_eq!(pm(0.9372, 0.0319), "0.9372±0.0319");
    }

    #[test]
    fn results_dir_creates() {
        let dir = std::env::temp_dir().join("pilote_test_results");
        let _ = std::fs::remove_dir_all(&dir);
        let d = results_dir(dir.to_str()).expect("results dir");
        assert!(d.exists());
        write_json(&d, "x.json", &serde_json::json!({"ok": true})).expect("write");
        assert!(d.join("x.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_json_error_names_the_path() {
        let missing = Path::new("/nonexistent-pilote-dir");
        let err = write_json(missing, "out.json", &serde_json::json!({}))
            .expect_err("write into a missing directory must fail");
        let msg = err.to_string();
        assert!(msg.contains("out.json"), "error must name the file: {msg}");
        assert!(std::error::Error::source(&err).is_some());
    }
}
