//! Ablations A1–A4: the design choices DESIGN.md calls out.
//!
//! * **A1 α sweep** — α = 0 is the re-trained baseline, α = 1 freezes
//!   learning entirely; the paper fixes α = 0.5.
//! * **A2 margin sweep** — the contrastive margin `m` of Eq. 2, in both
//!   the paper's `m² − d²` form and the Hadsell `(m − d)²` form.
//! * **A3 pair scheme** — the §5.2 reduced pair population vs full pairs:
//!   accuracy and update wall-time.
//! * **A4 strategy comparison** — PILOTE vs the canonical CL families.

use crate::report::{write_json, ReportError, Table};
use crate::scale::Scale;
use crate::scenario::{build_scenario, pretrain_base, run_pilote, PretrainedBase};
use pilote_core::pairs::PairScheme;
use pilote_core::pilote::{train_embedding, TrainOptions};
use pilote_core::strategies::{run_strategy, Strategy};
use pilote_har_data::Activity;
use pilote_nn::loss::ContrastiveForm;
use serde_json::json;
use std::path::Path;
use std::time::Instant;

fn base_for(scale: &Scale, seed: u64) -> PretrainedBase {
    let scenario = build_scenario(Activity::Run, scale, seed);
    pretrain_base(scenario, scale, seed)
}

/// A1: accuracy as a function of the balancing weight α.
pub fn alpha_sweep(scale: &Scale, seed: u64, out: &Path) -> Result<Vec<(f32, f32, f32)>, ReportError> {
    let base = base_for(scale, seed);
    let n_new = scale.exemplars_per_class;
    let mut rows = Vec::new();
    for &alpha in &[0.0f32, 0.25, 0.5, 0.75, 0.9] {
        eprintln!("[ablate-alpha] alpha = {alpha}");
        let mut model = base.model.clone_model();
        model.config_mut().alpha = alpha;
        let (run, _) = run_pilote(&mut model, &base.scenario, n_new, seed ^ 0xa1);
        rows.push((alpha, run.accuracy, run.old_accuracy));
    }
    let mut t = Table::new("A1: balancing weight α", &["alpha", "accuracy", "old-class accuracy"]);
    for &(a, acc, old) in &rows {
        t.row(vec![format!("{a:.2}"), format!("{acc:.4}"), format!("{old:.4}")]);
    }
    println!("{t}");
    write_json(
        out,
        "ablate_alpha.json",
        &json!(rows.iter().map(|&(a, acc, old)| json!({"alpha": a, "accuracy": acc, "old_accuracy": old})).collect::<Vec<_>>()),
    )?;
    Ok(rows)
}

/// A2: accuracy as a function of the contrastive margin and loss form.
pub fn margin_sweep(scale: &Scale, seed: u64, out: &Path) -> Result<Vec<(String, f32, f32)>, ReportError> {
    let base = base_for(scale, seed);
    let n_new = scale.exemplars_per_class;
    let mut rows = Vec::new();
    for form in [ContrastiveForm::SquaredMargin, ContrastiveForm::Hadsell] {
        for &margin in &[1.0f32, 2.0, 4.0, 8.0] {
            eprintln!("[ablate-margin] {form:?} m = {margin}");
            let mut model = base.model.clone_model();
            model.config_mut().margin = margin;
            model.config_mut().contrastive_form = form;
            let (run, _) = run_pilote(&mut model, &base.scenario, n_new, seed ^ 0xa2);
            rows.push((format!("{form:?}/m={margin}"), margin, run.accuracy));
        }
    }
    let mut t = Table::new("A2: contrastive margin & form", &["configuration", "accuracy"]);
    for (name, _, acc) in &rows {
        t.row(vec![name.clone(), format!("{acc:.4}")]);
    }
    println!("{t}");
    write_json(
        out,
        "ablate_margin.json",
        &json!(rows.iter().map(|(n, m, a)| json!({"config": n, "margin": m, "accuracy": a})).collect::<Vec<_>>()),
    )?;
    Ok(rows)
}

/// A3: the reduced pair scheme of §5.2 vs full pairs — accuracy and
/// wall-time of the incremental update.
pub fn pair_scheme_sweep(
    scale: &Scale,
    seed: u64,
    out: &Path,
) -> Result<Vec<(String, f32, f64)>, ReportError> {
    let base = base_for(scale, seed);
    let n_new = scale.exemplars_per_class;
    let mut rows = Vec::new();
    for scheme in [PairScheme::Reduced, PairScheme::Full] {
        eprintln!("[ablate-pairs] scheme {}", scheme.name());
        let mut model = base.model.clone_model();
        model.reseed(seed ^ 0xa3);
        // Re-implement the update with an explicit scheme (learn_new_class
        // hard-codes Reduced, which is PILOTE's definition).
        let mut rng = model.fork_rng();
        let new_data = base
            .scenario
            .new_pool
            .sample_class(base.scenario.new_activity.label(), n_new, &mut rng)
            .expect("sample");
        let d0 = model.support().to_dataset().expect("support");
        let combined = d0.concat(&new_data).expect("concat");
        let mut is_new = vec![false; d0.len()];
        is_new.extend(std::iter::repeat_n(true, new_data.len()));
        let mut teacher = model.net_mut().clone_frozen();
        let cfg = model.config().clone();
        let start = Instant::now();
        let opts = TrainOptions {
            alpha: cfg.alpha,
            teacher: Some(&mut teacher),
            distill_rows: (0..d0.len()).collect(),
            scheme,
            freeze_bn: true,
        };
        train_embedding(model.net_mut(), &combined, &is_new, &cfg, opts, &mut rng).expect("train");
        let seconds = start.elapsed().as_secs_f64();
        for label in new_data.classes() {
            let class = new_data.filter_classes(&[label]).expect("class");
            model.support_mut().put_class(label, class.features);
        }
        model.refresh_prototypes().expect("prototypes");
        let acc = model.accuracy(&base.scenario.test).expect("eval");
        rows.push((scheme.name().to_string(), acc, seconds));
    }
    let mut t = Table::new("A3: pair scheme (§5.2 reduction)", &["scheme", "accuracy", "update seconds"]);
    for (name, acc, secs) in &rows {
        t.row(vec![name.clone(), format!("{acc:.4}"), format!("{secs:.2}")]);
    }
    println!("{t}");
    write_json(
        out,
        "ablate_pairs.json",
        &json!(rows.iter().map(|(n, a, s)| json!({"scheme": n, "accuracy": a, "seconds": s})).collect::<Vec<_>>()),
    )?;
    Ok(rows)
}

/// A4: PILOTE vs the canonical continual-learning strategy families.
pub fn strategy_comparison(
    scale: &Scale,
    seed: u64,
    out: &Path,
) -> Result<Vec<(String, f32, f32, f32)>, ReportError> {
    let base = base_for(scale, seed);
    let n_new = scale.exemplars_per_class;
    let mut rng = pilote_tensor::Rng64::new(seed ^ 0xa4);
    let new_data = base
        .scenario
        .new_pool
        .sample_class(base.scenario.new_activity.label(), n_new, &mut rng)
        .expect("sample");
    let new_label = base.scenario.new_activity.label();
    let mut rows = Vec::new();

    // PILOTE itself first.
    let mut pil = base.model.clone_model();
    let (run, _) = run_pilote(&mut pil, &base.scenario, n_new, seed ^ 0xa4);
    rows.push(("pilote".to_string(), run.accuracy, run.old_accuracy, run.new_accuracy));

    for strategy in [
        Strategy::NaiveFinetune,
        Strategy::Replay { budget: n_new },
        Strategy::GDumb { budget: n_new },
        Strategy::Ewc { lambda: 50.0 },
        Strategy::Lwf { temperature: 2.0 },
    ] {
        eprintln!("[ablate-strategies] {}", strategy.name());
        let outcome = run_strategy(strategy, &base.model, &new_data, &base.scenario.test, new_label)
            .expect("strategy");
        rows.push((outcome.strategy, outcome.accuracy, outcome.old_accuracy, outcome.new_accuracy));
    }

    let mut t = Table::new(
        "A4: continual-learning strategy comparison (new class Run)",
        &["strategy", "accuracy", "old-class acc", "new-class acc"],
    );
    for (name, acc, old, new) in &rows {
        t.row(vec![name.clone(), format!("{acc:.4}"), format!("{old:.4}"), format!("{new:.4}")]);
    }
    println!("{t}");
    write_json(
        out,
        "ablate_strategies.json",
        &json!(rows
            .iter()
            .map(|(n, a, o, w)| json!({"strategy": n, "accuracy": a, "old_accuracy": o, "new_accuracy": w}))
            .collect::<Vec<_>>()),
    )?;
    Ok(rows)
}
