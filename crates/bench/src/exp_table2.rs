//! **Table 2** — accuracy of the pre-trained / re-trained / PILOTE models
//! on the five new-class scenarios, mean ± std over repetition rounds.

use crate::report::{pm, write_json, ReportError, Table};
use crate::scale::Scale;
use crate::scenario::{build_scenario, pretrain_base, run_pilote, run_pretrained, run_retrained};
use pilote_core::metrics::mean_std;
use pilote_har_data::Activity;
use serde_json::json;
use std::path::Path;

/// Result row for one scenario.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The new class of the scenario.
    pub new_class: String,
    /// Pre-trained accuracy (deterministic: one pre-trained model).
    pub pretrained: f32,
    /// Re-trained mean ± std.
    pub retrained: (f32, f32),
    /// PILOTE mean ± std.
    pub pilote: (f32, f32),
}

/// Runs the full Table 2 protocol.
pub fn run(scale: &Scale, seed: u64, out: &Path) -> Result<Vec<Table2Row>, ReportError> {
    let mut rows = Vec::new();
    for (si, &activity) in Activity::ALL.iter().enumerate() {
        eprintln!("[table2] scenario {}/5: new class {}", si + 1, activity);
        let scenario = build_scenario(activity, scale, seed + si as u64);
        let base = pretrain_base(scenario, scale, seed + si as u64);
        let n_new = scale.exemplars_per_class;

        // Pre-trained: deterministic given the base, one round.
        let mut pre = base.model.clone_model();
        let pre_run = run_pretrained(&mut pre, &base.scenario, n_new, seed ^ 0xbeef);

        let mut retr_acc = Vec::with_capacity(scale.rounds);
        let mut pil_acc = Vec::with_capacity(scale.rounds);
        for round in 0..scale.rounds {
            let round_seed = seed + 1000 * (round as u64 + 1) + si as u64;
            let mut m = base.model.clone_model();
            retr_acc.push(run_retrained(&mut m, &base.scenario, n_new, round_seed).accuracy);
            let mut m = base.model.clone_model();
            pil_acc.push(run_pilote(&mut m, &base.scenario, n_new, round_seed).0.accuracy);
            eprintln!(
                "[table2]   round {}: re-trained {:.4}, pilote {:.4}",
                round + 1,
                retr_acc[round],
                pil_acc[round]
            );
        }
        rows.push(Table2Row {
            new_class: activity.name().to_string(),
            pretrained: pre_run.accuracy,
            retrained: mean_std(&retr_acc),
            pilote: mean_std(&pil_acc),
        });
    }

    let mut table = Table::new(
        "Table 2: accuracy without and with considering catastrophic forgetting",
        &["New class", "Pre-trained", "Re-trained", "PILOTE"],
    );
    for r in &rows {
        table.row(vec![
            r.new_class.clone(),
            format!("{:.4}", r.pretrained),
            pm(r.retrained.0, r.retrained.1),
            pm(r.pilote.0, r.pilote.1),
        ]);
    }
    println!("{table}");
    write_json(
        out,
        "table2.json",
        &json!(rows
            .iter()
            .map(|r| json!({
                "new_class": r.new_class,
                "pretrained": r.pretrained,
                "retrained_mean": r.retrained.0,
                "retrained_std": r.retrained.1,
                "pilote_mean": r.pilote.0,
                "pilote_std": r.pilote.1,
            }))
            .collect::<Vec<_>>()),
    )?;
    Ok(rows)
}
