//! Scenario construction and the three-model protocol of §6.1.3.
//!
//! Every experiment follows the same shape: pick one activity as the *new
//! class*, pre-train on the remaining four, then update with one of the
//! three strategies (pre-trained / re-trained / PILOTE) and evaluate on a
//! held-out test set spanning all five activities. The pre-trained model
//! is shared across strategies and rounds, exactly as in the paper
//! ("the re-trained model and PILOTE in each scenario are based on the
//! same pre-trained model").

use crate::scale::Scale;
use pilote_core::baselines::{pretrained_update, retrained_update};
use pilote_core::pilote::TrainReport;
use pilote_core::{Pilote, PiloteConfig, SelectionStrategy, SupportSet};
use pilote_har_data::dataset::generate_features;
use pilote_har_data::{Activity, Dataset};
use pilote_tensor::Rng64;
use std::time::Instant;

/// One incremental-learning scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The held-out activity learned on the edge.
    pub new_activity: Activity,
    /// Training data of the four old activities.
    pub train_old: Dataset,
    /// Training pool of the new activity (edge samples are drawn here).
    pub new_pool: Dataset,
    /// Test set over all five activities (30% stratified hold-out).
    pub test: Dataset,
}

impl Scenario {
    /// Old-class labels of this scenario.
    pub fn old_labels(&self) -> Vec<usize> {
        Activity::ALL
            .iter()
            .filter(|&&a| a != self.new_activity)
            .map(|a| a.label())
            .collect()
    }

    /// Test subset restricted to the old classes.
    pub fn old_test(&self) -> Dataset {
        self.test.filter_classes(&self.old_labels()).expect("labels exist")
    }

    /// Test subset restricted to the new class.
    pub fn new_test(&self) -> Dataset {
        self.test.filter_classes(&[self.new_activity.label()]).expect("label exists")
    }
}

/// Simulates the campaign and splits it into a scenario for
/// `new_activity`.
pub fn build_scenario(new_activity: Activity, scale: &Scale, seed: u64) -> Scenario {
    let mut sim = pilote_har_data::Simulator::with_seed(seed);
    let counts: Vec<(Activity, usize)> =
        Activity::ALL.iter().map(|&a| (a, scale.per_activity)).collect();
    let (data, _norm) = generate_features(&mut sim, &counts).expect("simulation");
    let mut rng = Rng64::new(seed ^ 0x5011);
    let (train, test) = data.stratified_split(scale.test_fraction(), &mut rng).expect("split");
    let old_labels: Vec<usize> = Activity::ALL
        .iter()
        .filter(|&&a| a != new_activity)
        .map(|a| a.label())
        .collect();
    Scenario {
        new_activity,
        train_old: train.filter_classes(&old_labels).expect("old classes"),
        new_pool: train.filter_classes(&[new_activity.label()]).expect("new class"),
        test,
    }
}

/// A pre-trained starting point shared by all strategies of a scenario.
pub struct PretrainedBase {
    /// The scenario this base was trained for.
    pub scenario: Scenario,
    /// The pre-trained model (support set at the scale's default budget).
    pub model: Pilote,
    /// Pre-training report.
    pub report: TrainReport,
}

/// Pre-trains on the scenario's old classes (cloud phase).
pub fn pretrain_base(scenario: Scenario, scale: &Scale, seed: u64) -> PretrainedBase {
    let mut cfg = PiloteConfig::paper(seed);
    cfg.max_epochs = scale.pretrain_epochs;
    cfg.pairs_per_sample = 8;
    // Cloud pre-training decays slowly enough to actually converge; the
    // edge updates below revert to the paper's halve-every-epoch schedule.
    cfg.lr_halve_every = 3;
    let (mut model, report) = Pilote::pretrain(
        cfg,
        &scenario.train_old,
        scale.exemplars_per_class,
        SelectionStrategy::Herding,
    )
    .expect("pretrain");
    // Edge updates run under the edge budget, not the cloud budget.
    model.config_mut().max_epochs = scale.max_epochs;
    model.config_mut().pairs_per_sample = 4;
    model.config_mut().lr_halve_every = 1;
    PretrainedBase { scenario, model, report }
}

/// Re-selects the base model's support set at a different per-class budget
/// and/or strategy (used by the Fig. 6 sweep), returning a fresh clone.
pub fn with_support_budget(
    base: &PretrainedBase,
    exemplars_per_class: usize,
    strategy: SelectionStrategy,
    seed: u64,
) -> Pilote {
    let mut model = base.model.clone_model();
    model.reseed(seed);
    let mut rng = model.fork_rng();
    let support = SupportSet::select_from(
        &base.scenario.train_old,
        model.net_mut(),
        exemplars_per_class,
        strategy,
        &mut rng,
    )
    .expect("support selection");
    *model.support_mut() = support;
    model.refresh_prototypes().expect("prototypes");
    model
}

/// Metrics of one strategy run on one scenario.
#[derive(Debug, Clone, Copy)]
pub struct ModelRun {
    /// Accuracy over the full five-class test set.
    pub accuracy: f32,
    /// Accuracy restricted to the four old classes.
    pub old_accuracy: f32,
    /// Accuracy restricted to the new class.
    pub new_accuracy: f32,
    /// Wall-clock seconds of the update (0 for the pre-trained strategy).
    pub seconds: f64,
    /// Training epochs consumed.
    pub epochs: usize,
}

fn evaluate(model: &mut Pilote, scenario: &Scenario) -> ModelRun {
    ModelRun {
        accuracy: model.accuracy(&scenario.test).expect("test eval"),
        old_accuracy: model.accuracy(&scenario.old_test()).expect("old eval"),
        new_accuracy: model.accuracy(&scenario.new_test()).expect("new eval"),
        seconds: 0.0,
        epochs: 0,
    }
}

/// Draws the round's new-class sample set from the pool.
fn draw_new_data(scenario: &Scenario, n: usize, seed: u64) -> Dataset {
    let mut rng = Rng64::new(seed ^ 0xd21a);
    scenario
        .new_pool
        .sample_class(scenario.new_activity.label(), n, &mut rng)
        .expect("new-class sample")
}

/// Pre-trained strategy: frozen embedding, new prototype only.
pub fn run_pretrained(
    model: &mut Pilote,
    scenario: &Scenario,
    new_exemplars: usize,
    round_seed: u64,
) -> ModelRun {
    model.reseed(round_seed);
    let new_data = draw_new_data(scenario, new_exemplars, round_seed);
    let start = Instant::now();
    pretrained_update(model, &new_data, new_exemplars).expect("pretrained update");
    let mut run = evaluate(model, scenario);
    run.seconds = start.elapsed().as_secs_f64();
    run
}

/// Re-trained strategy: contrastive fine-tune on `D₀ ∪ Dₙ`, no
/// distillation.
pub fn run_retrained(
    model: &mut Pilote,
    scenario: &Scenario,
    new_exemplars: usize,
    round_seed: u64,
) -> ModelRun {
    model.reseed(round_seed);
    let new_data = draw_new_data(scenario, new_exemplars, round_seed);
    let start = Instant::now();
    let report = retrained_update(model, &new_data, new_exemplars).expect("retrained update");
    let mut run = evaluate(model, scenario);
    run.seconds = start.elapsed().as_secs_f64();
    run.epochs = report.epochs.len();
    run
}

/// PILOTE: joint distillation + contrastive update.
pub fn run_pilote(
    model: &mut Pilote,
    scenario: &Scenario,
    new_exemplars: usize,
    round_seed: u64,
) -> (ModelRun, TrainReport) {
    model.reseed(round_seed);
    let new_data = draw_new_data(scenario, new_exemplars, round_seed);
    let start = Instant::now();
    let report = model.learn_new_class(&new_data, new_exemplars).expect("pilote update");
    let mut run = evaluate(model, scenario);
    run.seconds = start.elapsed().as_secs_f64();
    run.epochs = report.epochs.len();
    (run, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_partitions_classes() {
        let scale = Scale::quick();
        let s = build_scenario(Activity::Run, &scale, 1);
        assert_eq!(s.old_labels().len(), 4);
        assert!(!s.old_labels().contains(&Activity::Run.label()));
        assert_eq!(s.new_pool.classes(), vec![Activity::Run.label()]);
        assert_eq!(s.test.classes().len(), 5);
    }

    #[test]
    fn three_model_protocol_runs() {
        let scale = Scale::quick();
        let scenario = build_scenario(Activity::Run, &scale, 2);
        let base = pretrain_base(scenario, &scale, 2);
        let mut pre = base.model.clone_model();
        let run_pre = run_pretrained(&mut pre, &base.scenario, 30, 7);
        let mut pil = base.model.clone_model();
        let (run_pil, _) = run_pilote(&mut pil, &base.scenario, 30, 7);
        for r in [run_pre, run_pil] {
            assert!((0.0..=1.0).contains(&r.accuracy));
            assert!((0.0..=1.0).contains(&r.new_accuracy));
        }
        // Both models now know all 5 classes.
        assert_eq!(pre.classifier().n_classes(), 5);
        assert_eq!(pil.classifier().n_classes(), 5);
    }

    #[test]
    fn support_budget_rebase_changes_size() {
        let scale = Scale::quick();
        let scenario = build_scenario(Activity::Walk, &scale, 3);
        let base = pretrain_base(scenario, &scale, 3);
        let model = with_support_budget(&base, 10, SelectionStrategy::Random, 9);
        assert_eq!(model.support().len(), 10 * 4);
    }
}
