//! **Figure 5** — 2-D visualisation of the embedding spaces of the three
//! models (new class 'Run' excluded from pre-training, 200 representative
//! exemplars per class).
//!
//! We emit PCA scatter series per model (CSV-ready JSON) and, because a
//! scatter plot is not a checkable claim, quantitative separation scores:
//! the paper's statement is that the re-trained model separates Run/Walk
//! better than the pre-trained model but worse than PILOTE.

use crate::report::{write_json, ReportError, Table};
use crate::scale::Scale;
use crate::scenario::{build_scenario, pretrain_base, run_pilote, run_pretrained, run_retrained};
use pilote_core::projection::{pairwise_separation, scatter_2d, separation_score};
use pilote_core::Pilote;
use pilote_har_data::{Activity, Dataset};
use serde_json::json;
use std::path::Path;

/// Separation diagnostics of one model's embedding space.
#[derive(Debug, Clone, Copy)]
pub struct SpaceQuality {
    /// All-class separation score.
    pub global: f32,
    /// Run-vs-Walk pairwise separation.
    pub run_walk: f32,
}

fn analyse(model: &mut Pilote, test: &Dataset) -> (SpaceQuality, serde_json::Value) {
    let emb = model.embed(&test.features);
    let quality = SpaceQuality {
        global: separation_score(&emb, &test.labels).expect("separation"),
        run_walk: pairwise_separation(&emb, &test.labels, Activity::Run.label(), Activity::Walk.label())
            .expect("run/walk separation"),
    };
    let scatter = scatter_2d(&emb, &test.labels).expect("scatter");
    let series = json!(scatter
        .labels
        .iter()
        .zip(&scatter.points)
        .map(|(&label, pts)| json!({
            "class": Activity::from_label(label).map(|a| a.name()).unwrap_or("?"),
            "points": pts.iter().map(|&(x, y)| json!([x, y])).collect::<Vec<_>>(),
        }))
        .collect::<Vec<_>>());
    (quality, series)
}

/// Runs the Figure 5 protocol; returns the three models' space quality in
/// `(pretrained, retrained, pilote)` order.
pub fn run(
    scale: &Scale,
    seed: u64,
    out: &Path,
) -> Result<(SpaceQuality, SpaceQuality, SpaceQuality), ReportError> {
    eprintln!("[fig5] embedding spaces (new class Run)");
    let scenario = build_scenario(Activity::Run, scale, seed);
    let base = pretrain_base(scenario, scale, seed);
    let n_new = scale.exemplars_per_class;

    // Subsample the test set for the scatter (plots need ~100 pts/class).
    let mut rng = pilote_tensor::Rng64::new(seed ^ 0xf15);
    let mut keep = Vec::new();
    for label in base.scenario.test.classes() {
        let sub = base.scenario.test.sample_class(label, 100, &mut rng).expect("subsample");
        keep.push(sub);
    }
    let mut plot_set = keep.remove(0);
    for d in keep {
        plot_set = plot_set.concat(&d).expect("concat");
    }

    let mut pre = base.model.clone_model();
    run_pretrained(&mut pre, &base.scenario, n_new, seed ^ 1);
    let (q_pre, s_pre) = analyse(&mut pre, &plot_set);

    let mut retr = base.model.clone_model();
    run_retrained(&mut retr, &base.scenario, n_new, seed ^ 2);
    let (q_retr, s_retr) = analyse(&mut retr, &plot_set);

    let mut pil = base.model.clone_model();
    run_pilote(&mut pil, &base.scenario, n_new, seed ^ 2);
    let (q_pil, s_pil) = analyse(&mut pil, &plot_set);

    let mut t = Table::new(
        "Figure 5: embedding-space separation scores (higher = cleaner clusters)",
        &["model", "global", "Run vs Walk"],
    );
    for (name, q) in [("pre-trained", q_pre), ("re-trained", q_retr), ("pilote", q_pil)] {
        t.row(vec![name.into(), format!("{:.3}", q.global), format!("{:.3}", q.run_walk)]);
    }
    println!("{t}");

    write_json(
        out,
        "fig5.json",
        &json!({
            "pretrained": {"separation": q_pre.global, "run_walk": q_pre.run_walk, "scatter": s_pre},
            "retrained": {"separation": q_retr.global, "run_walk": q_retr.run_walk, "scatter": s_retr},
            "pilote": {"separation": q_pil.global, "run_walk": q_pil.run_walk, "scatter": s_pil},
        }),
    )?;
    Ok((q_pre, q_retr, q_pil))
}
