//! # pilote-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! PILOTE paper (EDBT 2023), plus the ablations called out in DESIGN.md.
//!
//! Each experiment module produces both a human-readable text table (the
//! same rows/series the paper reports) and a machine-readable JSON file
//! under the output directory. The `repro` binary dispatches to them:
//!
//! ```text
//! repro all            # everything below, in order
//! repro table2         # Table 2  — accuracy per new-class scenario
//! repro fig4           # Figure 4 — confusion matrices (new class Run)
//! repro fig5           # Figure 5 — embedding projections + separation
//! repro fig6           # Figure 6 — accuracy vs support-set size/strategy
//! repro fig7           # Figure 7 — accuracy vs new-class exemplar count
//! repro timing         # §6.3 Q2  — epoch latency and storage budgets
//! repro ablate-alpha   # A1 — α sweep
//! repro ablate-margin  # A2 — margin and loss-form sweep
//! repro ablate-pairs   # A3 — full vs reduced pair scheme
//! repro ablate-strategies # A4 — CL strategy comparison
//! repro cloud-vs-edge  # A5 — link-cost comparison
//! repro kernels        # parallel kernel layer thread-scaling (BENCH_kernels.json)
//! repro faults         # resilience sweep under injected faults (BENCH_faults.json)
//! repro obs            # deterministic telemetry snapshot (BENCH_obs.json)
//! repro fleet          # multi-device fleet orchestration (BENCH_fleet.json)
//! repro quality        # quality monitors + fleet telemetry rollup (BENCH_quality.json)
//! repro policy         # self-healing fleet policy A/B (BENCH_policy.json)
//! repro wire           # accuracy-vs-bytes wire frontier (BENCH_wire.json)
//! repro scenarios      # class-incremental session-matrix comparison (BENCH_scenarios.json)
//! repro index          # committed-benchmark headline manifest (BENCH_index.json)
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod bench_index;
pub mod exp_ablations;
pub mod exp_cloud;
pub mod exp_faults;
pub mod exp_fig4;
pub mod exp_fig5;
pub mod exp_fig6;
pub mod exp_fig7;
pub mod exp_fleet;
pub mod exp_kernels;
pub mod exp_obs;
pub mod exp_policy;
pub mod exp_quality;
pub mod exp_scenarios;
pub mod exp_table2;
pub mod exp_timing;
pub mod exp_wire;
pub mod report;
pub mod scale;
pub mod scenario;

pub use report::Table;
pub use scale::Scale;
pub use scenario::{build_scenario, pretrain_base, ModelRun, PretrainedBase, Scenario};
