//! A5 — the cloud-vs-edge cost comparison motivating the MAGNETO design
//! (Fig. 1/2 of the paper): a cloud deployment ships every sensor window
//! over the network forever; the edge deployment downloads the model and
//! support set once.

use crate::report::{write_json, ReportError, Table};
use pilote_core::{EmbeddingNet, NetConfig};
use pilote_edge_sim::link::cloud_vs_edge;
use pilote_edge_sim::memory::{model_bytes, ValueWidth};
use pilote_edge_sim::{LinkModel, MemoryBudget};
use pilote_har_data::sensors::{CHANNELS, WINDOW_LEN};
use pilote_har_data::FEATURE_DIM;
use pilote_tensor::Rng64;
use serde_json::json;
use std::path::Path;

/// Runs the A5 comparison for one day of continuous recognition.
pub fn run(out: &Path) -> Result<Vec<(String, f64, f64)>, ReportError> {
    // One raw window = 120 samples × 22 channels × 4 bytes.
    let window_bytes = (WINDOW_LEN * CHANNELS * 4) as u64;
    let windows_per_day = 86_400u64; // one-second windows

    let mut rng = Rng64::new(0);
    let params = EmbeddingNet::new(NetConfig::paper(), &mut rng).param_count();
    let model_b = model_bytes(params);
    let support_b = MemoryBudget::new(200 * 5, FEATURE_DIM, ValueWidth::F32).total_bytes();

    let mut rows = Vec::new();
    let mut t = Table::new(
        "A5: one day of HAR — cloud round-trips vs one-time edge download",
        &["link", "cloud link-time (s/day)", "cloud data (MB/day)", "edge bootstrap (s, once)", "edge data (MB, once)"],
    );
    for (name, link) in [
        ("wifi", LinkModel::wifi()),
        ("cellular-4g", LinkModel::cellular_4g()),
        ("weak-cellular", LinkModel::weak_cellular()),
    ] {
        let cmp = cloud_vs_edge(&link, windows_per_day, window_bytes, model_b, support_b);
        t.row(vec![
            name.into(),
            format!("{:.0}", cmp.cloud_link_seconds),
            format!("{:.1}", cmp.cloud_bytes as f64 / 1e6),
            format!("{:.2}", cmp.edge_bootstrap_seconds),
            format!("{:.2}", cmp.edge_bytes as f64 / 1e6),
        ]);
        rows.push((name.to_string(), cmp.cloud_link_seconds, cmp.edge_bootstrap_seconds));
    }
    println!("{t}");
    write_json(
        out,
        "cloud_vs_edge.json",
        &json!(rows
            .iter()
            .map(|(n, c, e)| json!({"link": n, "cloud_seconds_per_day": c, "edge_bootstrap_seconds": e}))
            .collect::<Vec<_>>()),
    )?;
    Ok(rows)
}
