//! **Kernels** — thread-scaling measurements of the parallel kernel layer
//! (`docs/THREADING.md`), plus an in-band verification that every measured
//! configuration produces bitwise-identical results.
//!
//! Two workloads anchor the contract:
//!
//! * the `256 × 1024 × 512` GEMM of the embedding forward pass (the
//!   largest matmul the training loop issues), and
//! * NCM scoring of 10 000 embeddings against 5 class prototypes (the
//!   steady-state inference batch of §6.3).
//!
//! Each runs at 1, 2 and 4 threads; the 1-thread row is the exact serial
//! path, so `speedup_vs_serial` reads directly as the parallel-layer gain.
//! Results land in `BENCH_kernels.json` (schema in `EXPERIMENTS.md`).

use crate::report::{write_json, ReportError, Table};
use pilote_core::NcmClassifier;
use pilote_tensor::parallel::{self, ThreadConfig};
use pilote_tensor::{Rng64, Tensor};
use serde_json::json;
use std::path::Path;
use std::time::Instant;

/// Thread counts measured by [`run`].
pub const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// One measured kernel × thread-count cell.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Kernel name (`gemm_256x1024x512` or `ncm_5x10000`).
    pub kernel: String,
    /// Worker threads configured for the measurement.
    pub threads: usize,
    /// Median seconds per invocation.
    pub median_s: f64,
    /// Fastest observed invocation.
    pub min_s: f64,
    /// `median(1 thread) / median(this)`.
    pub speedup_vs_serial: f64,
}

fn time_reps(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    f(); // warm-up (page in buffers, stabilise frequency)
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (times[times.len() / 2], times[0])
}

/// Sums the output bits so bitwise equality across configurations can be
/// checked without holding every result alive.
fn bits_checksum(t: &Tensor) -> u64 {
    t.as_slice().iter().fold(0u64, |acc, v| {
        acc.wrapping_mul(0x100000001b3).wrapping_add(v.to_bits() as u64)
    })
}

/// Measures the two anchor kernels at each thread count and writes
/// `BENCH_kernels.json`. Returns the measurement grid.
pub fn run(out: &Path) -> Result<Vec<KernelTiming>, ReportError> {
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "[kernels] thread-scaling sweep (host has {host_threads} hardware thread(s); \
         speedups above 1 require a multi-core host)"
    );
    let saved = parallel::current();

    let mut rng = Rng64::new(20230328);
    let a = Tensor::randn([256, 1024], 0.0, 1.0, &mut rng);
    let b = Tensor::randn([1024, 512], 0.0, 1.0, &mut rng);
    let mut clf = NcmClassifier::new(128);
    for label in 0..5 {
        clf.set_prototype(label, &Tensor::randn([128], 0.0, 1.0, &mut rng)).expect("prototype");
    }
    let queries = Tensor::randn([10_000, 128], 0.0, 1.0, &mut rng);

    let mut results: Vec<KernelTiming> = Vec::new();
    let mut gemm_checksum = None;
    let mut ncm_checksum = None;
    let mut serial_median = [0.0f64; 2];

    for &threads in &THREAD_COUNTS {
        parallel::configure(ThreadConfig { num_threads: threads, ..ThreadConfig::from_env() });

        let (median, min) = time_reps(5, || {
            std::hint::black_box(a.matmul(&b).expect("gemm"));
        });
        let checksum = bits_checksum(&a.matmul(&b).expect("gemm"));
        assert_eq!(
            *gemm_checksum.get_or_insert(checksum),
            checksum,
            "GEMM not bitwise-identical at {threads} thread(s)"
        );
        if threads == 1 {
            serial_median[0] = median;
        }
        results.push(KernelTiming {
            kernel: "gemm_256x1024x512".into(),
            threads,
            median_s: median,
            min_s: min,
            speedup_vs_serial: serial_median[0] / median,
        });

        let (median, min) = time_reps(5, || {
            std::hint::black_box(clf.distances(&queries).expect("ncm"));
        });
        let checksum = bits_checksum(&clf.distances(&queries).expect("ncm"));
        assert_eq!(
            *ncm_checksum.get_or_insert(checksum),
            checksum,
            "NCM scoring not bitwise-identical at {threads} thread(s)"
        );
        if threads == 1 {
            serial_median[1] = median;
        }
        results.push(KernelTiming {
            kernel: "ncm_5x10000".into(),
            threads,
            median_s: median,
            min_s: min,
            speedup_vs_serial: serial_median[1] / median,
        });
    }
    parallel::configure(saved);

    let mut t = Table::new(
        "Parallel kernel layer: thread scaling (bitwise-verified)",
        &["kernel", "threads", "median", "min", "speedup vs serial"],
    );
    for r in &results {
        t.row(vec![
            r.kernel.clone(),
            r.threads.to_string(),
            format!("{:.2} ms", r.median_s * 1e3),
            format!("{:.2} ms", r.min_s * 1e3),
            format!("{:.2}×", r.speedup_vs_serial),
        ]);
    }
    println!("{t}");
    if host_threads == 1 {
        println!(
            "  (host has a single hardware thread: multi-thread rows measure \
             scheduling overhead, not speedup)"
        );
    }

    write_json(
        out,
        "BENCH_kernels.json",
        &json!({
            "host_hardware_threads": host_threads,
            "thread_counts": THREAD_COUNTS.to_vec(),
            "bitwise_identical_across_thread_counts": true,
            "results": results.iter().map(|r| json!({
                "kernel": r.kernel,
                "threads": r.threads,
                "median_s": r.median_s,
                "min_s": r.min_s,
                "speedup_vs_serial": r.speedup_vs_serial,
            })).collect::<Vec<_>>(),
        }),
    )?;
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_distinguishes_bit_flips() {
        let a = Tensor::vector(&[1.0, 2.0, 3.0]);
        let mut b = a.clone();
        assert_eq!(bits_checksum(&a), bits_checksum(&b));
        // Flip the sign bit of one element: checksum must move.
        b.as_mut_slice()[1] = -2.0;
        assert_ne!(bits_checksum(&a), bits_checksum(&b));
    }
}
