//! **Kernels** — thread-scaling and packed-vs-legacy measurements of the
//! kernel layer (`docs/THREADING.md`, `docs/KERNELS.md`), plus in-band
//! verification that every measured configuration produces
//! bitwise-identical results.
//!
//! Two workloads anchor the contract:
//!
//! * the `256 × 1024 × 512` GEMM of the embedding forward pass (the
//!   largest matmul the training loop issues), and
//! * NCM scoring of 10 000 embeddings against 5 class prototypes (the
//!   steady-state inference batch of §6.3) — this is the *fused* distance
//!   kernel, byte-checked in-band against the unfused two-pass form.
//!
//! Each runs at 1, 2 and 4 threads. Rows where the configured thread count
//! exceeds the host's hardware threads are flagged `oversubscribed: true`
//! and report `speedup_vs_serial: null` — timing them measures scheduler
//! overhead, not parallel speedup, and no speedup claim or CI gate may
//! read them. The pre-packing serial `i-k-j` GEMM loop is also timed as
//! the `packed_vs_legacy_speedup` baseline (the ci.sh kernels gate fails
//! if the packed kernel loses to it).
//!
//! Two files land in the output directory:
//!
//! * `BENCH_kernels.json` — the timing grid (host-dependent, not
//!   byte-comparable across runs);
//! * `BENCH_kernels_check.json` — the determinism witness: output
//!   checksums, the SIMD tier, and the verified flags, with **no
//!   timings** — byte-identical across runs and `PILOTE_THREADS`
//!   settings on a given host.

use crate::report::{write_json, ReportError, Table};
use pilote_core::NcmClassifier;
use pilote_tensor::matmul::matmul_unpacked_reference;
use pilote_tensor::parallel::{self, ThreadConfig};
use pilote_tensor::{Rng64, Tensor};
use serde_json::json;
use std::path::Path;
use std::time::Instant;

/// Thread counts measured by [`run`].
pub const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// One measured kernel × thread-count cell.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Kernel name (`gemm_256x1024x512`, `gemm_256x1024x512_legacy_loop`
    /// or `ncm_5x10000`).
    pub kernel: String,
    /// Worker threads configured for the measurement.
    pub threads: usize,
    /// Median seconds per invocation.
    pub median_s: f64,
    /// Fastest observed invocation.
    pub min_s: f64,
    /// `median(1 thread) / median(this)`; `None` when the row is
    /// oversubscribed (no speedup claim can be made from it).
    pub speedup_vs_serial: Option<f64>,
    /// Whether `threads` exceeds the host's hardware threads. Oversubscribed
    /// rows time scheduling overhead, not parallelism, and are excluded
    /// from every speedup claim and CI gate.
    pub oversubscribed: bool,
}

fn time_reps(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    f(); // warm-up (page in buffers, stabilise frequency)
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (times[times.len() / 2], times[0])
}

/// Sums the output bits so bitwise equality across configurations can be
/// checked without holding every result alive.
fn bits_checksum(t: &Tensor) -> u64 {
    t.as_slice().iter().fold(0u64, |acc, v| {
        acc.wrapping_mul(0x100000001b3).wrapping_add(v.to_bits() as u64)
    })
}

/// Measures the anchor kernels at each thread count, verifies bitwise
/// identity (thread counts, packed vs legacy loop, fused vs unfused NCM
/// epilogue), and writes `BENCH_kernels.json` plus the deterministic
/// `BENCH_kernels_check.json`. Returns the measurement grid.
pub fn run(out: &Path) -> Result<Vec<KernelTiming>, ReportError> {
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let simd = pilote_tensor::pack::active_simd().name();
    eprintln!(
        "[kernels] thread-scaling sweep (host has {host_threads} hardware thread(s), \
         SIMD tier {simd}; speedups above 1 require a multi-core host)"
    );
    let saved = parallel::current();

    let mut rng = Rng64::new(20230328);
    let a = Tensor::randn([256, 1024], 0.0, 1.0, &mut rng);
    let b = Tensor::randn([1024, 512], 0.0, 1.0, &mut rng);
    let mut clf = NcmClassifier::new(128);
    let mut proto_rows = Vec::with_capacity(5 * 128);
    for label in 0..5 {
        let p = Tensor::randn([128], 0.0, 1.0, &mut rng);
        clf.set_prototype(label, &p).expect("prototype");
        proto_rows.extend_from_slice(p.as_slice());
    }
    let protos = Tensor::from_vec(proto_rows, [5, 128]).expect("prototype matrix");
    let queries = Tensor::randn([10_000, 128], 0.0, 1.0, &mut rng);

    let mut results: Vec<KernelTiming> = Vec::new();
    let mut gemm_checksum = None;
    let mut ncm_checksum = None;
    let mut serial_median = [0.0f64; 2];

    for &threads in &THREAD_COUNTS {
        parallel::configure(ThreadConfig { num_threads: threads, ..ThreadConfig::from_env() });
        let oversubscribed = threads > host_threads;

        let (median, min) = time_reps(5, || {
            std::hint::black_box(a.matmul(&b).expect("gemm"));
        });
        let checksum = bits_checksum(&a.matmul(&b).expect("gemm"));
        assert_eq!(
            *gemm_checksum.get_or_insert(checksum),
            checksum,
            "GEMM not bitwise-identical at {threads} thread(s)"
        );
        if threads == 1 {
            serial_median[0] = median;
        }
        results.push(KernelTiming {
            kernel: "gemm_256x1024x512".into(),
            threads,
            median_s: median,
            min_s: min,
            speedup_vs_serial: (!oversubscribed).then(|| serial_median[0] / median),
            oversubscribed,
        });

        let (median, min) = time_reps(5, || {
            std::hint::black_box(clf.distances(&queries).expect("ncm"));
        });
        let checksum = bits_checksum(&clf.distances(&queries).expect("ncm"));
        assert_eq!(
            *ncm_checksum.get_or_insert(checksum),
            checksum,
            "NCM scoring not bitwise-identical at {threads} thread(s)"
        );
        // In-band epilogue check: the fused distance kernel must agree
        // byte-for-byte with the unfused two-pass reference at every
        // measured thread count.
        let fused = clf.distances(&queries).expect("ncm");
        let unfused = queries.pairwise_sq_dists_unfused(&protos).expect("ncm unfused");
        assert_eq!(
            bits_checksum(&fused),
            bits_checksum(&unfused),
            "fused pairwise_sq_dists epilogue diverged from the unfused form at {threads} thread(s)"
        );
        if threads == 1 {
            serial_median[1] = median;
        }
        results.push(KernelTiming {
            kernel: "ncm_5x10000".into(),
            threads,
            median_s: median,
            min_s: min,
            speedup_vs_serial: (!oversubscribed).then(|| serial_median[1] / median),
            oversubscribed,
        });
    }

    // The pre-packing serial loop, timed at 1 thread: the floor the packed
    // kernel must beat. Its output is also the bitwise reference for the
    // packed GEMM (same ascending-k chain per element).
    parallel::configure(ThreadConfig { num_threads: 1, ..ThreadConfig::from_env() });
    let (legacy_median, legacy_min) = time_reps(5, || {
        std::hint::black_box(matmul_unpacked_reference(&a, &b).expect("legacy gemm"));
    });
    let legacy_checksum = bits_checksum(&matmul_unpacked_reference(&a, &b).expect("legacy gemm"));
    assert_eq!(
        Some(legacy_checksum),
        gemm_checksum,
        "packed GEMM diverged bitwise from the legacy i-k-j loop"
    );
    results.push(KernelTiming {
        kernel: "gemm_256x1024x512_legacy_loop".into(),
        threads: 1,
        median_s: legacy_median,
        min_s: legacy_min,
        speedup_vs_serial: Some(serial_median[0] / legacy_median),
        oversubscribed: false,
    });
    let packed_vs_legacy = legacy_median / serial_median[0];
    parallel::configure(saved);

    let mut t = Table::new(
        "Kernel layer: packed GEMM + thread scaling (bitwise-verified)",
        &["kernel", "threads", "median", "min", "speedup vs serial", "oversub"],
    );
    for r in &results {
        t.row(vec![
            r.kernel.clone(),
            r.threads.to_string(),
            format!("{:.2} ms", r.median_s * 1e3),
            format!("{:.2} ms", r.min_s * 1e3),
            r.speedup_vs_serial.map_or("—".into(), |s| format!("{s:.2}×")),
            if r.oversubscribed { "yes".into() } else { "".into() },
        ]);
    }
    println!("{t}");
    println!("  packed GEMM is {packed_vs_legacy:.2}× the legacy serial loop (1 thread)");
    if host_threads == 1 {
        println!(
            "  (host has a single hardware thread: multi-thread rows are flagged \
             oversubscribed and carry no speedup claim)"
        );
    }

    write_json(
        out,
        "BENCH_kernels.json",
        &json!({
            "host_hardware_threads": host_threads,
            "simd": simd,
            "thread_counts": THREAD_COUNTS.to_vec(),
            "bitwise_identical_across_thread_counts": true,
            "fused_epilogue_matches_unfused": true,
            "packed_vs_legacy_speedup": packed_vs_legacy,
            "results": results.iter().map(|r| json!({
                "kernel": r.kernel,
                "threads": r.threads,
                "median_s": r.median_s,
                "min_s": r.min_s,
                "speedup_vs_serial": r.speedup_vs_serial,
                "oversubscribed": r.oversubscribed,
            })).collect::<Vec<_>>(),
        }),
    )?;

    // The determinism witness: everything here is a pure function of the
    // seed and the kernel implementation — no timings — so two runs (and
    // any PILOTE_THREADS setting) must produce byte-identical files.
    write_json(
        out,
        "BENCH_kernels_check.json",
        &json!({
            "simd": simd,
            "thread_counts": THREAD_COUNTS.to_vec(),
            "gemm_checksum": gemm_checksum,
            "legacy_gemm_checksum": legacy_checksum,
            "ncm_checksum": ncm_checksum,
            "bitwise_identical_across_thread_counts": true,
            "fused_epilogue_matches_unfused": true,
            "packed_matches_legacy_loop": true,
        }),
    )?;
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_distinguishes_bit_flips() {
        let a = Tensor::vector(&[1.0, 2.0, 3.0]);
        let mut b = a.clone();
        assert_eq!(bits_checksum(&a), bits_checksum(&b));
        // Flip the sign bit of one element: checksum must move.
        b.as_mut_slice()[1] = -2.0;
        assert_ne!(bits_checksum(&a), bits_checksum(&b));
    }

    #[test]
    fn thread_grid_anchors_on_serial() {
        // The speedup columns and the legacy comparison both divide by the
        // 1-thread row; the grid must always measure it, first.
        assert_eq!(THREAD_COUNTS[0], 1);
    }
}
