//! **Figure 6** — model accuracy as a function of the support set's size
//! (exemplars per class), for representative (herding) and random
//! exemplar-selection strategies. New class 'Run' excluded from
//! pre-training.
//!
//! Paper shape to reproduce: accuracy rises with exemplar count; the
//! pre-trained model is nearly flat; with very few exemplars (< 50) the
//! re-trained model drops *below* the pre-trained model while PILOTE stays
//! above it.

use crate::report::{write_json, ReportError, Table};
use crate::scale::Scale;
use crate::scenario::{
    build_scenario, pretrain_base, run_pilote, run_pretrained, run_retrained, with_support_budget,
};
use pilote_core::SelectionStrategy;
use pilote_har_data::Activity;
use serde_json::json;
use std::path::Path;

/// Default sweep over exemplars-per-class (the paper's x-axis reaches
/// 2 500 total ≈ 500/class; we stop at 400 to stay within the simulated
/// training pool).
pub const BUDGETS: [usize; 6] = [10, 25, 50, 100, 200, 400];

/// One point of the sweep.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// Exemplar-selection strategy.
    pub strategy: &'static str,
    /// Exemplars per class.
    pub budget: usize,
    /// Accuracy of the three models.
    pub pretrained: f32,
    /// Re-trained accuracy.
    pub retrained: f32,
    /// PILOTE accuracy.
    pub pilote: f32,
}

/// Runs the Figure 6 sweep.
pub fn run(scale: &Scale, seed: u64, out: &Path) -> Result<Vec<Fig6Point>, ReportError> {
    let scenario = build_scenario(Activity::Run, scale, seed);
    let base = pretrain_base(scenario, scale, seed);
    let max_budget = scale.train_per_activity();
    let mut points = Vec::new();

    for strategy in [SelectionStrategy::Herding, SelectionStrategy::Random] {
        for &budget in BUDGETS.iter().filter(|&&b| b <= max_budget) {
            eprintln!("[fig6] strategy {} budget {}", strategy.name(), budget);
            // Support set rebuilt at this budget; the new class receives
            // the same number of (random) exemplars.
            let rebased = with_support_budget(&base, budget, strategy, seed ^ budget as u64);

            let mut pre = rebased.clone_model();
            let r_pre = run_pretrained(&mut pre, &base.scenario, budget, seed ^ 0xa);
            let mut retr = rebased.clone_model();
            let r_retr = run_retrained(&mut retr, &base.scenario, budget, seed ^ 0xb);
            let mut pil = rebased.clone_model();
            let (r_pil, _) = run_pilote(&mut pil, &base.scenario, budget, seed ^ 0xb);

            points.push(Fig6Point {
                strategy: strategy.name(),
                budget,
                pretrained: r_pre.accuracy,
                retrained: r_retr.accuracy,
                pilote: r_pil.accuracy,
            });
        }
    }

    let mut t = Table::new(
        "Figure 6: accuracy vs support-set size (exemplars per class)",
        &["strategy", "exemplars/class", "Pre-trained", "Re-trained", "PILOTE"],
    );
    for p in &points {
        t.row(vec![
            p.strategy.into(),
            p.budget.to_string(),
            format!("{:.4}", p.pretrained),
            format!("{:.4}", p.retrained),
            format!("{:.4}", p.pilote),
        ]);
    }
    println!("{t}");

    write_json(
        out,
        "fig6.json",
        &json!(points
            .iter()
            .map(|p| json!({
                "strategy": p.strategy,
                "budget": p.budget,
                "pretrained": p.pretrained,
                "retrained": p.retrained,
                "pilote": p.pilote,
            }))
            .collect::<Vec<_>>()),
    )?;
    Ok(points)
}
