//! **Obs** — deterministic observability capture (`BENCH_obs.json`), plus
//! the kill-switch overhead benchmark.
//!
//! Runs one instrumented edge lifecycle — pre-train → deploy → stream raw
//! windows → label → incremental update — and snapshots the whole
//! `pilote-obs` registry (counters, gauges, histograms, kernel dispatch
//! statistics and the span tree). The snapshot contains **no host
//! wall-clock value**: spans are stamped with logical sequence numbers and
//! dispatched-flop counts, device time is modeled from work, and every
//! gauge is a deterministic function of the seed. `BENCH_obs.json` is
//! therefore byte-identical for a fixed seed at any `PILOTE_THREADS` and
//! under any host load (`scripts/ci.sh` diffs two runs to enforce this).
//!
//! The second half benchmarks the `PILOTE_OBS` kill switch on the kernel
//! hot loop (the GEMM `repro kernels` anchors on). Host wall-times from
//! that benchmark go to **stderr only** — they must never enter the
//! diffable JSON.

use crate::exp_faults::faulted_scenario;
use crate::report::{write_json, ReportError, Table};
use crate::scale::Scale;
use crate::scenario::pretrain_base;
use pilote_edge_sim::{DeviceProfile, LinkModel};
use pilote_har_data::Activity;
use pilote_magneto::{Deployment, EdgeDevice, UpdateStatus};
use pilote_nn::Checkpoint;
use pilote_obs::Snapshot;
use pilote_tensor::{Rng64, Tensor};
use serde_json::json;
use std::path::Path;
use std::time::Instant;

/// Raw eval windows streamed through the deployed device per activity.
const STREAM_WINDOWS_PER_ACTIVITY: usize = 4;

/// Hot-loop repetitions for the kill-switch overhead measurement. Long
/// enough (~10 ms per trial) that scheduler jitter stays well under the
/// 5% acceptance bound.
const OVERHEAD_REPS: usize = 200;

/// Runs the instrumented lifecycle, writes `BENCH_obs.json` and benchmarks
/// the kill-switch overhead (stderr only). Returns the telemetry snapshot.
pub fn run(scale: &Scale, seed: u64, out: &Path) -> Result<Snapshot, ReportError> {
    eprintln!("[obs] instrumented edge lifecycle (pretrain → deploy → stream → update)");
    let was_enabled = pilote_obs::enabled();
    pilote_obs::reset();

    // --- the instrumented lifecycle -----------------------------------
    let (scenario, norm, mut sim) = faulted_scenario(scale, seed);
    let mut base = pretrain_base(scenario, scale, seed);

    let deployment = Deployment {
        checkpoint: Checkpoint::capture(base.model.net_mut().layers_mut()),
        support: base.model.support().clone(),
        normalizer: norm,
        config: base.model.config().clone(),
        prototypes: None,
    };
    let mut device =
        EdgeDevice::install(DeviceProfile::budget_phone(), &deployment, &LinkModel::wifi())
            .expect("install");

    // Stream a few raw windows of every activity through the deployed
    // device: exercises the window assembler counters, the inference
    // events and the flops-modeled virtual clock.
    for &activity in &Activity::ALL {
        let raw = sim.raw_dataset(&[(activity, STREAM_WINDOWS_PER_ACTIVITY)]);
        for window in &raw.windows {
            device.stream(window).expect("stream");
        }
    }

    // Label new-class samples and run one incremental update end to end.
    let mut rng = Rng64::new(seed ^ 0x0b5);
    let batch = scale.exemplars_per_class.min(base.scenario.new_pool.len());
    let new_label = base.scenario.new_activity.label();
    let new_data = base
        .scenario
        .new_pool
        .sample_class(new_label, batch, &mut rng)
        .expect("new-class batch");
    for i in 0..new_data.features.rows() {
        device.label_sample(new_label, Tensor::vector(new_data.features.row(i)));
    }
    let status = device.update_faulted(scale.exemplars_per_class, None).expect("update");
    assert!(matches!(status, UpdateStatus::Completed), "clean update must complete");

    let snapshot = pilote_obs::snapshot();
    let virtual_now = device.log().now();

    // --- report -------------------------------------------------------
    let mut t = Table::new(
        "Obs: deterministic telemetry snapshot (one edge lifecycle)",
        &["section", "entries", "detail"],
    );
    t.row(vec![
        "counters".into(),
        snapshot.counters.len().to_string(),
        snapshot
            .counters
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    t.row(vec![
        "gauges".into(),
        snapshot.gauges.len().to_string(),
        snapshot.gauges.keys().cloned().collect::<Vec<_>>().join(", "),
    ]);
    t.row(vec![
        "kernels".into(),
        snapshot.kernels.len().to_string(),
        snapshot
            .kernels
            .iter()
            .map(|(k, s)| format!("{k}×{}", s.dispatches))
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    t.row(vec![
        "root spans".into(),
        snapshot.spans.len().to_string(),
        snapshot.spans.iter().map(|s| s.name.clone()).collect::<Vec<_>>().join(", "),
    ]);
    t.row(vec![
        "virtual clock".into(),
        String::new(),
        format!("{virtual_now:.6} modeled device-seconds"),
    ]);
    println!("{t}");

    write_json(
        out,
        "BENCH_obs.json",
        &json!({
            "seed": seed,
            "scale": {
                "per_activity": scale.per_activity,
                "exemplars_per_class": scale.exemplars_per_class,
                "max_epochs": scale.max_epochs,
                "pretrain_epochs": scale.pretrain_epochs,
            },
            "determinism": "no host wall-clock fields: spans carry logical sequence numbers and flop counts, device time is modeled from dispatched work — byte-identical for a fixed seed at any PILOTE_THREADS and under any host load",
            "virtual_clock_seconds": virtual_now,
            "telemetry": snapshot,
        }),
    )?;

    // --- kill-switch overhead (host wall-time, stderr only) -----------
    overhead_benchmark(seed);
    pilote_obs::set_enabled(was_enabled);
    Ok(snapshot)
}

/// Times the `repro kernels` GEMM hot loop with telemetry enabled vs
/// disabled. Host wall-times — printed to stderr only, never written to
/// `BENCH_obs.json` (the diffed artefact must not depend on host speed).
fn overhead_benchmark(seed: u64) {
    let mut rng = Rng64::new(seed ^ 0x0b5e);
    let a = Tensor::randn([64, 128], 0.0, 1.0, &mut rng);
    let b = Tensor::randn([128, 64], 0.0, 1.0, &mut rng);
    let time_loop = || {
        let t0 = Instant::now();
        for _ in 0..OVERHEAD_REPS {
            std::hint::black_box(a.matmul(&b).expect("matmul"));
        }
        t0.elapsed().as_secs_f64()
    };
    // Warm up once, then interleave the two modes and keep the fastest
    // trial of each — the minimum is the standard noise-robust estimator
    // for a tight loop (scheduler interference only ever adds time).
    time_loop();
    let (mut disabled_s, mut enabled_s) = (f64::MAX, f64::MAX);
    for _ in 0..5 {
        pilote_obs::set_enabled(false);
        disabled_s = disabled_s.min(time_loop());
        pilote_obs::set_enabled(true);
        enabled_s = enabled_s.min(time_loop());
    }
    let overhead_pct = (enabled_s - disabled_s) / disabled_s * 100.0;
    eprintln!(
        "[obs] kill-switch hot loop ({OVERHEAD_REPS}× 64×128×64 GEMM): \
         enabled {:.3} ms, disabled {:.3} ms, overhead {overhead_pct:+.2}% \
         (host wall-time, stderr only; acceptance bound < 5%)",
        enabled_s * 1e3,
        disabled_s * 1e3,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            per_activity: 60,
            rounds: 1,
            exemplars_per_class: 12,
            max_epochs: 2,
            pretrain_epochs: 2,
            ..Scale::default()
        }
    }

    /// The acceptance check of the tentpole: two runs at the same seed must
    /// serialise to identical bytes, and the snapshot must cover every
    /// layer of the stack (kernels, training gauges, edge counters, spans).
    #[test]
    #[ignore = "slow (two full lifecycles); run by scripts/ci.sh obs step"]
    fn obs_snapshot_is_deterministic_and_covers_the_stack() {
        let dir = std::env::temp_dir().join("pilote_obs_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        pilote_obs::set_enabled(true);
        let a = run(&tiny(), 7, &dir).expect("run a");
        let b = run(&tiny(), 7, &dir).expect("run b");
        assert_eq!(
            serde_json::to_string(&a).expect("serialise"),
            serde_json::to_string(&b).expect("serialise"),
            "same seed must produce byte-identical telemetry"
        );
        assert!(a.kernels.contains_key("tensor.matmul"), "kernel layer instrumented");
        assert!(a.gauges.contains_key("nn.train.loss"), "training loop instrumented");
        assert!(a.counters.contains_key("edge.update_finished"), "edge events bridged");
        assert!(a.counters.contains_key("stream.windows_emitted"), "assembler instrumented");
        assert!(
            a.spans.iter().any(|s| s.name == "edge.update"),
            "update lifecycle traced"
        );
    }
}
