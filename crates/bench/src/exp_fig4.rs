//! **Figure 4** — confusion matrices of the three models when learning
//! the new class 'Run' with 200 exemplars per class in the support set.
//!
//! The paper's headline observation: the re-trained model floods 'Run'
//! with false positives at the expense of 'Walk'; PILOTE keeps the
//! boundary.

use crate::report::{write_json, ReportError, Table};
use crate::scale::Scale;
use crate::scenario::{build_scenario, pretrain_base, run_pilote, run_pretrained, run_retrained};
use pilote_core::{ConfusionMatrix, Pilote};
use pilote_har_data::{Activity, Dataset};
use serde_json::json;
use std::path::Path;

fn confusion(model: &mut Pilote, test: &Dataset) -> ConfusionMatrix {
    let labels: Vec<usize> = Activity::ALL.iter().map(|a| a.label()).collect();
    let names: Vec<String> = Activity::ALL.iter().map(|a| a.name().to_string()).collect();
    let pred = model.predict(&test.features).expect("predict");
    ConfusionMatrix::from_predictions(&labels, &names, &pred, &test.labels)
}

fn matrix_json(m: &ConfusionMatrix) -> serde_json::Value {
    json!({
        "labels": Activity::ALL.iter().map(|a| a.name()).collect::<Vec<_>>(),
        "rates": m.normalized(),
        "accuracy": m.accuracy(),
        "run_recall": m.recall(Activity::Run.label()),
        "walk_recall": m.recall(Activity::Walk.label()),
        "run_precision": m.precision(Activity::Run.label()),
    })
}

/// Runs the Figure 4 protocol. Returns `(pretrained, retrained, pilote)`
/// confusion matrices.
pub fn run(
    scale: &Scale,
    seed: u64,
    out: &Path,
) -> Result<(ConfusionMatrix, ConfusionMatrix, ConfusionMatrix), ReportError> {
    eprintln!("[fig4] scenario: new class Run, {} exemplars/class", scale.exemplars_per_class);
    let scenario = build_scenario(Activity::Run, scale, seed);
    let base = pretrain_base(scenario, scale, seed);
    let n_new = scale.exemplars_per_class;

    let mut pre = base.model.clone_model();
    run_pretrained(&mut pre, &base.scenario, n_new, seed ^ 1);
    let cm_pre = confusion(&mut pre, &base.scenario.test);

    let mut retr = base.model.clone_model();
    run_retrained(&mut retr, &base.scenario, n_new, seed ^ 2);
    let cm_retr = confusion(&mut retr, &base.scenario.test);

    let mut pil = base.model.clone_model();
    run_pilote(&mut pil, &base.scenario, n_new, seed ^ 2);
    let cm_pil = confusion(&mut pil, &base.scenario.test);

    for (name, cm) in [("Pre-trained", &cm_pre), ("Re-trained", &cm_retr), ("PILOTE", &cm_pil)] {
        println!("Figure 4 — {name} (accuracy {:.4})\n{cm}", cm.accuracy());
    }

    // The paper's qualitative claim, in one comparison table.
    let mut t = Table::new(
        "Figure 4 summary: the Run/Walk boundary",
        &["model", "Walk recall", "Run recall", "Run precision"],
    );
    for (name, cm) in [("pre-trained", &cm_pre), ("re-trained", &cm_retr), ("pilote", &cm_pil)] {
        t.row(vec![
            name.into(),
            format!("{:.4}", cm.recall(Activity::Walk.label())),
            format!("{:.4}", cm.recall(Activity::Run.label())),
            format!("{:.4}", cm.precision(Activity::Run.label())),
        ]);
    }
    println!("{t}");

    write_json(
        out,
        "fig4.json",
        &json!({
            "pretrained": matrix_json(&cm_pre),
            "retrained": matrix_json(&cm_retr),
            "pilote": matrix_json(&cm_pil),
        }),
    )?;
    Ok((cm_pre, cm_retr, cm_pil))
}
