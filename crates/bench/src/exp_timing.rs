//! **Q2 (§6.3)** — edge applicability: per-epoch latency, epochs to
//! converge, accuracy within the epoch budget, and support-set storage.
//!
//! Paper claims to check: "with less than 200 exemplars per class
//! (< 256 KB), PILOTE can reach an accuracy of 93.72% within 20 training
//! epochs, and each epoch costs less than 0.5 s"; "2 500 exemplars in
//! compressed format would take 3.2 MB".

use crate::report::{write_json, ReportError, Table};
use crate::scale::Scale;
use crate::scenario::{build_scenario, pretrain_base, run_pilote};
use pilote_edge_sim::memory::{model_bytes, ValueWidth};
use pilote_edge_sim::quantize::{Quantization, QuantizedMatrix};
use pilote_edge_sim::{DeviceProfile, MemoryBudget};
use pilote_har_data::{Activity, FEATURE_DIM};
use serde_json::json;
use std::path::Path;

/// Measured Q2 quantities.
#[derive(Debug, Clone)]
pub struct TimingResult {
    /// Mean seconds per incremental-update epoch on the host, or `None`
    /// when the update ran zero epochs (there is no per-epoch latency to
    /// report; the old `max(1)` clamp silently printed `0.000 s` instead
    /// of surfacing the empty run).
    pub epoch_seconds_host: Option<f64>,
    /// Epochs the update ran before stopping (may genuinely be 0, e.g.
    /// when the pair population is empty at tiny scales).
    pub epochs: usize,
    /// Accuracy after the update.
    pub accuracy: f32,
    /// Raw f32 bytes of the 200/class support set (old classes + new).
    pub support_bytes_f32: u64,
    /// Bytes of the same support set under i8 quantisation.
    pub support_bytes_i8: u64,
    /// Bytes of the embedding model's parameters.
    pub model_param_bytes: u64,
}

/// Runs the timing/storage measurements.
pub fn run(scale: &Scale, seed: u64, out: &Path) -> Result<TimingResult, ReportError> {
    eprintln!("[timing] measuring the PILOTE edge update (new class Run)");
    let scenario = build_scenario(Activity::Run, scale, seed);
    let mut base = pretrain_base(scenario, scale, seed);
    let n_new = scale.exemplars_per_class;

    let mut model = base.model.clone_model();
    let (run, report) = run_pilote(&mut model, &base.scenario, n_new, seed ^ 0x42);
    // A zero-epoch run has no per-epoch latency; report it as such rather
    // than clamping the divisor and printing a bogus 0-second epoch.
    let epochs = report.epochs.len();
    let epoch_seconds =
        (epochs > 0).then(|| report.total_seconds() / epochs as f64);
    if epochs == 0 {
        eprintln!("[timing] WARNING: the update ran 0 epochs — per-epoch latency unavailable");
    }

    // Storage accounting on the *actual* stored support set.
    let support = model.support().to_dataset().expect("support");
    let budget_f32 = MemoryBudget::new(support.len(), FEATURE_DIM, ValueWidth::F32);
    let quantized = QuantizedMatrix::encode(&support.features, Quantization::I8).expect("encode");
    let params = base.model.net_mut().param_count();

    let result = TimingResult {
        epoch_seconds_host: epoch_seconds,
        epochs,
        accuracy: run.accuracy,
        support_bytes_f32: budget_f32.total_bytes(),
        support_bytes_i8: quantized.storage_bytes(),
        model_param_bytes: model_bytes(params),
    };

    let fmt_epoch = |s: Option<f64>| match s {
        Some(v) => format!("{v:.3} s"),
        None => "n/a (0 epochs)".to_string(),
    };
    let mut t = Table::new("Q2: edge applicability measurements", &["quantity", "value"]);
    t.row(vec!["update epochs".into(), result.epochs.to_string()]);
    t.row(vec!["epoch wall-time (host)".into(), fmt_epoch(result.epoch_seconds_host)]);
    for device in [DeviceProfile::flagship_phone(), DeviceProfile::budget_phone(), DeviceProfile::wearable()]
    {
        t.row(vec![
            format!("epoch wall-time ({})", device.name),
            fmt_epoch(result.epoch_seconds_host.map(|s| device.project_seconds(s))),
        ]);
    }
    t.row(vec!["accuracy after update".into(), format!("{:.4}", result.accuracy)]);
    t.row(vec![
        format!("support set ({} exemplars, f32)", support.len()),
        format!("{:.1} KB", result.support_bytes_f32 as f64 / 1000.0),
    ]);
    t.row(vec![
        "support set (i8 quantised)".into(),
        format!("{:.1} KB", result.support_bytes_i8 as f64 / 1000.0),
    ]);
    t.row(vec![
        format!("model parameters ({params})"),
        format!("{:.2} MB", result.model_param_bytes as f64 / 1e6),
    ]);
    // The paper's 2500-exemplar reference point.
    let ref_2500 = MemoryBudget::new(2500, FEATURE_DIM, ValueWidth::F32);
    t.row(vec![
        "2500-exemplar cache (f32)".into(),
        format!("{:.2} MB", ref_2500.total_bytes() as f64 / 1e6),
    ]);
    println!("{t}");

    write_json(
        out,
        "timing.json",
        &json!({
            // null (not 0.0) when the update ran zero epochs.
            "epoch_seconds_host": result.epoch_seconds_host,
            "epochs": result.epochs,
            "accuracy": result.accuracy,
            "support_bytes_f32": result.support_bytes_f32,
            "support_bytes_i8": result.support_bytes_i8,
            "model_param_bytes": result.model_param_bytes,
        }),
    )?;
    Ok(result)
}
