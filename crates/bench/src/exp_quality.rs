//! **Quality** — model-quality observability on a fleet
//! (`BENCH_quality.json` + `trace_quality.json`; see `docs/QUALITY.md`).
//!
//! Two parts, one pre-training:
//!
//! 1. **A/B alert demo** — two standalone devices install the same
//!    two-class deployment and learn the same held-out activity from the
//!    same samples: one with PILOTE's distillation update, one with the
//!    Re-trained baseline (no distillation). Both carry an armed
//!    [`pilote_core::QualityMonitor`]; the Re-trained arm must trip the
//!    forgetting rule (an `AlertRaised` event in its log) while the
//!    PILOTE arm must not.
//! 2. **Fleet schedule** — a heterogeneous fleet serves sessions while
//!    three increments add one activity each (label → on-device update →
//!    federated round). Every generation bump is sampled by the armed
//!    monitors, producing per-device forgetting curves; afterwards each
//!    device ships its telemetry snapshot over its own link and the cloud
//!    merges them into a deterministic [`pilote_magneto::TelemetryRollup`].
//!
//! The span tree of the whole run is exported as a Chrome trace
//! (`trace_quality.json`, loadable in `chrome://tracing` / Perfetto):
//! timestamps are logical sequence numbers and durations carry modeled
//! flops — never host wall time — so both JSON files are byte-identical
//! for a fixed seed at any `PILOTE_THREADS` (diffed by `scripts/ci.sh`).

use crate::report::{write_json, ReportError, Table};
use crate::scale::Scale;
use pilote_core::baselines::retrained_update;
use pilote_core::{Pilote, PiloteConfig, QualityThresholds, SelectionStrategy};
use pilote_edge_sim::{DeviceProfile, LinkModel};
use pilote_har_data::dataset::Dataset;
use pilote_har_data::features::extract_batch;
use pilote_har_data::preprocess::Normalizer;
use pilote_har_data::{Activity, Simulator};
use pilote_magneto::{Deployment, EdgeDevice, Fleet, FleetConfig};
use pilote_nn::Checkpoint;
use pilote_tensor::{Rng64, Tensor};
use serde_json::json;
use std::path::Path;

/// Devices in the quality fleet.
pub const FLEET_DEVICES: usize = 4;

/// Activities the cloud pre-trains on; the other three arrive as
/// increments.
const BASE_ACTIVITIES: [Activity; 2] = [Activity::Still, Activity::Walk];

/// The three increments of the schedule, learned one at a time.
const INCREMENTS: [Activity; 3] = [Activity::Run, Activity::Drive, Activity::EScooter];

/// Users routed into the fleet each serving phase.
const USERS: u64 = 6;

/// Feature windows per served session.
const WINDOWS_PER_SESSION: usize = 4;

/// Labelled samples per increment (also the update threshold, so the last
/// label triggers exactly one incremental update).
const LABELS_PER_INCREMENT: usize = 12;

/// Builds the five-activity corpus, keeping the fitted normaliser for the
/// deployment package, and splits a held-out test set.
fn corpus(scale: &Scale, seed: u64) -> (Dataset, Dataset, Normalizer) {
    let mut sim = Simulator::with_seed(seed);
    let counts: Vec<(Activity, usize)> =
        Activity::ALL.iter().map(|&a| (a, scale.per_activity)).collect();
    let raw = sim.raw_dataset(&counts);
    let features = extract_batch(&raw).expect("feature extraction");
    let (norm, features) = Normalizer::fit_transform(&features).expect("normalise");
    let data = Dataset::new(features, raw.labels).expect("dataset");
    let mut rng = Rng64::new(seed ^ 0x5011);
    let (train, test) = data.stratified_split(scale.test_fraction(), &mut rng).expect("split");
    (train, test, norm)
}

/// Pre-trains on the base activities only (same budget shape as
/// [`crate::scenario::pretrain_base`], but over two classes instead of
/// four — the schedule needs three increments of headroom).
fn pretrain_two_class(train: &Dataset, scale: &Scale, seed: u64) -> Pilote {
    let base_labels: Vec<usize> = BASE_ACTIVITIES.iter().map(|a| a.label()).collect();
    let base_train = train.filter_classes(&base_labels).expect("base classes");
    let mut cfg = PiloteConfig::paper(seed);
    cfg.max_epochs = scale.pretrain_epochs;
    cfg.pairs_per_sample = 8;
    cfg.lr_halve_every = 3;
    let (mut model, _) = Pilote::pretrain(
        cfg,
        &base_train,
        scale.exemplars_per_class,
        SelectionStrategy::Herding,
    )
    .expect("pretrain");
    model.config_mut().max_epochs = scale.max_epochs;
    model.config_mut().pairs_per_sample = 4;
    model.config_mut().lr_halve_every = 1;
    model
}

/// JSON row for one quality report (the forgetting-curve sample).
fn report_row(r: &pilote_core::QualityReport) -> serde_json::Value {
    json!({
        "generation": r.generation,
        "probe_accuracy": r.probe_accuracy,
        "old_class_accuracy": r.old_class_accuracy,
        "forgetting": r.forgetting,
        "mean_margin": r.mean_margin,
        "alerts": r.alerts.iter().map(|a| a.rule.name()).collect::<Vec<_>>(),
    })
}

/// Runs both parts and writes `BENCH_quality.json` + `trace_quality.json`.
/// Returns the JSON document (used by the determinism test).
pub fn run(scale: &Scale, seed: u64, out: &Path) -> Result<serde_json::Value, ReportError> {
    eprintln!(
        "[quality] A/B alert demo + {FLEET_DEVICES}-device fleet, {} increments",
        INCREMENTS.len()
    );
    let was_enabled = pilote_obs::enabled();
    pilote_obs::reset();
    pilote_obs::set_enabled(true);

    // --- cloud: one corpus, one two-class pre-train, one package --------
    let (train, test, norm) = corpus(scale, seed);
    let mut model = pretrain_two_class(&train, scale, seed);
    let deployment = Deployment {
        checkpoint: Checkpoint::capture(model.net_mut().layers_mut()),
        support: model.support().clone(),
        normalizer: norm,
        config: model.config().clone(),
        prototypes: None,
    };
    let base_labels: Vec<usize> = BASE_ACTIVITIES.iter().map(|a| a.label()).collect();
    let probe = test.filter_classes(&base_labels).expect("probe classes");
    let thresholds = QualityThresholds::default();

    // --- part 1: A/B alert demo ----------------------------------------
    // Same deployment, same new-class samples, same seed — only the
    // update strategy differs.
    let budget = scale.exemplars_per_class;
    let first = INCREMENTS[0];
    let mut rng = Rng64::new(seed ^ 0xab_de);
    let ab_samples = train
        .filter_classes(&[first.label()])
        .expect("increment pool")
        .sample_class(first.label(), LABELS_PER_INCREMENT.max(budget), &mut rng)
        .expect("A/B batch");

    let arm = |retrain: bool| -> (f32, usize) {
        let mut device =
            EdgeDevice::install(DeviceProfile::flagship_phone(), &deployment, &LinkModel::wifi())
                .expect("install");
        device
            .arm_quality_monitor(probe.clone(), &base_labels, thresholds)
            .expect("arm");
        if retrain {
            retrained_update(device.model_mut(), &ab_samples, budget).expect("retrained update");
            device.sample_quality().expect("sample");
        } else {
            for i in 0..ab_samples.features.rows() {
                device.label_sample(first.label(), Tensor::vector(ab_samples.features.row(i)));
            }
            device.update(budget).expect("pilote update");
        }
        let last = device.quality_reports().last().expect("post-update report");
        (last.forgetting, device.log().alert_count())
    };
    let (pilote_forgetting, pilote_alerts) = arm(false);
    let (retrained_forgetting, retrained_alerts) = arm(true);

    // --- part 2: fleet schedule with three increments -------------------
    let links = [LinkModel::wifi(), LinkModel::cellular_4g(), LinkModel::weak_cellular()];
    let slots: Vec<(DeviceProfile, LinkModel)> = DeviceProfile::roster(FLEET_DEVICES)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, links[i % links.len()]))
        .collect();
    let config = FleetConfig {
        seed: seed ^ 0x9a11,
        serve_chunk: 16,
        federated_every: 0, // rounds run explicitly after each increment
        update_threshold: LABELS_PER_INCREMENT,
        exemplar_budget: budget,
    ..FleetConfig::default()
    };
    let mut fleet = Fleet::deploy(slots, &deployment, config).expect("fleet deploy");
    fleet.arm_quality_monitors(&probe, &base_labels, thresholds).expect("arm fleet");

    let mut session_cursor = 0usize;
    let mut rng = Rng64::new(seed ^ 0xf1e7_4a11);
    for (step, activity) in INCREMENTS.iter().enumerate() {
        // Serving phase: every user runs one session off the eval pool.
        for user in 0..USERS {
            let features = session_slice(&test, &mut session_cursor);
            fleet.serve_session(user, &features).expect("serve session");
        }
        // One user teaches their device the increment activity; the last
        // label crosses the threshold and runs the on-device update.
        let labeller = step as u64;
        let samples = train
            .filter_classes(&[activity.label()])
            .expect("increment pool")
            .sample_class(activity.label(), LABELS_PER_INCREMENT, &mut rng)
            .expect("increment batch");
        for i in 0..samples.features.rows() {
            fleet
                .label_sample(labeller, activity.label(), Tensor::vector(samples.features.row(i)))
                .expect("label sample");
        }
        // The federated round spreads the new class to every device and
        // samples every armed monitor at the merged generation.
        fleet.federated_round().expect("federated round");
    }

    // --- rollup + report -------------------------------------------------
    let rollup = fleet.telemetry_rollup().expect("telemetry rollup");
    let curves: Vec<serde_json::Value> = (0..fleet.len())
        .map(|i| {
            json!({
                "device": fleet.device(i).profile().name.clone(),
                "alerts": fleet.device(i).log().alert_count(),
                "reports": fleet
                    .device(i)
                    .quality_reports()
                    .iter()
                    .map(report_row)
                    .collect::<Vec<_>>(),
            })
        })
        .collect();
    let fleet_alerts: usize = (0..fleet.len()).map(|i| fleet.device(i).log().alert_count()).sum();

    let mut t = Table::new(
        "Quality: forgetting curves across the 3-increment fleet schedule",
        &["device", "samples", "final forgetting", "final old-class acc", "alerts"],
    );
    for i in 0..fleet.len() {
        let reports = fleet.device(i).quality_reports();
        let last = reports.last().expect("armed devices always hold a baseline");
        t.row(vec![
            fleet.device(i).profile().name.clone(),
            reports.len().to_string(),
            format!("{:.4}", last.forgetting),
            format!("{:.4}", last.old_class_accuracy),
            fleet.device(i).log().alert_count().to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "A/B demo — PILOTE forgetting {pilote_forgetting:.4} ({pilote_alerts} alerts), \
         Re-trained forgetting {retrained_forgetting:.4} ({retrained_alerts} alerts)"
    );

    // --- chrome trace ----------------------------------------------------
    let trace = pilote_obs::export::chrome_trace(&pilote_obs::snapshot().spans);
    pilote_obs::set_enabled(was_enabled);
    write_json(out, "trace_quality.json", &trace)?;

    let doc = json!({
        "seed": seed,
        "schedule": {
            "devices": FLEET_DEVICES,
            "base_activities": BASE_ACTIVITIES.iter().map(|a| a.label()).collect::<Vec<_>>(),
            "increments": INCREMENTS.iter().map(|a| a.label()).collect::<Vec<_>>(),
            "users": USERS,
            "windows_per_session": WINDOWS_PER_SESSION,
            "labels_per_increment": LABELS_PER_INCREMENT,
        },
        "determinism": "no host wall-clock fields: quality probes and telemetry uploads advance the flop-modeled virtual clock, trace timestamps are logical sequence numbers — byte-identical for a fixed seed at any PILOTE_THREADS",
        "ab_demo": {
            "pilote": { "forgetting": pilote_forgetting, "alerts": pilote_alerts },
            "retrained": { "forgetting": retrained_forgetting, "alerts": retrained_alerts },
            "probe_rows": probe.len(),
        },
        "fleet_alerts": fleet_alerts,
        "forgetting_curves": curves,
        "rollup": serde_json::to_value(&rollup),
    });
    write_json(out, "BENCH_quality.json", &doc)?;
    Ok(doc)
}

/// Next deterministic `[WINDOWS_PER_SESSION, 28]` slice of the eval pool,
/// wrapping at the end.
fn session_slice(eval: &Dataset, cursor: &mut usize) -> Tensor {
    let rows = eval.features.rows();
    let start = *cursor % rows.saturating_sub(WINDOWS_PER_SESSION).max(1);
    *cursor += WINDOWS_PER_SESSION;
    eval.features
        .slice_rows(start, (start + WINDOWS_PER_SESSION).min(rows))
        .expect("eval slice in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reduced scale for the acceptance test. Slightly deeper than the
    /// other benches' tiny scales: the A/B demo needs enough distillation
    /// epochs for the PILOTE arm to actually protect old classes, or the
    /// two strategies are indistinguishable at test size.
    fn tiny() -> Scale {
        Scale {
            per_activity: 100,
            rounds: 1,
            exemplars_per_class: 15,
            max_epochs: 3,
            pretrain_epochs: 4,
            ..Scale::default()
        }
    }

    /// Acceptance check: two runs at the same seed must produce identical
    /// JSON, the Re-trained arm must alert while PILOTE does not, the
    /// rollup totals must cover the schedule, and the trace must hold a
    /// span for every lifecycle phase.
    #[test]
    #[ignore = "slow (two full quality schedules); run by scripts/ci.sh quality step"]
    fn quality_schedule_is_deterministic_and_alerts_discriminate() {
        let dir = std::env::temp_dir().join("pilote_quality_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let a = run(&tiny(), 5, &dir).expect("run a");
        let b = run(&tiny(), 5, &dir).expect("run b");
        assert_eq!(
            serde_json::to_string(&a).expect("json a"),
            serde_json::to_string(&b).expect("json b"),
            "same seed must produce identical quality JSON"
        );
        let ab = &a["ab_demo"];
        assert_eq!(
            ab["pilote"]["alerts"],
            json!(0),
            "PILOTE (distillation on) must not alert: {ab:?}"
        );
        assert!(
            ab["retrained"]["alerts"].as_u64().expect("count") >= 1,
            "Re-trained (no distillation) must raise an alert: {ab:?}"
        );
        // Rollup counters cover every device the schedule touched.
        assert_eq!(a["rollup"]["devices"], json!(FLEET_DEVICES));
        assert!(
            a["rollup"]["counters"]["edge.batch_served"].as_u64().expect("served") >= 1,
            "serving telemetry must reach the rollup"
        );
        // The exported trace holds ≥ 1 span per lifecycle phase.
        let trace: serde_json::Value = serde_json::from_str(
            &std::fs::read_to_string(dir.join("trace_quality.json")).expect("trace file"),
        )
        .expect("trace parses");
        let events = trace["traceEvents"].as_array().expect("traceEvents");
        for phase in
            ["fleet.deploy", "fleet.session", "edge.update", "fleet.federated_round",
             "edge.quality_sample", "fleet.telemetry_rollup"]
        {
            assert!(
                events.iter().any(|e| e["name"] == json!(phase)),
                "trace must contain a {phase} span"
            );
        }
    }
}
