//! **Figure 7** — model accuracy as a function of the number of new-class
//! ('Run') exemplars, with 200 representative exemplars per old class —
//! the extreme-edge question (Q3).
//!
//! Paper shape: PILOTE reaches ~90% with only 30 Run exemplars and
//! dominates the re-trained model, most clearly below 50 exemplars; the
//! pre-trained model is a flat warm-start line.

use crate::report::{write_json, ReportError, Table};
use crate::scale::Scale;
use crate::scenario::{build_scenario, pretrain_base, run_pilote, run_pretrained, run_retrained};
use pilote_har_data::Activity;
use serde_json::json;
use std::path::Path;

/// Sweep over new-class exemplar counts (the paper's x-axis).
pub const NEW_COUNTS: [usize; 7] = [5, 10, 20, 30, 50, 100, 200];

/// One point of the sweep.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    /// New-class exemplars available on the edge.
    pub new_exemplars: usize,
    /// Pre-trained accuracy (prototype from the same few samples).
    pub pretrained: f32,
    /// Re-trained accuracy.
    pub retrained: f32,
    /// PILOTE accuracy.
    pub pilote: f32,
}

/// Runs the Figure 7 sweep.
pub fn run(scale: &Scale, seed: u64, out: &Path) -> Result<Vec<Fig7Point>, ReportError> {
    let scenario = build_scenario(Activity::Run, scale, seed);
    let base = pretrain_base(scenario, scale, seed);
    let mut points = Vec::new();

    for &n_new in &NEW_COUNTS {
        eprintln!("[fig7] {} new-class exemplars", n_new);
        let mut pre = base.model.clone_model();
        let r_pre = run_pretrained(&mut pre, &base.scenario, n_new, seed ^ 0x70);
        let mut retr = base.model.clone_model();
        let r_retr = run_retrained(&mut retr, &base.scenario, n_new, seed ^ 0x71);
        let mut pil = base.model.clone_model();
        let (r_pil, _) = run_pilote(&mut pil, &base.scenario, n_new, seed ^ 0x71);
        points.push(Fig7Point {
            new_exemplars: n_new,
            pretrained: r_pre.accuracy,
            retrained: r_retr.accuracy,
            pilote: r_pil.accuracy,
        });
    }

    let mut t = Table::new(
        "Figure 7: accuracy vs new-class ('Run') exemplar count (200/old class)",
        &["new exemplars", "Pre-trained", "Re-trained", "PILOTE"],
    );
    for p in &points {
        t.row(vec![
            p.new_exemplars.to_string(),
            format!("{:.4}", p.pretrained),
            format!("{:.4}", p.retrained),
            format!("{:.4}", p.pilote),
        ]);
    }
    println!("{t}");

    write_json(
        out,
        "fig7.json",
        &json!(points
            .iter()
            .map(|p| json!({
                "new_exemplars": p.new_exemplars,
                "pretrained": p.pretrained,
                "retrained": p.retrained,
                "pilote": p.pilote,
            }))
            .collect::<Vec<_>>()),
    )?;
    Ok(points)
}
