//! The batch softmax supervised-contrastive loss of Khosla et al. 2020 —
//! reference [16] of the PILOTE paper. PILOTE uses the pairwise margin
//! form (Eq. 2); this canonical multi-positive form is provided for the
//! backbone-loss ablations.
//!
//! For a labelled batch of embeddings `z₁…z_n`:
//!
//! ```text
//! L = Σ_i  −1/|P(i)| Σ_{p∈P(i)} log  exp(z_i·z_p/τ) / Σ_{a≠i} exp(z_i·z_a/τ)
//! ```
//!
//! where `P(i)` are the other samples sharing `i`'s label. Anchors with no
//! positive are skipped. The caller is expected to L2-normalise the
//! embeddings (as in the original paper); this function treats `z` as-is.

use pilote_tensor::{Tensor, TensorError};

/// Mean supervised-contrastive loss over the anchors with at least one
/// positive. Returns `(loss, grad_embeddings)`.
pub fn supervised_contrastive_loss(
    embeddings: &Tensor,
    labels: &[usize],
    temperature: f32,
) -> Result<(f32, Tensor), TensorError> {
    if embeddings.rank() != 2 {
        return Err(TensorError::RankMismatch {
            got: embeddings.rank(),
            expected: 2,
            op: "supervised_contrastive_loss",
        });
    }
    if labels.len() != embeddings.rows() {
        return Err(TensorError::LengthMismatch { len: labels.len(), expected: embeddings.rows() });
    }
    assert!(temperature > 0.0, "temperature must be positive");
    let n = embeddings.rows();
    let d = embeddings.cols();
    let tau = temperature;
    let mut grad = Tensor::zeros([n, d]);
    if n < 2 {
        return Ok((0.0, grad));
    }

    // Similarity matrix z_i·z_j / τ.
    let sims = embeddings.matmul_t(embeddings)?.scale(1.0 / tau);

    let mut total_loss = 0.0f64;
    let mut anchors_used = 0usize;

    for i in 0..n {
        let positives: Vec<usize> = (0..n)
            .filter(|&j| j != i && labels[j] == labels[i])
            .collect();
        if positives.is_empty() {
            continue;
        }
        anchors_used += 1;
        // Softmax over a ≠ i with the max trick.
        let row = sims.row(i);
        let max = (0..n)
            .filter(|&j| j != i)
            .map(|j| row[j])
            .fold(f32::NEG_INFINITY, f32::max);
        let mut z_sum = 0.0f64;
        for (j, &s_ij) in row.iter().enumerate() {
            if j != i {
                z_sum += ((s_ij - max) as f64).exp();
            }
        }
        let inv_p = 1.0 / positives.len() as f32;

        // Loss: −1/|P| Σ_p (s_ip − max − log Σ) .
        for &p in &positives {
            total_loss -= (row[p] - max) as f64 * inv_p as f64;
        }
        total_loss += z_sum.ln();

        // Gradients. s_ij = softmax over a≠i.
        // ∂L_i/∂z_j (j≠i) = z_i/τ · (s_ij − [j ∈ P]/|P|)
        // ∂L_i/∂z_i       = 1/τ · (Σ_a s_ia z_a − mean_p z_p)
        let zi = embeddings.row(i);
        let mut coeff_sum_z = vec![0.0f32; d]; // Σ_a s_ia z_a
        for j in 0..n {
            if j == i {
                continue;
            }
            let s_ij = (((row[j] - max) as f64).exp() / z_sum) as f32;
            let indicator = if labels[j] == labels[i] { inv_p } else { 0.0 };
            let c = (s_ij - indicator) / tau;
            let gj = grad.row_mut(j);
            for (g, &z) in gj.iter_mut().zip(zi) {
                *g += c * z;
            }
            let zj = embeddings.row(j);
            for (acc, &z) in coeff_sum_z.iter_mut().zip(zj) {
                *acc += s_ij * z;
            }
        }
        let mut mean_pos = vec![0.0f32; d];
        for &p in &positives {
            for (m, &z) in mean_pos.iter_mut().zip(embeddings.row(p)) {
                *m += z * inv_p;
            }
        }
        let gi = grad.row_mut(i);
        for j in 0..d {
            gi[j] += (coeff_sum_z[j] - mean_pos[j]) / tau;
        }
    }

    if anchors_used == 0 {
        return Ok((0.0, Tensor::zeros([n, d])));
    }
    let inv_a = 1.0 / anchors_used as f32;
    Ok(((total_loss * inv_a as f64) as f32, grad.scale(inv_a)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_tensor::Rng64;

    #[test]
    fn loss_decreases_when_clusters_tighten() {
        let mut rng = Rng64::new(1);
        let tight_a = Tensor::randn([8, 4], 0.0, 0.1, &mut rng);
        let tight_b = Tensor::randn([8, 4], 5.0, 0.1, &mut rng);
        let tight = Tensor::vstack(&[&tight_a, &tight_b]).unwrap();
        let loose = Tensor::randn([16, 4], 0.0, 3.0, &mut rng);
        let labels: Vec<usize> = (0..16).map(|i| usize::from(i >= 8)).collect();
        let (l_tight, _) = supervised_contrastive_loss(&tight, &labels, 1.0).unwrap();
        let (l_loose, _) = supervised_contrastive_loss(&loose, &labels, 1.0).unwrap();
        assert!(l_tight < l_loose, "tight {l_tight} loose {l_loose}");
    }

    #[test]
    fn anchors_without_positives_are_skipped() {
        let mut rng = Rng64::new(2);
        let z = Tensor::randn([3, 2], 0.0, 1.0, &mut rng);
        // Every label unique → no anchor has a positive → loss 0, grad 0.
        let (loss, grad) = supervised_contrastive_loss(&z, &[0, 1, 2], 1.0).unwrap();
        assert_eq!(loss, 0.0);
        assert_eq!(grad.sq_norm(), 0.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = Rng64::new(3);
        let z = Tensor::randn([6, 3], 0.0, 1.0, &mut rng);
        let labels = [0usize, 0, 1, 1, 2, 2];
        let (_, grad) = supervised_contrastive_loss(&z, &labels, 0.7).unwrap();
        let eps = 1e-3;
        for idx in 0..18 {
            let mut zp = z.clone();
            zp.as_mut_slice()[idx] += eps;
            let mut zm = z.clone();
            zm.as_mut_slice()[idx] -= eps;
            let (lp, _) = supervised_contrastive_loss(&zp, &labels, 0.7).unwrap();
            let (lm, _) = supervised_contrastive_loss(&zm, &labels, 0.7).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.as_slice()[idx]).abs() < 2e-2,
                "idx {idx}: numeric {numeric} vs analytic {}",
                grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn tiny_batches_are_safe() {
        let z = Tensor::zeros([1, 4]);
        let (loss, grad) = supervised_contrastive_loss(&z, &[0], 1.0).unwrap();
        assert_eq!(loss, 0.0);
        assert_eq!(grad.shape().dims(), &[1, 4]);
        let e = Tensor::zeros([0, 4]);
        assert!(supervised_contrastive_loss(&e, &[], 1.0).is_ok());
    }

    #[test]
    fn input_validation() {
        let z = Tensor::zeros([2, 3]);
        assert!(supervised_contrastive_loss(&z, &[0], 1.0).is_err());
        assert!(supervised_contrastive_loss(&Tensor::zeros([4]), &[0], 1.0).is_err());
    }
}
