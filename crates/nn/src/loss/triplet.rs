//! Triplet margin loss — a standard alternative to the pairwise
//! contrastive loss for metric learning, provided for the backbone-loss
//! ablations.

use pilote_tensor::{Rng64, Tensor, TensorError};

/// Mean triplet loss `max(0, ‖a−p‖² − ‖a−n‖² + margin)` over a batch of
/// `(anchor, positive, negative)` embedding triplets (`[n, d]` each).
///
/// Returns `(loss, grad_anchor, grad_positive, grad_negative)`.
pub fn triplet_loss(
    anchor: &Tensor,
    positive: &Tensor,
    negative: &Tensor,
    margin: f32,
) -> Result<(f32, Tensor, Tensor, Tensor), TensorError> {
    if anchor.rank() != 2 || anchor.shape() != positive.shape() || anchor.shape() != negative.shape()
    {
        return Err(TensorError::ShapeMismatch {
            left: anchor.shape().dims().to_vec(),
            right: positive.shape().dims().to_vec(),
            op: "triplet_loss",
        });
    }
    assert!(margin > 0.0, "triplet margin must be positive");
    let (n, d) = (anchor.rows(), anchor.cols());
    if n == 0 {
        return Ok((0.0, anchor.clone(), positive.clone(), negative.clone()));
    }
    let inv_n = 1.0 / n as f32;
    let mut loss = 0.0f64;
    let mut ga = Tensor::zeros([n, d]);
    let mut gp = Tensor::zeros([n, d]);
    let mut gn = Tensor::zeros([n, d]);
    for i in 0..n {
        let a = anchor.row(i);
        let p = positive.row(i);
        let nn = negative.row(i);
        let dp: f32 = a.iter().zip(p).map(|(&x, &y)| (x - y) * (x - y)).sum();
        let dn: f32 = a.iter().zip(nn).map(|(&x, &y)| (x - y) * (x - y)).sum();
        let violation = dp - dn + margin;
        if violation > 0.0 {
            loss += violation as f64;
            // ∂/∂a = 2(a−p) − 2(a−n) = 2(n−p) ; ∂/∂p = −2(a−p) ; ∂/∂n = 2(a−n)
            let (ra, rp, rn) = (a, p, nn);
            let ga_r = ga.row_mut(i);
            for j in 0..d {
                ga_r[j] = 2.0 * (rn[j] - rp[j]) * inv_n;
            }
            let gp_r = gp.row_mut(i);
            for j in 0..d {
                gp_r[j] = -2.0 * (ra[j] - rp[j]) * inv_n;
            }
            let gn_r = gn.row_mut(i);
            for j in 0..d {
                gn_r[j] = 2.0 * (ra[j] - rn[j]) * inv_n;
            }
        }
    }
    Ok(((loss * inv_n as f64) as f32, ga, gp, gn))
}

/// A sampled batch of triplet indices.
#[derive(Debug, Clone, Default)]
pub struct TripletSet {
    /// Anchor row indices.
    pub anchors: Vec<usize>,
    /// Positive (same-class) row indices.
    pub positives: Vec<usize>,
    /// Negative (different-class) row indices.
    pub negatives: Vec<usize>,
}

impl TripletSet {
    /// Number of triplets.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }
}

/// Samples up to `per_anchor` random triplets per anchor from a labelled
/// batch; anchors whose class has no second member, or with no
/// different-class row available, are skipped.
pub fn sample_triplets(labels: &[usize], per_anchor: usize, rng: &mut Rng64) -> TripletSet {
    let n = labels.len();
    let mut out = TripletSet::default();
    for (anchor, &ya) in labels.iter().enumerate() {
        let has_pos = labels.iter().enumerate().any(|(i, &l)| i != anchor && l == ya);
        let has_neg = labels.iter().any(|&l| l != ya);
        if !has_pos || !has_neg {
            continue;
        }
        for _ in 0..per_anchor {
            let positive = loop {
                let c = rng.below(n);
                if c != anchor && labels[c] == ya {
                    break c;
                }
            };
            let negative = loop {
                let c = rng.below(n);
                if labels[c] != ya {
                    break c;
                }
            };
            out.anchors.push(anchor);
            out.positives.push(positive);
            out.negatives.push(negative);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfied_triplet_is_free() {
        let a = Tensor::from_rows(&[vec![0.0]]).unwrap();
        let p = Tensor::from_rows(&[vec![0.1]]).unwrap();
        let n = Tensor::from_rows(&[vec![10.0]]).unwrap();
        let (loss, ga, _, _) = triplet_loss(&a, &p, &n, 1.0).unwrap();
        assert_eq!(loss, 0.0);
        assert_eq!(ga.sq_norm(), 0.0);
    }

    #[test]
    fn violated_triplet_known_value() {
        let a = Tensor::from_rows(&[vec![0.0]]).unwrap();
        let p = Tensor::from_rows(&[vec![2.0]]).unwrap(); // dp = 4
        let n = Tensor::from_rows(&[vec![1.0]]).unwrap(); // dn = 1
        let (loss, _, _, _) = triplet_loss(&a, &p, &n, 0.5).unwrap();
        assert!((loss - 3.5).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_difference() {
        use pilote_tensor::Rng64;
        let mut rng = Rng64::new(1);
        let a = Tensor::randn([5, 3], 0.0, 1.0, &mut rng);
        let p = Tensor::randn([5, 3], 0.0, 1.0, &mut rng);
        let n = Tensor::randn([5, 3], 0.0, 1.0, &mut rng);
        let (_, ga, gp, gn) = triplet_loss(&a, &p, &n, 1.0).unwrap();
        let eps = 1e-3;
        for idx in 0..15 {
            for (which, grad) in [(0, &ga), (1, &gp), (2, &gn)] {
                let perturb = |delta: f32| {
                    let mut aa = a.clone();
                    let mut pp = p.clone();
                    let mut nn = n.clone();
                    match which {
                        0 => aa.as_mut_slice()[idx] += delta,
                        1 => pp.as_mut_slice()[idx] += delta,
                        _ => nn.as_mut_slice()[idx] += delta,
                    }
                    triplet_loss(&aa, &pp, &nn, 1.0).unwrap().0
                };
                let numeric = (perturb(eps) - perturb(-eps)) / (2.0 * eps);
                assert!(
                    (numeric - grad.as_slice()[idx]).abs() < 1e-2,
                    "input {which} idx {idx}: {numeric} vs {}",
                    grad.as_slice()[idx]
                );
            }
        }
    }

    #[test]
    fn sampler_produces_valid_triplets() {
        let labels = vec![0, 0, 1, 1, 2, 2];
        let mut rng = Rng64::new(2);
        let t = sample_triplets(&labels, 3, &mut rng);
        assert_eq!(t.len(), 18);
        for i in 0..t.len() {
            assert_eq!(labels[t.anchors[i]], labels[t.positives[i]]);
            assert_ne!(t.anchors[i], t.positives[i]);
            assert_ne!(labels[t.anchors[i]], labels[t.negatives[i]]);
        }
    }

    #[test]
    fn sampler_skips_impossible_anchors() {
        // Class 9 has a single member → no positive; all-same-class → no negative.
        let mut rng = Rng64::new(3);
        let t = sample_triplets(&[9, 0, 0], 2, &mut rng);
        assert!(t.anchors.iter().all(|&a| a != 0));
        let t2 = sample_triplets(&[1, 1, 1], 2, &mut rng);
        assert!(t2.is_empty());
    }
}
