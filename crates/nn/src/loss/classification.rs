//! Classification losses used by the continual-learning comparison
//! strategies (LwF, GDumb, naive fine-tuning): softmax cross-entropy, its
//! temperature-scaled knowledge-distillation variant, and plain MSE.

use pilote_tensor::{Tensor, TensorError};

/// Row-wise softmax with the max-subtraction trick for numerical stability.
pub fn softmax(logits: &Tensor) -> Result<Tensor, TensorError> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch { got: logits.rank(), expected: 2, op: "softmax" });
    }
    let mut out = logits.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Ok(out)
}

/// Mean softmax cross-entropy against integer class labels.
///
/// Returns `(loss, grad_logits)`; the gradient is the familiar
/// `(softmax − onehot)/n`.
pub fn softmax_cross_entropy(
    logits: &Tensor,
    labels: &[usize],
) -> Result<(f32, Tensor), TensorError> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch { got: logits.rank(), expected: 2, op: "softmax_cross_entropy" });
    }
    if labels.len() != logits.rows() {
        return Err(TensorError::LengthMismatch { len: labels.len(), expected: logits.rows() });
    }
    let n = logits.rows();
    if n == 0 {
        return Ok((0.0, logits.clone()));
    }
    let classes = logits.cols();
    for &y in labels {
        if y >= classes {
            return Err(TensorError::OutOfBounds { index: y, bound: classes, op: "softmax_cross_entropy" });
        }
    }
    let probs = softmax(logits)?;
    let inv_n = 1.0 / n as f32;
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    for (i, &y) in labels.iter().enumerate() {
        let p = probs.at(i, y).max(1e-12);
        loss -= (p as f64).ln();
        let row = grad.row_mut(i);
        row[y] -= 1.0;
        for v in row {
            *v *= inv_n;
        }
    }
    Ok(((loss * inv_n as f64) as f32, grad))
}

/// Temperature-scaled soft-target cross-entropy (Hinton et al. 2015) used
/// by the LwF baseline: the student matches the teacher's softened
/// distribution.
///
/// `teacher_logits` are constants. Returns `(loss, grad_student_logits)`.
/// Loss and gradient carry the conventional `T²` factor so the gradient
/// magnitude is comparable with the hard-label term.
pub fn kd_soft_cross_entropy(
    student_logits: &Tensor,
    teacher_logits: &Tensor,
    temperature: f32,
) -> Result<(f32, Tensor), TensorError> {
    if student_logits.shape() != teacher_logits.shape() || student_logits.rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            left: student_logits.shape().dims().to_vec(),
            right: teacher_logits.shape().dims().to_vec(),
            op: "kd_soft_cross_entropy",
        });
    }
    assert!(temperature > 0.0, "temperature must be positive");
    let n = student_logits.rows();
    if n == 0 {
        return Ok((0.0, student_logits.clone()));
    }
    let t = temperature;
    let p_teacher = softmax(&teacher_logits.scale(1.0 / t))?;
    let p_student = softmax(&student_logits.scale(1.0 / t))?;
    let inv_n = 1.0 / n as f32;
    let mut loss = 0.0f64;
    for i in 0..n {
        for (q, p) in p_teacher.row(i).iter().zip(p_student.row(i)) {
            loss -= (*q as f64) * (p.max(1e-12) as f64).ln();
        }
    }
    // ∂L/∂z_student = T²·(1/T)·(p_student − p_teacher)/n = T·(ps − pt)/n
    let grad = p_student.try_sub(&p_teacher)?.scale(t * inv_n);
    Ok(((loss * inv_n as f64) as f32 * t * t, grad))
}

/// Mean squared error. Returns `(loss, grad_pred)`.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor), TensorError> {
    if pred.shape() != target.shape() {
        return Err(TensorError::ShapeMismatch {
            left: pred.shape().dims().to_vec(),
            right: target.shape().dims().to_vec(),
            op: "mse_loss",
        });
    }
    let n = pred.len();
    if n == 0 {
        return Ok((0.0, pred.clone()));
    }
    let diff = pred.try_sub(target)?;
    let loss = diff.sq_norm() / n as f32;
    let grad = diff.scale(2.0 / n as f32);
    Ok((loss, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_tensor::Rng64;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng64::new(1);
        let logits = Tensor::randn([5, 7], 0.0, 3.0, &mut rng);
        let p = softmax(&logits).unwrap();
        for i in 0..5 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(i).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let logits = Tensor::from_rows(&[vec![1000.0, 1001.0]]).unwrap();
        let p = softmax(&logits).unwrap();
        assert!(p.all_finite());
        assert!(p.at(0, 1) > p.at(0, 0));
    }

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let logits = Tensor::from_rows(&[vec![100.0, 0.0], vec![0.0, 100.0]]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(loss < 1e-4);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits = Tensor::zeros([3, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_finite_diff() {
        let mut rng = Rng64::new(2);
        let logits = Tensor::randn([4, 3], 0.0, 1.0, &mut rng);
        let labels = [2, 0, 1, 1];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for idx in 0..12 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let (vp, _) = softmax_cross_entropy(&lp, &labels).unwrap();
            let (vm, _) = softmax_cross_entropy(&lm, &labels).unwrap();
            let numeric = (vp - vm) / (2.0 * eps);
            assert!((numeric - grad.as_slice()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn cross_entropy_rejects_bad_labels() {
        let logits = Tensor::zeros([2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
    }

    #[test]
    fn kd_zero_when_student_equals_teacher() {
        let mut rng = Rng64::new(3);
        let logits = Tensor::randn([4, 5], 0.0, 1.0, &mut rng);
        let (_, grad) = kd_soft_cross_entropy(&logits, &logits, 2.0).unwrap();
        assert!(grad.sq_norm() < 1e-10);
    }

    #[test]
    fn kd_gradient_finite_diff() {
        let mut rng = Rng64::new(4);
        let student = Tensor::randn([3, 4], 0.0, 1.0, &mut rng);
        let teacher = Tensor::randn([3, 4], 0.0, 1.0, &mut rng);
        let temp = 2.0;
        let (_, grad) = kd_soft_cross_entropy(&student, &teacher, temp).unwrap();
        let eps = 1e-3;
        for idx in 0..12 {
            let mut sp = student.clone();
            sp.as_mut_slice()[idx] += eps;
            let mut sm = student.clone();
            sm.as_mut_slice()[idx] -= eps;
            let (vp, _) = kd_soft_cross_entropy(&sp, &teacher, temp).unwrap();
            let (vm, _) = kd_soft_cross_entropy(&sm, &teacher, temp).unwrap();
            let numeric = (vp - vm) / (2.0 * eps);
            assert!(
                (numeric - grad.as_slice()[idx]).abs() < 2e-2,
                "idx {idx}: {numeric} vs {}",
                grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let p = Tensor::vector(&[1.0, 2.0]);
        let t = Tensor::vector(&[0.0, 0.0]);
        let (loss, grad) = mse_loss(&p, &t).unwrap();
        assert_eq!(loss, 2.5);
        assert_eq!(grad.as_slice(), &[1.0, 2.0]);
    }
}
