//! The embedding-space distillation loss of Algorithm 1, line 11:
//! `L_disti = Σ_{x ∈ D₀} ‖φ_Θn(x) − φ_Θo(x)‖²`.

use pilote_tensor::{Tensor, TensorError};

/// Mean embedding distillation loss.
///
/// * `student`: embeddings of the old-class exemplars under the model being
///   trained (`φ_Θn`), `[n, d]`;
/// * `teacher`: embeddings of the same exemplars under the frozen
///   pre-trained model (`φ_Θo`), `[n, d]` — treated as constants.
///
/// Returns `(loss, grad_student)` where the gradient is for the mean loss
/// (divided by `n`); the teacher receives no gradient.
pub fn distillation_loss(student: &Tensor, teacher: &Tensor) -> Result<(f32, Tensor), TensorError> {
    if student.shape() != teacher.shape() || student.rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            left: student.shape().dims().to_vec(),
            right: teacher.shape().dims().to_vec(),
            op: "distillation_loss",
        });
    }
    let n = student.rows();
    if n == 0 {
        return Ok((0.0, student.clone()));
    }
    let inv_n = 1.0 / n as f32;
    let diff = student.try_sub(teacher)?;
    let loss = diff.sq_norm() * inv_n;
    let grad = diff.scale(2.0 * inv_n);
    Ok((loss, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_tensor::Rng64;

    #[test]
    fn identical_embeddings_cost_nothing() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let (loss, grad) = distillation_loss(&t, &t).unwrap();
        assert_eq!(loss, 0.0);
        assert_eq!(grad.sq_norm(), 0.0);
    }

    #[test]
    fn known_value() {
        let s = Tensor::from_rows(&[vec![1.0, 0.0]]).unwrap();
        let t = Tensor::from_rows(&[vec![0.0, 0.0]]).unwrap();
        let (loss, grad) = distillation_loss(&s, &t).unwrap();
        assert_eq!(loss, 1.0);
        assert_eq!(grad.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn mean_normalisation() {
        let s = Tensor::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let t = Tensor::zeros([2, 1]);
        let (loss, grad) = distillation_loss(&s, &t).unwrap();
        assert_eq!(loss, 1.0); // (1 + 1)/2
        assert_eq!(grad.as_slice(), &[1.0, 1.0]); // 2·diff/2
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = Rng64::new(5);
        let s = Tensor::randn([4, 3], 0.0, 1.0, &mut rng);
        let t = Tensor::randn([4, 3], 0.0, 1.0, &mut rng);
        let (_, grad) = distillation_loss(&s, &t).unwrap();
        let eps = 1e-3;
        for idx in 0..12 {
            let mut sp = s.clone();
            sp.as_mut_slice()[idx] += eps;
            let mut sm = s.clone();
            sm.as_mut_slice()[idx] -= eps;
            let (lp, _) = distillation_loss(&sp, &t).unwrap();
            let (lm, _) = distillation_loss(&sm, &t).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad.as_slice()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn empty_batch() {
        let e = Tensor::zeros([0, 5]);
        let (loss, _) = distillation_loss(&e, &e).unwrap();
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(distillation_loss(&Tensor::zeros([2, 3]), &Tensor::zeros([2, 4])).is_err());
    }
}
