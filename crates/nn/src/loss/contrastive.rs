//! The margin contrastive loss of the PILOTE paper (Eq. 2).
//!
//! For a pair of embeddings `(a, b)` with similarity indicator `Y`:
//!
//! ```text
//! L = Y · ‖a − b‖²  +  (1 − Y) · max(0, m² − ‖a − b‖²)        (paper form)
//! L = Y · ‖a − b‖²  +  (1 − Y) · max(0, m − ‖a − b‖)²         (Hadsell form)
//! ```
//!
//! The paper writes the squared-margin form; the classic Hadsell–Chopra–LeCun
//! formulation is provided as well for the A2 margin ablation.

use pilote_tensor::{Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Which dissimilar-pair penalty to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ContrastiveForm {
    /// `max(0, m² − d²)` — the form printed in the paper (Eq. 2).
    #[default]
    SquaredMargin,
    /// `max(0, m − d)²` — Hadsell et al. 2006.
    Hadsell,
}

/// Mean contrastive loss over a batch of embedding pairs.
///
/// * `a`, `b`: `[n, d]` embeddings (row `i` of each forms pair `i`);
/// * `similar[i]`: `true` when the pair shares a label (`Y = 1`);
/// * `margin`: the `m` of Eq. 2 (must be positive).
///
/// Returns `(loss, grad_a, grad_b)` where the gradients are with respect to
/// the *mean* loss (already divided by `n`).
pub fn contrastive_pair_loss(
    a: &Tensor,
    b: &Tensor,
    similar: &[bool],
    margin: f32,
    form: ContrastiveForm,
) -> Result<(f32, Tensor, Tensor), TensorError> {
    if a.rank() != 2 || b.rank() != 2 || a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().dims().to_vec(),
            right: b.shape().dims().to_vec(),
            op: "contrastive_pair_loss",
        });
    }
    if similar.len() != a.rows() {
        return Err(TensorError::LengthMismatch { len: similar.len(), expected: a.rows() });
    }
    assert!(margin > 0.0, "contrastive margin must be positive, got {margin}");
    let n = a.rows();
    if n == 0 {
        return Ok((0.0, a.clone(), b.clone()));
    }
    let d = a.cols();
    let inv_n = 1.0 / n as f32;
    let mut loss = 0.0f64;
    let mut grad_a = Tensor::zeros([n, d]);
    let mut grad_b = Tensor::zeros([n, d]);

    #[allow(clippy::needless_range_loop)] // `i` indexes four parallel structures
    for i in 0..n {
        let ra = a.row(i);
        let rb = b.row(i);
        let sq_dist: f32 = ra.iter().zip(rb).map(|(&x, &y)| (x - y) * (x - y)).sum();
        if similar[i] {
            // L = d² ; ∂L/∂a = 2(a − b)
            loss += sq_dist as f64;
            let ga = grad_a.row_mut(i);
            for j in 0..d {
                ga[j] = 2.0 * (ra[j] - rb[j]) * inv_n;
            }
            let gb = grad_b.row_mut(i);
            for j in 0..d {
                gb[j] = -2.0 * (ra[j] - rb[j]) * inv_n;
            }
        } else {
            match form {
                ContrastiveForm::SquaredMargin => {
                    let violation = margin * margin - sq_dist;
                    if violation > 0.0 {
                        // L = m² − d² ; ∂L/∂a = −2(a − b)
                        loss += violation as f64;
                        let ga = grad_a.row_mut(i);
                        for j in 0..d {
                            ga[j] = -2.0 * (ra[j] - rb[j]) * inv_n;
                        }
                        let gb = grad_b.row_mut(i);
                        for j in 0..d {
                            gb[j] = 2.0 * (ra[j] - rb[j]) * inv_n;
                        }
                    }
                }
                ContrastiveForm::Hadsell => {
                    let dist = sq_dist.sqrt();
                    let gap = margin - dist;
                    if gap > 0.0 {
                        // L = (m − d)² ; ∂L/∂a = −2(m − d)/d · (a − b)
                        loss += (gap * gap) as f64;
                        let coef = if dist > 1e-12 { -2.0 * gap / dist } else { 0.0 };
                        let ga = grad_a.row_mut(i);
                        for j in 0..d {
                            ga[j] = coef * (ra[j] - rb[j]) * inv_n;
                        }
                        let gb = grad_b.row_mut(i);
                        for j in 0..d {
                            gb[j] = -coef * (ra[j] - rb[j]) * inv_n;
                        }
                    }
                }
            }
        }
    }
    Ok(((loss * inv_n as f64) as f32, grad_a, grad_b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similar_pair_loss_is_squared_distance() {
        let a = Tensor::from_rows(&[vec![0.0, 0.0]]).unwrap();
        let b = Tensor::from_rows(&[vec![3.0, 4.0]]).unwrap();
        let (loss, ga, gb) =
            contrastive_pair_loss(&a, &b, &[true], 1.0, ContrastiveForm::SquaredMargin).unwrap();
        assert_eq!(loss, 25.0);
        assert_eq!(ga.as_slice(), &[-6.0, -8.0]);
        assert_eq!(gb.as_slice(), &[6.0, 8.0]);
    }

    #[test]
    fn dissimilar_within_margin_pushes_apart() {
        let a = Tensor::from_rows(&[vec![0.0]]).unwrap();
        let b = Tensor::from_rows(&[vec![1.0]]).unwrap();
        let (loss, ga, _) =
            contrastive_pair_loss(&a, &b, &[false], 2.0, ContrastiveForm::SquaredMargin).unwrap();
        // m² − d² = 4 − 1 = 3 ; gradient pushes a away from b (negative dir)
        assert_eq!(loss, 3.0);
        assert_eq!(ga.as_slice(), &[2.0]); // −2(a−b) = −2(−1) = 2
    }

    #[test]
    fn dissimilar_beyond_margin_is_free() {
        let a = Tensor::from_rows(&[vec![0.0]]).unwrap();
        let b = Tensor::from_rows(&[vec![5.0]]).unwrap();
        for form in [ContrastiveForm::SquaredMargin, ContrastiveForm::Hadsell] {
            let (loss, ga, gb) = contrastive_pair_loss(&a, &b, &[false], 2.0, form).unwrap();
            assert_eq!(loss, 0.0);
            assert_eq!(ga.sq_norm(), 0.0);
            assert_eq!(gb.sq_norm(), 0.0);
        }
    }

    #[test]
    fn hadsell_form_known_value() {
        let a = Tensor::from_rows(&[vec![0.0]]).unwrap();
        let b = Tensor::from_rows(&[vec![1.0]]).unwrap();
        let (loss, _, _) =
            contrastive_pair_loss(&a, &b, &[false], 3.0, ContrastiveForm::Hadsell).unwrap();
        assert_eq!(loss, 4.0); // (3 − 1)²
    }

    #[test]
    fn mean_over_pairs() {
        let a = Tensor::from_rows(&[vec![0.0], vec![0.0]]).unwrap();
        let b = Tensor::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let (loss, _, _) =
            contrastive_pair_loss(&a, &b, &[true, true], 1.0, ContrastiveForm::SquaredMargin)
                .unwrap();
        assert_eq!(loss, (1.0 + 4.0) / 2.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        use pilote_tensor::Rng64;
        let mut rng = Rng64::new(7);
        let n = 6;
        let d = 4;
        let a = Tensor::randn([n, d], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([n, d], 0.0, 1.0, &mut rng);
        let similar = [true, false, true, false, false, true];
        for form in [ContrastiveForm::SquaredMargin, ContrastiveForm::Hadsell] {
            let (_, ga, _) = contrastive_pair_loss(&a, &b, &similar, 1.5, form).unwrap();
            let eps = 1e-3;
            for idx in 0..(n * d) {
                let mut ap = a.clone();
                ap.as_mut_slice()[idx] += eps;
                let mut am = a.clone();
                am.as_mut_slice()[idx] -= eps;
                let (lp, _, _) = contrastive_pair_loss(&ap, &b, &similar, 1.5, form).unwrap();
                let (lm, _, _) = contrastive_pair_loss(&am, &b, &similar, 1.5, form).unwrap();
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = ga.as_slice()[idx];
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{form:?} idx {idx}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn empty_batch_is_zero_loss() {
        let a = Tensor::zeros([0, 3]);
        let b = Tensor::zeros([0, 3]);
        let (loss, _, _) =
            contrastive_pair_loss(&a, &b, &[], 1.0, ContrastiveForm::SquaredMargin).unwrap();
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn shape_validation() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 4]);
        assert!(contrastive_pair_loss(&a, &b, &[true, true], 1.0, ContrastiveForm::SquaredMargin)
            .is_err());
        let b2 = Tensor::zeros([2, 3]);
        assert!(contrastive_pair_loss(&a, &b2, &[true], 1.0, ContrastiveForm::SquaredMargin)
            .is_err());
    }
}
