//! Loss functions.
//!
//! Every loss returns the scalar value together with the analytic gradient
//! with respect to its tensor inputs, so callers can chain directly into
//! [`crate::layer::Layer::backward`]. All gradients are verified against
//! finite differences in this crate's test suite.

mod classification;
mod contrastive;
mod distillation;
mod supcon;
mod triplet;

pub use classification::{kd_soft_cross_entropy, mse_loss, softmax, softmax_cross_entropy};
pub use contrastive::{contrastive_pair_loss, ContrastiveForm};
pub use distillation::distillation_loss;
pub use supcon::supervised_contrastive_loss;
pub use triplet::{sample_triplets, triplet_loss, TripletSet};
