//! Model persistence — the MAGNETO deployment step ships a pre-trained
//! model from the cloud to edge devices as a parameter snapshot.
//!
//! A [`Checkpoint`] carries the parameter tensors of a
//! [`crate::layer::Sequential`] (or any [`Layer`]) together with a format
//! version and a structural fingerprint, so loading into a mismatched
//! architecture fails loudly instead of silently mangling weights.

use crate::layer::Layer;
use pilote_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A serialisable parameter snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Shape of every parameter tensor, in stable order — the structural
    /// fingerprint checked on load.
    pub shapes: Vec<Vec<usize>>,
    /// The parameter tensors.
    pub params: Vec<Tensor>,
}

/// Errors from checkpoint load/save.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint was produced by an incompatible (older) format
    /// version.
    VersionMismatch {
        /// Version found in the payload.
        found: u32,
    },
    /// The checkpoint comes from a *newer* format than this build
    /// understands — a stale edge binary receiving a fresh cloud payload.
    /// Distinct from [`CheckpointError::VersionMismatch`] so deployments
    /// can report "update the device" rather than "corrupt file".
    VersionTooNew {
        /// Version found in the payload.
        found: u32,
    },
    /// The parameter structure does not match the target model.
    StructureMismatch {
        /// Human-readable detail.
        detail: String,
    },
    /// A parameter tensor contains NaN/Inf values. Restoring it would
    /// poison every subsequent forward pass, so loading refuses up front.
    NonFinite {
        /// Index of the offending parameter tensor.
        tensor: usize,
    },
    /// The payload could not be parsed.
    Malformed {
        /// Parser message.
        detail: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::VersionMismatch { found } => {
                write!(f, "checkpoint version {found} != supported {CHECKPOINT_VERSION}")
            }
            CheckpointError::VersionTooNew { found } => {
                write!(
                    f,
                    "checkpoint version {found} is newer than supported {CHECKPOINT_VERSION}; \
                     update this binary"
                )
            }
            CheckpointError::StructureMismatch { detail } => {
                write!(f, "checkpoint structure mismatch: {detail}")
            }
            CheckpointError::NonFinite { tensor } => {
                write!(f, "checkpoint parameter tensor {tensor} contains non-finite values")
            }
            CheckpointError::Malformed { detail } => write!(f, "malformed checkpoint: {detail}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl Checkpoint {
    /// Captures a model's parameters.
    pub fn capture(model: &mut dyn Layer) -> Checkpoint {
        let params: Vec<Tensor> =
            model.params_and_grads().into_iter().map(|(p, _)| p.clone()).collect();
        Checkpoint {
            version: CHECKPOINT_VERSION,
            shapes: params.iter().map(|p| p.shape().dims().to_vec()).collect(),
            params,
        }
    }

    /// Validates version and parameter finiteness without touching a
    /// model — the checks shared by [`Checkpoint::restore`] and callers
    /// that vet a payload before accepting it.
    pub fn validate(&self) -> Result<(), CheckpointError> {
        if self.version > CHECKPOINT_VERSION {
            return Err(CheckpointError::VersionTooNew { found: self.version });
        }
        if self.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::VersionMismatch { found: self.version });
        }
        for (i, p) in self.params.iter().enumerate() {
            if !p.all_finite() {
                return Err(CheckpointError::NonFinite { tensor: i });
            }
        }
        Ok(())
    }

    /// Restores parameters into a structurally identical model.
    ///
    /// Rejects newer-than-supported versions and non-finite parameter
    /// values before writing anything, so a failed restore never leaves
    /// the model half-updated.
    pub fn restore(&self, model: &mut dyn Layer) -> Result<(), CheckpointError> {
        self.validate()?;
        let pairs = model.params_and_grads();
        if pairs.len() != self.params.len() {
            return Err(CheckpointError::StructureMismatch {
                detail: format!("{} tensors in checkpoint, model has {}", self.params.len(), pairs.len()),
            });
        }
        for (i, ((param, _), saved)) in pairs.into_iter().zip(&self.params).enumerate() {
            if param.shape() != saved.shape() {
                return Err(CheckpointError::StructureMismatch {
                    detail: format!(
                        "tensor {i}: checkpoint {:?} vs model {:?}",
                        saved.shape().dims(),
                        param.shape().dims()
                    ),
                });
            }
            param.as_mut_slice().copy_from_slice(saved.as_slice());
        }
        Ok(())
    }

    /// Serialises to JSON (debug/inspection format; the shipped wire
    /// format is the binary codec of `docs/WIRE.md`).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialisation is infallible")
    }

    /// Parses a JSON checkpoint.
    pub fn from_json(payload: &str) -> Result<Checkpoint, CheckpointError> {
        serde_json::from_str(payload)
            .map_err(|e| CheckpointError::Malformed { detail: e.to_string() })
    }

    /// Exact size of this checkpoint's binary wire encoding in bytes
    /// (the full-f32 layout of `docs/WIRE.md`): a `u32` version, a `u64`
    /// tensor count, then per tensor a `u64` rank, `u64` dims and the
    /// values as raw IEEE-754 `f32` bits.
    ///
    /// This used to report the JSON text length — decimal-printed floats
    /// cost ~10+ bytes each, inflating every modeled transfer time by a
    /// format we would never ship. The magneto wire codec asserts its
    /// encoder produces exactly this many bytes.
    pub fn wire_bytes(&self) -> u64 {
        let header = 4u64 + 8;
        let tensors: u64 = self
            .params
            .iter()
            .map(|p| 8 + 8 * p.shape().dims().len() as u64 + 4 * p.len() as u64)
            .sum();
        header + tensors
    }

    /// Number of scalar parameters stored.
    pub fn param_count(&self) -> usize {
        self.params.iter().map(Tensor::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{BatchNorm1d, Dense, Mode, ReLU, Sequential};
    use pilote_tensor::Rng64;

    fn net(seed: u64) -> Sequential {
        let mut rng = Rng64::new(seed);
        Sequential::new()
            .push(Dense::new(4, 8, &mut rng))
            .push(BatchNorm1d::new(8))
            .push(ReLU::new())
            .push(Dense::new(8, 2, &mut rng))
    }

    #[test]
    fn capture_restore_round_trip() {
        let mut source = net(1);
        let mut target = net(2);
        let mut rng = Rng64::new(3);
        let x = Tensor::randn([5, 4], 0.0, 1.0, &mut rng);
        let expected = source.forward(&x, Mode::Eval);
        let ckpt = Checkpoint::capture(&mut source);
        ckpt.restore(&mut target).unwrap();
        let got = target.forward(&x, Mode::Eval);
        // BN running stats are NOT parameters, so feed identical (default)
        // running stats: both nets are fresh, so outputs must match.
        assert!(expected.max_abs_diff(&got).unwrap() < 1e-6);
    }

    #[test]
    fn json_round_trip() {
        let mut source = net(4);
        let ckpt = Checkpoint::capture(&mut source);
        let json = ckpt.to_json();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(back, ckpt);
        assert!(ckpt.wire_bytes() > 0);
        assert_eq!(ckpt.param_count(), 4 * 8 + 8 + 2 * 8 + 8 * 2 + 2);
    }

    #[test]
    fn structure_mismatch_is_detected() {
        let mut source = net(5);
        let ckpt = Checkpoint::capture(&mut source);
        let mut rng = Rng64::new(6);
        let mut wrong = Sequential::new().push(Dense::new(4, 9, &mut rng));
        match ckpt.restore(&mut wrong) {
            Err(CheckpointError::StructureMismatch { .. }) => {}
            other => panic!("expected structure mismatch, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_detected() {
        let mut source = net(7);
        let mut ckpt = Checkpoint::capture(&mut source);
        ckpt.version = 0;
        let mut target = net(8);
        assert_eq!(
            ckpt.restore(&mut target),
            Err(CheckpointError::VersionMismatch { found: 0 })
        );
    }

    #[test]
    fn newer_version_is_rejected_distinctly() {
        let mut source = net(9);
        let mut ckpt = Checkpoint::capture(&mut source);
        ckpt.version = CHECKPOINT_VERSION + 1;
        let mut target = net(10);
        assert_eq!(
            ckpt.restore(&mut target),
            Err(CheckpointError::VersionTooNew { found: CHECKPOINT_VERSION + 1 })
        );
    }

    #[test]
    fn non_finite_parameters_are_rejected_without_mutating_model() {
        let mut source = net(11);
        let mut ckpt = Checkpoint::capture(&mut source);
        ckpt.params[1].as_mut_slice()[0] = f32::NAN;
        let mut target = net(12);
        let before = Checkpoint::capture(&mut target);
        assert_eq!(ckpt.restore(&mut target), Err(CheckpointError::NonFinite { tensor: 1 }));
        // The failed restore must not have written anything.
        assert_eq!(Checkpoint::capture(&mut target), before);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(matches!(
            Checkpoint::from_json("{not json"),
            Err(CheckpointError::Malformed { .. })
        ));
    }
}
