//! Finite-difference gradient verification.
//!
//! Analytic backprop implementations are only trustworthy when pinned
//! against numeric differentiation. [`check_layer`] perturbs every
//! parameter and every input element of a layer by ±ε and compares the
//! central-difference loss slope with the analytic gradient, using the
//! scalar pseudo-loss `L = Σᵢ cᵢ·yᵢ` with fixed per-element coefficients
//! (an arbitrary linear functional catches arbitrary backward errors).

use crate::layer::{Layer, Mode};
use pilote_tensor::Tensor;

/// Outcome of one gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute deviation over all parameter gradients.
    pub max_param_err: f32,
    /// Largest absolute deviation over the input gradient.
    pub max_input_err: f32,
}

impl GradCheckReport {
    /// Whether all deviations are within `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_param_err <= tol && self.max_input_err <= tol
    }
}

/// Deterministic coefficient for pseudo-loss element `i`.
fn coeff(i: usize) -> f32 {
    // Irrational stride keeps coefficients distinct and O(1).
    ((i as f32) * 0.618_034 + 0.5).sin()
}

fn pseudo_loss(y: &Tensor) -> f32 {
    y.as_slice()
        .iter()
        .enumerate()
        .map(|(i, &v)| (coeff(i) * v) as f64)
        .sum::<f64>() as f32
}

fn pseudo_loss_grad(y: &Tensor) -> Tensor {
    let data = (0..y.len()).map(coeff).collect();
    Tensor::from_vec(data, y.shape().clone()).expect("same length")
}

/// Checks a layer's analytic gradients against central finite differences
/// at the given input, in the given mode.
///
/// `eps` around `1e-3` works well in f32; tolerances of `1e-2` are
/// appropriate given float32 rounding on the double forward evaluation.
pub fn check_layer(layer: &mut dyn Layer, input: &Tensor, mode: Mode, eps: f32) -> GradCheckReport {
    // Analytic pass.
    layer.zero_grad();
    let y = layer.forward(input, mode);
    let dy = pseudo_loss_grad(&y);
    let dx = layer.backward(&dy);
    let analytic_param_grads: Vec<Tensor> =
        layer.params_and_grads().iter().map(|(_, g)| (*g).clone()).collect();

    // Numeric parameter gradients.
    let mut max_param_err = 0.0f32;
    let n_params = layer.params_and_grads().len();
    #[allow(clippy::needless_range_loop)] // `pi` indexes two parallel structures
    for pi in 0..n_params {
        let n_elems = layer.params_and_grads()[pi].0.len();
        for ei in 0..n_elems {
            let orig = layer.params_and_grads()[pi].0.as_slice()[ei];
            layer.params_and_grads()[pi].0.as_mut_slice()[ei] = orig + eps;
            let lp = pseudo_loss(&layer.forward(input, mode));
            layer.params_and_grads()[pi].0.as_mut_slice()[ei] = orig - eps;
            let lm = pseudo_loss(&layer.forward(input, mode));
            layer.params_and_grads()[pi].0.as_mut_slice()[ei] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let err = (numeric - analytic_param_grads[pi].as_slice()[ei]).abs();
            max_param_err = max_param_err.max(err);
        }
    }

    // Numeric input gradient.
    let mut max_input_err = 0.0f32;
    for ei in 0..input.len() {
        let mut xp = input.clone();
        xp.as_mut_slice()[ei] += eps;
        let lp = pseudo_loss(&layer.forward(&xp, mode));
        let mut xm = input.clone();
        xm.as_mut_slice()[ei] -= eps;
        let lm = pseudo_loss(&layer.forward(&xm, mode));
        let numeric = (lp - lm) / (2.0 * eps);
        let err = (numeric - dx.as_slice()[ei]).abs();
        max_input_err = max_input_err.max(err);
    }

    GradCheckReport { max_param_err, max_input_err }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{BatchNorm1d, Dense, ReLU, Sequential};
    use pilote_tensor::Rng64;

    const TOL: f32 = 2e-2;

    #[test]
    fn dense_gradients_check_out() {
        let mut rng = Rng64::new(1);
        let mut layer = Dense::new(4, 3, &mut rng);
        let x = Tensor::randn([6, 4], 0.0, 1.0, &mut rng);
        let report = check_layer(&mut layer, &x, Mode::Train, 1e-3);
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn batchnorm_train_gradients_check_out() {
        let mut rng = Rng64::new(2);
        let mut layer = BatchNorm1d::new(3);
        // Non-trivial γ/β so their gradients are exercised.
        for (p, _) in layer.params_and_grads() {
            p.map_inplace(|v| v + 0.3);
        }
        let x = Tensor::randn([8, 3], 1.0, 2.0, &mut rng);
        let report = check_layer(&mut layer, &x, Mode::Train, 1e-3);
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn batchnorm_eval_gradients_check_out() {
        let mut rng = Rng64::new(3);
        let mut layer = BatchNorm1d::new(3);
        // Populate running stats first.
        for _ in 0..20 {
            let x = Tensor::randn([16, 3], 0.5, 1.5, &mut rng);
            let _ = layer.forward(&x, Mode::Train);
        }
        let x = Tensor::randn([5, 3], 0.0, 1.0, &mut rng);
        let report = check_layer(&mut layer, &x, Mode::Eval, 1e-3);
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn relu_input_gradient_checks_out() {
        let mut rng = Rng64::new(4);
        let mut layer = ReLU::new();
        // Keep activations away from the kink at 0 where the numeric
        // derivative is ill-defined.
        let x = Tensor::randn([5, 4], 0.0, 1.0, &mut rng)
            .map(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
        let report = check_layer(&mut layer, &x, Mode::Train, 1e-3);
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn full_stack_gradients_check_out() {
        let mut rng = Rng64::new(5);
        let mut net = Sequential::new()
            .push(Dense::new(3, 6, &mut rng))
            .push(BatchNorm1d::new(6))
            .push(ReLU::new())
            .push(Dense::new(6, 2, &mut rng));
        let x = Tensor::randn([7, 3], 0.0, 1.0, &mut rng);
        let report = check_layer(&mut net, &x, Mode::Train, 1e-3);
        assert!(report.passes(5e-2), "{report:?}");
    }
}
