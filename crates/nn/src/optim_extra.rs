//! Additional optimizers: RMSprop and AdamW (decoupled weight decay) —
//! for the optimizer ablations; the paper itself trains with Adam.

use crate::layer::Layer;
use crate::optim::Optimizer;
use pilote_tensor::Tensor;

/// RMSprop (Tieleman & Hinton 2012).
#[derive(Debug, Clone)]
pub struct RmsProp {
    decay: f32,
    eps: f32,
    cache: Vec<Tensor>,
}

impl RmsProp {
    /// RMSprop with the canonical `decay = 0.9`, `eps = 1e-8`.
    pub fn new() -> Self {
        Self::with_params(0.9, 1e-8)
    }

    /// RMSprop with explicit hyper-parameters.
    pub fn with_params(decay: f32, eps: f32) -> Self {
        assert!((0.0..1.0).contains(&decay), "decay must be in [0,1)");
        RmsProp { decay, eps, cache: Vec::new() }
    }
}

impl Default for RmsProp {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, model: &mut dyn Layer, lr: f32) {
        let pairs = model.params_and_grads();
        if self.cache.is_empty() {
            self.cache = pairs.iter().map(|(p, _)| Tensor::zeros(p.shape().clone())).collect();
        }
        assert_eq!(self.cache.len(), pairs.len(), "optimizer bound to a different model");
        for (i, (param, grad)) in pairs.into_iter().enumerate() {
            let cache = self.cache[i].as_mut_slice();
            for ((pj, &gj), cj) in
                param.as_mut_slice().iter_mut().zip(grad.as_slice()).zip(cache.iter_mut())
            {
                *cj = self.decay * *cj + (1.0 - self.decay) * gj * gj;
                *pj -= lr * gj / (cj.sqrt() + self.eps);
            }
        }
    }

    fn reset(&mut self) {
        self.cache.clear();
    }
}

/// AdamW (Loshchilov & Hutter 2019): Adam with decoupled weight decay.
#[derive(Debug, Clone)]
pub struct AdamW {
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl AdamW {
    /// AdamW with canonical Adam moments and the given decay coefficient.
    pub fn new(weight_decay: f32) -> Self {
        AdamW {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, model: &mut dyn Layer, lr: f32) {
        let pairs = model.params_and_grads();
        if self.m.is_empty() {
            self.m = pairs.iter().map(|(p, _)| Tensor::zeros(p.shape().clone())).collect();
            self.v = pairs.iter().map(|(p, _)| Tensor::zeros(p.shape().clone())).collect();
        }
        assert_eq!(self.m.len(), pairs.len(), "optimizer bound to a different model");
        self.t += 1;
        let t = self.t as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (i, (param, grad)) in pairs.into_iter().enumerate() {
            let m = self.m[i].as_mut_slice();
            let v = self.v[i].as_mut_slice();
            for ((pj, &gj), (mj, vj)) in
                param.as_mut_slice().iter_mut().zip(grad.as_slice()).zip(m.iter_mut().zip(v.iter_mut()))
            {
                *mj = self.beta1 * *mj + (1.0 - self.beta1) * gj;
                *vj = self.beta2 * *vj + (1.0 - self.beta2) * gj * gj;
                let m_hat = *mj / bias1;
                let v_hat = *vj / bias2;
                // Decoupled decay applied directly to the parameter.
                *pj -= lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * *pj);
            }
        }
    }

    fn reset(&mut self) {
        self.t = 0;
        self.m.clear();
        self.v.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Mode, Sequential};
    use crate::loss::mse_loss;
    use pilote_tensor::Rng64;

    fn converges(opt: &mut dyn Optimizer, lr: f32) -> f32 {
        let mut rng = Rng64::new(1);
        let mut net = Sequential::new().push(Dense::new(1, 1, &mut rng));
        let x = Tensor::from_rows(&[vec![1.0], vec![2.0], vec![-1.0], vec![0.5]]).unwrap();
        let y = x.scale(3.0);
        let mut last = f32::MAX;
        for _ in 0..600 {
            net.zero_grad();
            let pred = net.forward(&x, Mode::Train);
            let (loss, grad) = mse_loss(&pred, &y).unwrap();
            net.backward(&grad);
            opt.step(&mut net, lr);
            last = loss;
        }
        last
    }

    #[test]
    fn rmsprop_converges() {
        // RMSprop's steady-state step magnitude is ≈ lr, so it plateaus at
        // a loss of roughly lr² · E[x²]; test against that expectation.
        assert!(converges(&mut RmsProp::new(), 0.01) < 1e-2);
    }

    #[test]
    fn adamw_converges() {
        assert!(converges(&mut AdamW::new(0.0), 0.05) < 1e-5);
    }

    #[test]
    fn adamw_decay_shrinks_weights() {
        let mut rng = Rng64::new(2);
        let mut net = Sequential::new().push(Dense::new(4, 4, &mut rng));
        let before = net.state_dict()[0].norm();
        let mut opt = AdamW::new(0.5);
        // Zero gradients: only the decay acts.
        net.zero_grad();
        for _ in 0..10 {
            opt.step(&mut net, 0.1);
        }
        let after = net.state_dict()[0].norm();
        assert!(after < before * 0.7, "{before} → {after}");
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = RmsProp::new();
        let mut rng = Rng64::new(3);
        let mut net = Sequential::new().push(Dense::new(1, 1, &mut rng));
        net.zero_grad();
        opt.step(&mut net, 0.01);
        assert!(!opt.cache.is_empty());
        opt.reset();
        assert!(opt.cache.is_empty());
    }
}
