//! # pilote-nn
//!
//! A compact neural-network stack with hand-derived analytic backprop,
//! built on [`pilote_tensor`]. It provides exactly the mathematical objects
//! the PILOTE paper (EDBT 2023) instantiates in PyTorch:
//!
//! * **Layers** ([`layer`]): [`layer::Dense`], [`layer::BatchNorm1d`],
//!   [`layer::ReLU`], [`layer::Dropout`], composed by
//!   [`layer::Sequential`]. Every layer caches its forward activations and
//!   implements an analytic backward pass that is verified against central
//!   finite differences (see [`gradcheck`]).
//! * **Losses** ([`loss`]): the margin contrastive loss of Eq. 2 (both the
//!   paper's `m² − d²` form and the classic Hadsell `(m − d)²` form), the
//!   embedding distillation loss of Algorithm 1 line 11, plus MSE, softmax
//!   cross-entropy and temperature-scaled knowledge distillation for the
//!   classifier-based continual-learning baselines.
//! * **Optimizers** ([`optim`]): SGD, SGD-with-momentum and Adam (the
//!   paper trains with Adam).
//! * **Schedulers** ([`sched`]): including the paper's "start at 0.01 and
//!   halve every epoch" rule.
//! * **Training utilities** ([`train`]): mini-batch iteration, the paper's
//!   early-stopping rule (validation-loss change below `1e-4` for five
//!   consecutive epochs), and per-epoch history records.
//!
//! The module-based design (rather than a general autograd tape) keeps the
//! backward passes auditable: each is a dozen lines of textbook calculus,
//! and each is pinned by unit tests and property-based gradient checks.

#![warn(missing_docs)]

pub mod delta;
pub mod gradcheck;
pub mod layer;
pub mod loss;
pub mod optim;
pub mod optim_extra;
pub mod persist;
pub mod sched;
pub mod train;

pub use layer::{
    BatchNorm1d, Dense, Dropout, Layer, LayerNorm, LeakyReLU, Mode, ReLU, Sequential, Sigmoid,
    Tanh,
};
pub use optim::{Adam, Optimizer, Sgd};
pub use optim_extra::{AdamW, RmsProp};
pub use delta::{CheckpointDelta, DeltaError};
pub use persist::{Checkpoint, CheckpointError};
pub use sched::{ConstantLr, HalvingLr, LrSchedule, StepLr};
pub use train::{grad_norm, grads_finite, observe_epoch, params_finite, EarlyStopper, EpochStats};
