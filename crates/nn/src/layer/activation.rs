//! Activation layers.

use super::{Layer, Mode};
use pilote_tensor::Tensor;

/// Rectified linear unit, `y = max(0, x)` (Nair & Hinton 2010) — the
/// paper's activation for the first four layers.
#[derive(Debug, Clone, Default)]
pub struct ReLU {
    /// Mask of positive inputs from the last forward (1.0 where x > 0).
    mask: Option<Tensor>,
}

impl ReLU {
    /// New ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.mask = Some(input.map(|x| if x > 0.0 { 1.0 } else { 0.0 }));
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("ReLU::backward called before forward");
        grad_output.try_mul(mask).expect("ReLU mask shape")
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = ReLU::new();
        let x = Tensor::vector(&[-1.0, 0.0, 2.0]);
        let y = relu.forward(&x.reshape([1, 3]).unwrap(), Mode::Train);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = ReLU::new();
        let x = Tensor::from_rows(&[vec![-1.0, 3.0, 0.0]]).unwrap();
        let _ = relu.forward(&x, Mode::Train);
        let dx = relu.backward(&Tensor::from_rows(&[vec![5.0, 5.0, 5.0]]).unwrap());
        // Subgradient at exactly zero is taken as 0.
        assert_eq!(dx.as_slice(), &[0.0, 5.0, 0.0]);
    }

    #[test]
    fn no_parameters() {
        let mut relu = ReLU::new();
        assert!(relu.params_and_grads().is_empty());
        assert_eq!(relu.param_count(), 0);
    }
}
