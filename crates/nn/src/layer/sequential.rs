//! Layer composition.

use super::{Layer, Mode};
use pilote_tensor::Tensor;

/// An ordered stack of layers applied front-to-back.
///
/// `Sequential` is itself a [`Layer`], so stacks nest. Cloning produces a
/// deep copy — this is how PILOTE freezes the pre-trained "teacher" network
/// whose embeddings anchor the distillation loss.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Forward pass without caching hazards for callers that only need
    /// predictions (still mutates per-layer caches, but semantically eval).
    pub fn predict(&mut self, input: &Tensor) -> Tensor {
        self.forward(input, Mode::Eval)
    }

    /// Snapshot of all parameter tensors (deep copies, stable order).
    pub fn state_dict(&mut self) -> Vec<Tensor> {
        self.params_and_grads().into_iter().map(|(p, _)| p.clone()).collect()
    }

    /// Restores parameters from a snapshot produced by
    /// [`Sequential::state_dict`] on an identically shaped network.
    ///
    /// # Panics
    /// Panics if the snapshot length or any tensor shape differs.
    pub fn load_state_dict(&mut self, state: &[Tensor]) {
        let pairs = self.params_and_grads();
        assert_eq!(pairs.len(), state.len(), "state_dict length mismatch");
        for ((param, _), saved) in pairs.into_iter().zip(state) {
            assert_eq!(param.shape(), saved.shape(), "state_dict shape mismatch");
            param.as_mut_slice().copy_from_slice(saved.as_slice());
        }
    }

    /// One-line architecture summary, e.g.
    /// `Dense→BatchNorm1d→ReLU→Dense (123k params)`.
    pub fn summary(&mut self) -> String {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        let count = self.param_count();
        format!("{} ({} params)", names.join("→"), count)
    }
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        Sequential { layers: self.layers.clone() }
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_and_grads())
            .collect()
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{BatchNorm1d, Dense, ReLU};
    use pilote_tensor::Rng64;

    fn small_net(rng: &mut Rng64) -> Sequential {
        Sequential::new()
            .push(Dense::new(4, 8, rng))
            .push(BatchNorm1d::new(8))
            .push(ReLU::new())
            .push(Dense::new(8, 3, rng))
    }

    #[test]
    fn forward_shape_flows_through() {
        let mut rng = Rng64::new(1);
        let mut net = small_net(&mut rng);
        let x = Tensor::randn([10, 4], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, Mode::Train);
        assert_eq!(y.shape().dims(), &[10, 3]);
    }

    #[test]
    fn state_dict_round_trip() {
        let mut rng = Rng64::new(2);
        let mut net = small_net(&mut rng);
        let saved = net.state_dict();
        let x = Tensor::randn([5, 4], 0.0, 1.0, &mut rng);
        let before = net.forward(&x, Mode::Eval);
        // Perturb, then restore.
        for (p, _) in net.params_and_grads() {
            p.map_inplace(|v| v + 1.0);
        }
        let perturbed = net.forward(&x, Mode::Eval);
        assert!(before.max_abs_diff(&perturbed).unwrap() > 0.1);
        net.load_state_dict(&saved);
        let restored = net.forward(&x, Mode::Eval);
        assert!(before.max_abs_diff(&restored).unwrap() < 1e-6);
    }

    #[test]
    fn clone_is_independent_teacher() {
        let mut rng = Rng64::new(3);
        let mut net = small_net(&mut rng);
        let mut teacher = net.clone();
        let x = Tensor::randn([5, 4], 0.0, 1.0, &mut rng);
        let before = teacher.forward(&x, Mode::Eval);
        // Train-ish mutation of the student must not move the teacher.
        for (p, _) in net.params_and_grads() {
            p.map_inplace(|v| v * 2.0);
        }
        let after = teacher.forward(&x, Mode::Eval);
        assert!(before.max_abs_diff(&after).unwrap() < 1e-6);
    }

    #[test]
    fn backward_reaches_input() {
        let mut rng = Rng64::new(4);
        let mut net = small_net(&mut rng);
        let x = Tensor::randn([6, 4], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, Mode::Train);
        let dx = net.backward(&Tensor::ones(y.shape().clone()));
        assert_eq!(dx.shape(), x.shape());
        assert!(dx.all_finite());
    }

    #[test]
    fn summary_mentions_layers() {
        let mut rng = Rng64::new(5);
        let mut net = small_net(&mut rng);
        let s = net.summary();
        assert!(s.contains("Dense"));
        assert!(s.contains("BatchNorm1d"));
        assert!(s.contains("params"));
    }

    #[test]
    fn param_count_sums_layers() {
        let mut rng = Rng64::new(6);
        let mut net = small_net(&mut rng);
        // Dense(4→8): 40, BN(8): 16, Dense(8→3): 27
        assert_eq!(net.param_count(), 40 + 16 + 27);
    }
}
