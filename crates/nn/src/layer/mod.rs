//! Neural-network layers with cached-activation analytic backprop.
//!
//! The [`Layer`] trait is deliberately imperative: `forward` caches whatever
//! the matching `backward` needs, and `backward` *accumulates* parameter
//! gradients (so gradient contributions from several loss terms — e.g.
//! PILOTE's distillation + contrastive joint objective — can be summed by
//! simply calling `backward` more than once before the optimizer step).

mod activation;
mod batchnorm;
mod dense;
mod dropout;
mod extra_activations;
mod layernorm;
mod sequential;

pub use activation::ReLU;
pub use batchnorm::BatchNorm1d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use extra_activations::{LeakyReLU, Sigmoid, Tanh};
pub use layernorm::LayerNorm;
pub use sequential::Sequential;

use pilote_tensor::Tensor;

/// Forward-pass mode: training (batch statistics, active dropout) or
/// evaluation (running statistics, identity dropout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training mode.
    Train,
    /// Inference mode.
    Eval,
}

/// A differentiable module.
///
/// Contract:
/// * `forward` must be called before `backward`; `backward` consumes the
///   cached activations of the most recent `forward`.
/// * `backward` **adds** into the parameter gradients; call [`Layer::zero_grad`]
///   before accumulating a fresh optimizer step.
/// * `params_and_grads` yields `(parameter, gradient)` pairs in a stable
///   order; optimizers key their per-parameter state on that order.
pub trait Layer: Send {
    /// Computes the layer output, caching intermediates for `backward`.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Propagates `grad_output` (∂loss/∂output) back, returning
    /// ∂loss/∂input and accumulating parameter gradients.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Mutable `(parameter, gradient)` pairs in stable order.
    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)>;

    /// Clears all accumulated parameter gradients.
    fn zero_grad(&mut self) {
        for (_, g) in self.params_and_grads() {
            g.as_mut_slice().fill(0.0);
        }
    }

    /// Number of trainable scalar parameters.
    fn param_count(&mut self) -> usize {
        self.params_and_grads().iter().map(|(p, _)| p.len()).sum()
    }

    /// Human-readable layer name for summaries.
    fn name(&self) -> &'static str;

    /// Clones the layer into a boxed trait object (used to freeze a teacher
    /// copy of the network for distillation).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_tensor::Rng64;

    #[test]
    fn boxed_layer_clone_is_deep() {
        let mut rng = Rng64::new(1);
        let layer: Box<dyn Layer> = Box::new(Dense::new(3, 2, &mut rng));
        let mut copy = layer.clone();
        // Mutating the copy's parameters must not affect the original.
        for (p, _) in copy.params_and_grads() {
            p.as_mut_slice().fill(9.0);
        }
        let mut original = layer;
        let untouched = original
            .params_and_grads()
            .iter()
            .all(|(p, _)| p.as_slice().iter().all(|&v| v != 9.0));
        assert!(untouched);
    }

    #[test]
    fn zero_grad_clears() {
        let mut rng = Rng64::new(2);
        let mut layer = Dense::new(4, 3, &mut rng);
        let x = Tensor::randn([5, 4], 0.0, 1.0, &mut rng);
        let y = layer.forward(&x, Mode::Train);
        layer.backward(&Tensor::ones(y.shape().clone()));
        assert!(layer.params_and_grads().iter().any(|(_, g)| g.sq_norm() > 0.0));
        layer.zero_grad();
        assert!(layer.params_and_grads().iter().all(|(_, g)| g.sq_norm() == 0.0));
    }

    #[test]
    fn param_count_dense() {
        let mut rng = Rng64::new(3);
        let mut layer = Dense::new(10, 7, &mut rng);
        assert_eq!(layer.param_count(), 10 * 7 + 7);
    }
}
