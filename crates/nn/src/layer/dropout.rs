//! Inverted dropout.

use super::{Layer, Mode};
use pilote_tensor::{Rng64, Tensor};

/// Inverted dropout: in training mode each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`, so eval mode is
/// the identity.
///
/// Not used by the paper's reference configuration but provided for the
/// regularisation ablations.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: Rng64,
    mask: Option<Tensor>,
}

impl Dropout {
    /// New dropout layer with drop probability `p ∈ [0, 1)`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0,1), got {p}");
        Dropout { p, rng: Rng64::new(seed), mask: None }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        match mode {
            Mode::Eval => {
                self.mask = None;
                input.clone()
            }
            Mode::Train => {
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                let mask_data: Vec<f32> = (0..input.len())
                    .map(|_| if self.rng.bernoulli(keep as f64) { scale } else { 0.0 })
                    .collect();
                let mask = Tensor::from_vec(mask_data, input.shape().clone())
                    .expect("mask length matches input");
                let out = input.try_mul(&mask).expect("mask shape");
                self.mask = Some(mask);
                out
            }
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match &self.mask {
            Some(mask) => grad_output.try_mul(mask).expect("dropout mask shape"),
            None => grad_output.clone(),
        }
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::vector(&[1.0, 2.0, 3.0]).reshape([1, 3]).unwrap();
        assert_eq!(d.forward(&x, Mode::Eval), x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::ones([1, 100_000]);
        let y = d.forward(&x, Mode::Train);
        assert!((y.mean() - 1.0).abs() < 0.02, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones([1, 1000]);
        let y = d.forward(&x, Mode::Train);
        let dx = d.backward(&Tensor::ones([1, 1000]));
        // gradient flows exactly where the activation flowed
        for (a, b) in y.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_invalid_p() {
        let _ = Dropout::new(1.0, 1);
    }
}
