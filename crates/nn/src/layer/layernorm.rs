//! Layer normalisation — a batch-size-independent alternative to
//! BatchNorm, attractive on the edge where incremental updates can arrive
//! in very small batches (the paper's extreme-edge setting of Q3).

use super::{Layer, Mode};
use pilote_tensor::Tensor;

/// Per-sample (row-wise) normalisation with learned affine parameters.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    eps: f32,
    cache: Option<LnCache>,
}

#[derive(Debug, Clone)]
struct LnCache {
    x_hat: Tensor,
    /// Per-row 1/σ.
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// New layer norm over `dim` features (`eps = 1e-5`).
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Tensor::ones([dim]),
            beta: Tensor::zeros([dim]),
            grad_gamma: Tensor::zeros([dim]),
            grad_beta: Tensor::zeros([dim]),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        debug_assert_eq!(input.cols(), self.dim(), "LayerNorm: width mismatch");
        let (n, d) = (input.rows(), input.cols());
        let mut x_hat = input.clone();
        let mut inv_std = Vec::with_capacity(n);
        for i in 0..n {
            let row = x_hat.row_mut(i);
            let mean = row.iter().map(|&v| v as f64).sum::<f64>() / d as f64;
            let var = row.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / d as f64;
            let is = 1.0 / ((var as f32) + self.eps).sqrt();
            for v in row.iter_mut() {
                *v = (*v - mean as f32) * is;
            }
            inv_std.push(is);
        }
        let out = x_hat.try_mul(&self.gamma).expect("ln gamma").try_add(&self.beta).expect("ln beta");
        self.cache = Some(LnCache { x_hat, inv_std });
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("LayerNorm::backward called before forward");
        let x_hat = &cache.x_hat;
        let (n, d) = (grad_output.rows(), grad_output.cols());

        let dbeta = grad_output.sum_axis(pilote_tensor::reduce::Axis::Rows).expect("dbeta");
        let dgamma = grad_output
            .try_mul(x_hat)
            .expect("dY*xhat")
            .sum_axis(pilote_tensor::reduce::Axis::Rows)
            .expect("dgamma");
        self.grad_beta.axpy(1.0, &dbeta).expect("dbeta acc");
        self.grad_gamma.axpy(1.0, &dgamma).expect("dgamma acc");

        let dx_hat = grad_output.try_mul(&self.gamma).expect("dxhat");
        // Per-row: dX = inv_std/D · (D·dx̂ − Σdx̂ − x̂·Σ(dx̂⊙x̂))
        let mut out = Tensor::zeros([n, d]);
        for i in 0..n {
            let dxh = dx_hat.row(i);
            let xh = x_hat.row(i);
            let sum_dxh: f32 = dxh.iter().sum();
            let sum_dxh_xh: f32 = dxh.iter().zip(xh).map(|(&a, &b)| a * b).sum();
            let is = cache.inv_std[i];
            let row = out.row_mut(i);
            for j in 0..d {
                row[j] = is / d as f32 * (d as f32 * dxh[j] - sum_dxh - xh[j] * sum_dxh_xh);
            }
        }
        out
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.gamma, &mut self.grad_gamma),
            (&mut self.beta, &mut self.grad_beta),
        ]
    }

    fn name(&self) -> &'static str {
        "LayerNorm"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;
    use pilote_tensor::reduce::Axis;
    use pilote_tensor::Rng64;

    #[test]
    fn rows_are_standardised() {
        let mut rng = Rng64::new(1);
        let mut ln = LayerNorm::new(16);
        let x = Tensor::randn([8, 16], 3.0, 2.0, &mut rng);
        let y = ln.forward(&x, Mode::Train);
        let means = y.mean_axis(Axis::Cols).unwrap();
        let vars = y.var_axis(Axis::Cols).unwrap();
        for &m in means.as_slice() {
            assert!(m.abs() < 1e-4, "row mean {m}");
        }
        for &v in vars.as_slice() {
            assert!((v - 1.0).abs() < 1e-2, "row var {v}");
        }
    }

    #[test]
    fn batch_size_one_works() {
        // The LayerNorm selling point: no batch statistics needed.
        let mut ln = LayerNorm::new(4);
        let x = Tensor::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]).unwrap();
        let y = ln.forward(&x, Mode::Train);
        assert!(y.all_finite());
        let dx = ln.backward(&Tensor::ones([1, 4]));
        assert!(dx.all_finite());
    }

    #[test]
    fn identical_in_train_and_eval() {
        let mut rng = Rng64::new(2);
        let mut ln = LayerNorm::new(6);
        let x = Tensor::randn([5, 6], 0.0, 1.0, &mut rng);
        let train = ln.forward(&x, Mode::Train);
        let eval = ln.forward(&x, Mode::Eval);
        assert!(train.max_abs_diff(&eval).unwrap() < 1e-7);
    }

    #[test]
    fn gradients_check_out() {
        let mut rng = Rng64::new(3);
        let mut ln = LayerNorm::new(5);
        for (p, _) in ln.params_and_grads() {
            p.map_inplace(|v| v + 0.25);
        }
        let x = Tensor::randn([7, 5], 1.0, 2.0, &mut rng);
        let report = check_layer(&mut ln, &x, Mode::Train, 1e-3);
        assert!(report.passes(2e-2), "{report:?}");
    }
}
