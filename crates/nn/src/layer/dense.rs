//! Fully connected (affine) layer.

use super::{Layer, Mode};
use pilote_tensor::{Rng64, Tensor};
use pilote_tensor::reduce::Axis;

/// `y = x W + b` with `W: [in, out]`, `b: [out]`.
///
/// Weights use Kaiming-normal initialisation (the network body is ReLU),
/// biases start at zero.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// New layer mapping `in_dim → out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng64) -> Self {
        Dense {
            weight: Tensor::kaiming_normal(in_dim, out_dim, rng),
            bias: Tensor::zeros([out_dim]),
            grad_weight: Tensor::zeros([in_dim, out_dim]),
            grad_bias: Tensor::zeros([out_dim]),
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Read-only view of the weight matrix.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Read-only view of the bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        debug_assert_eq!(input.cols(), self.in_dim(), "Dense: input width mismatch");
        self.cached_input = Some(input.clone());
        let y = input.matmul(&self.weight).expect("shape checked above");
        y.try_add(&self.bias).expect("bias broadcast")
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Dense::backward called before forward");
        // dW += xᵀ dY
        let dw = x.t_matmul(grad_output).expect("dW shape");
        self.grad_weight.axpy(1.0, &dw).expect("dW accumulate");
        // db += column sums of dY
        let db = grad_output.sum_axis(Axis::Rows).expect("db shape");
        self.grad_bias.axpy(1.0, &db).expect("db accumulate");
        // dX = dY Wᵀ
        grad_output.matmul_t(&self.weight).expect("dX shape")
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.weight, &mut self.grad_weight),
            (&mut self.bias, &mut self.grad_bias),
        ]
    }

    fn name(&self) -> &'static str {
        "Dense"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual_affine() {
        let mut rng = Rng64::new(1);
        let mut layer = Dense::new(2, 3, &mut rng);
        // Overwrite with known values.
        layer.weight = Tensor::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 1.0, -1.0]]).unwrap();
        layer.bias = Tensor::vector(&[0.5, -0.5, 0.0]);
        let x = Tensor::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let y = layer.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[1.5, 1.5, 0.0]);
    }

    #[test]
    fn backward_gradients_match_manual() {
        let mut rng = Rng64::new(2);
        let mut layer = Dense::new(2, 2, &mut rng);
        layer.weight = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        layer.bias = Tensor::zeros([2]);
        let x = Tensor::from_rows(&[vec![1.0, 1.0], vec![2.0, 0.0]]).unwrap();
        let _ = layer.forward(&x, Mode::Train);
        let dy = Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let dx = layer.backward(&dy);
        // dX = dY Wᵀ
        assert_eq!(dx.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
        // dW = xᵀ dY = [[1,2],[1,0]]
        assert_eq!(layer.grad_weight.as_slice(), &[1.0, 2.0, 1.0, 0.0]);
        // db = [1, 1]
        assert_eq!(layer.grad_bias.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn backward_accumulates_until_zero_grad() {
        let mut rng = Rng64::new(3);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = Tensor::randn([4, 3], 0.0, 1.0, &mut rng);
        let y = layer.forward(&x, Mode::Train);
        let dy = Tensor::ones(y.shape().clone());
        layer.backward(&dy);
        let g1 = layer.grad_weight.clone();
        let _ = layer.forward(&x, Mode::Train);
        layer.backward(&dy);
        let doubled = g1.scale(2.0);
        assert!(layer.grad_weight.max_abs_diff(&doubled).unwrap() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_without_forward_panics() {
        let mut rng = Rng64::new(4);
        let mut layer = Dense::new(2, 2, &mut rng);
        layer.backward(&Tensor::zeros([1, 2]));
    }
}
