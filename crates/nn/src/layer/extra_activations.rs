//! Additional activations beyond the paper's ReLU: Tanh, Sigmoid and
//! LeakyReLU — used by the architecture ablations and useful to downstream
//! users swapping backbones.

use super::{Layer, Mode};
use pilote_tensor::Tensor;

/// Hyperbolic tangent activation.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// New Tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let out = input.map(f32::tanh);
        self.output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let y = self.output.as_ref().expect("Tanh::backward called before forward");
        // d tanh(x)/dx = 1 − tanh²(x)
        let dydx = y.map(|v| 1.0 - v * v);
        grad_output.try_mul(&dydx).expect("tanh shape")
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "Tanh"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Logistic sigmoid activation.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    output: Option<Tensor>,
}

impl Sigmoid {
    /// New Sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let out = input.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let y = self.output.as_ref().expect("Sigmoid::backward called before forward");
        let dydx = y.map(|v| v * (1.0 - v));
        grad_output.try_mul(&dydx).expect("sigmoid shape")
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "Sigmoid"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Leaky ReLU: `max(x, slope·x)` with `slope ∈ (0, 1)`.
#[derive(Debug, Clone)]
pub struct LeakyReLU {
    slope: f32,
    mask: Option<Tensor>,
}

impl LeakyReLU {
    /// New LeakyReLU with the given negative-side slope.
    ///
    /// # Panics
    /// Panics unless `0 < slope < 1`.
    pub fn new(slope: f32) -> Self {
        assert!((0.0..1.0).contains(&slope) && slope > 0.0, "slope must be in (0,1), got {slope}");
        LeakyReLU { slope, mask: None }
    }
}

impl Layer for LeakyReLU {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let slope = self.slope;
        self.mask = Some(input.map(|x| if x > 0.0 { 1.0 } else { slope }));
        input.map(|x| if x > 0.0 { x } else { slope * x })
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("LeakyReLU::backward called before forward");
        grad_output.try_mul(mask).expect("leaky relu shape")
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "LeakyReLU"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;
    use pilote_tensor::Rng64;

    #[test]
    fn tanh_known_values() {
        let mut t = Tanh::new();
        let x = Tensor::from_rows(&[vec![0.0, 1000.0, -1000.0]]).unwrap();
        let y = t.forward(&x, Mode::Train);
        assert_eq!(y.as_slice()[0], 0.0);
        assert!((y.as_slice()[1] - 1.0).abs() < 1e-6);
        assert!((y.as_slice()[2] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_known_values() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_rows(&[vec![0.0, 100.0, -100.0]]).unwrap();
        let y = s.forward(&x, Mode::Train);
        assert_eq!(y.as_slice()[0], 0.5);
        assert!((y.as_slice()[1] - 1.0).abs() < 1e-6);
        assert!(y.as_slice()[2] < 1e-6);
    }

    #[test]
    fn leaky_relu_negative_side() {
        let mut l = LeakyReLU::new(0.1);
        let x = Tensor::from_rows(&[vec![-2.0, 3.0]]).unwrap();
        let y = l.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[-0.2, 3.0]);
        let dx = l.backward(&Tensor::from_rows(&[vec![1.0, 1.0]]).unwrap());
        assert!((dx.as_slice()[0] - 0.1).abs() < 1e-7);
        assert_eq!(dx.as_slice()[1], 1.0);
    }

    #[test]
    fn gradients_check_out() {
        let mut rng = Rng64::new(1);
        let x = Tensor::randn([6, 5], 0.0, 1.0, &mut rng)
            .map(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
        let mut tanh = Tanh::new();
        assert!(check_layer(&mut tanh, &x, Mode::Train, 1e-3).passes(2e-2));
        let mut sig = Sigmoid::new();
        assert!(check_layer(&mut sig, &x, Mode::Train, 1e-3).passes(2e-2));
        let mut leaky = LeakyReLU::new(0.2);
        assert!(check_layer(&mut leaky, &x, Mode::Train, 1e-3).passes(2e-2));
    }

    #[test]
    #[should_panic(expected = "slope")]
    fn leaky_relu_rejects_bad_slope() {
        let _ = LeakyReLU::new(1.5);
    }
}
