//! 1-D batch normalisation (Ioffe & Szegedy 2015), the paper's §6.1.2
//! choice for the first four layers of the embedding network.

use super::{Layer, Mode};
use pilote_tensor::reduce::Axis;
use pilote_tensor::Tensor;

/// Per-feature batch normalisation over a `[batch, features]` tensor.
///
/// Training mode normalises with batch statistics and maintains running
/// estimates (exponential moving average, PyTorch-compatible `momentum`
/// semantics: `running ← (1−momentum)·running + momentum·batch`). Eval
/// mode normalises with the running estimates.
#[derive(Debug, Clone)]
pub struct BatchNorm1d {
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    // Cached intermediates from the last training-mode forward.
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Tensor,
    batch: usize,
    /// Whether the forward ran in training mode (affects backward formula).
    train: bool,
}

impl BatchNorm1d {
    /// New batch-norm over `dim` features with PyTorch-default
    /// `momentum = 0.1`, `eps = 1e-5`.
    pub fn new(dim: usize) -> Self {
        Self::with_params(dim, 0.1, 1e-5)
    }

    /// New batch-norm with explicit momentum and epsilon.
    pub fn with_params(dim: usize, momentum: f32, eps: f32) -> Self {
        BatchNorm1d {
            gamma: Tensor::ones([dim]),
            beta: Tensor::zeros([dim]),
            grad_gamma: Tensor::zeros([dim]),
            grad_beta: Tensor::zeros([dim]),
            running_mean: Tensor::zeros([dim]),
            running_var: Tensor::ones([dim]),
            momentum,
            eps,
            cache: None,
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }

    /// Running mean estimate (for inspection/tests).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance estimate (for inspection/tests).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        debug_assert_eq!(input.cols(), self.dim(), "BatchNorm1d: width mismatch");
        let n = input.rows();
        let (mean, var) = match mode {
            Mode::Train => {
                let mean = input.mean_axis(Axis::Rows).expect("bn mean");
                let var = input.var_axis(Axis::Rows).expect("bn var");
                // Update running stats (unbiased variance, as PyTorch does).
                let unbias = if n > 1 { n as f32 / (n as f32 - 1.0) } else { 1.0 };
                let m = self.momentum;
                for (r, &b) in self.running_mean.as_mut_slice().iter_mut().zip(mean.as_slice()) {
                    *r = (1.0 - m) * *r + m * b;
                }
                for (r, &b) in self.running_var.as_mut_slice().iter_mut().zip(var.as_slice()) {
                    *r = (1.0 - m) * *r + m * b * unbias;
                }
                (mean, var)
            }
            Mode::Eval => (self.running_mean.clone(), self.running_var.clone()),
        };
        let eps = self.eps;
        let inv_std = var.map(|v| 1.0 / (v + eps).sqrt());
        let x_hat = input.try_sub(&mean).expect("bn center").try_mul(&inv_std).expect("bn scale");
        let out = x_hat.try_mul(&self.gamma).expect("bn gamma").try_add(&self.beta).expect("bn beta");
        self.cache = Some(BnCache { x_hat, inv_std, batch: n, train: mode == Mode::Train });
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("BatchNorm1d::backward called before forward");
        let x_hat = &cache.x_hat;
        let n = cache.batch as f32;

        // dβ += Σ_batch dY ; dγ += Σ_batch dY ⊙ x̂
        let dbeta = grad_output.sum_axis(Axis::Rows).expect("dbeta");
        let dgamma = grad_output
            .try_mul(x_hat)
            .expect("dY*xhat")
            .sum_axis(Axis::Rows)
            .expect("dgamma");
        self.grad_beta.axpy(1.0, &dbeta).expect("dbeta acc");
        self.grad_gamma.axpy(1.0, &dgamma).expect("dgamma acc");

        // dx̂ = dY ⊙ γ
        let dx_hat = grad_output.try_mul(&self.gamma).expect("dxhat");

        if !cache.train {
            // Eval mode: mean/var are constants, so dX = dx̂ ⊙ inv_std.
            return dx_hat.try_mul(&cache.inv_std).expect("eval dX");
        }

        // Training mode — the batch statistics depend on x:
        // dX = inv_std/N · (N·dx̂ − Σdx̂ − x̂ ⊙ Σ(dx̂ ⊙ x̂))
        let sum_dx_hat = dx_hat.sum_axis(Axis::Rows).expect("sum dxhat");
        let sum_dx_hat_xhat = dx_hat
            .try_mul(x_hat)
            .expect("dxhat*xhat")
            .sum_axis(Axis::Rows)
            .expect("sum dxhat*xhat");
        let term = dx_hat
            .scale(n)
            .try_sub(&sum_dx_hat)
            .expect("term1")
            .try_sub(&x_hat.try_mul(&sum_dx_hat_xhat).expect("term2"))
            .expect("term sub");
        term.try_mul(&cache.inv_std).expect("scale inv_std").scale(1.0 / n)
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.gamma, &mut self.grad_gamma),
            (&mut self.beta, &mut self.grad_beta),
        ]
    }

    fn name(&self) -> &'static str {
        "BatchNorm1d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_tensor::reduce::Axis;
    use pilote_tensor::Rng64;

    #[test]
    fn train_output_is_standardised() {
        let mut rng = Rng64::new(1);
        let mut bn = BatchNorm1d::new(4);
        let x = Tensor::randn([64, 4], 5.0, 3.0, &mut rng);
        let y = bn.forward(&x, Mode::Train);
        let mean = y.mean_axis(Axis::Rows).unwrap();
        let var = y.var_axis(Axis::Rows).unwrap();
        for &m in mean.as_slice() {
            assert!(m.abs() < 1e-4, "mean {m}");
        }
        for &v in var.as_slice() {
            assert!((v - 1.0).abs() < 1e-2, "var {v}");
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut bn = BatchNorm1d::new(2);
        bn.gamma = Tensor::vector(&[2.0, 0.5]);
        bn.beta = Tensor::vector(&[1.0, -1.0]);
        let x = Tensor::from_rows(&[vec![0.0, 0.0], vec![2.0, 4.0]]).unwrap();
        let y = bn.forward(&x, Mode::Train);
        // x̂ rows are ±1 per feature, so y = γ·(±1) + β.
        assert!((y.at(0, 0) - (-2.0 + 1.0)).abs() < 1e-3);
        assert!((y.at(1, 0) - (2.0 + 1.0)).abs() < 1e-3);
        assert!((y.at(0, 1) - (-0.5 - 1.0)).abs() < 1e-3);
    }

    #[test]
    fn running_stats_converge_to_data_stats() {
        let mut rng = Rng64::new(2);
        let mut bn = BatchNorm1d::new(3);
        for _ in 0..200 {
            let x = Tensor::randn([32, 3], 2.0, 2.0, &mut rng);
            let _ = bn.forward(&x, Mode::Train);
        }
        for &m in bn.running_mean().as_slice() {
            assert!((m - 2.0).abs() < 0.3, "running mean {m}");
        }
        for &v in bn.running_var().as_slice() {
            assert!((v - 4.0).abs() < 0.8, "running var {v}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = Rng64::new(3);
        let mut bn = BatchNorm1d::new(2);
        for _ in 0..100 {
            let x = Tensor::randn([64, 2], 0.0, 1.0, &mut rng);
            let _ = bn.forward(&x, Mode::Train);
        }
        // A constant eval batch should NOT be normalised to zero — the
        // running stats, not the batch stats, apply.
        let x = Tensor::full([4, 2], 10.0);
        let y = bn.forward(&x, Mode::Eval);
        for &v in y.as_slice() {
            assert!(v > 5.0, "eval output {v} should keep the shift");
        }
    }

    #[test]
    fn single_row_batch_does_not_nan() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let y = bn.forward(&x, Mode::Train);
        assert!(y.all_finite());
        let dx = bn.backward(&Tensor::ones([1, 2]));
        assert!(dx.all_finite());
    }

    #[test]
    fn backward_shapes_match() {
        let mut rng = Rng64::new(4);
        let mut bn = BatchNorm1d::new(5);
        let x = Tensor::randn([7, 5], 0.0, 1.0, &mut rng);
        let y = bn.forward(&x, Mode::Train);
        let dx = bn.backward(&Tensor::ones(y.shape().clone()));
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(bn.grad_gamma.len(), 5);
        assert_eq!(bn.grad_beta.len(), 5);
    }

    // The numeric correctness of the training-mode backward is pinned by the
    // finite-difference tests in `gradcheck`.
}
