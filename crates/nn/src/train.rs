//! Training-loop utilities: mini-batch index iteration, the paper's
//! early-stopping rule, non-finite step guards, and per-epoch bookkeeping.

use crate::layer::Layer;
use pilote_tensor::Rng64;

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f32,
    /// Validation loss, if a validation split was evaluated.
    pub val_loss: Option<f32>,
    /// Learning rate in force.
    pub lr: f32,
    /// Wall-clock duration of the epoch in seconds.
    pub seconds: f64,
}

/// The paper's stopping condition (§6.1.2): stop when the change in
/// validation loss between consecutive epochs stays below a small
/// threshold (`1e-4`) for five consecutive steps.
#[derive(Debug, Clone)]
pub struct EarlyStopper {
    threshold: f32,
    patience: usize,
    streak: usize,
    last: Option<f32>,
}

impl EarlyStopper {
    /// The paper's configuration: threshold `1e-4`, patience 5.
    pub fn paper() -> Self {
        Self::new(1e-4, 5)
    }

    /// Custom threshold/patience.
    pub fn new(threshold: f32, patience: usize) -> Self {
        assert!(patience > 0, "patience must be positive");
        EarlyStopper { threshold, patience, streak: 0, last: None }
    }

    /// Feeds the epoch's validation loss; returns `true` when training
    /// should stop.
    pub fn observe(&mut self, val_loss: f32) -> bool {
        let stop = match self.last {
            Some(prev) if (prev - val_loss).abs() < self.threshold => {
                self.streak += 1;
                self.streak >= self.patience
            }
            _ => {
                self.streak = 0;
                false
            }
        };
        self.last = Some(val_loss);
        stop
    }

    /// Resets the stopper for a new training run.
    pub fn reset(&mut self) {
        self.streak = 0;
        self.last = None;
    }
}

/// Whether every gradient tensor of `model` is finite.
///
/// The train loop's non-finite guard: a NaN/Inf loss or gradient (from
/// corrupted inputs or an exploding step) must cause the optimizer step to
/// be *skipped*, not applied — one poisoned step makes every later
/// prediction NaN. Check this after `backward` and before
/// `optimizer.step`.
pub fn grads_finite(model: &mut dyn Layer) -> bool {
    model.params_and_grads().iter().all(|(_, g)| g.all_finite())
}

/// Whether every parameter tensor of `model` is finite — the post-update
/// validation used before committing an incremental update.
pub fn params_finite(model: &mut dyn Layer) -> bool {
    model.params_and_grads().iter().all(|(p, _)| p.all_finite())
}

/// Global L2 norm of all gradient tensors of `model`, accumulated in `f64`
/// so the value is independent of parameter-tensor iteration order at the
/// `f32` level only (the order itself is fixed by the layer structure).
pub fn grad_norm(model: &mut dyn Layer) -> f64 {
    let sq: f64 = model
        .params_and_grads()
        .iter()
        .flat_map(|(_, g)| g.as_slice())
        .map(|&v| f64::from(v) * f64::from(v))
        .sum();
    sq.sqrt()
}

/// Publishes an epoch's statistics to the `pilote-obs` registry
/// (`nn.train.*` gauges and the epoch counter).
///
/// `EpochStats::seconds` is **deliberately not** published: it is a host
/// wall-clock measurement and must never enter deterministic telemetry
/// (see `docs/OBSERVABILITY.md`). Pass the gradient norm of the epoch's
/// last step (from [`grad_norm`]), or `None` when it was not computed.
pub fn observe_epoch(stats: &EpochStats, last_grad_norm: Option<f64>) {
    if !pilote_obs::enabled() {
        return;
    }
    pilote_obs::counter("nn.train.epochs").inc();
    pilote_obs::gauge("nn.train.loss").set(f64::from(stats.train_loss));
    pilote_obs::gauge("nn.train.lr").set(f64::from(stats.lr));
    if let Some(v) = stats.val_loss {
        pilote_obs::gauge("nn.train.val_loss").set(f64::from(v));
    }
    if let Some(g) = last_grad_norm {
        pilote_obs::gauge("nn.train.grad_norm").set(g);
    }
}

/// Yields shuffled mini-batches of row indices `0..n`.
///
/// The final batch may be smaller than `batch_size`; empty batches are
/// never produced.
pub fn shuffled_batches(n: usize, batch_size: usize, rng: &mut Rng64) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch_size must be positive");
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    idx.chunks(batch_size).map(<[usize]>::to_vec).collect()
}

/// Splits `0..n` into disjoint shuffled train/validation index sets, with
/// `val_fraction` of the rows (rounded down, at least one row in each side
/// when `n ≥ 2`) going to validation.
pub fn train_val_split(n: usize, val_fraction: f32, rng: &mut Rng64) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..1.0).contains(&val_fraction), "val_fraction must be in [0,1)");
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    let mut n_val = (n as f32 * val_fraction) as usize;
    if n >= 2 {
        n_val = n_val.clamp(1, n - 1);
    } else {
        n_val = 0;
    }
    let val = idx.split_off(n - n_val);
    (idx, val)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopper_fires_after_patience_flat_epochs() {
        let mut s = EarlyStopper::paper();
        assert!(!s.observe(1.0));
        // five consecutive sub-threshold deltas
        for i in 0..4 {
            assert!(!s.observe(1.0 + 1e-6), "step {i}");
        }
        assert!(s.observe(1.0));
    }

    #[test]
    fn stopper_resets_streak_on_movement() {
        let mut s = EarlyStopper::paper();
        s.observe(1.0);
        for _ in 0..3 {
            s.observe(1.0);
        }
        // big move breaks the streak
        assert!(!s.observe(0.5));
        for _ in 0..4 {
            assert!(!s.observe(0.5));
        }
        assert!(s.observe(0.5));
    }

    #[test]
    fn stopper_reset_forgets_history() {
        let mut s = EarlyStopper::new(1e-4, 2);
        s.observe(1.0);
        s.observe(1.0);
        s.reset();
        assert!(!s.observe(1.0));
        assert!(!s.observe(1.0)); // first sub-threshold step after reset
    }

    #[test]
    fn grad_and_param_guards_detect_non_finite() {
        use crate::layer::Dense;
        let mut rng = Rng64::new(5);
        let mut layer = Dense::new(3, 2, &mut rng);
        assert!(grads_finite(&mut layer));
        assert!(params_finite(&mut layer));
        {
            let mut pairs = layer.params_and_grads();
            pairs[0].1.as_mut_slice()[0] = f32::NAN;
        }
        assert!(!grads_finite(&mut layer));
        assert!(params_finite(&mut layer));
        {
            let mut pairs = layer.params_and_grads();
            pairs[0].0.as_mut_slice()[0] = f32::INFINITY;
        }
        assert!(!params_finite(&mut layer));
    }

    #[test]
    fn grad_norm_matches_hand_computation() {
        use crate::layer::Dense;
        let mut rng = Rng64::new(6);
        let mut layer = Dense::new(2, 2, &mut rng);
        {
            let mut pairs = layer.params_and_grads();
            for (_, g) in pairs.iter_mut() {
                for v in g.as_mut_slice() {
                    *v = 0.0;
                }
            }
            pairs[0].1.as_mut_slice()[0] = 3.0;
            pairs[0].1.as_mut_slice()[1] = 4.0;
        }
        assert!((grad_norm(&mut layer) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn observe_epoch_publishes_gauges_not_seconds() {
        let stats = EpochStats {
            epoch: 0,
            train_loss: 0.5,
            val_loss: Some(0.25),
            lr: 0.01,
            seconds: 123.0, // host wall clock: must never reach the registry
        };
        let saved = pilote_obs::enabled();
        pilote_obs::set_enabled(true);
        observe_epoch(&stats, Some(2.0));
        let snap = pilote_obs::snapshot();
        assert!(snap.counters.get("nn.train.epochs").copied().unwrap_or(0) >= 1);
        assert_eq!(snap.gauges.get("nn.train.loss").map(|g| g.last), Some(0.5));
        assert_eq!(snap.gauges.get("nn.train.val_loss").map(|g| g.last), Some(0.25));
        assert_eq!(snap.gauges.get("nn.train.grad_norm").map(|g| g.last), Some(2.0));
        assert!(
            !snap.gauges.keys().any(|k| k.contains("second")),
            "wall-clock values must not be published"
        );
        pilote_obs::set_enabled(saved);
    }

    #[test]
    fn batches_cover_all_indices_once() {
        let mut rng = Rng64::new(1);
        let batches = shuffled_batches(103, 10, &mut rng);
        assert_eq!(batches.len(), 11);
        assert_eq!(batches.last().unwrap().len(), 3);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn batches_empty_input() {
        let mut rng = Rng64::new(2);
        assert!(shuffled_batches(0, 8, &mut rng).is_empty());
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let mut rng = Rng64::new(3);
        let (train, val) = train_val_split(100, 0.2, &mut rng);
        assert_eq!(train.len(), 80);
        assert_eq!(val.len(), 20);
        let mut all: Vec<usize> = train.iter().chain(&val).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_tiny_inputs() {
        let mut rng = Rng64::new(4);
        let (train, val) = train_val_split(2, 0.2, &mut rng);
        assert_eq!(train.len() + val.len(), 2);
        assert_eq!(val.len(), 1);
        let (train, val) = train_val_split(1, 0.5, &mut rng);
        assert_eq!(train.len(), 1);
        assert!(val.is_empty());
        let (train, val) = train_val_split(0, 0.5, &mut rng);
        assert!(train.is_empty() && val.is_empty());
    }
}
