//! Checkpoint deltas — per-layer diffs for federated rounds.
//!
//! A federated round re-broadcasts the merged model to every member, but
//! between consecutive rounds most layers barely move and the receiver
//! already holds the previous broadcast. A [`CheckpointDelta`] captures
//! only the layers whose bits changed since an agreed **base** checkpoint,
//! tagged with the base's generation so a receiver that missed a round
//! fails with a typed [`DeltaError::GenerationMismatch`] (and can fall
//! back to requesting the full checkpoint) instead of silently applying a
//! diff against the wrong base.
//!
//! The contract is bitwise: for a receiver holding the correct base,
//! `delta.apply(&base)` reproduces the target [`Checkpoint`] exactly —
//! byte-for-byte equal to shipping it whole. Unchanged layers are compared
//! and reproduced via their IEEE-754 bit patterns (`f32::to_bits`), never
//! via arithmetic, so `-0.0` vs `0.0` and NaN payloads cannot alias.

use crate::persist::{Checkpoint, CHECKPOINT_VERSION};
use pilote_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Errors from building or applying a [`CheckpointDelta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The receiver's base generation does not match the one the delta
    /// was diffed against. Applying would mix layers from two different
    /// models; the caller should fall back to a full checkpoint.
    GenerationMismatch {
        /// Generation the delta was built against.
        expected: u64,
        /// Generation the receiver holds.
        found: u64,
    },
    /// Base and target disagree structurally (layer count or shapes), or
    /// the base handed to `apply` does not match the delta's fingerprint.
    StructureMismatch {
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::GenerationMismatch { expected, found } => {
                write!(f, "delta built against base generation {expected}, receiver holds {found}")
            }
            DeltaError::StructureMismatch { detail } => {
                write!(f, "delta structure mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// A per-layer diff between two structurally identical [`Checkpoint`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointDelta {
    /// Checkpoint format version of the target ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Generation tag of the base this delta was diffed against. The
    /// meaning of the tag is the caller's (the fleet uses its committed
    /// round counter); the delta only insists it matches on `apply`.
    pub base_generation: u64,
    /// Structural fingerprint of the base/target, checked on `apply`.
    pub shapes: Vec<Vec<usize>>,
    /// One entry per parameter tensor: `None` when the layer is
    /// bitwise-unchanged from the base, `Some(target)` with the full new
    /// values otherwise.
    pub layers: Vec<Option<Tensor>>,
}

/// `true` iff both tensors hold identical IEEE-754 bit patterns.
fn bitwise_equal(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits())
}

impl CheckpointDelta {
    /// Diffs `target` against `base`, tagging the result with
    /// `base_generation`.
    ///
    /// # Errors
    /// [`DeltaError::StructureMismatch`] when the two checkpoints disagree
    /// on layer count or any layer shape — a diff across architectures is
    /// meaningless.
    pub fn diff(
        base: &Checkpoint,
        target: &Checkpoint,
        base_generation: u64,
    ) -> Result<CheckpointDelta, DeltaError> {
        if base.params.len() != target.params.len() {
            return Err(DeltaError::StructureMismatch {
                detail: format!(
                    "base has {} tensors, target has {}",
                    base.params.len(),
                    target.params.len()
                ),
            });
        }
        let mut layers = Vec::with_capacity(target.params.len());
        for (i, (b, t)) in base.params.iter().zip(&target.params).enumerate() {
            if b.shape() != t.shape() {
                return Err(DeltaError::StructureMismatch {
                    detail: format!(
                        "tensor {i}: base {:?} vs target {:?}",
                        b.shape().dims(),
                        t.shape().dims()
                    ),
                });
            }
            layers.push(if bitwise_equal(b, t) { None } else { Some(t.clone()) });
        }
        Ok(CheckpointDelta {
            version: target.version,
            base_generation,
            shapes: target.shapes.clone(),
            layers,
        })
    }

    /// Reconstructs the target checkpoint from the receiver's base copy.
    ///
    /// `base_generation` is the generation the *receiver* holds; it must
    /// match the tag the delta was diffed against.
    ///
    /// # Errors
    /// [`DeltaError::GenerationMismatch`] on a stale/skewed base (caller
    /// should fall back to a full checkpoint);
    /// [`DeltaError::StructureMismatch`] when the base does not match the
    /// delta's structural fingerprint.
    pub fn apply(&self, base: &Checkpoint, base_generation: u64) -> Result<Checkpoint, DeltaError> {
        if base_generation != self.base_generation {
            return Err(DeltaError::GenerationMismatch {
                expected: self.base_generation,
                found: base_generation,
            });
        }
        if base.params.len() != self.layers.len() {
            return Err(DeltaError::StructureMismatch {
                detail: format!(
                    "delta has {} layers, base has {}",
                    self.layers.len(),
                    base.params.len()
                ),
            });
        }
        let mut params = Vec::with_capacity(self.layers.len());
        for (i, (layer, b)) in self.layers.iter().zip(&base.params).enumerate() {
            let value = match layer {
                None => b.clone(),
                Some(t) => t.clone(),
            };
            if value.shape().dims() != self.shapes.get(i).map(Vec::as_slice).unwrap_or(&[]) {
                return Err(DeltaError::StructureMismatch {
                    detail: format!(
                        "tensor {i}: delta fingerprint {:?} vs value {:?}",
                        self.shapes.get(i),
                        value.shape().dims()
                    ),
                });
            }
            params.push(value);
        }
        Ok(Checkpoint { version: self.version, shapes: self.shapes.clone(), params })
    }

    /// Number of layers carried in full (the `Some` entries).
    pub fn changed_layers(&self) -> usize {
        self.layers.iter().filter(|l| l.is_some()).count()
    }

    /// Number of scalar values carried in full.
    pub fn changed_values(&self) -> usize {
        self.layers.iter().flatten().map(Tensor::len).sum()
    }

    /// A delta that changes nothing — every layer marked unchanged.
    /// Useful as the "no movement this round" broadcast.
    pub fn identity(base: &Checkpoint, base_generation: u64) -> CheckpointDelta {
        CheckpointDelta {
            version: CHECKPOINT_VERSION,
            base_generation,
            shapes: base.shapes.clone(),
            layers: vec![None; base.params.len()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{BatchNorm1d, Dense, ReLU, Sequential};
    use pilote_tensor::Rng64;

    fn net(seed: u64) -> Sequential {
        let mut rng = Rng64::new(seed);
        Sequential::new()
            .push(Dense::new(4, 8, &mut rng))
            .push(BatchNorm1d::new(8))
            .push(ReLU::new())
            .push(Dense::new(8, 2, &mut rng))
    }

    #[test]
    fn diff_apply_is_bitwise_identical_to_full_checkpoint() {
        let mut a = net(1);
        let base = Checkpoint::capture(&mut a);
        let mut target = base.clone();
        // Perturb two layers, including awkward bit patterns.
        target.params[0].as_mut_slice()[3] = -0.0;
        target.params[3].as_mut_slice()[1] += 0.5;
        let delta = CheckpointDelta::diff(&base, &target, 7).unwrap();
        assert_eq!(delta.changed_layers(), 2);
        let rebuilt = delta.apply(&base, 7).unwrap();
        assert_eq!(rebuilt, target);
        for (a, b) in rebuilt.params.iter().zip(&target.params) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn unchanged_layers_are_elided() {
        let mut a = net(2);
        let base = Checkpoint::capture(&mut a);
        let delta = CheckpointDelta::diff(&base, &base, 0).unwrap();
        assert_eq!(delta.changed_layers(), 0);
        assert_eq!(delta.apply(&base, 0).unwrap(), base);
        assert_eq!(delta, CheckpointDelta::identity(&base, 0));
    }

    #[test]
    fn negative_zero_counts_as_a_change() {
        let mut a = net(3);
        let base = Checkpoint::capture(&mut a);
        let mut target = base.clone();
        let old = target.params[0].as_mut_slice()[0];
        // Flip the sign bit of a zero-or-not value: if the parameter is
        // 0.0 this makes -0.0, arithmetically equal but bitwise distinct.
        target.params[0].as_mut_slice()[0] = f32::from_bits(old.to_bits() ^ 0x8000_0000);
        let delta = CheckpointDelta::diff(&base, &target, 1).unwrap();
        assert_eq!(delta.changed_layers(), 1);
    }

    #[test]
    fn generation_skew_is_a_typed_error() {
        let mut a = net(4);
        let base = Checkpoint::capture(&mut a);
        let delta = CheckpointDelta::diff(&base, &base, 5).unwrap();
        assert_eq!(
            delta.apply(&base, 4),
            Err(DeltaError::GenerationMismatch { expected: 5, found: 4 })
        );
    }

    #[test]
    fn structure_mismatch_is_a_typed_error() {
        let mut a = net(5);
        let base = Checkpoint::capture(&mut a);
        let mut rng = Rng64::new(6);
        let mut other = Sequential::new().push(Dense::new(4, 3, &mut rng));
        let small = Checkpoint::capture(&mut other);
        assert!(matches!(
            CheckpointDelta::diff(&base, &small, 0),
            Err(DeltaError::StructureMismatch { .. })
        ));
        let delta = CheckpointDelta::diff(&base, &base, 0).unwrap();
        assert!(matches!(
            delta.apply(&small, 0),
            Err(DeltaError::StructureMismatch { .. })
        ));
    }
}
