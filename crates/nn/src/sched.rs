//! Learning-rate schedules.
//!
//! The paper (§6.1.2): "the learning rate starts from 0.01 and decreases by
//! half every training epoch" — that is [`HalvingLr`].

/// A learning-rate schedule: maps an epoch index (0-based) to a rate.
pub trait LrSchedule {
    /// Learning rate to use during `epoch`.
    fn lr_at(&self, epoch: usize) -> f32;
}

/// Constant learning rate.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLr(pub f32);

impl LrSchedule for ConstantLr {
    fn lr_at(&self, _epoch: usize) -> f32 {
        self.0
    }
}

/// The paper's schedule: `lr₀ · 0.5^epoch`, floored at `min_lr` so very
/// long runs don't underflow to zero updates.
#[derive(Debug, Clone, Copy)]
pub struct HalvingLr {
    /// Initial learning rate (paper: 0.01).
    pub initial: f32,
    /// Lower bound on the rate.
    pub min_lr: f32,
}

impl HalvingLr {
    /// The paper's configuration: start at 0.01, halve each epoch, floor at
    /// `1e-6`.
    pub fn paper() -> Self {
        HalvingLr { initial: 0.01, min_lr: 1e-6 }
    }
}

impl LrSchedule for HalvingLr {
    fn lr_at(&self, epoch: usize) -> f32 {
        (self.initial * 0.5f32.powi(epoch.min(127) as i32)).max(self.min_lr)
    }
}

/// Step decay: multiply by `gamma` every `step_size` epochs.
#[derive(Debug, Clone, Copy)]
pub struct StepLr {
    /// Initial learning rate.
    pub initial: f32,
    /// Epochs between decays.
    pub step_size: usize,
    /// Multiplicative decay factor.
    pub gamma: f32,
}

impl LrSchedule for StepLr {
    fn lr_at(&self, epoch: usize) -> f32 {
        let steps = (epoch / self.step_size.max(1)).min(127);
        self.initial * self.gamma.powi(steps as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = ConstantLr(0.02);
        assert_eq!(s.lr_at(0), 0.02);
        assert_eq!(s.lr_at(100), 0.02);
    }

    #[test]
    fn halving_matches_paper_rule() {
        let s = HalvingLr::paper();
        assert_eq!(s.lr_at(0), 0.01);
        assert_eq!(s.lr_at(1), 0.005);
        assert_eq!(s.lr_at(2), 0.0025);
    }

    #[test]
    fn halving_floors_at_min() {
        let s = HalvingLr::paper();
        assert_eq!(s.lr_at(1000), 1e-6);
        // no overflow panic at extreme epochs
        assert!(s.lr_at(usize::MAX) >= 1e-6);
    }

    #[test]
    fn step_decays_at_boundaries() {
        let s = StepLr { initial: 1.0, step_size: 10, gamma: 0.1 };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert!((s.lr_at(10) - 0.1).abs() < 1e-9);
        assert!((s.lr_at(25) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn step_size_zero_does_not_divide_by_zero() {
        let s = StepLr { initial: 1.0, step_size: 0, gamma: 0.5 };
        assert_eq!(s.lr_at(3), 0.125);
    }
}
