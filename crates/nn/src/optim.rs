//! Optimizers.
//!
//! An optimizer walks the `(parameter, gradient)` pairs a [`Layer`] exposes
//! (stable order) and applies its update rule, keeping any per-parameter
//! state (momentum buffers, Adam moments) keyed by position.

use crate::layer::Layer;
use pilote_tensor::Tensor;

/// A first-order optimizer over a layer's parameters.
pub trait Optimizer {
    /// Applies one update step with learning rate `lr`, then leaves the
    /// gradients untouched (call [`Layer::zero_grad`] before the next
    /// accumulation).
    fn step(&mut self, model: &mut dyn Layer, lr: f32);

    /// Resets all internal state (moments, step counters).
    fn reset(&mut self);
}

/// Stochastic gradient descent, optionally with classical momentum and
/// decoupled weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new() -> Self {
        Self::with_momentum(0.0)
    }

    /// SGD with momentum coefficient `momentum ∈ [0, 1)`.
    pub fn with_momentum(momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Sgd { momentum, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Adds decoupled L2 weight decay.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Default for Sgd {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Layer, lr: f32) {
        let pairs = model.params_and_grads();
        if self.velocity.is_empty() {
            self.velocity = pairs.iter().map(|(p, _)| Tensor::zeros(p.shape().clone())).collect();
        }
        assert_eq!(self.velocity.len(), pairs.len(), "optimizer bound to a different model");
        for (i, (param, grad)) in pairs.into_iter().enumerate() {
            if self.weight_decay > 0.0 {
                let wd = self.weight_decay;
                let decay = param.scale(wd);
                param.axpy(-lr, &decay).expect("weight decay");
            }
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                // v ← μ·v + g ; p ← p − lr·v
                for (vj, &gj) in v.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                    *vj = self.momentum * *vj + gj;
                }
                param.axpy(-lr, v).expect("sgd momentum update");
            } else {
                param.axpy(-lr, grad).expect("sgd update");
            }
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam (Kingma & Ba 2015) — the paper's optimizer.
#[derive(Debug, Clone)]
pub struct Adam {
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the canonical defaults `β₁ = 0.9`, `β₂ = 0.999`,
    /// `ε = 1e-8`.
    pub fn new() -> Self {
        Self::with_params(0.9, 0.999, 1e-8)
    }

    /// Adam with explicit hyper-parameters.
    pub fn with_params(beta1: f32, beta2: f32, eps: f32) -> Self {
        Adam { beta1, beta2, eps, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Default for Adam {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Layer, lr: f32) {
        let pairs = model.params_and_grads();
        if self.m.is_empty() {
            self.m = pairs.iter().map(|(p, _)| Tensor::zeros(p.shape().clone())).collect();
            self.v = pairs.iter().map(|(p, _)| Tensor::zeros(p.shape().clone())).collect();
        }
        assert_eq!(self.m.len(), pairs.len(), "optimizer bound to a different model");
        self.t += 1;
        let t = self.t as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (i, (param, grad)) in pairs.into_iter().enumerate() {
            let m = self.m[i].as_mut_slice();
            let v = self.v[i].as_mut_slice();
            let p = param.as_mut_slice();
            for ((pj, &gj), (mj, vj)) in
                p.iter_mut().zip(grad.as_slice()).zip(m.iter_mut().zip(v.iter_mut()))
            {
                *mj = self.beta1 * *mj + (1.0 - self.beta1) * gj;
                *vj = self.beta2 * *vj + (1.0 - self.beta2) * gj * gj;
                let m_hat = *mj / bias1;
                let v_hat = *vj / bias2;
                *pj -= lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn reset(&mut self) {
        self.t = 0;
        self.m.clear();
        self.v.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Mode, Sequential};
    use crate::loss::mse_loss;
    use pilote_tensor::Rng64;

    /// Trains y = 2x on a one-weight linear model; every optimizer should
    /// drive the loss to ~0.
    fn converges(opt: &mut dyn Optimizer, lr: f32) -> f32 {
        let mut rng = Rng64::new(1);
        let mut net = Sequential::new().push(Dense::new(1, 1, &mut rng));
        let x = Tensor::from_rows(&[vec![1.0], vec![2.0], vec![-1.0], vec![0.5]]).unwrap();
        let y = x.scale(2.0);
        let mut last = f32::MAX;
        for _ in 0..500 {
            net.zero_grad();
            let pred = net.forward(&x, Mode::Train);
            let (loss, grad) = mse_loss(&pred, &y).unwrap();
            net.backward(&grad);
            opt.step(&mut net, lr);
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_converges_on_linear_fit() {
        assert!(converges(&mut Sgd::new(), 0.1) < 1e-6);
    }

    #[test]
    fn sgd_momentum_converges() {
        assert!(converges(&mut Sgd::with_momentum(0.9), 0.02) < 1e-6);
    }

    #[test]
    fn adam_converges() {
        assert!(converges(&mut Adam::new(), 0.05) < 1e-5);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, the very first Adam step has magnitude ≈ lr
        // regardless of gradient scale.
        let mut rng = Rng64::new(2);
        let mut net = Sequential::new().push(Dense::new(1, 1, &mut rng));
        let before = net.state_dict();
        let x = Tensor::from_rows(&[vec![1.0]]).unwrap();
        let target = Tensor::from_rows(&[vec![100.0]]).unwrap();
        net.zero_grad();
        let pred = net.forward(&x, Mode::Train);
        let (_, grad) = mse_loss(&pred, &target).unwrap();
        net.backward(&grad);
        let mut adam = Adam::new();
        adam.step(&mut net, 0.01);
        let after = net.state_dict();
        let delta = (before[0].as_slice()[0] - after[0].as_slice()[0]).abs();
        assert!((delta - 0.01).abs() < 1e-3, "delta {delta}");
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let mut rng = Rng64::new(3);
        let mut net = Sequential::new().push(Dense::new(2, 2, &mut rng));
        let norm_before = net.state_dict()[0].norm();
        let mut opt = Sgd::new().weight_decay(0.1);
        net.zero_grad();
        // grads are zero — only decay applies
        opt.step(&mut net, 0.5);
        let norm_after = net.state_dict()[0].norm();
        assert!(norm_after < norm_before);
        assert!((norm_after / norm_before - 0.95).abs() < 1e-4);
    }

    #[test]
    fn reset_clears_state() {
        let mut adam = Adam::new();
        let mut rng = Rng64::new(4);
        let mut net = Sequential::new().push(Dense::new(1, 1, &mut rng));
        let x = Tensor::from_rows(&[vec![1.0]]).unwrap();
        net.zero_grad();
        let pred = net.forward(&x, Mode::Train);
        let (_, grad) = mse_loss(&pred, &Tensor::zeros([1, 1])).unwrap();
        net.backward(&grad);
        adam.step(&mut net, 0.01);
        assert!(adam.t > 0);
        adam.reset();
        assert_eq!(adam.t, 0);
        assert!(adam.m.is_empty());
    }
}
