//! Wall-clock measurement projected onto device profiles.

use crate::device::DeviceProfile;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// A labelled timing sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingSample {
    /// What was measured.
    pub label: String,
    /// Host wall-clock seconds.
    pub host_seconds: f64,
}

/// Collects timing samples and projects them onto device profiles.
#[derive(Debug, Clone, Default)]
pub struct LatencyMeter {
    samples: Vec<TimingSample>,
}

impl LatencyMeter {
    /// Empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times a closure, recording the sample under `label`, and returns
    /// the closure's output.
    pub fn time<T>(&mut self, label: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.samples.push(TimingSample {
            label: label.to_string(),
            host_seconds: start.elapsed().as_secs_f64(),
        });
        out
    }

    /// Records an externally measured duration.
    pub fn record(&mut self, label: &str, host_seconds: f64) {
        self.samples.push(TimingSample { label: label.to_string(), host_seconds });
    }

    /// All samples.
    pub fn samples(&self) -> &[TimingSample] {
        &self.samples
    }

    /// Mean host seconds of the samples with `label` (`None` if absent).
    pub fn mean_seconds(&self, label: &str) -> Option<f64> {
        let matching: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.label == label)
            .map(|s| s.host_seconds)
            .collect();
        if matching.is_empty() {
            return None;
        }
        Some(matching.iter().sum::<f64>() / matching.len() as f64)
    }

    /// Mean seconds of `label` projected onto `device`.
    pub fn projected_seconds(&self, label: &str, device: &DeviceProfile) -> Option<f64> {
        self.mean_seconds(label).map(|s| device.project_seconds(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_and_returns() {
        let mut meter = LatencyMeter::new();
        let out = meter.time("work", || {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(out > 0);
        assert_eq!(meter.samples().len(), 1);
        assert!(meter.samples()[0].host_seconds >= 0.0);
    }

    #[test]
    fn mean_over_repeated_labels() {
        let mut meter = LatencyMeter::new();
        meter.record("epoch", 0.2);
        meter.record("epoch", 0.4);
        meter.record("other", 9.0);
        assert!((meter.mean_seconds("epoch").unwrap() - 0.3).abs() < 1e-12);
        assert_eq!(meter.mean_seconds("missing"), None);
    }

    #[test]
    fn projection_uses_cpu_factor() {
        let mut meter = LatencyMeter::new();
        meter.record("epoch", 0.1);
        let device = DeviceProfile::budget_phone();
        assert!((meter.projected_seconds("epoch", &device).unwrap() - 0.6).abs() < 1e-12);
    }
}
