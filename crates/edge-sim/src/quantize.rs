//! Affine exemplar quantisation.
//!
//! The paper stores exemplars "in compressed format". We implement
//! per-column affine quantisation to i8 or u16: each feature column is
//! mapped to its integer range with a scale/offset pair, costing
//! `2 × 4` bytes of metadata per column and 1–2 bytes per value.

use pilote_tensor::{Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Quantisation precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quantization {
    /// 8-bit signed (256 levels).
    I8,
    /// 16-bit unsigned (65 536 levels).
    U16,
}

impl Quantization {
    fn levels(self) -> f32 {
        match self {
            Quantization::I8 => 255.0,
            Quantization::U16 => 65_535.0,
        }
    }

    /// Bytes per stored value.
    pub fn bytes_per_value(self) -> usize {
        match self {
            Quantization::I8 => 1,
            Quantization::U16 => 2,
        }
    }
}

/// A quantised `[rows, cols]` matrix with per-column affine codecs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    mode: Quantization,
    /// Per-column minimum (offset).
    offsets: Vec<f32>,
    /// Per-column step ( (max−min)/levels ).
    scales: Vec<f32>,
    /// Row-major codes; stored widened to u16 for both modes, serialised
    /// at the true width by [`QuantizedMatrix::storage_bytes`] accounting.
    codes: Vec<u16>,
}

impl QuantizedMatrix {
    /// Quantises a rank-2 tensor.
    pub fn encode(data: &Tensor, mode: Quantization) -> Result<Self, TensorError> {
        if data.rank() != 2 {
            return Err(TensorError::RankMismatch { got: data.rank(), expected: 2, op: "QuantizedMatrix::encode" });
        }
        let (rows, cols) = (data.rows(), data.cols());
        let mut offsets = vec![0.0f32; cols];
        let mut scales = vec![0.0f32; cols];
        for c in 0..cols {
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for r in 0..rows {
                let v = data.at(r, c);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if rows == 0 {
                lo = 0.0;
                hi = 0.0;
            }
            offsets[c] = lo;
            scales[c] = if hi > lo { (hi - lo) / mode.levels() } else { 0.0 };
        }
        let mut codes = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let v = data.at(r, c);
                let code = if scales[c] > 0.0 {
                    ((v - offsets[c]) / scales[c]).round().clamp(0.0, mode.levels())
                } else {
                    0.0
                };
                codes.push(code as u16);
            }
        }
        Ok(QuantizedMatrix { rows, cols, mode, offsets, scales, codes })
    }

    /// Reconstructs the (lossy) tensor.
    pub fn decode(&self) -> Tensor {
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for (i, &code) in self.codes.iter().enumerate() {
            let c = i % self.cols;
            data.push(self.offsets[c] + self.scales[c] * code as f32);
        }
        Tensor::from_vec(data, [self.rows, self.cols]).expect("length by construction")
    }

    /// Bytes this matrix occupies on the device: codes at the true width
    /// plus the per-column codec metadata.
    pub fn storage_bytes(&self) -> u64 {
        let codes = (self.rows * self.cols * self.mode.bytes_per_value()) as u64;
        let metadata = (self.cols * 2 * std::mem::size_of::<f32>()) as u64;
        codes + metadata
    }

    /// Maximum reconstruction error relative to `original`.
    pub fn max_error(&self, original: &Tensor) -> Result<f32, TensorError> {
        self.decode().max_abs_diff(original)
    }

    /// The half-step error bound guaranteed per column: `scale/2`.
    pub fn error_bound(&self) -> f32 {
        self.scales.iter().copied().fold(0.0f32, f32::max) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_tensor::Rng64;

    #[test]
    fn round_trip_error_within_bound() {
        let mut rng = Rng64::new(1);
        let data = Tensor::randn([50, 8], 0.0, 3.0, &mut rng);
        for mode in [Quantization::I8, Quantization::U16] {
            let q = QuantizedMatrix::encode(&data, mode).unwrap();
            let err = q.max_error(&data).unwrap();
            // Allow a 1-ulp slack beyond the theoretical half step for f32
            // rounding in the codec arithmetic.
            assert!(
                err <= q.error_bound() * 1.01 + 1e-6,
                "{mode:?}: err {err} bound {}",
                q.error_bound()
            );
        }
    }

    #[test]
    fn u16_is_far_more_precise_than_i8() {
        let mut rng = Rng64::new(2);
        let data = Tensor::randn([100, 4], 0.0, 1.0, &mut rng);
        let e8 = QuantizedMatrix::encode(&data, Quantization::I8).unwrap().max_error(&data).unwrap();
        let e16 =
            QuantizedMatrix::encode(&data, Quantization::U16).unwrap().max_error(&data).unwrap();
        assert!(e16 < e8 / 50.0, "i8 {e8} u16 {e16}");
    }

    #[test]
    fn constant_column_is_exact() {
        let data = Tensor::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0]]).unwrap();
        let q = QuantizedMatrix::encode(&data, Quantization::I8).unwrap();
        let d = q.decode();
        assert_eq!(d.at(0, 0), 5.0);
        assert_eq!(d.at(1, 0), 5.0);
    }

    #[test]
    fn extremes_are_exactly_representable() {
        let data = Tensor::from_rows(&[vec![-2.0], vec![7.0]]).unwrap();
        let q = QuantizedMatrix::encode(&data, Quantization::I8).unwrap();
        let d = q.decode();
        assert!((d.at(0, 0) - -2.0).abs() < 1e-5);
        assert!((d.at(1, 0) - 7.0).abs() < 1e-3);
    }

    #[test]
    fn storage_accounting() {
        let data = Tensor::zeros([100, 80]);
        let q8 = QuantizedMatrix::encode(&data, Quantization::I8).unwrap();
        let q16 = QuantizedMatrix::encode(&data, Quantization::U16).unwrap();
        assert_eq!(q8.storage_bytes(), 100 * 80 + 80 * 8);
        assert_eq!(q16.storage_bytes(), 100 * 80 * 2 + 80 * 8);
    }

    #[test]
    fn empty_matrix_round_trips() {
        let data = Tensor::zeros([0, 5]);
        let q = QuantizedMatrix::encode(&data, Quantization::I8).unwrap();
        assert_eq!(q.decode().shape(), data.shape());
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = Rng64::new(3);
        let data = Tensor::randn([4, 3], 0.0, 1.0, &mut rng);
        let q = QuantizedMatrix::encode(&data, Quantization::U16).unwrap();
        let json = serde_json::to_string(&q).unwrap();
        let back: QuantizedMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, q);
    }
}
