//! Affine exemplar quantisation.
//!
//! The paper stores exemplars "in compressed format". We implement
//! per-column affine quantisation to i8 or u16: each feature column is
//! mapped to its integer range with a scale/offset pair, costing
//! `2 × 4` bytes of metadata per column and 1–2 bytes per value.
//!
//! A [`QuantizedMatrix`] is also a **wire section**: the binary codec of
//! `docs/WIRE.md` ships it via [`QuantizedMatrix::to_wire`] /
//! [`QuantizedMatrix::from_wire`] at the true code width, so
//! [`QuantizedMatrix::storage_bytes`] is exactly what the link transfers
//! (plus the fixed 17-byte section header).

use crate::wire::{WireReader, WireWriter, WireError};
use pilote_tensor::{Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Quantisation precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quantization {
    /// 8-bit codes: 256 levels, `0..=255`.
    I8,
    /// 16-bit codes: 65 536 levels, `0..=65535`.
    U16,
}

impl Quantization {
    /// Largest representable code (`levels − 1`): the column maximum maps
    /// here, the column minimum to code 0.
    fn max_code(self) -> f32 {
        match self {
            Quantization::I8 => 255.0,
            Quantization::U16 => 65_535.0,
        }
    }

    /// Number of distinct code levels (codes `0..=levels()-1`).
    pub fn levels(self) -> usize {
        match self {
            Quantization::I8 => 256,
            Quantization::U16 => 65_536,
        }
    }

    /// Bytes per stored value.
    pub fn bytes_per_value(self) -> usize {
        match self {
            Quantization::I8 => 1,
            Quantization::U16 => 2,
        }
    }

    fn tag(self) -> u8 {
        match self {
            Quantization::I8 => 0,
            Quantization::U16 => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(Quantization::I8),
            1 => Ok(Quantization::U16),
            tag => Err(WireError::BadTag { context: "Quantization", tag }),
        }
    }
}

/// Errors from quantising a tensor.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantizeError {
    /// The input holds a NaN or infinite value. Affine codes cannot
    /// represent it — `NaN.clamp(..)` stays NaN and `NaN as u16` is 0, so
    /// the old encoder silently mapped NaN to the column *minimum* and
    /// shipped it as a legitimate value. Consistent with the repo's other
    /// non-finite guards (checkpoint restore, window quarantine), the
    /// encoder now refuses up front and names the offending cell.
    NonFinite {
        /// Row of the first non-finite value.
        row: usize,
        /// Column of the first non-finite value.
        col: usize,
    },
    /// An underlying tensor operation failed (e.g. not rank-2).
    Tensor(TensorError),
}

impl std::fmt::Display for QuantizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantizeError::NonFinite { row, col } => {
                write!(f, "cannot quantise non-finite value at [{row}, {col}]")
            }
            QuantizeError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for QuantizeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QuantizeError::Tensor(e) => Some(e),
            QuantizeError::NonFinite { .. } => None,
        }
    }
}

impl From<TensorError> for QuantizeError {
    fn from(e: TensorError) -> Self {
        QuantizeError::Tensor(e)
    }
}

/// Row-major codes stored at the true width of their mode, so in-memory
/// footprint, serde payloads and the binary wire section all match
/// [`QuantizedMatrix::storage_bytes`]. (They used to be widened to
/// `Vec<u16>` for both modes, silently doubling every I8 byte claim.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum QuantCodes {
    /// 1-byte codes.
    I8(Vec<u8>),
    /// 2-byte codes.
    U16(Vec<u16>),
}

impl QuantCodes {
    fn len(&self) -> usize {
        match self {
            QuantCodes::I8(v) => v.len(),
            QuantCodes::U16(v) => v.len(),
        }
    }

    fn get(&self, i: usize) -> u16 {
        match self {
            QuantCodes::I8(v) => v[i] as u16,
            QuantCodes::U16(v) => v[i],
        }
    }
}

/// A quantised `[rows, cols]` matrix with per-column affine codecs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    mode: Quantization,
    /// Per-column minimum (offset).
    offsets: Vec<f32>,
    /// Per-column step ( (max−min)/max_code ).
    scales: Vec<f32>,
    /// Row-major codes at the true width of `mode`.
    codes: QuantCodes,
}

impl QuantizedMatrix {
    /// Quantises a rank-2 tensor.
    ///
    /// # Errors
    /// [`QuantizeError::NonFinite`] when the input holds NaN/±∞ (naming
    /// the first offending cell), [`QuantizeError::Tensor`] when it is not
    /// rank-2.
    pub fn encode(data: &Tensor, mode: Quantization) -> Result<Self, QuantizeError> {
        if data.rank() != 2 {
            return Err(TensorError::RankMismatch { got: data.rank(), expected: 2, op: "QuantizedMatrix::encode" }.into());
        }
        let (rows, cols) = (data.rows(), data.cols());
        let mut offsets = vec![0.0f32; cols];
        let mut scales = vec![0.0f32; cols];
        // Row-major finiteness sweep first, so the error names the first
        // bad cell in reading order regardless of which column pass would
        // have tripped over it.
        for r in 0..rows {
            for c in 0..cols {
                if !data.at(r, c).is_finite() {
                    return Err(QuantizeError::NonFinite { row: r, col: c });
                }
            }
        }
        for c in 0..cols {
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for r in 0..rows {
                let v = data.at(r, c);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if rows == 0 {
                lo = 0.0;
                hi = 0.0;
            }
            offsets[c] = lo;
            scales[c] = if hi > lo { (hi - lo) / mode.max_code() } else { 0.0 };
        }
        let quantise = |r: usize, c: usize| -> f32 {
            let v = data.at(r, c);
            if scales[c] > 0.0 {
                ((v - offsets[c]) / scales[c]).round().clamp(0.0, mode.max_code())
            } else {
                0.0
            }
        };
        let codes = match mode {
            Quantization::I8 => {
                let mut out = Vec::with_capacity(rows * cols);
                for r in 0..rows {
                    for c in 0..cols {
                        out.push(quantise(r, c) as u8);
                    }
                }
                QuantCodes::I8(out)
            }
            Quantization::U16 => {
                let mut out = Vec::with_capacity(rows * cols);
                for r in 0..rows {
                    for c in 0..cols {
                        out.push(quantise(r, c) as u16);
                    }
                }
                QuantCodes::U16(out)
            }
        };
        Ok(QuantizedMatrix { rows, cols, mode, offsets, scales, codes })
    }

    /// Reconstructs the (lossy) tensor.
    pub fn decode(&self) -> Tensor {
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for i in 0..self.codes.len() {
            let c = i % self.cols;
            data.push(self.offsets[c] + self.scales[c] * self.codes.get(i) as f32);
        }
        Tensor::from_vec(data, [self.rows, self.cols]).expect("length by construction")
    }

    /// Rows of the encoded matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the encoded matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Precision the matrix was encoded at.
    pub fn mode(&self) -> Quantization {
        self.mode
    }

    /// Bytes this matrix occupies on the device: codes at the true width
    /// plus the per-column codec metadata. The codes are *stored* at this
    /// width too (`QuantCodes`), so the claim matches both memory and
    /// the serialised payload.
    pub fn storage_bytes(&self) -> u64 {
        let codes = (self.rows * self.cols * self.mode.bytes_per_value()) as u64;
        let metadata = (self.cols * 2 * std::mem::size_of::<f32>()) as u64;
        codes + metadata
    }

    /// Fixed wire-section header bytes in front of
    /// [`QuantizedMatrix::storage_bytes`]: rows (u64) + cols (u64) +
    /// mode tag (u8).
    pub const WIRE_HEADER_BYTES: u64 = 17;

    /// Appends this matrix as a binary wire section: rows, cols, mode
    /// tag, per-column offsets and scales (bit-exact f32), then the codes
    /// at their true width. Exactly [`QuantizedMatrix::storage_bytes`] +
    /// [`QuantizedMatrix::WIRE_HEADER_BYTES`] bytes.
    pub fn to_wire(&self, w: &mut WireWriter) {
        w.u64(self.rows as u64);
        w.u64(self.cols as u64);
        w.u8(self.mode.tag());
        for &o in &self.offsets {
            w.f32(o);
        }
        for &s in &self.scales {
            w.f32(s);
        }
        match &self.codes {
            QuantCodes::I8(v) => w.raw(v),
            QuantCodes::U16(v) => {
                for &code in v {
                    w.u16(code);
                }
            }
        }
    }

    /// Reads a matrix written by [`QuantizedMatrix::to_wire`].
    pub fn from_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rows = r.u64()? as usize;
        let cols = r.u64()? as usize;
        let mode = Quantization::from_tag(r.u8()?)?;
        let values = rows.checked_mul(cols).ok_or(WireError::LengthOverflow {
            context: "QuantizedMatrix codes",
            announced: rows as u64,
        })?;
        if r.remaining() < cols * 8 + values * mode.bytes_per_value() {
            return Err(WireError::LengthOverflow {
                context: "QuantizedMatrix sections",
                announced: values as u64,
            });
        }
        let mut offsets = Vec::with_capacity(cols);
        for _ in 0..cols {
            offsets.push(r.f32()?);
        }
        let mut scales = Vec::with_capacity(cols);
        for _ in 0..cols {
            scales.push(r.f32()?);
        }
        let codes = match mode {
            Quantization::I8 => QuantCodes::I8(r.raw(values)?.to_vec()),
            Quantization::U16 => {
                let mut out = Vec::with_capacity(values);
                for _ in 0..values {
                    out.push(r.u16()?);
                }
                QuantCodes::U16(out)
            }
        };
        Ok(QuantizedMatrix { rows, cols, mode, offsets, scales, codes })
    }

    /// Maximum reconstruction error relative to `original`.
    pub fn max_error(&self, original: &Tensor) -> Result<f32, TensorError> {
        self.decode().max_abs_diff(original)
    }

    /// The half-step error bound guaranteed per column: `scale/2`.
    pub fn error_bound(&self) -> f32 {
        self.scales.iter().copied().fold(0.0f32, f32::max) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_tensor::Rng64;

    #[test]
    fn round_trip_error_within_bound() {
        let mut rng = Rng64::new(1);
        let data = Tensor::randn([50, 8], 0.0, 3.0, &mut rng);
        for mode in [Quantization::I8, Quantization::U16] {
            let q = QuantizedMatrix::encode(&data, mode).unwrap();
            let err = q.max_error(&data).unwrap();
            // Allow a 1-ulp slack beyond the theoretical half step for f32
            // rounding in the codec arithmetic.
            assert!(
                err <= q.error_bound() * 1.01 + 1e-6,
                "{mode:?}: err {err} bound {}",
                q.error_bound()
            );
        }
    }

    #[test]
    fn u16_is_far_more_precise_than_i8() {
        let mut rng = Rng64::new(2);
        let data = Tensor::randn([100, 4], 0.0, 1.0, &mut rng);
        let e8 = QuantizedMatrix::encode(&data, Quantization::I8).unwrap().max_error(&data).unwrap();
        let e16 =
            QuantizedMatrix::encode(&data, Quantization::U16).unwrap().max_error(&data).unwrap();
        assert!(e16 < e8 / 50.0, "i8 {e8} u16 {e16}");
    }

    #[test]
    fn constant_column_is_exact() {
        let data = Tensor::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0]]).unwrap();
        let q = QuantizedMatrix::encode(&data, Quantization::I8).unwrap();
        let d = q.decode();
        assert_eq!(d.at(0, 0), 5.0);
        assert_eq!(d.at(1, 0), 5.0);
    }

    #[test]
    fn extremes_are_exactly_representable() {
        let data = Tensor::from_rows(&[vec![-2.0], vec![7.0]]).unwrap();
        let q = QuantizedMatrix::encode(&data, Quantization::I8).unwrap();
        let d = q.decode();
        assert!((d.at(0, 0) - -2.0).abs() < 1e-5);
        assert!((d.at(1, 0) - 7.0).abs() < 1e-3);
    }

    /// Regression (silent-NaN bug): `NaN.clamp(0, max)` stays NaN and
    /// `NaN as u16` is 0, so a NaN input used to encode as the column
    /// *minimum* and round-trip as a legitimate value. It must be a typed
    /// error naming the offending cell instead.
    #[test]
    fn non_finite_input_is_a_typed_error() {
        let data = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, f32::NAN]]).unwrap();
        for mode in [Quantization::I8, Quantization::U16] {
            assert_eq!(
                QuantizedMatrix::encode(&data, mode),
                Err(QuantizeError::NonFinite { row: 1, col: 1 }),
            );
        }
        let inf = Tensor::from_rows(&[vec![f32::INFINITY, 0.0]]).unwrap();
        assert_eq!(
            QuantizedMatrix::encode(&inf, Quantization::I8),
            Err(QuantizeError::NonFinite { row: 0, col: 0 }),
        );
        // Not rank-2 stays a tensor error, not a panic.
        assert!(matches!(
            QuantizedMatrix::encode(&Tensor::zeros([4]), Quantization::I8),
            Err(QuantizeError::Tensor(TensorError::RankMismatch { .. }))
        ));
    }

    /// The full code range must be reachable: with 256 levels the column
    /// maximum encodes to code 255 (= `levels() - 1`), the minimum to 0.
    #[test]
    fn full_code_range_is_reachable() {
        let data = Tensor::from_rows(&[vec![-2.0], vec![7.0]]).unwrap();
        for (mode, top) in [(Quantization::I8, 255u16), (Quantization::U16, 65_535u16)] {
            let q = QuantizedMatrix::encode(&data, mode).unwrap();
            let codes: Vec<u16> = (0..q.codes.len()).map(|i| q.codes.get(i)).collect();
            assert_eq!(codes, vec![0, top], "{mode:?} must span the full code range");
            assert_eq!(mode.levels(), top as usize + 1, "levels() counts codes 0..=top");
        }
    }

    #[test]
    fn storage_accounting() {
        let data = Tensor::zeros([100, 80]);
        let q8 = QuantizedMatrix::encode(&data, Quantization::I8).unwrap();
        let q16 = QuantizedMatrix::encode(&data, Quantization::U16).unwrap();
        assert_eq!(q8.storage_bytes(), 100 * 80 + 80 * 8);
        assert_eq!(q16.storage_bytes(), 100 * 80 * 2 + 80 * 8);
    }

    /// Regression (byte-accounting bug): I8 codes used to be stored
    /// widened to `Vec<u16>`, so the serialised payload shipped 2
    /// bytes/value while `storage_bytes` claimed 1. The wire section must
    /// now cost exactly `storage_bytes` plus the fixed header.
    #[test]
    fn wire_section_size_matches_storage_bytes() {
        let mut rng = Rng64::new(5);
        let data = Tensor::randn([30, 7], 0.0, 2.0, &mut rng);
        for mode in [Quantization::I8, Quantization::U16] {
            let q = QuantizedMatrix::encode(&data, mode).unwrap();
            let mut w = WireWriter::new();
            q.to_wire(&mut w);
            assert_eq!(
                w.len() as u64,
                q.storage_bytes() + QuantizedMatrix::WIRE_HEADER_BYTES,
                "{mode:?}: serialised bytes must equal the storage_bytes claim"
            );
        }
        // And I8 really is half the U16 payload for the same matrix.
        let i8_bytes = QuantizedMatrix::encode(&data, Quantization::I8).unwrap().storage_bytes();
        let u16_bytes = QuantizedMatrix::encode(&data, Quantization::U16).unwrap().storage_bytes();
        assert!(i8_bytes < u16_bytes);
    }

    #[test]
    fn wire_round_trip_is_exact() {
        let mut rng = Rng64::new(6);
        let data = Tensor::randn([9, 4], 1.0, 3.0, &mut rng);
        for mode in [Quantization::I8, Quantization::U16] {
            let q = QuantizedMatrix::encode(&data, mode).unwrap();
            let mut w = WireWriter::new();
            q.to_wire(&mut w);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let back = QuantizedMatrix::from_wire(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, q);
        }
    }

    #[test]
    fn empty_matrix_round_trips() {
        let data = Tensor::zeros([0, 5]);
        let q = QuantizedMatrix::encode(&data, Quantization::I8).unwrap();
        assert_eq!(q.decode().shape(), data.shape());
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = Rng64::new(3);
        let data = Tensor::randn([4, 3], 0.0, 1.0, &mut rng);
        let q = QuantizedMatrix::encode(&data, Quantization::U16).unwrap();
        let json = serde_json::to_string(&q).unwrap();
        let back: QuantizedMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, q);
    }
}
