//! Deterministic, seed-driven fault injection for the edge pipeline.
//!
//! Real MAGNETO deployments do not see clean data: sensors drop samples,
//! channels freeze, drivers emit NaN bursts, ADCs saturate, cellular links
//! time out mid-download, and incremental updates get killed by the OS or
//! a dying battery. This module generates all of those faults from a
//! single seed so that every schedule is exactly reproducible:
//!
//! * [`SensorFaultInjector`] corrupts raw `[time, channels]` sensor
//!   windows ahead of the window assembler (dropout gaps, stuck channels,
//!   NaN/Inf spikes, rail saturation);
//! * [`FlakyLink`] wraps a [`LinkModel`] with drop / timeout / truncation
//!   faults for the cloud→edge transfer, paired with [`RetryPolicy`]'s
//!   exponential backoff + deadline;
//! * [`CrashPlan`] decides, per incremental update, whether the process is
//!   killed and at which kill-point.
//!
//! **Determinism contract** (same as `docs/THREADING.md`): one seed → one
//! fault schedule → bit-identical pipeline outcome at any thread count.
//! Each fault family draws from its own forked [`Rng64`] stream, so adding
//! faults of one kind never perturbs the schedule of another.

use crate::link::LinkModel;
use pilote_tensor::{Rng64, Tensor};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Sensor faults
// ---------------------------------------------------------------------------

/// The kinds of sensor-stream corruption the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorFaultKind {
    /// A gap of zeroed samples (the sensor stopped reporting).
    Dropout,
    /// One channel freezes at its last value for the rest of the window.
    Stuck,
    /// Isolated NaN / ±Inf cells (driver glitch, bad I²C read).
    Spike,
    /// One channel is hard-clipped to a rail (ADC saturation).
    Saturation,
}

impl SensorFaultKind {
    /// All fault kinds, in injection order.
    pub const ALL: [SensorFaultKind; 4] = [
        SensorFaultKind::Dropout,
        SensorFaultKind::Stuck,
        SensorFaultKind::Spike,
        SensorFaultKind::Saturation,
    ];
}

/// Per-window probabilities of each sensor-fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorFaultRates {
    /// Probability of a dropout gap per window.
    pub dropout: f64,
    /// Probability of a stuck channel per window.
    pub stuck: f64,
    /// Probability of a NaN/Inf spike burst per window.
    pub spike: f64,
    /// Probability of a saturated channel per window.
    pub saturation: f64,
}

impl SensorFaultRates {
    /// No faults at all.
    pub fn none() -> Self {
        SensorFaultRates { dropout: 0.0, stuck: 0.0, spike: 0.0, saturation: 0.0 }
    }

    /// The same rate for every fault kind.
    pub fn uniform(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        SensorFaultRates { dropout: rate, stuck: rate, spike: rate, saturation: rate }
    }

    /// The rate of the given kind.
    pub fn rate(&self, kind: SensorFaultKind) -> f64 {
        match kind {
            SensorFaultKind::Dropout => self.dropout,
            SensorFaultKind::Stuck => self.stuck,
            SensorFaultKind::Spike => self.spike,
            SensorFaultKind::Saturation => self.saturation,
        }
    }
}

/// Injection counters, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Dropout gaps injected.
    pub dropout: u64,
    /// Stuck channels injected.
    pub stuck: u64,
    /// NaN/Inf bursts injected.
    pub spike: u64,
    /// Saturated channels injected.
    pub saturation: u64,
}

impl FaultCounts {
    /// Total faults injected across kinds.
    pub fn total(&self) -> u64 {
        self.dropout + self.stuck + self.spike + self.saturation
    }

    fn bump(&mut self, kind: SensorFaultKind) {
        match kind {
            SensorFaultKind::Dropout => self.dropout += 1,
            SensorFaultKind::Stuck => self.stuck += 1,
            SensorFaultKind::Spike => self.spike += 1,
            SensorFaultKind::Saturation => self.saturation += 1,
        }
    }
}

/// Seed-driven corruptor of raw `[time, channels]` sensor windows.
///
/// Call [`SensorFaultInjector::corrupt_window`] on each window *before* it
/// enters the `WindowAssembler`; the injector decides per window (and per
/// fault kind, in the fixed order of [`SensorFaultKind::ALL`]) whether to
/// corrupt, using one Bernoulli draw per kind so the schedule depends only
/// on the seed and the number of windows seen.
#[derive(Debug, Clone)]
pub struct SensorFaultInjector {
    rates: SensorFaultRates,
    rng: Rng64,
    counts: FaultCounts,
    windows_seen: u64,
    windows_faulted: u64,
}

impl SensorFaultInjector {
    /// New injector with its own RNG stream.
    pub fn new(seed: u64, rates: SensorFaultRates) -> Self {
        SensorFaultInjector {
            rates,
            rng: Rng64::new(seed ^ 0x5e25_0af1),
            counts: FaultCounts::default(),
            windows_seen: 0,
            windows_faulted: 0,
        }
    }

    /// Per-kind injection counters so far.
    pub fn counts(&self) -> &FaultCounts {
        &self.counts
    }

    /// Windows passed through the injector.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// Windows that received at least one fault.
    pub fn windows_faulted(&self) -> u64 {
        self.windows_faulted
    }

    /// Corrupts one `[time, channels]` window in place and returns the
    /// kinds injected (empty when the window passed through clean).
    ///
    /// # Panics
    /// Panics if `window` is not a rank-2 tensor with at least one row and
    /// one column.
    pub fn corrupt_window(&mut self, window: &mut Tensor) -> Vec<SensorFaultKind> {
        assert!(
            window.rank() == 2 && window.rows() > 0 && window.cols() > 0,
            "fault injection needs a non-empty [time, channels] window"
        );
        self.windows_seen += 1;
        let (n, c) = (window.rows(), window.cols());
        let mut injected = Vec::new();
        for kind in SensorFaultKind::ALL {
            // One draw per kind regardless of outcome keeps the schedule a
            // pure function of (seed, windows_seen).
            if !self.rng.bernoulli(self.rates.rate(kind)) {
                continue;
            }
            match kind {
                SensorFaultKind::Dropout => {
                    let len = 1 + self.rng.below((n / 4).max(1));
                    let start = self.rng.below(n);
                    let end = (start + len).min(n);
                    for t in start..end {
                        for v in window.row_mut(t) {
                            *v = 0.0;
                        }
                    }
                }
                SensorFaultKind::Stuck => {
                    let ch = self.rng.below(c);
                    let start = self.rng.below(n);
                    let frozen = window.at(start, ch);
                    for t in start..n {
                        window.row_mut(t)[ch] = frozen;
                    }
                }
                SensorFaultKind::Spike => {
                    let burst = 1 + self.rng.below(4);
                    for _ in 0..burst {
                        let t = self.rng.below(n);
                        let ch = self.rng.below(c);
                        window.row_mut(t)[ch] = match self.rng.below(3) {
                            0 => f32::NAN,
                            1 => f32::INFINITY,
                            _ => f32::NEG_INFINITY,
                        };
                    }
                }
                SensorFaultKind::Saturation => {
                    let ch = self.rng.below(c);
                    let rail = (0..n).map(|t| window.at(t, ch).abs()).fold(0.0f32, f32::max)
                        * 0.25
                        + 1e-3;
                    for t in 0..n {
                        let v = &mut window.row_mut(t)[ch];
                        *v = v.clamp(-rail, rail);
                    }
                }
            }
            self.counts.bump(kind);
            injected.push(kind);
        }
        if !injected.is_empty() {
            self.windows_faulted += 1;
        }
        injected
    }
}

// ---------------------------------------------------------------------------
// Link faults
// ---------------------------------------------------------------------------

/// A failed transfer attempt on a flaky link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkFault {
    /// The payload never arrived (connection reset, cell handover).
    Dropped,
    /// The transfer stalled past its timeout.
    TimedOut {
        /// Virtual seconds wasted before the timeout fired.
        after_seconds: f64,
    },
    /// Only a prefix of the payload arrived.
    Truncated {
        /// Bytes actually delivered before the cut.
        delivered_bytes: u64,
    },
}

impl std::fmt::Display for LinkFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkFault::Dropped => write!(f, "transfer dropped"),
            LinkFault::TimedOut { after_seconds } => {
                write!(f, "transfer timed out after {after_seconds:.2}s")
            }
            LinkFault::Truncated { delivered_bytes } => {
                write!(f, "transfer truncated at {delivered_bytes} bytes")
            }
        }
    }
}

/// Per-attempt probabilities of each link-fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultRates {
    /// Probability the attempt is dropped outright.
    pub drop: f64,
    /// Probability the attempt times out.
    pub timeout: f64,
    /// Probability the payload arrives truncated.
    pub truncate: f64,
}

impl LinkFaultRates {
    /// A perfectly reliable link.
    pub fn none() -> Self {
        LinkFaultRates { drop: 0.0, timeout: 0.0, truncate: 0.0 }
    }

    /// The same rate for every fault kind.
    pub fn uniform(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        LinkFaultRates { drop: rate, timeout: rate, truncate: rate }
    }
}

/// A [`LinkModel`] that fails some attempts, deterministically per seed.
#[derive(Debug, Clone)]
pub struct FlakyLink {
    /// The underlying (fault-free) link model.
    pub link: LinkModel,
    rates: LinkFaultRates,
    rng: Rng64,
    attempts: u64,
    faults: u64,
}

impl FlakyLink {
    /// New flaky link over `link` with its own RNG stream.
    pub fn new(link: LinkModel, seed: u64, rates: LinkFaultRates) -> Self {
        FlakyLink { link, rates, rng: Rng64::new(seed ^ 0x11aa_7a3d), attempts: 0, faults: 0 }
    }

    /// Attempts one transfer of `payload_bytes`. Returns the virtual
    /// seconds the attempt consumed and whether it succeeded; a failed
    /// attempt still costs link time (that is the point of timeouts).
    pub fn attempt(&mut self, payload_bytes: u64) -> (f64, Result<(), LinkFault>) {
        self.attempts += 1;
        let full = self.link.transfer_seconds(payload_bytes);
        // Fixed draw order — the schedule is a pure function of
        // (seed, attempts).
        let dropped = self.rng.bernoulli(self.rates.drop);
        let timed_out = self.rng.bernoulli(self.rates.timeout);
        let truncated = self.rng.bernoulli(self.rates.truncate);
        let frac = self.rng.uniform();
        if dropped {
            self.faults += 1;
            // A reset costs one round trip before the sender notices.
            return (self.link.rtt_seconds, Err(LinkFault::Dropped));
        }
        if timed_out {
            self.faults += 1;
            // The stall burns between 1× and 3× the nominal transfer time.
            let wasted = full * (1.0 + 2.0 * frac);
            return (wasted, Err(LinkFault::TimedOut { after_seconds: wasted }));
        }
        if truncated {
            self.faults += 1;
            let delivered = (payload_bytes as f64 * frac) as u64;
            let cost = self.link.transfer_seconds(delivered);
            return (cost, Err(LinkFault::Truncated { delivered_bytes: delivered }));
        }
        (full, Ok(()))
    }

    /// Attempts made so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Attempts that failed.
    pub fn faults(&self) -> u64 {
        self.faults
    }
}

/// Exponential backoff + deadline for retried transfers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum transfer attempts (≥ 1).
    pub max_attempts: usize,
    /// Backoff before the second attempt, in seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff after each failure.
    pub backoff_factor: f64,
    /// Give up once cumulative virtual time exceeds this deadline.
    pub deadline_s: f64,
}

impl RetryPolicy {
    /// A sensible edge default: 5 attempts, 0.5 s → 8 s backoff, 120 s
    /// deadline.
    pub fn default_edge() -> Self {
        RetryPolicy { max_attempts: 5, base_backoff_s: 0.5, backoff_factor: 2.0, deadline_s: 120.0 }
    }

    /// Backoff to sleep before `attempt` (1-based; the first attempt has
    /// no backoff).
    pub fn backoff_before(&self, attempt: usize) -> f64 {
        if attempt <= 1 {
            0.0
        } else {
            self.base_backoff_s * self.backoff_factor.powi(attempt as i32 - 2)
        }
    }
}

// ---------------------------------------------------------------------------
// Process faults
// ---------------------------------------------------------------------------

/// Decides, per incremental update, whether the process is killed and at
/// which of the update's kill-points (0-based stage index).
#[derive(Debug, Clone)]
pub struct CrashPlan {
    rate: f64,
    rng: Rng64,
    updates: u64,
    kills: u64,
}

impl CrashPlan {
    /// New plan with its own RNG stream; `rate` is the per-update
    /// probability of a crash.
    pub fn new(seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        CrashPlan { rate, rng: Rng64::new(seed ^ 0xc4a5_4a11), updates: 0, kills: 0 }
    }

    /// Draws the fate of the next update: `None` (runs to completion) or
    /// `Some(stage)` with `stage < stages` naming the kill-point.
    pub fn next_kill(&mut self, stages: usize) -> Option<usize> {
        assert!(stages > 0, "an update needs at least one kill-point");
        self.updates += 1;
        // Both draws always happen, keeping the schedule a pure function
        // of (seed, updates).
        let crash = self.rng.bernoulli(self.rate);
        let stage = self.rng.below(stages);
        if crash {
            self.kills += 1;
            Some(stage)
        } else {
            None
        }
    }

    /// Updates scheduled so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Updates that were killed.
    pub fn kills(&self) -> u64 {
        self.kills
    }
}

// ---------------------------------------------------------------------------
// Master plan
// ---------------------------------------------------------------------------

/// One seed → one complete fault schedule for all three pipeline stages.
///
/// The three injectors draw from independent forked streams, so e.g.
/// raising the sensor-fault rate never changes *which* updates crash.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Sensor-stream corruption (ahead of the window assembler).
    pub sensors: SensorFaultInjector,
    /// Cloud→edge link faults (during deployment).
    pub link: LinkFaultRates,
    /// Incremental-update kill schedule.
    pub crashes: CrashPlan,
    seed: u64,
}

impl FaultPlan {
    /// Builds a plan where every fault family fires at `rate`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            sensors: SensorFaultInjector::new(seed, SensorFaultRates::uniform(rate)),
            link: LinkFaultRates::uniform(rate),
            crashes: CrashPlan::new(seed, rate),
            seed,
        }
    }

    /// The master seed this plan was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A flaky link over `link` driven by this plan's seed and rates.
    pub fn flaky_link(&self, link: LinkModel) -> FlakyLink {
        FlakyLink::new(link, self.seed, self.link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(seed: u64) -> Tensor {
        let mut rng = Rng64::new(seed);
        Tensor::randn([30, 4], 0.0, 1.0, &mut rng)
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        for seed in [0u64, 7, 991] {
            let mut a = SensorFaultInjector::new(seed, SensorFaultRates::uniform(0.5));
            let mut b = SensorFaultInjector::new(seed, SensorFaultRates::uniform(0.5));
            for w in 0..20 {
                let mut wa = window(w);
                let mut wb = window(w);
                assert_eq!(a.corrupt_window(&mut wa), b.corrupt_window(&mut wb));
                assert_eq!(wa.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                           wb.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>());
            }
            assert_eq!(a.counts(), b.counts());
        }
    }

    #[test]
    fn zero_rates_never_corrupt() {
        let mut inj = SensorFaultInjector::new(3, SensorFaultRates::none());
        let clean = window(1);
        let mut w = clean.clone();
        for _ in 0..50 {
            assert!(inj.corrupt_window(&mut w).is_empty());
        }
        assert_eq!(w, clean);
        assert_eq!(inj.counts().total(), 0);
        assert_eq!(inj.windows_seen(), 50);
        assert_eq!(inj.windows_faulted(), 0);
    }

    #[test]
    fn spike_produces_non_finite_and_dropout_zeroes() {
        let mut inj = SensorFaultInjector::new(
            11,
            SensorFaultRates { dropout: 0.0, stuck: 0.0, spike: 1.0, saturation: 0.0 },
        );
        let mut w = window(2);
        let kinds = inj.corrupt_window(&mut w);
        assert_eq!(kinds, vec![SensorFaultKind::Spike]);
        assert!(!w.all_finite(), "spike must leave a non-finite cell");

        let mut inj = SensorFaultInjector::new(
            11,
            SensorFaultRates { dropout: 1.0, stuck: 0.0, spike: 0.0, saturation: 0.0 },
        );
        let mut w = window(3);
        inj.corrupt_window(&mut w);
        let zero_rows = (0..w.rows()).filter(|&t| w.row(t).iter().all(|&v| v == 0.0)).count();
        assert!(zero_rows >= 1, "dropout must zero at least one full row");
        assert!(w.all_finite());
    }

    #[test]
    fn saturation_reduces_dynamic_range() {
        let mut inj = SensorFaultInjector::new(
            5,
            SensorFaultRates { dropout: 0.0, stuck: 0.0, spike: 0.0, saturation: 1.0 },
        );
        let clean = window(4);
        let mut w = clean.clone();
        inj.corrupt_window(&mut w);
        // Some channel's max |value| must have shrunk.
        let max_abs = |t: &Tensor, ch: usize| {
            (0..t.rows()).map(|r| t.at(r, ch).abs()).fold(0.0f32, f32::max)
        };
        assert!((0..clean.cols()).any(|ch| max_abs(&w, ch) < max_abs(&clean, ch)));
    }

    #[test]
    fn flaky_link_schedule_is_deterministic() {
        let mk = || FlakyLink::new(LinkModel::weak_cellular(), 17, LinkFaultRates::uniform(0.4));
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..32 {
            let ra = a.attempt(10_000);
            let rb = b.attempt(10_000);
            assert_eq!(ra.0.to_bits(), rb.0.to_bits());
            assert_eq!(ra.1, rb.1);
        }
        assert_eq!(a.faults(), b.faults());
        assert!(a.faults() > 0, "40% fault rate should fail sometimes in 32 attempts");
    }

    #[test]
    fn reliable_link_matches_link_model() {
        let link = LinkModel::wifi();
        let mut flaky = FlakyLink::new(link, 1, LinkFaultRates::none());
        let (cost, ok) = flaky.attempt(1_000_000);
        assert!(ok.is_ok());
        assert!((cost - link.transfer_seconds(1_000_000)).abs() < 1e-12);
    }

    #[test]
    fn retry_policy_backoff_grows_exponentially() {
        let p = RetryPolicy::default_edge();
        assert_eq!(p.backoff_before(1), 0.0);
        assert!((p.backoff_before(2) - 0.5).abs() < 1e-12);
        assert!((p.backoff_before(3) - 1.0).abs() < 1e-12);
        assert!((p.backoff_before(5) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn crash_plan_is_deterministic_and_counts() {
        let mk = || CrashPlan::new(23, 0.5);
        let (mut a, mut b) = (mk(), mk());
        let fates_a: Vec<_> = (0..40).map(|_| a.next_kill(2)).collect();
        let fates_b: Vec<_> = (0..40).map(|_| b.next_kill(2)).collect();
        assert_eq!(fates_a, fates_b);
        assert_eq!(a.kills(), fates_a.iter().filter(|f| f.is_some()).count() as u64);
        assert!(a.kills() > 0 && a.kills() < 40);
        assert!(fates_a.iter().flatten().all(|&s| s < 2));
    }

    #[test]
    fn fault_plan_families_are_independent() {
        // Changing the sensor rate must not change the crash schedule.
        let mut lo = FaultPlan::uniform(9, 0.2);
        let mut hi = FaultPlan::uniform(9, 0.2);
        let mut w = window(5);
        hi.sensors.corrupt_window(&mut w); // consume sensor stream only on one plan
        let a: Vec<_> = (0..16).map(|_| lo.crashes.next_kill(2)).collect();
        let b: Vec<_> = (0..16).map(|_| hi.crashes.next_kill(2)).collect();
        assert_eq!(a, b);
    }
}
