//! Cloud ↔ edge transfer model — the cost side of the paper's Fig. 1/2
//! motivation (cloud-based HAR requires continuous data exchange; the
//! edge-based design ships the model once).

use serde::{Deserialize, Serialize};

/// A simple bandwidth + round-trip-time link model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Sustained throughput in bytes per second.
    pub bandwidth_bps: f64,
    /// Round-trip latency in seconds.
    pub rtt_seconds: f64,
}

impl LinkModel {
    /// Typical 4G uplink (~10 Mbit/s, 50 ms RTT).
    pub fn cellular_4g() -> Self {
        LinkModel { bandwidth_bps: 10e6 / 8.0, rtt_seconds: 0.050 }
    }

    /// Home Wi-Fi (~50 Mbit/s, 10 ms RTT).
    pub fn wifi() -> Self {
        LinkModel { bandwidth_bps: 50e6 / 8.0, rtt_seconds: 0.010 }
    }

    /// Congested / weak signal (~1 Mbit/s, 200 ms RTT).
    pub fn weak_cellular() -> Self {
        LinkModel { bandwidth_bps: 1e6 / 8.0, rtt_seconds: 0.200 }
    }

    /// Seconds to complete one request/response exchange carrying
    /// `payload_bytes` total.
    pub fn transfer_seconds(&self, payload_bytes: u64) -> f64 {
        self.rtt_seconds + payload_bytes as f64 / self.bandwidth_bps
    }

    /// Seconds of link time for `n` exchanges of `payload_bytes` each —
    /// the cloud-inference loop of Fig. 2 (left).
    pub fn repeated_transfer_seconds(&self, payload_bytes: u64, n: u64) -> f64 {
        self.transfer_seconds(payload_bytes) * n as f64
    }
}

/// Cost comparison between the cloud loop and the edge deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CloudVsEdge {
    /// Total seconds spent on the link by the cloud design.
    pub cloud_link_seconds: f64,
    /// Total bytes shipped by the cloud design.
    pub cloud_bytes: u64,
    /// Seconds for the one-time model + support-set download of the edge
    /// design.
    pub edge_bootstrap_seconds: f64,
    /// Bytes of the one-time edge download.
    pub edge_bytes: u64,
}

/// Computes the A5 comparison: a cloud design ships every window up (and a
/// prediction back); the edge design downloads the model + support set
/// once and never talks to the cloud again.
pub fn cloud_vs_edge(
    link: &LinkModel,
    windows: u64,
    window_bytes: u64,
    model_bytes: u64,
    support_bytes: u64,
) -> CloudVsEdge {
    // Response payload (a label) is negligible but the RTT is not.
    let cloud_link_seconds = link.repeated_transfer_seconds(window_bytes, windows);
    CloudVsEdge {
        cloud_link_seconds,
        cloud_bytes: windows * window_bytes,
        edge_bootstrap_seconds: link.transfer_seconds(model_bytes + support_bytes),
        edge_bytes: model_bytes + support_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_rtt_and_payload() {
        let l = LinkModel { bandwidth_bps: 1000.0, rtt_seconds: 0.1 };
        assert!((l.transfer_seconds(500) - 0.6).abs() < 1e-9);
        assert!((l.transfer_seconds(0) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn repeated_transfers_scale_linearly() {
        let l = LinkModel::wifi();
        let one = l.transfer_seconds(1000);
        assert!((l.repeated_transfer_seconds(1000, 10) - 10.0 * one).abs() < 1e-9);
    }

    #[test]
    fn link_presets_are_ordered() {
        assert!(LinkModel::wifi().bandwidth_bps > LinkModel::cellular_4g().bandwidth_bps);
        assert!(LinkModel::cellular_4g().bandwidth_bps > LinkModel::weak_cellular().bandwidth_bps);
    }

    #[test]
    fn edge_wins_for_long_deployments() {
        // One day of 1-second windows at ~10 KB each vs a 3 MB one-time
        // download: the cloud loop must cost (much) more link time.
        let link = LinkModel::cellular_4g();
        let cmp = cloud_vs_edge(&link, 86_400, 10_560, 2_800_000, 256_000);
        assert!(cmp.cloud_link_seconds > 100.0 * cmp.edge_bootstrap_seconds);
        assert!(cmp.cloud_bytes > 100 * cmp.edge_bytes);
    }
}
