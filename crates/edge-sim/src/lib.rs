//! # pilote-edge-sim
//!
//! Edge-device resource simulation for the PILOTE reproduction.
//!
//! The paper's Q2 ("Applicability on the edge") argues in bytes and
//! seconds: a 2 500-exemplar support set ≈ 3.2 MB, 200 exemplars per class
//! < 256 KB, an incremental epoch < 0.5 s. Real phones are unavailable in
//! this environment, so this crate provides the measurable substitutes:
//!
//! * [`device`] — named device profiles (flagship phone, budget phone,
//!   microcontroller-class) with RAM/storage budgets and a CPU slowdown
//!   factor relative to the benchmark host;
//! * [`memory`] — byte accounting for support sets, model parameters and
//!   the edge cache budget `K` of Algorithm 1 (`m = K/(s−1)`);
//! * [`quantize`] — affine i8 / u16 exemplar compression with measured
//!   reconstruction error (the paper stores exemplars "in compressed
//!   format");
//! * [`link`] — a cloud↔edge transfer model (bandwidth + RTT) used by the
//!   A5 cloud-vs-edge experiment motivated by the paper's Fig. 1/2;
//! * [`latency`] — a stopwatch harness that scales host wall-clock by the
//!   device profile's CPU factor;
//! * [`faults`] — deterministic, seed-driven fault injection (sensor
//!   corruption, flaky links, update kill-points) used to exercise the
//!   resilience tiers of `docs/RESILIENCE.md`;
//! * [`wire`] — checked binary wire primitives (little-endian, bit-exact
//!   floats) underpinning the compact payload codec of `docs/WIRE.md`.

// Library code must not panic on recoverable conditions (tier-0 of the
// resilience contract); tests may unwrap freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod device;
pub mod faults;
pub mod latency;
pub mod link;
pub mod memory;
pub mod quantize;
pub mod wire;

pub use device::{DeviceProfile, HOST_REF_FLOPS_PER_SEC};
pub use faults::{
    CrashPlan, FaultCounts, FaultPlan, FlakyLink, LinkFault, LinkFaultRates, RetryPolicy,
    SensorFaultInjector, SensorFaultKind, SensorFaultRates,
};
pub use latency::LatencyMeter;
pub use link::LinkModel;
pub use memory::MemoryBudget;
pub use quantize::{QuantizeError, QuantizedMatrix, Quantization};
pub use wire::{WireError, WirePrecision, WireReader, WireWriter};
