//! Edge-device profiles.

use serde::{Deserialize, Serialize};

/// Resource envelope of an edge device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable name.
    pub name: String,
    /// RAM available to the learning process, in bytes.
    pub ram_bytes: u64,
    /// Persistent storage available for the support set, in bytes.
    pub storage_bytes: u64,
    /// Wall-clock slowdown relative to the benchmark host (≥ 1 means the
    /// device is slower).
    pub cpu_factor: f64,
}

impl DeviceProfile {
    /// A current flagship smartphone (the paper's deployment target class).
    pub fn flagship_phone() -> Self {
        DeviceProfile {
            name: "flagship-phone".into(),
            ram_bytes: 512 * 1024 * 1024, // budget granted to the app
            storage_bytes: 2 * 1024 * 1024 * 1024,
            cpu_factor: 2.0,
        }
    }

    /// A low-end smartphone.
    pub fn budget_phone() -> Self {
        DeviceProfile {
            name: "budget-phone".into(),
            ram_bytes: 128 * 1024 * 1024,
            storage_bytes: 256 * 1024 * 1024,
            cpu_factor: 6.0,
        }
    }

    /// A microcontroller-class wearable — the "extreme edge".
    pub fn wearable() -> Self {
        DeviceProfile {
            name: "wearable".into(),
            ram_bytes: 8 * 1024 * 1024,
            storage_bytes: 32 * 1024 * 1024,
            cpu_factor: 40.0,
        }
    }

    /// Whether a payload of `bytes` fits in the device's storage budget.
    pub fn fits_storage(&self, bytes: u64) -> bool {
        bytes <= self.storage_bytes
    }

    /// Whether a working set of `bytes` fits in the device's RAM budget.
    pub fn fits_ram(&self, bytes: u64) -> bool {
        bytes <= self.ram_bytes
    }

    /// Projects a host-measured duration onto this device.
    pub fn project_seconds(&self, host_seconds: f64) -> f64 {
        host_seconds * self.cpu_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_capability() {
        let f = DeviceProfile::flagship_phone();
        let b = DeviceProfile::budget_phone();
        let w = DeviceProfile::wearable();
        assert!(f.ram_bytes > b.ram_bytes && b.ram_bytes > w.ram_bytes);
        assert!(f.cpu_factor < b.cpu_factor && b.cpu_factor < w.cpu_factor);
    }

    #[test]
    fn fits_checks() {
        let w = DeviceProfile::wearable();
        assert!(w.fits_ram(1024));
        assert!(!w.fits_ram(u64::MAX));
        assert!(w.fits_storage(w.storage_bytes));
        assert!(!w.fits_storage(w.storage_bytes + 1));
    }

    #[test]
    fn projection_scales_time() {
        let b = DeviceProfile::budget_phone();
        assert_eq!(b.project_seconds(0.5), 3.0);
    }

    #[test]
    fn serde_round_trip() {
        let f = DeviceProfile::flagship_phone();
        let json = serde_json::to_string(&f).unwrap();
        let back: DeviceProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }
}
