//! Edge-device profiles.

use serde::{Deserialize, Serialize};

/// Resource envelope of an edge device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable name.
    pub name: String,
    /// RAM available to the learning process, in bytes.
    pub ram_bytes: u64,
    /// Persistent storage available for the support set, in bytes.
    pub storage_bytes: u64,
    /// Wall-clock slowdown relative to the benchmark host (≥ 1 means the
    /// device is slower).
    pub cpu_factor: f64,
}

/// Sustained single-core throughput assumed for the benchmark host, in
/// floating-point operations per second. The absolute value only sets the
/// time scale of the simulation; what matters for the experiments is that
/// it is a **constant**, so modeled device time is a pure function of the
/// work dispatched (see [`DeviceProfile::seconds_for_flops`]) and never of
/// host load.
pub const HOST_REF_FLOPS_PER_SEC: f64 = 2.0e9;

impl DeviceProfile {
    /// A current flagship smartphone (the paper's deployment target class).
    pub fn flagship_phone() -> Self {
        DeviceProfile {
            name: "flagship-phone".into(),
            ram_bytes: 512 * 1024 * 1024, // budget granted to the app
            storage_bytes: 2 * 1024 * 1024 * 1024,
            cpu_factor: 2.0,
        }
    }

    /// A low-end smartphone.
    pub fn budget_phone() -> Self {
        DeviceProfile {
            name: "budget-phone".into(),
            ram_bytes: 128 * 1024 * 1024,
            storage_bytes: 256 * 1024 * 1024,
            cpu_factor: 6.0,
        }
    }

    /// A microcontroller-class wearable — the "extreme edge".
    pub fn wearable() -> Self {
        DeviceProfile {
            name: "wearable".into(),
            ram_bytes: 8 * 1024 * 1024,
            storage_bytes: 32 * 1024 * 1024,
            cpu_factor: 40.0,
        }
    }

    /// A deterministic heterogeneous roster of `n` devices, cycling
    /// through the three capability classes (flagship, budget, wearable)
    /// with index-suffixed names — the fleet experiments' device mix.
    pub fn roster(n: usize) -> Vec<DeviceProfile> {
        let base = [Self::flagship_phone(), Self::budget_phone(), Self::wearable()];
        (0..n)
            .map(|i| {
                let mut profile = base[i % base.len()].clone();
                profile.name = format!("{}-{i}", profile.name);
                profile
            })
            .collect()
    }

    /// Whether a payload of `bytes` fits in the device's storage budget.
    pub fn fits_storage(&self, bytes: u64) -> bool {
        bytes <= self.storage_bytes
    }

    /// Whether a working set of `bytes` fits in the device's RAM budget.
    pub fn fits_ram(&self, bytes: u64) -> bool {
        bytes <= self.ram_bytes
    }

    /// Projects a host-measured duration onto this device.
    ///
    /// Only for *reporting* host benchmarks in device terms. Never feed the
    /// result into deterministic device-time state such as the `EventLog`
    /// virtual clock — host measurements vary with machine load; use
    /// [`DeviceProfile::seconds_for_flops`] there instead.
    pub fn project_seconds(&self, host_seconds: f64) -> f64 {
        host_seconds * self.cpu_factor
    }

    /// Modeled device seconds for executing `flops` floating-point
    /// operations: `flops / HOST_REF_FLOPS_PER_SEC × cpu_factor`.
    ///
    /// Deterministic by construction — the input comes from shape-derived
    /// kernel work accounting (`pilote_obs::work`), so the same seed yields
    /// the same device time on any host at any thread count.
    pub fn seconds_for_flops(&self, flops: u64) -> f64 {
        (flops as f64 / HOST_REF_FLOPS_PER_SEC) * self.cpu_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_capability() {
        let f = DeviceProfile::flagship_phone();
        let b = DeviceProfile::budget_phone();
        let w = DeviceProfile::wearable();
        assert!(f.ram_bytes > b.ram_bytes && b.ram_bytes > w.ram_bytes);
        assert!(f.cpu_factor < b.cpu_factor && b.cpu_factor < w.cpu_factor);
    }

    #[test]
    fn fits_checks() {
        let w = DeviceProfile::wearable();
        assert!(w.fits_ram(1024));
        assert!(!w.fits_ram(u64::MAX));
        assert!(w.fits_storage(w.storage_bytes));
        assert!(!w.fits_storage(w.storage_bytes + 1));
    }

    #[test]
    fn projection_scales_time() {
        let b = DeviceProfile::budget_phone();
        assert_eq!(b.project_seconds(0.5), 3.0);
    }

    #[test]
    fn flops_model_scales_with_cpu_factor() {
        let f = DeviceProfile::flagship_phone();
        let w = DeviceProfile::wearable();
        let flops = 4_000_000_000u64; // two host-reference seconds of work
        assert_eq!(f.seconds_for_flops(flops), 4.0);
        assert_eq!(w.seconds_for_flops(flops), 80.0);
        assert_eq!(f.seconds_for_flops(0), 0.0);
    }

    #[test]
    fn roster_is_heterogeneous_and_deterministic() {
        let roster = DeviceProfile::roster(8);
        assert_eq!(roster.len(), 8);
        // All three capability classes appear and names are unique.
        let factors: std::collections::BTreeSet<u64> =
            roster.iter().map(|p| p.cpu_factor as u64).collect();
        assert_eq!(factors.len(), 3);
        let names: std::collections::BTreeSet<&str> =
            roster.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names.len(), 8);
        assert_eq!(roster, DeviceProfile::roster(8));
        assert_eq!(roster[0].cpu_factor, DeviceProfile::flagship_phone().cpu_factor);
        assert_eq!(roster[2].cpu_factor, DeviceProfile::wearable().cpu_factor);
    }

    #[test]
    fn serde_round_trip() {
        let f = DeviceProfile::flagship_phone();
        let json = serde_json::to_string(&f).unwrap();
        let back: DeviceProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }
}
