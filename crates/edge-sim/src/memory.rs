//! Byte accounting for the edge cache.
//!
//! Algorithm 1 line 1: with cache size `K` and `s − 1` old classes, each
//! class keeps `m = K / (s − 1)` exemplars. This module turns exemplar
//! counts into bytes (and back) so experiments can be stated in device
//! storage terms, matching the paper's "2500 exemplars ≈ 3.2 MB" and
//! "< 200 exemplars per class, i.e. < 256 KB" claims.

use serde::{Deserialize, Serialize};

/// Bytes per stored feature value under a given representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValueWidth {
    /// 32-bit float (raw).
    F32,
    /// 16-bit quantised.
    U16,
    /// 8-bit quantised.
    I8,
}

impl ValueWidth {
    /// Bytes per value.
    pub fn bytes(self) -> u64 {
        match self {
            ValueWidth::F32 => 4,
            ValueWidth::U16 => 2,
            ValueWidth::I8 => 1,
        }
    }
}

/// An edge cache budget for exemplar storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryBudget {
    /// Total cache size `K` in exemplars.
    pub total_exemplars: usize,
    /// Feature dimensionality of one exemplar.
    pub feature_dim: usize,
    /// Stored value representation.
    pub width: ValueWidth,
}

impl MemoryBudget {
    /// Budget for `total_exemplars` exemplars of `feature_dim` features.
    pub fn new(total_exemplars: usize, feature_dim: usize, width: ValueWidth) -> Self {
        MemoryBudget { total_exemplars, feature_dim, width }
    }

    /// Exemplars per class under `classes` classes (Algorithm 1 line 1:
    /// `m = K / (s − 1)`).
    ///
    /// # Panics
    /// Panics if `classes == 0`.
    pub fn per_class(&self, classes: usize) -> usize {
        assert!(classes > 0, "per_class requires at least one class");
        self.total_exemplars / classes
    }

    /// Bytes of one exemplar.
    pub fn exemplar_bytes(&self) -> u64 {
        self.feature_dim as u64 * self.width.bytes()
    }

    /// Total bytes of the full cache.
    pub fn total_bytes(&self) -> u64 {
        self.total_exemplars as u64 * self.exemplar_bytes()
    }

    /// Bytes used by `n` stored exemplars.
    pub fn bytes_for(&self, n: usize) -> u64 {
        n as u64 * self.exemplar_bytes()
    }

    /// Largest exemplar count fitting in `bytes`.
    pub fn exemplars_fitting(&self, bytes: u64) -> usize {
        (bytes / self.exemplar_bytes().max(1)) as usize
    }
}

/// Bytes of a model with `params` f32 parameters.
pub fn model_bytes(params: usize) -> u64 {
    params as u64 * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_class_is_integer_division() {
        let b = MemoryBudget::new(1000, 80, ValueWidth::F32);
        assert_eq!(b.per_class(4), 250);
        assert_eq!(b.per_class(3), 333);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn per_class_zero_panics() {
        let _ = MemoryBudget::new(10, 80, ValueWidth::F32).per_class(0);
    }

    #[test]
    fn paper_storage_claims_are_in_range() {
        // 2500 exemplars of 80 features: raw f32 = 800 KB; the paper quotes
        // 3.2 MB for its compressed windows — our feature-vector cache is
        // strictly smaller, consistent with the "few MB" regime.
        let raw = MemoryBudget::new(2500, 80, ValueWidth::F32);
        assert_eq!(raw.total_bytes(), 800_000);
        assert!(raw.total_bytes() < 4 * 1024 * 1024);

        // 200 exemplars/class × 4 classes at f32 → 256 KB, the paper's
        // "< 256 KB with less than 200 exemplars per class".
        let per_200 = MemoryBudget::new(200 * 4, 80, ValueWidth::F32);
        assert_eq!(per_200.total_bytes(), 256_000);
    }

    #[test]
    fn quantisation_shrinks_bytes() {
        let f32b = MemoryBudget::new(100, 80, ValueWidth::F32).total_bytes();
        let u16b = MemoryBudget::new(100, 80, ValueWidth::U16).total_bytes();
        let i8b = MemoryBudget::new(100, 80, ValueWidth::I8).total_bytes();
        assert_eq!(f32b, 2 * u16b);
        assert_eq!(u16b, 2 * i8b);
    }

    #[test]
    fn exemplars_fitting_inverts_bytes_for() {
        let b = MemoryBudget::new(0, 80, ValueWidth::I8);
        let bytes = b.bytes_for(123);
        assert_eq!(b.exemplars_fitting(bytes), 123);
        assert_eq!(b.exemplars_fitting(bytes - 1), 122);
    }

    #[test]
    fn model_bytes_f32() {
        assert_eq!(model_bytes(1_000_000), 4_000_000);
    }
}
