//! Binary wire primitives for the cloud↔edge codec.
//!
//! Every production transfer path (deployment installs, federated round
//! payloads, telemetry uploads) used to size itself by **JSON text
//! length** — a decimal-printed `f32` costs ~10+ bytes where the value
//! itself is 4 — so every modeled transfer time was inflated by a format
//! no real deployment would ship. This module provides the exact-width
//! little-endian encoding those paths now use (see `docs/WIRE.md` for the
//! full layout contract):
//!
//! * [`WireWriter`] — append-only byte sink with fixed-width integer and
//!   IEEE-754 bit-exact float writes, plus length-prefixed strings;
//! * [`WireReader`] — the matching checked reader; every read is
//!   bounds-checked and returns a typed [`WireError`] instead of
//!   panicking on truncated or corrupt payloads;
//! * [`WirePrecision`] — the precision a payload's tensor sections are
//!   encoded at: bit-exact `f32`, or affine-quantised `u16` / `i8`
//!   ([`crate::quantize::QuantizedMatrix`]).
//!
//! All multi-byte values are little-endian. Floats are encoded as their
//! IEEE-754 bit patterns (`to_bits`), so an `F32`/`F64` round-trip is
//! bitwise lossless — including NaN payloads and signed zeros — and the
//! encoded byte stream for a given payload is identical on every host.

use serde::{Deserialize, Serialize};

/// Errors from decoding a binary wire payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the announced structure did.
    UnexpectedEof {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A tag byte took a value the decoder does not know.
    BadTag {
        /// What was being decoded when the tag appeared.
        context: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// The payload does not start with the expected magic bytes.
    BadMagic {
        /// The magic the decoder expected.
        expected: [u8; 4],
    },
    /// A length or count field exceeds what the payload could possibly
    /// hold — a corrupt or truncated stream, rejected before allocating.
    LengthOverflow {
        /// What was being decoded.
        context: &'static str,
        /// The announced element count.
        announced: u64,
    },
    /// Decoding finished but bytes remain — the payload and the decoder
    /// disagree about the format.
    TrailingBytes {
        /// Bytes left unread.
        remaining: usize,
    },
    /// A string section was not valid UTF-8.
    BadUtf8 {
        /// Byte offset of the string section.
        offset: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof { offset, needed, remaining } => write!(
                f,
                "wire payload truncated at offset {offset}: needed {needed} bytes, {remaining} remain"
            ),
            WireError::BadTag { context, tag } => {
                write!(f, "unknown wire tag {tag} while decoding {context}")
            }
            WireError::BadMagic { expected } => {
                write!(f, "wire payload does not start with magic {expected:?}")
            }
            WireError::LengthOverflow { context, announced } => write!(
                f,
                "wire payload announces {announced} elements for {context}, more than the stream holds"
            ),
            WireError::TrailingBytes { remaining } => {
                write!(f, "wire payload has {remaining} trailing bytes after decoding")
            }
            WireError::BadUtf8 { offset } => {
                write!(f, "wire string at offset {offset} is not valid UTF-8")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Precision a wire payload's tensor sections are encoded at.
///
/// `F32` ships raw IEEE-754 bit patterns (bitwise lossless); `U16` and
/// `I8` ship per-column affine codes
/// ([`crate::quantize::QuantizedMatrix`]) at 2 and 1 bytes per value
/// respectively, trading reconstruction error for wire bytes. The
/// accuracy-vs-bytes frontier across all three is `repro wire`
/// (`results/BENCH_wire.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WirePrecision {
    /// Bit-exact 4-byte floats.
    F32,
    /// Affine-quantised 2-byte codes (65 536 levels).
    U16,
    /// Affine-quantised 1-byte codes (256 levels).
    I8,
}

impl WirePrecision {
    /// Bytes one tensor value costs on the wire (excluding per-column
    /// codec metadata for the quantised modes).
    pub fn bytes_per_value(self) -> usize {
        match self {
            WirePrecision::F32 => 4,
            WirePrecision::U16 => 2,
            WirePrecision::I8 => 1,
        }
    }

    /// Stable name used in benchmark output and docs.
    pub fn name(self) -> &'static str {
        match self {
            WirePrecision::F32 => "f32",
            WirePrecision::U16 => "u16",
            WirePrecision::I8 => "i8",
        }
    }

    /// Wire tag for this precision.
    pub fn tag(self) -> u8 {
        match self {
            WirePrecision::F32 => 0,
            WirePrecision::U16 => 1,
            WirePrecision::I8 => 2,
        }
    }

    /// Precision for a wire tag.
    pub fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(WirePrecision::F32),
            1 => Ok(WirePrecision::U16),
            2 => Ok(WirePrecision::I8),
            tag => Err(WireError::BadTag { context: "WirePrecision", tag }),
        }
    }
}

/// Append-only binary sink. All writes are little-endian; floats are
/// written as IEEE-754 bit patterns.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Writer starting with the 4-byte `magic` header.
    pub fn with_magic(magic: [u8; 4]) -> Self {
        let mut w = WireWriter::new();
        w.buf.extend_from_slice(&magic);
        w
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32` as its IEEE-754 bit pattern (bitwise lossless).
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bitwise lossless).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `u64`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes raw bytes with no length prefix (caller encodes structure).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Checked reader over a wire payload. Every read advances an offset and
/// fails with [`WireError::UnexpectedEof`] rather than panicking when the
/// payload is shorter than its structure claims.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Reader over `payload`.
    pub fn new(payload: &'a [u8]) -> Self {
        WireReader { buf: payload, pos: 0 }
    }

    /// Reader that first checks and consumes the 4-byte `magic` header.
    pub fn with_magic(payload: &'a [u8], magic: [u8; 4]) -> Result<Self, WireError> {
        let mut r = WireReader::new(payload);
        let got = r.take(4)?;
        if got != magic {
            return Err(WireError::BadMagic { expected: magic });
        }
        Ok(r)
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`WireError::TrailingBytes`] unless the payload was
    /// consumed exactly.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes { remaining: self.remaining() });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                offset: self.pos,
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an `f32` bit pattern.
    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.len_for("string", 1)?;
        let offset = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8 { offset })
    }

    /// Reads a `u64` element count and validates that `count ×
    /// min_elem_bytes` still fits in the remaining payload, so corrupt
    /// counts are rejected before any allocation sized by them.
    pub fn len_for(&mut self, context: &'static str, min_elem_bytes: usize) -> Result<usize, WireError> {
        let announced = self.u64()?;
        let budget = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if announced > budget {
            return Err(WireError::LengthOverflow { context, announced });
        }
        Ok(announced as usize)
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive_bitwise() {
        let mut w = WireWriter::with_magic(*b"PWT1");
        w.u8(7);
        w.u16(65_535);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.f32(-0.0);
        w.f32(f32::NAN);
        w.f64(std::f64::consts::PI);
        w.str("wire ünïcode");
        let bytes = w.into_bytes();

        let mut r = WireReader::with_magic(&bytes, *b"PWT1").unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65_535);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(r.f32().unwrap().is_nan());
        assert_eq!(r.f64().unwrap().to_bits(), std::f64::consts::PI.to_bits());
        assert_eq!(r.str().unwrap(), "wire ünïcode");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error_not_a_panic() {
        let mut w = WireWriter::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes[..5]);
        assert_eq!(
            r.u64(),
            Err(WireError::UnexpectedEof { offset: 0, needed: 8, remaining: 5 })
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(
            WireReader::with_magic(b"XXXXrest", *b"PWT1").err(),
            Some(WireError::BadMagic { expected: *b"PWT1" })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = WireWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn corrupt_length_is_rejected_before_allocation() {
        let mut w = WireWriter::new();
        w.u64(u64::MAX / 2); // announces an absurd element count
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.len_for("corrupt section", 4),
            Err(WireError::LengthOverflow { context: "corrupt section", .. })
        ));
    }

    #[test]
    fn precision_tags_round_trip() {
        for p in [WirePrecision::F32, WirePrecision::U16, WirePrecision::I8] {
            assert_eq!(WirePrecision::from_tag(p.tag()).unwrap(), p);
        }
        assert!(WirePrecision::from_tag(9).is_err());
    }
}
