//! First-party parallel kernel layer: scoped-thread band partitioning with
//! a bitwise-determinism contract.
//!
//! Every parallel kernel in this workspace is built from the two primitives
//! here, [`for_each_band`] and [`map_bands`], which split the *output* (or
//! the input index space) into contiguous bands — one per worker thread.
//! Because each output element is computed by exactly the same sequence of
//! floating-point operations regardless of how the bands are drawn, every
//! kernel produces **bitwise-identical** results at any thread count,
//! including the serial path (`num_threads == 1`), which executes the exact
//! pre-parallelisation loop. The full contract — which kernels are
//! parallelised, which deliberately stay serial, and why — is documented in
//! `docs/THREADING.md` at the repository root.
//!
//! Configuration is process-global (see [`ThreadConfig`]): the default is
//! read once from the `PILOTE_THREADS` / `PILOTE_MIN_PARALLEL_LEN`
//! environment variables and can be overridden programmatically with
//! [`configure`]. Threads are scoped (`std::thread::scope`) and spawned per
//! kernel invocation; the [`ThreadConfig::min_parallel_len`] work threshold
//! keeps small kernels on the fast serial path where spawn cost would
//! dominate.
//!
//! ```
//! use pilote_tensor::parallel::{self, ThreadConfig};
//!
//! // Pin the process to 2 worker threads with the default work threshold.
//! parallel::configure(ThreadConfig { num_threads: 2, ..ThreadConfig::default() });
//! assert_eq!(parallel::current().num_threads, 2);
//!
//! // Small kernels stay serial regardless of the thread count…
//! assert_eq!(parallel::effective_threads(100), 1);
//! // …large ones fan out.
//! assert_eq!(parallel::effective_threads(10_000_000), 2);
//!
//! // Restore auto-detection for the rest of the process.
//! parallel::configure(ThreadConfig::from_env());
//! ```

use std::ops::Range;
use std::sync::{OnceLock, RwLock};

/// Default work threshold (approximate scalar operations) below which a
/// kernel runs serially. Chosen so that the ~10–50 µs cost of spawning
/// scoped threads never exceeds a few percent of kernel runtime.
pub const DEFAULT_MIN_PARALLEL_LEN: usize = 64 * 1024;

/// Process-wide threading configuration for the parallel kernel layer.
///
/// * `num_threads == 1` selects the exact serial path: the same loops the
///   crate ran before the parallel layer existed, with no thread spawns.
/// * `num_threads > 1` enables band-parallel kernels, which are guaranteed
///   bitwise-identical to the serial path (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadConfig {
    /// Number of worker threads used by parallel kernels (≥ 1; values of 0
    /// are treated as 1).
    pub num_threads: usize,
    /// Minimum approximate scalar-operation count for a kernel invocation
    /// to use more than one thread.
    pub min_parallel_len: usize,
}

impl Default for ThreadConfig {
    /// Equivalent to [`ThreadConfig::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

/// Parses a `PILOTE_THREADS` value: `Ok(Some(n))` for an explicit positive
/// count, `Ok(None)` for `0` (the documented "auto-detect" spelling), and
/// `Err(())` for anything unparsable. Pure so the accepted grammar is
/// unit-testable without touching the process environment.
fn parse_thread_count(raw: &str) -> std::result::Result<Option<usize>, ()> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Ok(None),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(()),
    }
}

/// Parses a `PILOTE_MIN_PARALLEL_LEN` value (any `usize`, including `0` to
/// force the parallel path on every kernel); `Err(())` when unparsable.
fn parse_min_parallel_len(raw: &str) -> std::result::Result<usize, ()> {
    raw.trim().parse::<usize>().map_err(|_| ())
}

/// Reads an environment variable through `parse`, warning **once per
/// process** on stderr — naming the variable and the rejected value — when
/// the value is set but unparsable, then falling back to `default`.
/// A silent fallback here cost real debugging time: `PILOTE_THREADS=abc`
/// used to behave exactly like auto-detection with no trace of the typo.
fn env_or_warn<T>(
    name: &str,
    warn_once: &'static std::sync::Once,
    parse: impl Fn(&str) -> std::result::Result<T, ()>,
    default: impl FnOnce() -> T,
) -> T {
    match std::env::var(name) {
        Ok(raw) => match parse(&raw) {
            Ok(v) => v,
            Err(()) => {
                warn_once.call_once(|| {
                    eprintln!(
                        "[pilote-tensor] warning: ignoring unparsable {name}={raw:?} \
                         (expected a non-negative integer); falling back to auto-detection"
                    );
                });
                default()
            }
        },
        Err(_) => default(),
    }
}

impl ThreadConfig {
    /// Builds a configuration from the environment:
    ///
    /// * `PILOTE_THREADS` — worker thread count; unset or `0` means "use
    ///   [`std::thread::available_parallelism`]". An unparsable value also
    ///   falls back to auto-detection, but emits a one-time stderr warning
    ///   naming the variable and the rejected value.
    /// * `PILOTE_MIN_PARALLEL_LEN` — work threshold; defaults to
    ///   [`DEFAULT_MIN_PARALLEL_LEN`], with the same one-time warning when
    ///   set but unparsable.
    pub fn from_env() -> Self {
        static WARN_THREADS: std::sync::Once = std::sync::Once::new();
        static WARN_MIN_LEN: std::sync::Once = std::sync::Once::new();
        let auto = || std::thread::available_parallelism().map_or(1, |n| n.get());
        let num_threads =
            env_or_warn("PILOTE_THREADS", &WARN_THREADS, parse_thread_count, || None)
                .unwrap_or_else(auto);
        let min_parallel_len =
            env_or_warn("PILOTE_MIN_PARALLEL_LEN", &WARN_MIN_LEN, parse_min_parallel_len, || {
                DEFAULT_MIN_PARALLEL_LEN
            });
        ThreadConfig { num_threads, min_parallel_len }
    }

    /// A strictly serial configuration (`num_threads = 1`).
    pub fn serial() -> Self {
        ThreadConfig { num_threads: 1, min_parallel_len: DEFAULT_MIN_PARALLEL_LEN }
    }
}

/// Serialises unit tests that reconfigure the process-global config, so
/// assertions on [`current`] cannot race. Kernel *results* are unaffected
/// by races (that is the whole contract), only introspection is.
#[cfg(test)]
pub(crate) static TEST_CONFIG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn config_cell() -> &'static RwLock<ThreadConfig> {
    static CONFIG: OnceLock<RwLock<ThreadConfig>> = OnceLock::new();
    CONFIG.get_or_init(|| RwLock::new(ThreadConfig::from_env()))
}

/// The current process-wide [`ThreadConfig`].
pub fn current() -> ThreadConfig {
    *config_cell().read().expect("thread config lock poisoned")
}

/// Replaces the process-wide [`ThreadConfig`].
///
/// Takes effect for every subsequent kernel invocation in the process;
/// kernels already running are unaffected. Because results are bitwise
/// thread-count-invariant, reconfiguring mid-computation never changes
/// numerical outcomes — only scheduling.
pub fn configure(config: ThreadConfig) {
    *config_cell().write().expect("thread config lock poisoned") = config;
}

/// Number of threads a kernel performing roughly `work` scalar operations
/// should use under the current configuration: `1` when the configured
/// thread count is 1 or `work` is below the threshold, the configured
/// count otherwise.
pub fn effective_threads(work: usize) -> usize {
    let cfg = current();
    let t = cfg.num_threads.max(1);
    if t == 1 || work < cfg.min_parallel_len {
        1
    } else {
        t
    }
}

/// Splits `items` into at most `threads` contiguous, non-empty, in-order
/// ranges whose lengths differ by at most one.
///
/// ```
/// let bands = pilote_tensor::parallel::band_ranges(10, 4);
/// assert_eq!(bands, vec![0..3, 3..6, 6..8, 8..10]);
/// assert_eq!(pilote_tensor::parallel::band_ranges(2, 4).len(), 2);
/// ```
pub fn band_ranges(items: usize, threads: usize) -> Vec<Range<usize>> {
    let threads = threads.max(1).min(items.max(1));
    let base = items / threads;
    let extra = items % threads;
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0usize;
    for b in 0..threads {
        let len = base + usize::from(b < extra);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Runs `f` over contiguous bands of `out`, in parallel when `threads > 1`.
///
/// `out` is interpreted as `out.len() / item_len` items of `item_len`
/// elements each (`item_len` is the row stride for matrix kernels, `1` for
/// flat element-wise kernels); items are never split across bands. `f`
/// receives `(first_item_index, band)` where `band` is the mutable
/// sub-slice covering that band's items.
///
/// With `threads == 1` this is exactly `f(0, out)` on the calling thread —
/// no spawns, no synchronisation — which is what makes the serial path of
/// every kernel identical to its pre-parallel-layer implementation.
///
/// # Panics
/// Panics if `out.len()` is not a multiple of `item_len` (when `item_len
/// > 0`) or if a worker panics (the panic is propagated by
/// `std::thread::scope`).
pub fn for_each_band<T: Send>(
    out: &mut [T],
    item_len: usize,
    threads: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let items = out.len().checked_div(item_len).unwrap_or(0);
    if item_len > 0 {
        assert_eq!(out.len(), items * item_len, "output not a whole number of items");
    }
    if threads <= 1 || items <= 1 {
        f(0, out);
        return;
    }
    let ranges = band_ranges(items, threads);
    if ranges.len() <= 1 {
        f(0, out);
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut iter = ranges.into_iter();
        // Spawn workers for all bands after the first…
        let first = iter.next().expect("at least one band");
        let (first_band, tail) = rest.split_at_mut(first.len() * item_len);
        rest = tail;
        for range in iter {
            let (band, tail) = rest.split_at_mut(range.len() * item_len);
            rest = tail;
            let f = &f;
            scope.spawn(move || f(range.start, band));
        }
        // …and run the first band on the calling thread.
        f(0, first_band);
    });
}

/// Runs `f` over contiguous index bands of `0..items` and returns the
/// per-band results in band order.
///
/// The reduction counterpart of [`for_each_band`]: use it when each band
/// produces an intermediate value (partial histogram counts, candidate
/// lists) that the caller combines afterwards. Combining in band order
/// keeps order-sensitive merges deterministic.
///
/// With `threads == 1` the single band `0..items` runs on the calling
/// thread and the result vector has one element.
pub fn map_bands<R: Send>(
    items: usize,
    threads: usize,
    f: impl Fn(Range<usize>) -> R + Sync,
) -> Vec<R> {
    if items == 0 {
        return Vec::new();
    }
    if threads <= 1 || items == 1 {
        return vec![f(0..items)];
    }
    let ranges = band_ranges(items, threads);
    if ranges.len() <= 1 {
        return vec![f(0..items)];
    }
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(ranges.len());
        let mut iter = ranges.into_iter();
        let first = iter.next().expect("at least one band");
        for range in iter {
            handles.push(scope.spawn(move || f(range)));
        }
        let mut results = vec![f(first)];
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_ranges_cover_and_balance() {
        for items in [0usize, 1, 2, 7, 64, 1000] {
            for threads in [1usize, 2, 3, 4, 16] {
                let ranges = band_ranges(items, threads);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, items, "items={items} threads={threads}");
                // Contiguous and in order.
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    assert!(!r.is_empty());
                    expect = r.end;
                }
                // Balanced to within one item.
                if let (Some(max), Some(min)) = (
                    ranges.iter().map(|r| r.len()).max(),
                    ranges.iter().map(|r| r.len()).min(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn for_each_band_writes_every_item_once() {
        for threads in [1usize, 2, 3, 5] {
            let mut out = vec![0u32; 31 * 3];
            for_each_band(&mut out, 3, threads, |start, band| {
                for (off, chunk) in band.chunks_mut(3).enumerate() {
                    for v in chunk.iter_mut() {
                        *v += (start + off) as u32 + 1;
                    }
                }
            });
            let expect: Vec<u32> = (0..31u32).flat_map(|i| [i + 1; 3]).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn for_each_band_serial_is_single_call() {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        let mut out = vec![0u8; 100];
        for_each_band(&mut out, 1, 1, |start, band| {
            counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            assert_eq!(start, 0);
            assert_eq!(band.len(), 100);
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn map_bands_preserves_band_order() {
        for threads in [1usize, 2, 4, 8] {
            let sums = map_bands(100, threads, |r| r.clone().sum::<usize>());
            let total: usize = sums.iter().sum();
            assert_eq!(total, (0..100).sum::<usize>(), "threads={threads}");
            let starts = map_bands(100, threads, |r| r.start);
            let mut sorted = starts.clone();
            sorted.sort_unstable();
            assert_eq!(starts, sorted, "band order must be ascending");
        }
    }

    #[test]
    fn map_bands_empty_input() {
        let r: Vec<usize> = map_bands(0, 4, |_| unreachable!());
        assert!(r.is_empty());
    }

    #[test]
    fn env_value_grammar() {
        // PILOTE_THREADS: 0 is the documented auto spelling, positives are
        // explicit counts, everything else is a rejected misconfiguration.
        assert_eq!(parse_thread_count("0"), Ok(None));
        assert_eq!(parse_thread_count(" 3 "), Ok(Some(3)));
        assert_eq!(parse_thread_count("abc"), Err(()));
        assert_eq!(parse_thread_count("-1"), Err(()));
        assert_eq!(parse_thread_count("2.5"), Err(()));
        assert_eq!(parse_thread_count(""), Err(()));
        // PILOTE_MIN_PARALLEL_LEN: any usize, 0 included.
        assert_eq!(parse_min_parallel_len("0"), Ok(0));
        assert_eq!(parse_min_parallel_len("65536"), Ok(65536));
        assert_eq!(parse_min_parallel_len("lots"), Err(()));
    }

    #[test]
    fn env_or_warn_falls_back_on_unparsable() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        // Variable unset → default, no warning machinery involved.
        let v = env_or_warn("PILOTE_TEST_UNSET_VAR", &ONCE, parse_min_parallel_len, || 7);
        assert_eq!(v, 7);
        assert!(!ONCE.is_completed());
    }

    #[test]
    fn config_roundtrip_and_threshold() {
        let _guard = TEST_CONFIG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved = current();
        configure(ThreadConfig { num_threads: 3, min_parallel_len: 1000 });
        assert_eq!(current().num_threads, 3);
        assert_eq!(effective_threads(999), 1);
        assert_eq!(effective_threads(1000), 3);
        configure(ThreadConfig::serial());
        assert_eq!(effective_threads(usize::MAX), 1);
        configure(saved);
    }
}
