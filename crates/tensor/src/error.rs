//! Error type shared by every fallible tensor operation.

use std::fmt;

/// Errors produced by tensor construction and tensor algebra.
///
/// The type is deliberately small (two words) so that `Result<Tensor>` stays
/// cheap to return from hot paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of provided elements does not match the product of the
    /// requested shape.
    LengthMismatch {
        /// Number of elements supplied.
        len: usize,
        /// Number of elements the shape requires.
        expected: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The operation requires a different rank (e.g. matmul on a 1-D tensor).
    RankMismatch {
        /// Rank of the offending tensor.
        got: usize,
        /// Rank the operation requires.
        expected: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An index or axis was out of bounds.
    OutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        bound: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The operation is undefined on an empty tensor (e.g. argmax).
    Empty {
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { len, expected } => {
                write!(f, "length mismatch: got {len} elements, shape requires {expected}")
            }
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "{op}: incompatible shapes {left:?} and {right:?}")
            }
            TensorError::RankMismatch { got, expected, op } => {
                write!(f, "{op}: expected rank {expected}, got rank {got}")
            }
            TensorError::OutOfBounds { index, bound, op } => {
                write!(f, "{op}: index {index} out of bounds (< {bound})")
            }
            TensorError::Empty { op } => write!(f, "{op}: undefined on an empty tensor"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch { left: vec![2, 3], right: vec![4], op: "add" };
        let msg = e.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[4]"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> =
            Box::new(TensorError::Empty { op: "argmax" });
        assert!(e.to_string().contains("argmax"));
    }

    #[test]
    fn length_mismatch_reports_both_sides() {
        let e = TensorError::LengthMismatch { len: 5, expected: 6 };
        let msg = e.to_string();
        assert!(msg.contains('5') && msg.contains('6'));
    }
}
