//! Descriptive statistics beyond simple reductions: quantiles, histograms
//! and streaming (Welford) moments — used by the experiment reports and by
//! the drift monitor of the streaming pipeline.

use crate::parallel;
use crate::tensor::Tensor;
use crate::TensorError;

impl Tensor {
    /// The `q`-quantile (`0 ≤ q ≤ 1`) of all elements, by linear
    /// interpolation between order statistics.
    pub fn quantile(&self, q: f32) -> Result<f32, TensorError> {
        if self.is_empty() {
            return Err(TensorError::Empty { op: "quantile" });
        }
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1], got {q}");
        let mut sorted: Vec<f32> = self.as_slice().to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let pos = q as f64 * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = (pos - lo as f64) as f32;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }

    /// Median of all elements.
    pub fn median(&self) -> Result<f32, TensorError> {
        self.quantile(0.5)
    }

    /// Fixed-width histogram of all elements over `[lo, hi]` with `bins`
    /// buckets; out-of-range values clamp into the edge buckets.
    pub fn histogram(&self, lo: f32, hi: f32, bins: usize) -> Result<Vec<u64>, TensorError> {
        if self.is_empty() {
            return Err(TensorError::Empty { op: "histogram" });
        }
        assert!(bins > 0 && hi > lo, "need bins > 0 and hi > lo");
        let width = (hi - lo) / bins as f32;
        let data = self.as_slice();
        // Per-band partial counts merged in band order: integer additions
        // commute exactly, so the result is thread-count-invariant.
        let threads = parallel::effective_threads(data.len());
        let partials = parallel::map_bands(data.len(), threads, |range| {
            let mut counts = vec![0u64; bins];
            for &v in &data[range] {
                let idx =
                    (((v - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
                counts[idx] += 1;
            }
            counts
        });
        let mut counts = vec![0u64; bins];
        for p in partials {
            for (o, v) in counts.iter_mut().zip(p) {
                *o += v;
            }
        }
        Ok(counts)
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm) — constant
/// memory, numerically stable, suitable for on-device statistics over an
/// unbounded sensor stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f32) {
        self.count += 1;
        let delta = x as f64 - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x as f64 - self.mean);
    }

    /// Feeds a slice of observations.
    pub fn extend(&mut self, xs: &[f32]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Observations seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 before any observation).
    pub fn mean(&self) -> f32 {
        self.mean as f32
    }

    /// Running population variance (0 before two observations).
    pub fn variance(&self) -> f32 {
        if self.count < 2 {
            return 0.0;
        }
        (self.m2 / self.count as f64) as f32
    }

    /// Running population standard deviation.
    pub fn std(&self) -> f32 {
        self.variance().sqrt()
    }

    /// Merges another accumulator (parallel Welford combine).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 += other.m2
            + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn quantiles_of_known_sequence() {
        let t = Tensor::vector(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(t.quantile(0.0).unwrap(), 1.0);
        assert_eq!(t.quantile(1.0).unwrap(), 5.0);
        assert_eq!(t.median().unwrap(), 3.0);
        assert_eq!(t.quantile(0.25).unwrap(), 2.0);
    }

    #[test]
    fn quantile_interpolates() {
        let t = Tensor::vector(&[0.0, 10.0]);
        assert_eq!(t.quantile(0.3).unwrap(), 3.0);
    }

    #[test]
    fn quantile_errors_and_panics() {
        assert!(Tensor::zeros([0]).quantile(0.5).is_err());
        let t = Tensor::vector(&[1.0]);
        assert!(std::panic::catch_unwind(|| t.quantile(1.5)).is_err());
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let t = Tensor::vector(&[-10.0, 0.1, 0.2, 0.6, 99.0]);
        let h = t.histogram(0.0, 1.0, 2).unwrap();
        // -10 clamps into bin 0; 99 clamps into bin 1.
        assert_eq!(h, vec![3, 2]);
        assert_eq!(h.iter().sum::<u64>(), 5);
    }

    #[test]
    fn welford_matches_batch_moments() {
        let mut rng = Rng64::new(1);
        let data: Vec<f32> = (0..10_000).map(|_| rng.normal_f32(3.0, 2.0)).collect();
        let mut w = Welford::new();
        w.extend(&data);
        let t = Tensor::vector(&data);
        assert!((w.mean() - t.mean()).abs() < 1e-3);
        assert!((w.variance() - t.variance()).abs() < 1e-2);
        assert_eq!(w.count(), 10_000);
    }

    #[test]
    fn welford_merge_equals_single_stream() {
        let mut rng = Rng64::new(2);
        let a: Vec<f32> = (0..500).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let b: Vec<f32> = (0..300).map(|_| rng.normal_f32(5.0, 2.0)).collect();
        let mut w1 = Welford::new();
        w1.extend(&a);
        let mut w2 = Welford::new();
        w2.extend(&b);
        w1.merge(&w2);
        let mut all = Welford::new();
        all.extend(&a);
        all.extend(&b);
        assert!((w1.mean() - all.mean()).abs() < 1e-4);
        assert!((w1.variance() - all.variance()).abs() < 1e-3);
    }

    #[test]
    fn welford_empty_edge_cases() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        let other = Welford::new();
        w.merge(&other); // both empty: no panic
        w.push(1.0);
        assert_eq!(w.variance(), 0.0); // single observation
    }
}
