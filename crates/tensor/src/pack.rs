//! Panel packing and the register-tiled GEMM microkernel.
//!
//! Every matrix product in the workspace ([`matmul`], [`matmul_t`],
//! [`t_matmul`] and the fused [`pairwise_sq_dists`] epilogue) routes
//! through one packed kernel:
//!
//! [`matmul`]: crate::Tensor::matmul
//! [`matmul_t`]: crate::Tensor::matmul_t
//! [`t_matmul`]: crate::Tensor::t_matmul
//! [`pairwise_sq_dists`]: crate::Tensor::pairwise_sq_dists
//!
//! 1. **Pack B** once per call into `⌈n/NR⌉` column panels of `k × NR`
//!    contiguous floats (`bp[panel][kk·NR + j]`), zero-padded on the last
//!    panel. A transposed right-hand side is just a different gather order
//!    here — there is no separate loop nest per transpose variant.
//! 2. **Pack A** per `MR`-row block into an `MR × k` panel laid out
//!    `ap[kk·MR + i]`, again zero-padded, so the microkernel reads both
//!    operands with unit stride.
//! 3. The **microkernel** accumulates an `MR × NR` tile in registers over
//!    the *entire* `k` extent in one fixed ascending-`k` chain of
//!    `acc += a·b` updates, then an optional epilogue maps the tile before
//!    it is stored.
//!
//! # Determinism
//!
//! Each output element's value is produced by exactly one ascending-`k`
//! sequence of `mul` + `add` operations (never a fused multiply-add, never
//! a split accumulator), so the result is bitwise identical
//!
//! * at every thread count — bands only choose *which* tile a row lands
//!   in, never the per-element operation sequence (`docs/THREADING.md`);
//! * at every tile shape — zero padding contributes `acc + (±0·b)`
//!   operations only to *padding* lanes, which are never stored;
//! * at every SIMD tier — the vectorised kernels perform the same scalar
//!   chain per lane, so AVX-512, AVX2 and the portable fallback agree bit
//!   for bit (verified by `simd_tiers_agree_bitwise`).
//!
//! The full layout/contract documentation lives in `docs/KERNELS.md`.
//!
//! # SIMD dispatch
//!
//! The kernel instantiation is chosen once per process: AVX-512F (8×32
//! tile), AVX2 (6×16), or the portable autovectorised fallback (4×16).
//! `PILOTE_SIMD` (`avx512` | `avx2` | `baseline` | `auto`) caps the tier,
//! e.g. for cross-tier byte-comparison; an unrecognised value warns once on
//! stderr and falls back to auto-detection. [`active_simd`] reports the
//! selected tier.

use crate::parallel;
use std::sync::OnceLock;

/// SIMD tier the packed kernel dispatches to, selected once per process.
///
/// Results are bitwise identical across tiers (the vector kernels use the
/// same per-element `mul`/`add` chain as the scalar fallback — no FMA
/// contraction), so the tier is purely a throughput knob, like
/// `PILOTE_THREADS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Simd {
    /// AVX-512F 8×32 microkernel (x86-64 with `avx512f`).
    Avx512,
    /// AVX2 6×16 microkernel (x86-64 with `avx2`).
    Avx2,
    /// Portable autovectorised 4×16 microkernel (any target).
    Baseline,
}

impl Simd {
    /// Stable lower-case name (`avx512` / `avx2` / `baseline`), as accepted
    /// by `PILOTE_SIMD` and reported in `BENCH_kernels.json`.
    pub fn name(self) -> &'static str {
        match self {
            Simd::Avx512 => "avx512",
            Simd::Avx2 => "avx2",
            Simd::Baseline => "baseline",
        }
    }
}

/// Highest tier the host supports.
fn detect_simd() -> Simd {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return Simd::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return Simd::Avx2;
        }
    }
    Simd::Baseline
}

/// Parses a `PILOTE_SIMD` value into a tier cap; `None` means auto.
/// Pure so the accepted grammar is unit-testable.
fn parse_simd(raw: &str) -> Result<Option<Simd>, ()> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "auto" => Ok(None),
        "avx512" | "avx512f" => Ok(Some(Simd::Avx512)),
        "avx2" => Ok(Some(Simd::Avx2)),
        "baseline" | "scalar" => Ok(Some(Simd::Baseline)),
        _ => Err(()),
    }
}

/// The SIMD tier every packed kernel in this process dispatches to:
/// the highest tier the host supports, optionally capped by `PILOTE_SIMD`
/// (read once, at the first kernel invocation).
pub fn active_simd() -> Simd {
    static ACTIVE: OnceLock<Simd> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let detected = detect_simd();
        let requested = match std::env::var("PILOTE_SIMD") {
            Ok(raw) => match parse_simd(&raw) {
                Ok(cap) => cap,
                Err(()) => {
                    eprintln!(
                        "[pilote-tensor] warning: ignoring unrecognised PILOTE_SIMD={raw:?} \
                         (expected avx512 | avx2 | baseline | auto); auto-detecting"
                    );
                    None
                }
            },
            Err(_) => None,
        };
        match requested {
            // A cap can only lower the tier: requesting AVX-512 on a host
            // without it still runs (identical bits), just slower.
            Some(cap) if tier_rank(cap) <= tier_rank(detected) => cap,
            Some(_) | None => detected,
        }
    })
}

fn tier_rank(s: Simd) -> u8 {
    match s {
        Simd::Baseline => 0,
        Simd::Avx2 => 1,
        Simd::Avx512 => 2,
    }
}

/// A GEMM operand: a row-major `[rows, cols]` buffer read either directly
/// or through its transpose, so `A·Bᵀ` and `Aᵀ·B` are packing choices of
/// the one kernel rather than separate loop nests.
#[derive(Clone, Copy)]
pub(crate) struct Operand<'a> {
    data: &'a [f32],
    /// Leading dimension (row stride) of the underlying buffer.
    ld: usize,
    /// When set, logical element `(r, c)` reads `data[c·ld + r]`.
    transposed: bool,
}

impl<'a> Operand<'a> {
    /// A row-major `[rows, ld]` matrix read directly.
    pub(crate) fn plain(data: &'a [f32], ld: usize) -> Self {
        Operand { data, ld, transposed: false }
    }

    /// The transpose of a row-major `[cols, ld]` matrix.
    pub(crate) fn transposed(data: &'a [f32], ld: usize) -> Self {
        Operand { data, ld, transposed: true }
    }
}

/// Per-tile epilogue applied to the accumulator before it is stored.
#[derive(Clone, Copy)]
pub(crate) enum Epilogue<'a> {
    /// Store the raw product `A·B`.
    None,
    /// Squared-distance combine for [`crate::Tensor::pairwise_sq_dists`]: with the
    /// tile's dot products `d[i][j] = xᵢ·yⱼ`, store
    /// `max(x_sq[i] + y_sq[j] − 2·d[i][j], 0)` — bit-for-bit the expression
    /// the unfused two-pass form applies, just while the tile is still hot.
    SqDist {
        /// Per-row squared norms of the left operand (`len == m`).
        x_sq: &'a [f32],
        /// Per-row squared norms of the right operand (`len == n`).
        y_sq: &'a [f32],
    },
}

/// Packs the `⌈n/NR⌉` column panels of `b` (`k × n` logical), zero-padding
/// the final panel: `out[p·k·NR + kk·NR + j] = b(kk, p·NR + j)`.
fn pack_b<const NR: usize>(b: Operand<'_>, k: usize, n: usize) -> Vec<f32> {
    let panels = n.div_ceil(NR);
    let mut bp = vec![0.0f32; panels * k * NR];
    if k == 0 {
        return bp; // nothing to pack; the k-loop of the microkernel is empty
    }
    for (p, panel) in bp.chunks_mut(k * NR).enumerate() {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        if b.transposed {
            // b(kk, j) = data[j·ld + kk]: copy each source row (one logical
            // column) contiguously into the panel's strided lane.
            for j in 0..w {
                let src = &b.data[(j0 + j) * b.ld..(j0 + j) * b.ld + k];
                for (kk, &v) in src.iter().enumerate() {
                    panel[kk * NR + j] = v;
                }
            }
        } else {
            for (kk, dst) in panel.chunks_mut(NR).enumerate() {
                dst[..w].copy_from_slice(&b.data[kk * b.ld + j0..kk * b.ld + j0 + w]);
            }
        }
    }
    bp
}

/// Packs rows `[i0, i0 + rows)` of `a` (`m × k` logical) into an `MR × k`
/// panel, zero-padding rows past `rows`: `ap[kk·MR + i] = a(i0 + i, kk)`.
fn pack_a<const MR: usize>(a: Operand<'_>, k: usize, i0: usize, rows: usize, ap: &mut [f32]) {
    ap.fill(0.0);
    if a.transposed {
        // a(i, kk) = data[kk·ld + i]: both source and destination runs are
        // contiguous per kk.
        for kk in 0..k {
            let src = &a.data[kk * a.ld + i0..kk * a.ld + i0 + rows];
            ap[kk * MR..kk * MR + rows].copy_from_slice(src);
        }
    } else {
        for i in 0..rows {
            let src = &a.data[(i0 + i) * a.ld..(i0 + i) * a.ld + k];
            for (kk, &v) in src.iter().enumerate() {
                ap[kk * MR + i] = v;
            }
        }
    }
}

/// The portable microkernel body: one fixed ascending-`k` chain of
/// `acc[i][j] += a·b` updates per tile element. The `#[target_feature]`
/// wrappers below re-instantiate this exact loop so the autovectoriser may
/// use wider registers — the per-element operation sequence is identical in
/// every instantiation.
#[inline(always)]
fn microkernel_impl<const MR: usize, const NR: usize>(
    ap: &[f32],
    bp: &[f32],
    k: usize,
    acc: &mut [[f32; NR]; MR],
) {
    for kk in 0..k {
        let bv: &[f32] = &bp[kk * NR..kk * NR + NR];
        let av: &[f32] = &ap[kk * MR..kk * MR + MR];
        for i in 0..MR {
            let a = av[i];
            for j in 0..NR {
                acc[i][j] += a * bv[j];
            }
        }
    }
}

/// Portable 4×16 instantiation (autovectorises on any target).
///
/// `unsafe fn` only to share the signature of the feature-gated kernels;
/// it has no safety requirements of its own.
unsafe fn mk_baseline(ap: &[f32], bp: &[f32], k: usize, acc: &mut [[f32; 16]; 4]) {
    microkernel_impl::<4, 16>(ap, bp, k, acc)
}

/// AVX2 6×16 microkernel: 12 accumulator `ymm` registers, explicit
/// broadcast/`mul`/`add` intrinsics (no FMA — rounding must match the
/// scalar chain).
///
/// # Safety
/// The caller must ensure the host supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mk_avx2(ap: &[f32], bp: &[f32], k: usize, acc: &mut [[f32; 16]; 6]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= k * 6 && bp.len() >= k * 16);
    unsafe {
        let mut c: [[__m256; 2]; 6] = [[_mm256_setzero_ps(); 2]; 6];
        for (i, row) in acc.iter().enumerate() {
            c[i][0] = _mm256_loadu_ps(row.as_ptr());
            c[i][1] = _mm256_loadu_ps(row.as_ptr().add(8));
        }
        for kk in 0..k {
            let b0 = _mm256_loadu_ps(bp.as_ptr().add(kk * 16));
            let b1 = _mm256_loadu_ps(bp.as_ptr().add(kk * 16 + 8));
            let a_col = ap.as_ptr().add(kk * 6);
            for (i, ci) in c.iter_mut().enumerate() {
                let a = _mm256_set1_ps(*a_col.add(i));
                ci[0] = _mm256_add_ps(ci[0], _mm256_mul_ps(a, b0));
                ci[1] = _mm256_add_ps(ci[1], _mm256_mul_ps(a, b1));
            }
        }
        for (i, row) in acc.iter_mut().enumerate() {
            _mm256_storeu_ps(row.as_mut_ptr(), c[i][0]);
            _mm256_storeu_ps(row.as_mut_ptr().add(8), c[i][1]);
        }
    }
}

/// AVX-512F 8×32 microkernel: 16 accumulator `zmm` registers, explicit
/// broadcast/`mul`/`add` intrinsics (no FMA — rounding must match the
/// scalar chain).
///
/// # Safety
/// The caller must ensure the host supports AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn mk_avx512(ap: &[f32], bp: &[f32], k: usize, acc: &mut [[f32; 32]; 8]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= k * 8 && bp.len() >= k * 32);
    unsafe {
        let mut c: [[__m512; 2]; 8] = [[_mm512_setzero_ps(); 2]; 8];
        for (i, row) in acc.iter().enumerate() {
            c[i][0] = _mm512_loadu_ps(row.as_ptr());
            c[i][1] = _mm512_loadu_ps(row.as_ptr().add(16));
        }
        for kk in 0..k {
            let b0 = _mm512_loadu_ps(bp.as_ptr().add(kk * 32));
            let b1 = _mm512_loadu_ps(bp.as_ptr().add(kk * 32 + 16));
            let a_col = ap.as_ptr().add(kk * 8);
            for (i, ci) in c.iter_mut().enumerate() {
                let a = _mm512_set1_ps(*a_col.add(i));
                ci[0] = _mm512_add_ps(ci[0], _mm512_mul_ps(a, b0));
                ci[1] = _mm512_add_ps(ci[1], _mm512_mul_ps(a, b1));
            }
        }
        for (i, row) in acc.iter_mut().enumerate() {
            _mm512_storeu_ps(row.as_mut_ptr(), c[i][0]);
            _mm512_storeu_ps(row.as_mut_ptr().add(16), c[i][1]);
        }
    }
}

/// An `MR × NR` register-tile microkernel: `(a_panel, b_panel, k, acc)`.
/// Unsafe because the SIMD variants require their target feature to have
/// been verified (by [`active_simd`]) before the call.
type Microkernel<const MR: usize, const NR: usize> =
    unsafe fn(&[f32], &[f32], usize, &mut [[f32; NR]; MR]);

/// Runs the packed kernel over one contiguous band of output rows
/// `[row0, row0 + band.len()/n)`, tiling the band into `MR × NR` register
/// tiles. `bp` is the shared pre-packed B; A panels are packed into the
/// band-local `ap` scratch.
#[allow(clippy::too_many_arguments)] // internal driver; the arguments are the GEMM
fn band_gemm<const MR: usize, const NR: usize>(
    a: Operand<'_>,
    bp: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    band: &mut [f32],
    epilogue: Epilogue<'_>,
    mk: Microkernel<MR, NR>,
) {
    let rows = band.len() / n;
    let mut ap = vec![0.0f32; k * MR];
    let panels = n.div_ceil(NR);
    let mut bi = 0usize;
    while bi < rows {
        let mrows = MR.min(rows - bi);
        pack_a::<MR>(a, k, row0 + bi, mrows, &mut ap);
        for p in 0..panels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let panel = &bp[p * k * NR..(p + 1) * k * NR];
            let mut acc = [[0.0f32; NR]; MR];
            // SAFETY: `mk` is only ever a kernel whose required target
            // features were verified by `active_simd()` at dispatch.
            unsafe { mk(&ap, panel, k, &mut acc) };
            for i in 0..mrows {
                let out_row = &mut band[(bi + i) * n + j0..(bi + i) * n + j0 + w];
                match epilogue {
                    Epilogue::None => out_row.copy_from_slice(&acc[i][..w]),
                    Epilogue::SqDist { x_sq, y_sq } => {
                        let xs = x_sq[row0 + bi + i];
                        for (j, o) in out_row.iter_mut().enumerate() {
                            *o = (xs + y_sq[j0 + j] - 2.0 * acc[i][j]).max(0.0);
                        }
                    }
                }
            }
        }
        bi += mrows;
    }
}

fn drive<const MR: usize, const NR: usize>(
    a: Operand<'_>,
    b: Operand<'_>,
    (_m, k, n): (usize, usize, usize),
    threads: usize,
    epilogue: Epilogue<'_>,
    out: &mut [f32],
    mk: Microkernel<MR, NR>,
) {
    let bp = pack_b::<NR>(b, k, n);
    parallel::for_each_band(out, n, threads, |row0, band| {
        band_gemm::<MR, NR>(a, &bp, k, n, row0, band, epilogue, mk);
    });
}

/// The packed GEMM entry point: `out[m, n] = epilogue(A[m, k] · B[k, n])`,
/// band-parallel over output rows with `threads` workers.
///
/// `out` must be `m·n` long; it is fully overwritten. Transposed operand
/// views make `A·Bᵀ` and `Aᵀ·B` the same kernel. `k == 0` stores the
/// epilogue of an all-zero product.
pub(crate) fn gemm(
    a: Operand<'_>,
    b: Operand<'_>,
    dims: (usize, usize, usize),
    threads: usize,
    epilogue: Epilogue<'_>,
    out: &mut [f32],
) {
    gemm_with(active_simd(), a, b, dims, threads, epilogue, out);
}

/// [`gemm`] with an explicit SIMD tier — the tier-comparison seam used by
/// the `simd_tiers_agree_bitwise` test; production code always goes through
/// [`gemm`]/[`active_simd`].
pub(crate) fn gemm_with(
    simd: Simd,
    a: Operand<'_>,
    b: Operand<'_>,
    dims: (usize, usize, usize),
    threads: usize,
    epilogue: Epilogue<'_>,
    out: &mut [f32],
) {
    let (m, _k, n) = dims;
    debug_assert_eq!(out.len(), m * n, "output buffer must be m·n");
    if m == 0 || n == 0 {
        return;
    }
    match simd {
        #[cfg(target_arch = "x86_64")]
        Simd::Avx512 if is_x86_feature_detected!("avx512f") => {
            drive::<8, 32>(a, b, dims, threads, epilogue, out, mk_avx512)
        }
        #[cfg(target_arch = "x86_64")]
        Simd::Avx2 if is_x86_feature_detected!("avx2") => {
            drive::<6, 16>(a, b, dims, threads, epilogue, out, mk_avx2)
        }
        _ => drive::<4, 16>(a, b, dims, threads, epilogue, out, mk_baseline),
    }
}

/// Available (supported-on-this-host) SIMD tiers, highest first.
#[cfg(test)]
pub(crate) fn supported_tiers() -> Vec<Simd> {
    let mut tiers = vec![Simd::Baseline];
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            tiers.push(Simd::Avx2);
        }
        if is_x86_feature_detected!("avx512f") {
            tiers.push(Simd::Avx512);
        }
    }
    tiers.reverse();
    tiers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;
    use crate::Tensor;

    fn gemm_plain(simd: Simd, a: &Tensor, b: &Tensor, threads: usize) -> Vec<f32> {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = vec![0.0f32; m * n];
        gemm_with(
            simd,
            Operand::plain(a.as_slice(), k),
            Operand::plain(b.as_slice(), n),
            (m, k, n),
            threads,
            Epilogue::None,
            &mut out,
        );
        out
    }

    #[test]
    fn simd_tiers_agree_bitwise() {
        let mut rng = Rng64::new(11);
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (7, 63, 9), (33, 65, 37), (64, 64, 64)] {
            let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
            let tiers = supported_tiers();
            let reference = gemm_plain(tiers[0], &a, &b, 1);
            for &tier in &tiers[1..] {
                let got = gemm_plain(tier, &a, &b, 1);
                let same = got.iter().zip(&reference).all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(same, "tier {:?} diverged from {:?} on ({m},{k},{n})", tier, tiers[0]);
            }
        }
    }

    #[test]
    fn transposed_packing_matches_materialised_transpose() {
        let mut rng = Rng64::new(12);
        let x = Tensor::randn([13, 21], 0.0, 1.0, &mut rng); // [m, k]
        let y = Tensor::randn([17, 21], 0.0, 1.0, &mut rng); // [n, k] (to be read as Bᵀ)
        let y_t = y.transpose().unwrap(); // [k, n]
        let (m, k, n) = (13, 21, 17);
        let mut via_view = vec![0.0f32; m * n];
        gemm(
            Operand::plain(x.as_slice(), k),
            Operand::transposed(y.as_slice(), k),
            (m, k, n),
            1,
            Epilogue::None,
            &mut via_view,
        );
        let mut via_copy = vec![0.0f32; m * n];
        gemm(
            Operand::plain(x.as_slice(), k),
            Operand::plain(y_t.as_slice(), n),
            (m, k, n),
            1,
            Epilogue::None,
            &mut via_copy,
        );
        assert_eq!(via_view, via_copy);
    }

    #[test]
    fn zero_k_stores_epilogue_of_zero_product() {
        let mut out = vec![42.0f32; 6];
        gemm(
            Operand::plain(&[], 0),
            Operand::plain(&[], 2),
            (3, 0, 2),
            1,
            Epilogue::None,
            &mut out,
        );
        assert_eq!(out, vec![0.0; 6]);

        let x_sq = [1.0f32, 2.0, 3.0];
        let y_sq = [0.5f32, 4.0];
        let mut out = vec![0.0f32; 6];
        gemm(
            Operand::plain(&[], 0),
            Operand::plain(&[], 2),
            (3, 0, 2),
            1,
            Epilogue::SqDist { x_sq: &x_sq, y_sq: &y_sq },
            &mut out,
        );
        assert_eq!(out, vec![1.5, 5.0, 2.5, 6.0, 3.5, 7.0]);
    }

    #[test]
    fn parse_simd_grammar() {
        assert_eq!(parse_simd("auto"), Ok(None));
        assert_eq!(parse_simd(""), Ok(None));
        assert_eq!(parse_simd(" AVX2 "), Ok(Some(Simd::Avx2)));
        assert_eq!(parse_simd("avx512"), Ok(Some(Simd::Avx512)));
        assert_eq!(parse_simd("avx512f"), Ok(Some(Simd::Avx512)));
        assert_eq!(parse_simd("baseline"), Ok(Some(Simd::Baseline)));
        assert_eq!(parse_simd("scalar"), Ok(Some(Simd::Baseline)));
        assert_eq!(parse_simd("turbo"), Err(()));
    }

    #[test]
    fn tier_names_round_trip() {
        for tier in [Simd::Avx512, Simd::Avx2, Simd::Baseline] {
            assert_eq!(parse_simd(tier.name()), Ok(Some(tier)));
        }
    }
}
