//! Small linear-algebra routines: pairwise distances, row normalisation,
//! covariance, and a power-iteration eigen-solver.
//!
//! Pairwise squared Euclidean distance is *the* kernel of PILOTE: both the
//! margin contrastive loss (Eq. 2) and the NCM classifier (Eq. 1) are
//! defined on it, and the herding selector evaluates it thousands of times.

use crate::error::TensorError;
use crate::pack::{self, Epilogue, Operand};
use crate::parallel;
use crate::reduce::Axis;
use crate::tensor::Tensor;
use crate::Result;
use pilote_obs::work::{self, KernelKind};

/// Per-row squared L2 norms of a rank-2 tensor's data, band-parallel over
/// rows with the serial per-row f32 chain.
fn row_sq_norms(data: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows];
    let threads = parallel::effective_threads(rows * cols);
    parallel::for_each_band(&mut out, 1, threads, |i0, band| {
        for (off, o) in band.iter_mut().enumerate() {
            let i = i0 + off;
            *o = data[i * cols..(i + 1) * cols].iter().map(|&v| v * v).sum();
        }
    });
    out
}

impl Tensor {
    /// Pairwise squared Euclidean distances between the rows of `self`
    /// (`[m, d]`) and the rows of `other` (`[n, d]`), producing `[m, n]`.
    ///
    /// Uses the expansion `‖x−y‖² = ‖x‖² + ‖y‖² − 2·x·y`, fused into the
    /// packed GEMM: the combine/clamp is applied per register tile as an
    /// epilogue of `self @ otherᵀ` while the tile is still hot, so there is
    /// no second full sweep over the `[m, n]` output (docs/KERNELS.md).
    /// Tiny negative values from cancellation are clamped to zero.
    ///
    /// This is the NCM serving kernel: `Pilote::classify_batch` and the
    /// `QualityMonitor` probes both ride it.
    pub fn pairwise_sq_dists(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 || self.cols() != other.cols() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: other.shape().dims().to_vec(),
                op: "pairwise_sq_dists",
            });
        }
        // The fused kernel records *all* of its work under PairwiseDist:
        // the 2mnd GEMM (previously recorded by the inner `matmul_t`) plus
        // the two row-norm passes and the combine/clamp epilogue. The total
        // flops charged per call are unchanged from the unfused form, so
        // virtual device clocks are unaffected (docs/OBSERVABILITY.md).
        let (mm, nn, dd) = (self.rows() as u64, other.rows() as u64, self.cols() as u64);
        work::record(
            KernelKind::PairwiseDist,
            2 * mm * nn * dd + 2 * (mm + nn) * dd + 3 * mm * nn,
        );
        let (m, d, n) = (self.rows(), self.cols(), other.rows());
        let x_sq = row_sq_norms(self.as_slice(), m, d);
        let y_sq = row_sq_norms(other.as_slice(), n, d);
        let mut out = vec![0.0f32; m * n];
        let threads = parallel::effective_threads(m * n * d);
        pack::gemm(
            Operand::plain(self.as_slice(), d),
            Operand::transposed(other.as_slice(), d),
            (m, d, n),
            threads,
            Epilogue::SqDist { x_sq: &x_sq, y_sq: &y_sq },
            &mut out,
        );
        Tensor::from_vec(out, [m, n])
    }

    /// The unfused two-pass form of [`Tensor::pairwise_sq_dists`] — packed
    /// GEMM into a materialised `[m, n]` cross-product, then a separate
    /// combine/clamp sweep. Kept as the byte-identity reference for the
    /// fused epilogue (`repro kernels` and the kernel property suite assert
    /// the two forms agree bit for bit); records no flops.
    #[doc(hidden)]
    pub fn pairwise_sq_dists_unfused(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 || self.cols() != other.cols() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: other.shape().dims().to_vec(),
                op: "pairwise_sq_dists_unfused",
            });
        }
        let (m, d, n) = (self.rows(), self.cols(), other.rows());
        let x_sq = row_sq_norms(self.as_slice(), m, d);
        let y_sq = row_sq_norms(other.as_slice(), n, d);
        let mut out = vec![0.0f32; m * n];
        let threads = parallel::effective_threads(m * n * d);
        pack::gemm(
            Operand::plain(self.as_slice(), d),
            Operand::transposed(other.as_slice(), d),
            (m, d, n),
            threads,
            Epilogue::None,
            &mut out,
        );
        if n > 0 {
            let threads = parallel::effective_threads(m * n);
            parallel::for_each_band(&mut out, n, threads, |i0, bandslice| {
                for (bi, row) in bandslice.chunks_mut(n).enumerate() {
                    let xs = x_sq[i0 + bi];
                    for (j, o) in row.iter_mut().enumerate() {
                        *o = (xs + y_sq[j] - 2.0 * *o).max(0.0);
                    }
                }
            });
        }
        Tensor::from_vec(out, [m, n])
    }

    /// Squared Euclidean distance between two rank-1 tensors.
    pub fn sq_dist(&self, other: &Tensor) -> Result<f32> {
        if self.rank() != 1 || other.rank() != 1 || self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: other.shape().dims().to_vec(),
                op: "sq_dist",
            });
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum::<f64>() as f32)
    }

    /// L2-normalises each row of a rank-2 tensor; rows with norm below
    /// `eps` are left unchanged.
    pub fn normalize_rows(&self, eps: f32) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { got: self.rank(), expected: 2, op: "normalize_rows" });
        }
        let mut out = self.clone();
        let (r, c) = (out.rows(), out.cols());
        let threads = parallel::effective_threads(r * c);
        if c > 0 {
            parallel::for_each_band(out.as_mut_slice(), c, threads, |_i0, band| {
                for row in band.chunks_mut(c) {
                    let norm =
                        row.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt() as f32;
                    if norm > eps {
                        for v in row {
                            *v /= norm;
                        }
                    }
                }
            });
        }
        Ok(out)
    }

    /// Column-mean-centred copy of a rank-2 tensor, plus the removed mean.
    pub fn center_columns(&self) -> Result<(Tensor, Tensor)> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { got: self.rank(), expected: 2, op: "center_columns" });
        }
        let mean = self.mean_axis(Axis::Rows)?;
        let centered = self.try_sub(&mean)?;
        Ok((centered, mean))
    }

    /// Sample covariance matrix (`[d, d]`) of the rows of a rank-2 tensor.
    pub fn covariance(&self) -> Result<Tensor> {
        let (centered, _) = self.center_columns()?;
        let n = self.rows().max(2) as f32;
        Ok(centered.t_matmul(&centered)?.scale(1.0 / (n - 1.0)))
    }
}

/// Leading eigenpairs of a symmetric matrix by power iteration with
/// deflation.
///
/// Returns `(eigenvalues, eigenvectors)` where `eigenvectors` is `[k, d]`
/// (one unit-norm eigenvector per row), ordered by decreasing eigenvalue
/// magnitude. Convergence tolerance `1e-7`, at most `max_iter` sweeps per
/// component. Adequate for the 2–3 leading components PCA projection needs.
pub fn symmetric_eigen_top_k(
    matrix: &Tensor,
    k: usize,
    max_iter: usize,
) -> Result<(Vec<f32>, Tensor)> {
    if matrix.rank() != 2 || matrix.rows() != matrix.cols() {
        return Err(TensorError::ShapeMismatch {
            left: matrix.shape().dims().to_vec(),
            right: matrix.shape().dims().to_vec(),
            op: "symmetric_eigen_top_k",
        });
    }
    let d = matrix.rows();
    let k = k.min(d);
    let mut deflated = matrix.clone();
    let mut values = Vec::with_capacity(k);
    let mut vectors = Tensor::zeros([k, d]);

    for comp in 0..k {
        // Deterministic, component-dependent start vector to avoid being
        // orthogonal to the target eigenvector.
        let mut v: Vec<f32> = (0..d)
            .map(|i| ((i + 1) as f32 * 0.7548776 + comp as f32 * 0.327).sin())
            .collect();
        let mut lambda = 0.0f32;
        for _ in 0..max_iter {
            let vt = Tensor::vector(&v);
            let mut w = deflated.matvec(&vt)?.into_vec();
            let norm = w.iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt() as f32;
            if norm < 1e-12 {
                // Matrix is (numerically) zero in the remaining subspace.
                break;
            }
            for x in &mut w {
                *x /= norm;
            }
            let new_lambda = {
                let wt = Tensor::vector(&w);
                deflated.matvec(&wt)?.dot(&wt)?
            };
            let delta = (new_lambda - lambda).abs();
            v = w;
            lambda = new_lambda;
            if delta < 1e-7 * (1.0 + lambda.abs()) {
                break;
            }
        }
        values.push(lambda);
        vectors.row_mut(comp).copy_from_slice(&v);
        // Deflate: A ← A − λ v vᵀ
        for i in 0..d {
            for j in 0..d {
                let upd = lambda * v[i] * v[j];
                let cur = deflated.at(i, j);
                deflated.set(&[i, j], cur - upd)?;
            }
        }
    }
    Ok((values, vectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn pairwise_matches_direct() {
        let mut rng = Rng64::new(1);
        let x = Tensor::from_vec((0..5 * 4).map(|_| rng.normal_f32(0.0, 1.0)).collect(), [5, 4]).unwrap();
        let y = Tensor::from_vec((0..3 * 4).map(|_| rng.normal_f32(0.0, 1.0)).collect(), [3, 4]).unwrap();
        let d = x.pairwise_sq_dists(&y).unwrap();
        for i in 0..5 {
            for j in 0..3 {
                let direct: f32 = x
                    .row(i)
                    .iter()
                    .zip(y.row(j))
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum();
                assert!((d.at(i, j) - direct).abs() < 1e-4, "({i},{j})");
            }
        }
    }

    #[test]
    fn pairwise_self_diagonal_zero() {
        let mut rng = Rng64::new(2);
        let x = Tensor::from_vec((0..6 * 8).map(|_| rng.normal_f32(0.0, 1.0)).collect(), [6, 8]).unwrap();
        let d = x.pairwise_sq_dists(&x).unwrap();
        for i in 0..6 {
            assert!(d.at(i, i) < 1e-4);
            assert!(d.at(i, i) >= 0.0);
        }
    }

    #[test]
    fn parallel_bitwise_matches_serial() {
        use crate::parallel::{self, ThreadConfig};
        let _guard = parallel::TEST_CONFIG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = Rng64::new(21);
        let x = Tensor::from_vec((0..33 * 19).map(|_| rng.normal_f32(0.0, 1.0)).collect(), [33, 19])
            .unwrap();
        let y = Tensor::from_vec((0..27 * 19).map(|_| rng.normal_f32(0.0, 1.0)).collect(), [27, 19])
            .unwrap();

        let saved = parallel::current();
        parallel::configure(ThreadConfig::serial());
        let serial = (x.pairwise_sq_dists(&y).unwrap(), x.normalize_rows(1e-9).unwrap());
        for threads in [2usize, 3, 4] {
            parallel::configure(ThreadConfig { num_threads: threads, min_parallel_len: 0 });
            assert_eq!(x.pairwise_sq_dists(&y).unwrap(), serial.0);
            assert_eq!(x.normalize_rows(1e-9).unwrap(), serial.1);
        }
        parallel::configure(saved);
    }

    #[test]
    fn fused_epilogue_is_byte_identical_to_unfused() {
        use crate::parallel::{self, ThreadConfig};
        let _guard = parallel::TEST_CONFIG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = Rng64::new(33);
        let x = Tensor::from_vec((0..45 * 80).map(|_| rng.normal_f32(0.0, 1.0)).collect(), [45, 80])
            .unwrap();
        let y = Tensor::from_vec((0..12 * 80).map(|_| rng.normal_f32(0.0, 1.0)).collect(), [12, 80])
            .unwrap();
        let saved = parallel::current();
        parallel::configure(ThreadConfig::serial());
        let baseline = x.pairwise_sq_dists_unfused(&y).unwrap();
        for threads in [1usize, 4] {
            parallel::configure(ThreadConfig { num_threads: threads, min_parallel_len: 0 });
            let fused = x.pairwise_sq_dists(&y).unwrap();
            let unfused = x.pairwise_sq_dists_unfused(&y).unwrap();
            let same = |t: &Tensor| {
                t.as_slice().iter().zip(baseline.as_slice()).all(|(a, b)| a.to_bits() == b.to_bits())
            };
            assert!(same(&fused), "fused diverged at {threads} threads");
            assert!(same(&unfused), "unfused diverged at {threads} threads");
        }
        parallel::configure(saved);
    }

    #[test]
    fn sq_dist_simple() {
        let a = Tensor::vector(&[0.0, 0.0]);
        let b = Tensor::vector(&[3.0, 4.0]);
        assert_eq!(a.sq_dist(&b).unwrap(), 25.0);
    }

    #[test]
    fn normalize_rows_unit_norm() {
        let t = Tensor::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]).unwrap();
        let n = t.normalize_rows(1e-9).unwrap();
        assert!((n.row(0).iter().map(|v| v * v).sum::<f32>() - 1.0).abs() < 1e-6);
        // zero row untouched
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn center_columns_zero_mean() {
        let t = Tensor::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]).unwrap();
        let (c, mean) = t.center_columns().unwrap();
        assert_eq!(mean.as_slice(), &[2.0, 20.0]);
        assert_eq!(c.mean_axis(Axis::Rows).unwrap().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn covariance_of_known_data() {
        // Two perfectly correlated columns.
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let cov = t.covariance().unwrap();
        assert!((cov.at(0, 0) - 1.0).abs() < 1e-5);
        assert!((cov.at(0, 1) - 2.0).abs() < 1e-5);
        assert!((cov.at(1, 1) - 4.0).abs() < 1e-5);
    }

    #[test]
    fn power_iteration_recovers_diagonal_spectrum() {
        let m = Tensor::from_rows(&[
            vec![5.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0],
            vec![0.0, 0.0, 0.5],
        ])
        .unwrap();
        let (vals, vecs) = symmetric_eigen_top_k(&m, 2, 500).unwrap();
        assert!((vals[0] - 5.0).abs() < 1e-3);
        assert!((vals[1] - 2.0).abs() < 1e-3);
        assert!(vecs.row(0)[0].abs() > 0.999);
        assert!(vecs.row(1)[1].abs() > 0.999);
    }

    #[test]
    fn power_iteration_vectors_orthonormal() {
        let mut rng = Rng64::new(7);
        // Random symmetric PSD matrix A = BᵀB.
        let b = Tensor::from_vec((0..6 * 6).map(|_| rng.normal_f32(0.0, 1.0)).collect(), [6, 6]).unwrap();
        let a = b.t_matmul(&b).unwrap();
        let (vals, vecs) = symmetric_eigen_top_k(&a, 3, 1000).unwrap();
        assert!(vals[0] >= vals[1] - 1e-3 && vals[1] >= vals[2] - 1e-3);
        for i in 0..3 {
            let vi = Tensor::vector(vecs.row(i));
            assert!((vi.dot(&vi).unwrap() - 1.0).abs() < 1e-3);
            for j in i + 1..3 {
                let vj = Tensor::vector(vecs.row(j));
                assert!(vi.dot(&vj).unwrap().abs() < 1e-2);
            }
        }
    }

    #[test]
    fn eigen_rejects_nonsquare() {
        assert!(symmetric_eigen_top_k(&Tensor::zeros([2, 3]), 1, 10).is_err());
    }
}
