//! Deterministic random number generation.
//!
//! Every stochastic component in the workspace (weight initialisation,
//! synthetic sensor simulation, pair sampling, exemplar selection ties,
//! experiment repetition rounds) draws from [`Rng64`], a xoshiro256++
//! generator seeded through SplitMix64. A single `u64` therefore pins the
//! entire experiment pipeline, which is what lets the benchmark harness
//! report mean ± std over five *independent but reproducible* rounds exactly
//! as the paper does.

use serde::{Deserialize, Serialize};

/// A seedable, cloneable xoshiro256++ pseudo-random generator.
///
/// Not cryptographically secure; statistical quality is more than sufficient
/// for simulation and ML initialisation workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rng64 {
    state: [u64; 4],
    /// Cached second output of the last Box–Muller draw.
    spare_normal: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Rng64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { state, spare_normal: None }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn uniform_f32(&mut self) -> f32 {
        self.uniform() as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform_f32()
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is undefined");
        let bound = bound as u64;
        // Rejection-free fast path is fine here: bias for bound << 2^64 is
        // negligible for simulation purposes, but we keep the standard
        // rejection loop for exactness.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi as usize;
            }
        }
    }

    /// Standard normal sample (Box–Muller, with the spare value cached).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // u1 must be strictly positive for the logarithm.
        let mut u1 = self.uniform();
        while u1 <= f64::EPSILON {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation, as `f32`.
    #[inline]
    pub fn normal_f32(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal() as f32
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (uniformly, without
    /// replacement) using a partial Fisher–Yates over an index vector.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Derives an independent child generator; used to give each parallel
    /// experiment round its own stream.
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng64::new(7);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = Rng64::new(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng64::new(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng64::new(5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng64::new(9);
        let idx = rng.sample_indices(50, 20);
        assert_eq!(idx.len(), 20);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(idx.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_indices_full_is_permutation() {
        let mut rng = Rng64::new(13);
        let mut idx = rng.sample_indices(10, 10);
        idx.sort_unstable();
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = Rng64::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng64::new(23);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Rng64::new(29);
        assert!((0..100).all(|_| !rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }
}
